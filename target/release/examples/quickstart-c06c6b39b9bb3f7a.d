/root/repo/target/release/examples/quickstart-c06c6b39b9bb3f7a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c06c6b39b9bb3f7a: examples/quickstart.rs

examples/quickstart.rs:
