/root/repo/target/release/examples/design_space-46b2a64fe291d38f.d: examples/design_space.rs

/root/repo/target/release/examples/design_space-46b2a64fe291d38f: examples/design_space.rs

examples/design_space.rs:
