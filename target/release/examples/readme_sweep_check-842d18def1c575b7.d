/root/repo/target/release/examples/readme_sweep_check-842d18def1c575b7.d: examples/readme_sweep_check.rs

/root/repo/target/release/examples/readme_sweep_check-842d18def1c575b7: examples/readme_sweep_check.rs

examples/readme_sweep_check.rs:
