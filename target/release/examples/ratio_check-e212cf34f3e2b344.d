/root/repo/target/release/examples/ratio_check-e212cf34f3e2b344.d: crates/trace/examples/ratio_check.rs

/root/repo/target/release/examples/ratio_check-e212cf34f3e2b344: crates/trace/examples/ratio_check.rs

crates/trace/examples/ratio_check.rs:
