/root/repo/target/release/examples/memo_scratch-28e5ad631ef2defd.d: examples/memo_scratch.rs

/root/repo/target/release/examples/memo_scratch-28e5ad631ef2defd: examples/memo_scratch.rs

examples/memo_scratch.rs:
