/root/repo/target/release/examples/llbp_diag-980ce809f79470f7.d: crates/bench/examples/llbp_diag.rs

/root/repo/target/release/examples/llbp_diag-980ce809f79470f7: crates/bench/examples/llbp_diag.rs

crates/bench/examples/llbp_diag.rs:
