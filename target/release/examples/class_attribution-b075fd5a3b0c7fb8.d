/root/repo/target/release/examples/class_attribution-b075fd5a3b0c7fb8.d: crates/tage/examples/class_attribution.rs

/root/repo/target/release/examples/class_attribution-b075fd5a3b0c7fb8: crates/tage/examples/class_attribution.rs

crates/tage/examples/class_attribution.rs:
