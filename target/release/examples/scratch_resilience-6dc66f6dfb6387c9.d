/root/repo/target/release/examples/scratch_resilience-6dc66f6dfb6387c9.d: examples/scratch_resilience.rs

/root/repo/target/release/examples/scratch_resilience-6dc66f6dfb6387c9: examples/scratch_resilience.rs

examples/scratch_resilience.rs:
