/root/repo/target/release/examples/custom_predictor-c7ac24798d4bc038.d: examples/custom_predictor.rs

/root/repo/target/release/examples/custom_predictor-c7ac24798d4bc038: examples/custom_predictor.rs

examples/custom_predictor.rs:
