/root/repo/target/release/examples/server_workload-3cb2b9ff723aafea.d: examples/server_workload.rs

/root/repo/target/release/examples/server_workload-3cb2b9ff723aafea: examples/server_workload.rs

examples/server_workload.rs:
