/root/repo/target/release/deps/fig14_pattern_sets-166f69b8a215438b.d: crates/bench/src/bin/fig14_pattern_sets.rs

/root/repo/target/release/deps/fig14_pattern_sets-166f69b8a215438b: crates/bench/src/bin/fig14_pattern_sets.rs

crates/bench/src/bin/fig14_pattern_sets.rs:
