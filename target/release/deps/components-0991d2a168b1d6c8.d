/root/repo/target/release/deps/components-0991d2a168b1d6c8.d: crates/bench/benches/components.rs

/root/repo/target/release/deps/components-0991d2a168b1d6c8: crates/bench/benches/components.rs

crates/bench/benches/components.rs:
