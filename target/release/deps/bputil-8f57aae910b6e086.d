/root/repo/target/release/deps/bputil-8f57aae910b6e086.d: crates/bputil/src/lib.rs crates/bputil/src/counter.rs crates/bputil/src/hash.rs crates/bputil/src/history.rs crates/bputil/src/rng.rs crates/bputil/src/stats.rs crates/bputil/src/table.rs

/root/repo/target/release/deps/bputil-8f57aae910b6e086: crates/bputil/src/lib.rs crates/bputil/src/counter.rs crates/bputil/src/hash.rs crates/bputil/src/history.rs crates/bputil/src/rng.rs crates/bputil/src/stats.rs crates/bputil/src/table.rs

crates/bputil/src/lib.rs:
crates/bputil/src/counter.rs:
crates/bputil/src/hash.rs:
crates/bputil/src/history.rs:
crates/bputil/src/rng.rs:
crates/bputil/src/stats.rs:
crates/bputil/src/table.rs:
