/root/repo/target/release/deps/table02_config-74fb67769c11e50e.d: crates/bench/src/bin/table02_config.rs

/root/repo/target/release/deps/table02_config-74fb67769c11e50e: crates/bench/src/bin/table02_config.rs

crates/bench/src/bin/table02_config.rs:
