/root/repo/target/release/deps/speculation-1097c2e989ff175c.d: tests/speculation.rs

/root/repo/target/release/deps/speculation-1097c2e989ff175c: tests/speculation.rs

tests/speculation.rs:
