/root/repo/target/release/deps/llbp_bench-d834a8bfe3be1010.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/llbp_bench-d834a8bfe3be1010: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
