/root/repo/target/release/deps/fig02_mpki_limits-f1670596aec278fa.d: crates/bench/src/bin/fig02_mpki_limits.rs

/root/repo/target/release/deps/fig02_mpki_limits-f1670596aec278fa: crates/bench/src/bin/fig02_mpki_limits.rs

crates/bench/src/bin/fig02_mpki_limits.rs:
