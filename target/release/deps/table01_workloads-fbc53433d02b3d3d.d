/root/repo/target/release/deps/table01_workloads-fbc53433d02b3d3d.d: crates/bench/src/bin/table01_workloads.rs

/root/repo/target/release/deps/table01_workloads-fbc53433d02b3d3d: crates/bench/src/bin/table01_workloads.rs

crates/bench/src/bin/table01_workloads.rs:
