/root/repo/target/release/deps/llbp_tage-073416375831ea85.d: crates/tage/src/lib.rs crates/tage/src/btb.rs crates/tage/src/classic.rs crates/tage/src/config.rs crates/tage/src/frontend.rs crates/tage/src/ittage.rs crates/tage/src/loop_pred.rs crates/tage/src/predictor.rs crates/tage/src/ras.rs crates/tage/src/sc.rs crates/tage/src/tage.rs crates/tage/src/useful.rs crates/tage/src/tsl.rs

/root/repo/target/release/deps/llbp_tage-073416375831ea85: crates/tage/src/lib.rs crates/tage/src/btb.rs crates/tage/src/classic.rs crates/tage/src/config.rs crates/tage/src/frontend.rs crates/tage/src/ittage.rs crates/tage/src/loop_pred.rs crates/tage/src/predictor.rs crates/tage/src/ras.rs crates/tage/src/sc.rs crates/tage/src/tage.rs crates/tage/src/useful.rs crates/tage/src/tsl.rs

crates/tage/src/lib.rs:
crates/tage/src/btb.rs:
crates/tage/src/classic.rs:
crates/tage/src/config.rs:
crates/tage/src/frontend.rs:
crates/tage/src/ittage.rs:
crates/tage/src/loop_pred.rs:
crates/tage/src/predictor.rs:
crates/tage/src/ras.rs:
crates/tage/src/sc.rs:
crates/tage/src/tage.rs:
crates/tage/src/useful.rs:
crates/tage/src/tsl.rs:
