/root/repo/target/release/deps/fig14_pattern_sets-de52808b5e361a23.d: crates/bench/src/bin/fig14_pattern_sets.rs

/root/repo/target/release/deps/fig14_pattern_sets-de52808b5e361a23: crates/bench/src/bin/fig14_pattern_sets.rs

crates/bench/src/bin/fig14_pattern_sets.rs:
