/root/repo/target/release/deps/ext_virtualized-43ccdf463cdc4558.d: crates/bench/src/bin/ext_virtualized.rs

/root/repo/target/release/deps/ext_virtualized-43ccdf463cdc4558: crates/bench/src/bin/ext_virtualized.rs

crates/bench/src/bin/ext_virtualized.rs:
