/root/repo/target/release/deps/trace_tool-cada4a29c65fa6a3.d: crates/trace/src/bin/trace_tool.rs

/root/repo/target/release/deps/trace_tool-cada4a29c65fa6a3: crates/trace/src/bin/trace_tool.rs

crates/trace/src/bin/trace_tool.rs:
