/root/repo/target/release/deps/fig05_context_locality-4b1e87dbc3a33b9e.d: crates/bench/src/bin/fig05_context_locality.rs

/root/repo/target/release/deps/fig05_context_locality-4b1e87dbc3a33b9e: crates/bench/src/bin/fig05_context_locality.rs

crates/bench/src/bin/fig05_context_locality.rs:
