/root/repo/target/release/deps/ext_baselines-aebe076728ec2ad0.d: crates/bench/src/bin/ext_baselines.rs

/root/repo/target/release/deps/ext_baselines-aebe076728ec2ad0: crates/bench/src/bin/ext_baselines.rs

crates/bench/src/bin/ext_baselines.rs:
