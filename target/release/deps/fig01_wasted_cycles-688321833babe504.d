/root/repo/target/release/deps/fig01_wasted_cycles-688321833babe504.d: crates/bench/src/bin/fig01_wasted_cycles.rs

/root/repo/target/release/deps/fig01_wasted_cycles-688321833babe504: crates/bench/src/bin/fig01_wasted_cycles.rs

crates/bench/src/bin/fig01_wasted_cycles.rs:
