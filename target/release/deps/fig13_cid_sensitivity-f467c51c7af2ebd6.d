/root/repo/target/release/deps/fig13_cid_sensitivity-f467c51c7af2ebd6.d: crates/bench/src/bin/fig13_cid_sensitivity.rs

/root/repo/target/release/deps/fig13_cid_sensitivity-f467c51c7af2ebd6: crates/bench/src/bin/fig13_cid_sensitivity.rs

crates/bench/src/bin/fig13_cid_sensitivity.rs:
