/root/repo/target/release/deps/fig11_bandwidth-d959711497b3ccee.d: crates/bench/src/bin/fig11_bandwidth.rs

/root/repo/target/release/deps/fig11_bandwidth-d959711497b3ccee: crates/bench/src/bin/fig11_bandwidth.rs

crates/bench/src/bin/fig11_bandwidth.rs:
