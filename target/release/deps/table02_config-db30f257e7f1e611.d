/root/repo/target/release/deps/table02_config-db30f257e7f1e611.d: crates/bench/src/bin/table02_config.rs

/root/repo/target/release/deps/table02_config-db30f257e7f1e611: crates/bench/src/bin/table02_config.rs

crates/bench/src/bin/table02_config.rs:
