/root/repo/target/release/deps/llbp_repro-58a685ba6bda402f.d: src/lib.rs

/root/repo/target/release/deps/libllbp_repro-58a685ba6bda402f.rlib: src/lib.rs

/root/repo/target/release/deps/libllbp_repro-58a685ba6bda402f.rmeta: src/lib.rs

src/lib.rs:
