/root/repo/target/release/deps/fig13_cid_sensitivity-581d99fc571a9cf2.d: crates/bench/src/bin/fig13_cid_sensitivity.rs

/root/repo/target/release/deps/fig13_cid_sensitivity-581d99fc571a9cf2: crates/bench/src/bin/fig13_cid_sensitivity.rs

crates/bench/src/bin/fig13_cid_sensitivity.rs:
