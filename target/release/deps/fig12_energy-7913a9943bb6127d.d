/root/repo/target/release/deps/fig12_energy-7913a9943bb6127d.d: crates/bench/src/bin/fig12_energy.rs

/root/repo/target/release/deps/fig12_energy-7913a9943bb6127d: crates/bench/src/bin/fig12_energy.rs

crates/bench/src/bin/fig12_energy.rs:
