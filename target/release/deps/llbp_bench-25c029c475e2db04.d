/root/repo/target/release/deps/llbp_bench-25c029c475e2db04.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libllbp_bench-25c029c475e2db04.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libllbp_bench-25c029c475e2db04.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
