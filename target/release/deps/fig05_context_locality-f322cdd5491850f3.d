/root/repo/target/release/deps/fig05_context_locality-f322cdd5491850f3.d: crates/bench/src/bin/fig05_context_locality.rs

/root/repo/target/release/deps/fig05_context_locality-f322cdd5491850f3: crates/bench/src/bin/fig05_context_locality.rs

crates/bench/src/bin/fig05_context_locality.rs:
