/root/repo/target/release/deps/ext_virtualized-a97a2b1d4936aca4.d: crates/bench/src/bin/ext_virtualized.rs

/root/repo/target/release/deps/ext_virtualized-a97a2b1d4936aca4: crates/bench/src/bin/ext_virtualized.rs

crates/bench/src/bin/ext_virtualized.rs:
