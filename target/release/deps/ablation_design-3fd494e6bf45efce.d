/root/repo/target/release/deps/ablation_design-3fd494e6bf45efce.d: crates/bench/src/bin/ablation_design.rs

/root/repo/target/release/deps/ablation_design-3fd494e6bf45efce: crates/bench/src/bin/ablation_design.rs

crates/bench/src/bin/ablation_design.rs:
