/root/repo/target/release/deps/ext_frontend-a6025c026fae9d4f.d: crates/bench/src/bin/ext_frontend.rs

/root/repo/target/release/deps/ext_frontend-a6025c026fae9d4f: crates/bench/src/bin/ext_frontend.rs

crates/bench/src/bin/ext_frontend.rs:
