/root/repo/target/release/deps/fig03_working_set-8e546f695242caf2.d: crates/bench/src/bin/fig03_working_set.rs

/root/repo/target/release/deps/fig03_working_set-8e546f695242caf2: crates/bench/src/bin/fig03_working_set.rs

crates/bench/src/bin/fig03_working_set.rs:
