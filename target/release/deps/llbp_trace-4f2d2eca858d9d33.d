/root/repo/target/release/deps/llbp_trace-4f2d2eca858d9d33.d: crates/trace/src/lib.rs crates/trace/src/io.rs crates/trace/src/record.rs crates/trace/src/stats.rs crates/trace/src/synth/mod.rs crates/trace/src/synth/behavior.rs crates/trace/src/synth/catalog.rs crates/trace/src/synth/program.rs

/root/repo/target/release/deps/llbp_trace-4f2d2eca858d9d33: crates/trace/src/lib.rs crates/trace/src/io.rs crates/trace/src/record.rs crates/trace/src/stats.rs crates/trace/src/synth/mod.rs crates/trace/src/synth/behavior.rs crates/trace/src/synth/catalog.rs crates/trace/src/synth/program.rs

crates/trace/src/lib.rs:
crates/trace/src/io.rs:
crates/trace/src/record.rs:
crates/trace/src/stats.rs:
crates/trace/src/synth/mod.rs:
crates/trace/src/synth/behavior.rs:
crates/trace/src/synth/catalog.rs:
crates/trace/src/synth/program.rs:
