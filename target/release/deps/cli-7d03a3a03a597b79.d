/root/repo/target/release/deps/cli-7d03a3a03a597b79.d: crates/trace/tests/cli.rs

/root/repo/target/release/deps/cli-7d03a3a03a597b79: crates/trace/tests/cli.rs

crates/trace/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_trace_tool=/root/repo/target/release/trace_tool
