/root/repo/target/release/deps/ext_baselines-a1a92f60318ff067.d: crates/bench/src/bin/ext_baselines.rs

/root/repo/target/release/deps/ext_baselines-a1a92f60318ff067: crates/bench/src/bin/ext_baselines.rs

crates/bench/src/bin/ext_baselines.rs:
