/root/repo/target/release/deps/table01_workloads-0442ab3d65fa1d67.d: crates/bench/src/bin/table01_workloads.rs

/root/repo/target/release/deps/table01_workloads-0442ab3d65fa1d67: crates/bench/src/bin/table01_workloads.rs

crates/bench/src/bin/table01_workloads.rs:
