/root/repo/target/release/deps/fig01_wasted_cycles-f584112c0d154d21.d: crates/bench/src/bin/fig01_wasted_cycles.rs

/root/repo/target/release/deps/fig01_wasted_cycles-f584112c0d154d21: crates/bench/src/bin/fig01_wasted_cycles.rs

crates/bench/src/bin/fig01_wasted_cycles.rs:
