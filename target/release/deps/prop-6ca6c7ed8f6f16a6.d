/root/repo/target/release/deps/prop-6ca6c7ed8f6f16a6.d: crates/bputil/tests/prop.rs

/root/repo/target/release/deps/prop-6ca6c7ed8f6f16a6: crates/bputil/tests/prop.rs

crates/bputil/tests/prop.rs:
