/root/repo/target/release/deps/table03_latency_energy-73e1095ffb266c47.d: crates/bench/src/bin/table03_latency_energy.rs

/root/repo/target/release/deps/table03_latency_energy-73e1095ffb266c47: crates/bench/src/bin/table03_latency_energy.rs

crates/bench/src/bin/table03_latency_energy.rs:
