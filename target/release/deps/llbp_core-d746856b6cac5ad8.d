/root/repo/target/release/deps/llbp_core-d746856b6cac5ad8.d: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs

/root/repo/target/release/deps/llbp_core-d746856b6cac5ad8: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/params.rs:
crates/core/src/pattern.rs:
crates/core/src/predictor.rs:
crates/core/src/prefetch.rs:
crates/core/src/rcr.rs:
crates/core/src/stats.rs:
