/root/repo/target/release/deps/fig11_bandwidth-48fd44f0e447cd52.d: crates/bench/src/bin/fig11_bandwidth.rs

/root/repo/target/release/deps/fig11_bandwidth-48fd44f0e447cd52: crates/bench/src/bin/fig11_bandwidth.rs

crates/bench/src/bin/fig11_bandwidth.rs:
