/root/repo/target/release/deps/fig09_mpki_reduction-b5482587e66ca06e.d: crates/bench/src/bin/fig09_mpki_reduction.rs

/root/repo/target/release/deps/fig09_mpki_reduction-b5482587e66ca06e: crates/bench/src/bin/fig09_mpki_reduction.rs

crates/bench/src/bin/fig09_mpki_reduction.rs:
