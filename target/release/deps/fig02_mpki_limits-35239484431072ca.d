/root/repo/target/release/deps/fig02_mpki_limits-35239484431072ca.d: crates/bench/src/bin/fig02_mpki_limits.rs

/root/repo/target/release/deps/fig02_mpki_limits-35239484431072ca: crates/bench/src/bin/fig02_mpki_limits.rs

crates/bench/src/bin/fig02_mpki_limits.rs:
