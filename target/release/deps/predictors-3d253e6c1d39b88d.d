/root/repo/target/release/deps/predictors-3d253e6c1d39b88d.d: crates/bench/benches/predictors.rs

/root/repo/target/release/deps/predictors-3d253e6c1d39b88d: crates/bench/benches/predictors.rs

crates/bench/benches/predictors.rs:
