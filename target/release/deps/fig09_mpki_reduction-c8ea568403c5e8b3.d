/root/repo/target/release/deps/fig09_mpki_reduction-c8ea568403c5e8b3.d: crates/bench/src/bin/fig09_mpki_reduction.rs

/root/repo/target/release/deps/fig09_mpki_reduction-c8ea568403c5e8b3: crates/bench/src/bin/fig09_mpki_reduction.rs

crates/bench/src/bin/fig09_mpki_reduction.rs:
