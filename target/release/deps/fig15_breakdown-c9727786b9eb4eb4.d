/root/repo/target/release/deps/fig15_breakdown-c9727786b9eb4eb4.d: crates/bench/src/bin/fig15_breakdown.rs

/root/repo/target/release/deps/fig15_breakdown-c9727786b9eb4eb4: crates/bench/src/bin/fig15_breakdown.rs

crates/bench/src/bin/fig15_breakdown.rs:
