/root/repo/target/release/deps/fig10_speedup-e2b6605f2a3a043a.d: crates/bench/src/bin/fig10_speedup.rs

/root/repo/target/release/deps/fig10_speedup-e2b6605f2a3a043a: crates/bench/src/bin/fig10_speedup.rs

crates/bench/src/bin/fig10_speedup.rs:
