/root/repo/target/release/deps/ablation_design-830d346a25a1d23a.d: crates/bench/src/bin/ablation_design.rs

/root/repo/target/release/deps/ablation_design-830d346a25a1d23a: crates/bench/src/bin/ablation_design.rs

crates/bench/src/bin/ablation_design.rs:
