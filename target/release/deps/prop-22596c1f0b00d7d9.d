/root/repo/target/release/deps/prop-22596c1f0b00d7d9.d: crates/trace/tests/prop.rs

/root/repo/target/release/deps/prop-22596c1f0b00d7d9: crates/trace/tests/prop.rs

crates/trace/tests/prop.rs:
