/root/repo/target/release/deps/fig12_energy-6aa8836295d15ab5.d: crates/bench/src/bin/fig12_energy.rs

/root/repo/target/release/deps/fig12_energy-6aa8836295d15ab5: crates/bench/src/bin/fig12_energy.rs

crates/bench/src/bin/fig12_energy.rs:
