/root/repo/target/release/deps/fig10_speedup-1fc76a72a73e5a7a.d: crates/bench/src/bin/fig10_speedup.rs

/root/repo/target/release/deps/fig10_speedup-1fc76a72a73e5a7a: crates/bench/src/bin/fig10_speedup.rs

crates/bench/src/bin/fig10_speedup.rs:
