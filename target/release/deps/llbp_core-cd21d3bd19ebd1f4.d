/root/repo/target/release/deps/llbp_core-cd21d3bd19ebd1f4.d: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libllbp_core-cd21d3bd19ebd1f4.rlib: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libllbp_core-cd21d3bd19ebd1f4.rmeta: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/params.rs:
crates/core/src/pattern.rs:
crates/core/src/predictor.rs:
crates/core/src/prefetch.rs:
crates/core/src/rcr.rs:
crates/core/src/stats.rs:
