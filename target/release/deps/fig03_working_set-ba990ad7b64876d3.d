/root/repo/target/release/deps/fig03_working_set-ba990ad7b64876d3.d: crates/bench/src/bin/fig03_working_set.rs

/root/repo/target/release/deps/fig03_working_set-ba990ad7b64876d3: crates/bench/src/bin/fig03_working_set.rs

crates/bench/src/bin/fig03_working_set.rs:
