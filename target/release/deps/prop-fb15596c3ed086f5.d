/root/repo/target/release/deps/prop-fb15596c3ed086f5.d: crates/core/tests/prop.rs

/root/repo/target/release/deps/prop-fb15596c3ed086f5: crates/core/tests/prop.rs

crates/core/tests/prop.rs:
