/root/repo/target/release/deps/table03_latency_energy-aa5225ca02760536.d: crates/bench/src/bin/table03_latency_energy.rs

/root/repo/target/release/deps/table03_latency_energy-aa5225ca02760536: crates/bench/src/bin/table03_latency_energy.rs

crates/bench/src/bin/table03_latency_energy.rs:
