/root/repo/target/release/deps/llbp_repro-289271c83719de96.d: src/lib.rs

/root/repo/target/release/deps/llbp_repro-289271c83719de96: src/lib.rs

src/lib.rs:
