/root/repo/target/release/deps/trace_tool-018bb29e529b7be0.d: crates/trace/src/bin/trace_tool.rs

/root/repo/target/release/deps/trace_tool-018bb29e529b7be0: crates/trace/src/bin/trace_tool.rs

crates/trace/src/bin/trace_tool.rs:
