/root/repo/target/release/deps/integration-1dc7c74e1024ea98.d: tests/integration.rs

/root/repo/target/release/deps/integration-1dc7c74e1024ea98: tests/integration.rs

tests/integration.rs:
