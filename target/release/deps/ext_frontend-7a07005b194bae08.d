/root/repo/target/release/deps/ext_frontend-7a07005b194bae08.d: crates/bench/src/bin/ext_frontend.rs

/root/repo/target/release/deps/ext_frontend-7a07005b194bae08: crates/bench/src/bin/ext_frontend.rs

crates/bench/src/bin/ext_frontend.rs:
