/root/repo/target/release/deps/engine_parity-ceea5b3e7cc80303.d: crates/sim/tests/engine_parity.rs

/root/repo/target/release/deps/engine_parity-ceea5b3e7cc80303: crates/sim/tests/engine_parity.rs

crates/sim/tests/engine_parity.rs:
