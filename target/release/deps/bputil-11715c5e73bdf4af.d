/root/repo/target/release/deps/bputil-11715c5e73bdf4af.d: crates/bputil/src/lib.rs crates/bputil/src/counter.rs crates/bputil/src/hash.rs crates/bputil/src/history.rs crates/bputil/src/rng.rs crates/bputil/src/stats.rs crates/bputil/src/table.rs

/root/repo/target/release/deps/libbputil-11715c5e73bdf4af.rlib: crates/bputil/src/lib.rs crates/bputil/src/counter.rs crates/bputil/src/hash.rs crates/bputil/src/history.rs crates/bputil/src/rng.rs crates/bputil/src/stats.rs crates/bputil/src/table.rs

/root/repo/target/release/deps/libbputil-11715c5e73bdf4af.rmeta: crates/bputil/src/lib.rs crates/bputil/src/counter.rs crates/bputil/src/hash.rs crates/bputil/src/history.rs crates/bputil/src/rng.rs crates/bputil/src/stats.rs crates/bputil/src/table.rs

crates/bputil/src/lib.rs:
crates/bputil/src/counter.rs:
crates/bputil/src/hash.rs:
crates/bputil/src/history.rs:
crates/bputil/src/rng.rs:
crates/bputil/src/stats.rs:
crates/bputil/src/table.rs:
