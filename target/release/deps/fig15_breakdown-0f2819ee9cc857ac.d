/root/repo/target/release/deps/fig15_breakdown-0f2819ee9cc857ac.d: crates/bench/src/bin/fig15_breakdown.rs

/root/repo/target/release/deps/fig15_breakdown-0f2819ee9cc857ac: crates/bench/src/bin/fig15_breakdown.rs

crates/bench/src/bin/fig15_breakdown.rs:
