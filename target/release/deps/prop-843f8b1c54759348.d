/root/repo/target/release/deps/prop-843f8b1c54759348.d: crates/tage/tests/prop.rs

/root/repo/target/release/deps/prop-843f8b1c54759348: crates/tage/tests/prop.rs

crates/tage/tests/prop.rs:
