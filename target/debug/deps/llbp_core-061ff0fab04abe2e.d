/root/repo/target/debug/deps/llbp_core-061ff0fab04abe2e.d: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libllbp_core-061ff0fab04abe2e.rmeta: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/params.rs:
crates/core/src/pattern.rs:
crates/core/src/predictor.rs:
crates/core/src/prefetch.rs:
crates/core/src/rcr.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
