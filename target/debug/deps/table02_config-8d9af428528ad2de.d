/root/repo/target/debug/deps/table02_config-8d9af428528ad2de.d: crates/bench/src/bin/table02_config.rs

/root/repo/target/debug/deps/table02_config-8d9af428528ad2de: crates/bench/src/bin/table02_config.rs

crates/bench/src/bin/table02_config.rs:
