/root/repo/target/debug/deps/fig05_context_locality-3c4853d8c020d093.d: crates/bench/src/bin/fig05_context_locality.rs

/root/repo/target/debug/deps/libfig05_context_locality-3c4853d8c020d093.rmeta: crates/bench/src/bin/fig05_context_locality.rs

crates/bench/src/bin/fig05_context_locality.rs:
