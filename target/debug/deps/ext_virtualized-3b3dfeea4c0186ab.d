/root/repo/target/debug/deps/ext_virtualized-3b3dfeea4c0186ab.d: crates/bench/src/bin/ext_virtualized.rs Cargo.toml

/root/repo/target/debug/deps/libext_virtualized-3b3dfeea4c0186ab.rmeta: crates/bench/src/bin/ext_virtualized.rs Cargo.toml

crates/bench/src/bin/ext_virtualized.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
