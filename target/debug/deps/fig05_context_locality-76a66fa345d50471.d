/root/repo/target/debug/deps/fig05_context_locality-76a66fa345d50471.d: crates/bench/src/bin/fig05_context_locality.rs

/root/repo/target/debug/deps/fig05_context_locality-76a66fa345d50471: crates/bench/src/bin/fig05_context_locality.rs

crates/bench/src/bin/fig05_context_locality.rs:
