/root/repo/target/debug/deps/table01_workloads-ac6706f6f04c0cb4.d: crates/bench/src/bin/table01_workloads.rs

/root/repo/target/debug/deps/libtable01_workloads-ac6706f6f04c0cb4.rmeta: crates/bench/src/bin/table01_workloads.rs

crates/bench/src/bin/table01_workloads.rs:
