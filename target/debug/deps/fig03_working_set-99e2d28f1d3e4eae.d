/root/repo/target/debug/deps/fig03_working_set-99e2d28f1d3e4eae.d: crates/bench/src/bin/fig03_working_set.rs

/root/repo/target/debug/deps/libfig03_working_set-99e2d28f1d3e4eae.rmeta: crates/bench/src/bin/fig03_working_set.rs

crates/bench/src/bin/fig03_working_set.rs:
