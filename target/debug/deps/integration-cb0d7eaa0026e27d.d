/root/repo/target/debug/deps/integration-cb0d7eaa0026e27d.d: tests/integration.rs

/root/repo/target/debug/deps/integration-cb0d7eaa0026e27d: tests/integration.rs

tests/integration.rs:
