/root/repo/target/debug/deps/fig05_context_locality-46c136e4acf5493f.d: crates/bench/src/bin/fig05_context_locality.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_context_locality-46c136e4acf5493f.rmeta: crates/bench/src/bin/fig05_context_locality.rs Cargo.toml

crates/bench/src/bin/fig05_context_locality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
