/root/repo/target/debug/deps/engine_parity-23d56e42148c1935.d: crates/sim/tests/engine_parity.rs

/root/repo/target/debug/deps/engine_parity-23d56e42148c1935: crates/sim/tests/engine_parity.rs

crates/sim/tests/engine_parity.rs:
