/root/repo/target/debug/deps/ext_baselines-728178cbe88712e6.d: crates/bench/src/bin/ext_baselines.rs

/root/repo/target/debug/deps/ext_baselines-728178cbe88712e6: crates/bench/src/bin/ext_baselines.rs

crates/bench/src/bin/ext_baselines.rs:
