/root/repo/target/debug/deps/fig15_breakdown-1f3224b5b046bb7b.d: crates/bench/src/bin/fig15_breakdown.rs

/root/repo/target/debug/deps/libfig15_breakdown-1f3224b5b046bb7b.rmeta: crates/bench/src/bin/fig15_breakdown.rs

crates/bench/src/bin/fig15_breakdown.rs:
