/root/repo/target/debug/deps/fig09_mpki_reduction-747ed917fed14fb6.d: crates/bench/src/bin/fig09_mpki_reduction.rs

/root/repo/target/debug/deps/fig09_mpki_reduction-747ed917fed14fb6: crates/bench/src/bin/fig09_mpki_reduction.rs

crates/bench/src/bin/fig09_mpki_reduction.rs:
