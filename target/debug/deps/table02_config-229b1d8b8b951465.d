/root/repo/target/debug/deps/table02_config-229b1d8b8b951465.d: crates/bench/src/bin/table02_config.rs

/root/repo/target/debug/deps/libtable02_config-229b1d8b8b951465.rmeta: crates/bench/src/bin/table02_config.rs

crates/bench/src/bin/table02_config.rs:
