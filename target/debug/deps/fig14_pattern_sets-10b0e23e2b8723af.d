/root/repo/target/debug/deps/fig14_pattern_sets-10b0e23e2b8723af.d: crates/bench/src/bin/fig14_pattern_sets.rs

/root/repo/target/debug/deps/libfig14_pattern_sets-10b0e23e2b8723af.rmeta: crates/bench/src/bin/fig14_pattern_sets.rs

crates/bench/src/bin/fig14_pattern_sets.rs:
