/root/repo/target/debug/deps/fig11_bandwidth-55a3bed723ade443.d: crates/bench/src/bin/fig11_bandwidth.rs

/root/repo/target/debug/deps/fig11_bandwidth-55a3bed723ade443: crates/bench/src/bin/fig11_bandwidth.rs

crates/bench/src/bin/fig11_bandwidth.rs:
