/root/repo/target/debug/deps/llbp_tage-db894309fcc93385.d: crates/tage/src/lib.rs crates/tage/src/btb.rs crates/tage/src/classic.rs crates/tage/src/config.rs crates/tage/src/frontend.rs crates/tage/src/ittage.rs crates/tage/src/loop_pred.rs crates/tage/src/predictor.rs crates/tage/src/ras.rs crates/tage/src/sc.rs crates/tage/src/tage.rs crates/tage/src/useful.rs crates/tage/src/tsl.rs Cargo.toml

/root/repo/target/debug/deps/libllbp_tage-db894309fcc93385.rmeta: crates/tage/src/lib.rs crates/tage/src/btb.rs crates/tage/src/classic.rs crates/tage/src/config.rs crates/tage/src/frontend.rs crates/tage/src/ittage.rs crates/tage/src/loop_pred.rs crates/tage/src/predictor.rs crates/tage/src/ras.rs crates/tage/src/sc.rs crates/tage/src/tage.rs crates/tage/src/useful.rs crates/tage/src/tsl.rs Cargo.toml

crates/tage/src/lib.rs:
crates/tage/src/btb.rs:
crates/tage/src/classic.rs:
crates/tage/src/config.rs:
crates/tage/src/frontend.rs:
crates/tage/src/ittage.rs:
crates/tage/src/loop_pred.rs:
crates/tage/src/predictor.rs:
crates/tage/src/ras.rs:
crates/tage/src/sc.rs:
crates/tage/src/tage.rs:
crates/tage/src/useful.rs:
crates/tage/src/tsl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
