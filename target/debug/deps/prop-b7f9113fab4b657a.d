/root/repo/target/debug/deps/prop-b7f9113fab4b657a.d: crates/core/tests/prop.rs

/root/repo/target/debug/deps/libprop-b7f9113fab4b657a.rmeta: crates/core/tests/prop.rs

crates/core/tests/prop.rs:
