/root/repo/target/debug/deps/fig14_pattern_sets-3f5e6d3a09a9898f.d: crates/bench/src/bin/fig14_pattern_sets.rs

/root/repo/target/debug/deps/fig14_pattern_sets-3f5e6d3a09a9898f: crates/bench/src/bin/fig14_pattern_sets.rs

crates/bench/src/bin/fig14_pattern_sets.rs:
