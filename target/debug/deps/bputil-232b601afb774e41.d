/root/repo/target/debug/deps/bputil-232b601afb774e41.d: crates/bputil/src/lib.rs crates/bputil/src/counter.rs crates/bputil/src/hash.rs crates/bputil/src/history.rs crates/bputil/src/rng.rs crates/bputil/src/stats.rs crates/bputil/src/table.rs

/root/repo/target/debug/deps/libbputil-232b601afb774e41.rmeta: crates/bputil/src/lib.rs crates/bputil/src/counter.rs crates/bputil/src/hash.rs crates/bputil/src/history.rs crates/bputil/src/rng.rs crates/bputil/src/stats.rs crates/bputil/src/table.rs

crates/bputil/src/lib.rs:
crates/bputil/src/counter.rs:
crates/bputil/src/hash.rs:
crates/bputil/src/history.rs:
crates/bputil/src/rng.rs:
crates/bputil/src/stats.rs:
crates/bputil/src/table.rs:
