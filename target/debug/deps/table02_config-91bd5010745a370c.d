/root/repo/target/debug/deps/table02_config-91bd5010745a370c.d: crates/bench/src/bin/table02_config.rs Cargo.toml

/root/repo/target/debug/deps/libtable02_config-91bd5010745a370c.rmeta: crates/bench/src/bin/table02_config.rs Cargo.toml

crates/bench/src/bin/table02_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
