/root/repo/target/debug/deps/fig11_bandwidth-5085009218568557.d: crates/bench/src/bin/fig11_bandwidth.rs

/root/repo/target/debug/deps/libfig11_bandwidth-5085009218568557.rmeta: crates/bench/src/bin/fig11_bandwidth.rs

crates/bench/src/bin/fig11_bandwidth.rs:
