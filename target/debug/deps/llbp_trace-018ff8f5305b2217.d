/root/repo/target/debug/deps/llbp_trace-018ff8f5305b2217.d: crates/trace/src/lib.rs crates/trace/src/fingerprint.rs crates/trace/src/io.rs crates/trace/src/record.rs crates/trace/src/stats.rs crates/trace/src/synth/mod.rs crates/trace/src/synth/behavior.rs crates/trace/src/synth/catalog.rs crates/trace/src/synth/program.rs Cargo.toml

/root/repo/target/debug/deps/libllbp_trace-018ff8f5305b2217.rmeta: crates/trace/src/lib.rs crates/trace/src/fingerprint.rs crates/trace/src/io.rs crates/trace/src/record.rs crates/trace/src/stats.rs crates/trace/src/synth/mod.rs crates/trace/src/synth/behavior.rs crates/trace/src/synth/catalog.rs crates/trace/src/synth/program.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/fingerprint.rs:
crates/trace/src/io.rs:
crates/trace/src/record.rs:
crates/trace/src/stats.rs:
crates/trace/src/synth/mod.rs:
crates/trace/src/synth/behavior.rs:
crates/trace/src/synth/catalog.rs:
crates/trace/src/synth/program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
