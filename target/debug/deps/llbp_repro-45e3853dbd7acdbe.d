/root/repo/target/debug/deps/llbp_repro-45e3853dbd7acdbe.d: src/lib.rs

/root/repo/target/debug/deps/libllbp_repro-45e3853dbd7acdbe.rlib: src/lib.rs

/root/repo/target/debug/deps/libllbp_repro-45e3853dbd7acdbe.rmeta: src/lib.rs

src/lib.rs:
