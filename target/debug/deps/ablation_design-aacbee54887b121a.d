/root/repo/target/debug/deps/ablation_design-aacbee54887b121a.d: crates/bench/src/bin/ablation_design.rs

/root/repo/target/debug/deps/ablation_design-aacbee54887b121a: crates/bench/src/bin/ablation_design.rs

crates/bench/src/bin/ablation_design.rs:
