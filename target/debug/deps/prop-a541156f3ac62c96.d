/root/repo/target/debug/deps/prop-a541156f3ac62c96.d: crates/trace/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-a541156f3ac62c96.rmeta: crates/trace/tests/prop.rs Cargo.toml

crates/trace/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
