/root/repo/target/debug/deps/cli-fe524fbabed84055.d: crates/trace/tests/cli.rs

/root/repo/target/debug/deps/cli-fe524fbabed84055: crates/trace/tests/cli.rs

crates/trace/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_trace_tool=/root/repo/target/debug/trace_tool
