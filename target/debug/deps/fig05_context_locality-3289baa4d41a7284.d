/root/repo/target/debug/deps/fig05_context_locality-3289baa4d41a7284.d: crates/bench/src/bin/fig05_context_locality.rs

/root/repo/target/debug/deps/libfig05_context_locality-3289baa4d41a7284.rmeta: crates/bench/src/bin/fig05_context_locality.rs

crates/bench/src/bin/fig05_context_locality.rs:
