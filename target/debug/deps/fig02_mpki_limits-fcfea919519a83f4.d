/root/repo/target/debug/deps/fig02_mpki_limits-fcfea919519a83f4.d: crates/bench/src/bin/fig02_mpki_limits.rs

/root/repo/target/debug/deps/fig02_mpki_limits-fcfea919519a83f4: crates/bench/src/bin/fig02_mpki_limits.rs

crates/bench/src/bin/fig02_mpki_limits.rs:
