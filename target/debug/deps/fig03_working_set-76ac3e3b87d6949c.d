/root/repo/target/debug/deps/fig03_working_set-76ac3e3b87d6949c.d: crates/bench/src/bin/fig03_working_set.rs

/root/repo/target/debug/deps/fig03_working_set-76ac3e3b87d6949c: crates/bench/src/bin/fig03_working_set.rs

crates/bench/src/bin/fig03_working_set.rs:
