/root/repo/target/debug/deps/predictors-9201b65b5d20b658.d: crates/bench/benches/predictors.rs

/root/repo/target/debug/deps/libpredictors-9201b65b5d20b658.rmeta: crates/bench/benches/predictors.rs

crates/bench/benches/predictors.rs:
