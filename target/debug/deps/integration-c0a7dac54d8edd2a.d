/root/repo/target/debug/deps/integration-c0a7dac54d8edd2a.d: tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-c0a7dac54d8edd2a.rmeta: tests/integration.rs Cargo.toml

tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
