/root/repo/target/debug/deps/bputil-e4edb908689ca881.d: crates/bputil/src/lib.rs crates/bputil/src/counter.rs crates/bputil/src/hash.rs crates/bputil/src/history.rs crates/bputil/src/rng.rs crates/bputil/src/stats.rs crates/bputil/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libbputil-e4edb908689ca881.rmeta: crates/bputil/src/lib.rs crates/bputil/src/counter.rs crates/bputil/src/hash.rs crates/bputil/src/history.rs crates/bputil/src/rng.rs crates/bputil/src/stats.rs crates/bputil/src/table.rs Cargo.toml

crates/bputil/src/lib.rs:
crates/bputil/src/counter.rs:
crates/bputil/src/hash.rs:
crates/bputil/src/history.rs:
crates/bputil/src/rng.rs:
crates/bputil/src/stats.rs:
crates/bputil/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
