/root/repo/target/debug/deps/fig13_cid_sensitivity-f4c207e8f3139f01.d: crates/bench/src/bin/fig13_cid_sensitivity.rs

/root/repo/target/debug/deps/libfig13_cid_sensitivity-f4c207e8f3139f01.rmeta: crates/bench/src/bin/fig13_cid_sensitivity.rs

crates/bench/src/bin/fig13_cid_sensitivity.rs:
