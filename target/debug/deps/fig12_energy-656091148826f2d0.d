/root/repo/target/debug/deps/fig12_energy-656091148826f2d0.d: crates/bench/src/bin/fig12_energy.rs

/root/repo/target/debug/deps/fig12_energy-656091148826f2d0: crates/bench/src/bin/fig12_energy.rs

crates/bench/src/bin/fig12_energy.rs:
