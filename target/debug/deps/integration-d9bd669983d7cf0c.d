/root/repo/target/debug/deps/integration-d9bd669983d7cf0c.d: tests/integration.rs

/root/repo/target/debug/deps/libintegration-d9bd669983d7cf0c.rmeta: tests/integration.rs

tests/integration.rs:
