/root/repo/target/debug/deps/fig11_bandwidth-39e85dfb09b19a16.d: crates/bench/src/bin/fig11_bandwidth.rs

/root/repo/target/debug/deps/libfig11_bandwidth-39e85dfb09b19a16.rmeta: crates/bench/src/bin/fig11_bandwidth.rs

crates/bench/src/bin/fig11_bandwidth.rs:
