/root/repo/target/debug/deps/llbp_repro-6e9171ab62540bec.d: src/lib.rs

/root/repo/target/debug/deps/libllbp_repro-6e9171ab62540bec.rmeta: src/lib.rs

src/lib.rs:
