/root/repo/target/debug/deps/prop-a3635d9d258bd2cd.d: crates/bputil/tests/prop.rs

/root/repo/target/debug/deps/libprop-a3635d9d258bd2cd.rmeta: crates/bputil/tests/prop.rs

crates/bputil/tests/prop.rs:
