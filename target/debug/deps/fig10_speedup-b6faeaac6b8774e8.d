/root/repo/target/debug/deps/fig10_speedup-b6faeaac6b8774e8.d: crates/bench/src/bin/fig10_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_speedup-b6faeaac6b8774e8.rmeta: crates/bench/src/bin/fig10_speedup.rs Cargo.toml

crates/bench/src/bin/fig10_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
