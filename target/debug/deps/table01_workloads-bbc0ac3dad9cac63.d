/root/repo/target/debug/deps/table01_workloads-bbc0ac3dad9cac63.d: crates/bench/src/bin/table01_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libtable01_workloads-bbc0ac3dad9cac63.rmeta: crates/bench/src/bin/table01_workloads.rs Cargo.toml

crates/bench/src/bin/table01_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
