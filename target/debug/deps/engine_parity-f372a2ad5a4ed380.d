/root/repo/target/debug/deps/engine_parity-f372a2ad5a4ed380.d: crates/sim/tests/engine_parity.rs Cargo.toml

/root/repo/target/debug/deps/libengine_parity-f372a2ad5a4ed380.rmeta: crates/sim/tests/engine_parity.rs Cargo.toml

crates/sim/tests/engine_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
