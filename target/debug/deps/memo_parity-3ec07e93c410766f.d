/root/repo/target/debug/deps/memo_parity-3ec07e93c410766f.d: crates/sim/tests/memo_parity.rs

/root/repo/target/debug/deps/libmemo_parity-3ec07e93c410766f.rmeta: crates/sim/tests/memo_parity.rs

crates/sim/tests/memo_parity.rs:
