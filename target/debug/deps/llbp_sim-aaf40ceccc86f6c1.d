/root/repo/target/debug/deps/llbp_sim-aaf40ceccc86f6c1.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/energy.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/faultinject.rs crates/sim/src/journal.rs crates/sim/src/l1i.rs crates/sim/src/memo.rs crates/sim/src/patterns.rs crates/sim/src/report.rs crates/sim/src/timing.rs

/root/repo/target/debug/deps/libllbp_sim-aaf40ceccc86f6c1.rmeta: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/energy.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/faultinject.rs crates/sim/src/journal.rs crates/sim/src/l1i.rs crates/sim/src/memo.rs crates/sim/src/patterns.rs crates/sim/src/report.rs crates/sim/src/timing.rs

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/config.rs:
crates/sim/src/driver.rs:
crates/sim/src/energy.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/faultinject.rs:
crates/sim/src/journal.rs:
crates/sim/src/l1i.rs:
crates/sim/src/memo.rs:
crates/sim/src/patterns.rs:
crates/sim/src/report.rs:
crates/sim/src/timing.rs:
