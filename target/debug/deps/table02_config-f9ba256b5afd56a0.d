/root/repo/target/debug/deps/table02_config-f9ba256b5afd56a0.d: crates/bench/src/bin/table02_config.rs

/root/repo/target/debug/deps/table02_config-f9ba256b5afd56a0: crates/bench/src/bin/table02_config.rs

crates/bench/src/bin/table02_config.rs:
