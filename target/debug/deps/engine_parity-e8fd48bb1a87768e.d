/root/repo/target/debug/deps/engine_parity-e8fd48bb1a87768e.d: crates/sim/tests/engine_parity.rs

/root/repo/target/debug/deps/libengine_parity-e8fd48bb1a87768e.rmeta: crates/sim/tests/engine_parity.rs

crates/sim/tests/engine_parity.rs:
