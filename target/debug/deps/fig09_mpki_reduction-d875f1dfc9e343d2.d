/root/repo/target/debug/deps/fig09_mpki_reduction-d875f1dfc9e343d2.d: crates/bench/src/bin/fig09_mpki_reduction.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_mpki_reduction-d875f1dfc9e343d2.rmeta: crates/bench/src/bin/fig09_mpki_reduction.rs Cargo.toml

crates/bench/src/bin/fig09_mpki_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
