/root/repo/target/debug/deps/speculation-82b2745bcc621c8d.d: tests/speculation.rs Cargo.toml

/root/repo/target/debug/deps/libspeculation-82b2745bcc621c8d.rmeta: tests/speculation.rs Cargo.toml

tests/speculation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
