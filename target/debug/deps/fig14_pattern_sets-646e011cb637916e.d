/root/repo/target/debug/deps/fig14_pattern_sets-646e011cb637916e.d: crates/bench/src/bin/fig14_pattern_sets.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_pattern_sets-646e011cb637916e.rmeta: crates/bench/src/bin/fig14_pattern_sets.rs Cargo.toml

crates/bench/src/bin/fig14_pattern_sets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
