/root/repo/target/debug/deps/trace_tool-e0c332c397ebedf2.d: crates/trace/src/bin/trace_tool.rs

/root/repo/target/debug/deps/libtrace_tool-e0c332c397ebedf2.rmeta: crates/trace/src/bin/trace_tool.rs

crates/trace/src/bin/trace_tool.rs:
