/root/repo/target/debug/deps/fig14_pattern_sets-b05f6588cb6f9328.d: crates/bench/src/bin/fig14_pattern_sets.rs

/root/repo/target/debug/deps/fig14_pattern_sets-b05f6588cb6f9328: crates/bench/src/bin/fig14_pattern_sets.rs

crates/bench/src/bin/fig14_pattern_sets.rs:
