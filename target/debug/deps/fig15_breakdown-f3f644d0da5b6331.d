/root/repo/target/debug/deps/fig15_breakdown-f3f644d0da5b6331.d: crates/bench/src/bin/fig15_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_breakdown-f3f644d0da5b6331.rmeta: crates/bench/src/bin/fig15_breakdown.rs Cargo.toml

crates/bench/src/bin/fig15_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
