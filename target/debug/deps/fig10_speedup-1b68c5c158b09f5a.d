/root/repo/target/debug/deps/fig10_speedup-1b68c5c158b09f5a.d: crates/bench/src/bin/fig10_speedup.rs

/root/repo/target/debug/deps/fig10_speedup-1b68c5c158b09f5a: crates/bench/src/bin/fig10_speedup.rs

crates/bench/src/bin/fig10_speedup.rs:
