/root/repo/target/debug/deps/table03_latency_energy-077af16ac2c20815.d: crates/bench/src/bin/table03_latency_energy.rs

/root/repo/target/debug/deps/libtable03_latency_energy-077af16ac2c20815.rmeta: crates/bench/src/bin/table03_latency_energy.rs

crates/bench/src/bin/table03_latency_energy.rs:
