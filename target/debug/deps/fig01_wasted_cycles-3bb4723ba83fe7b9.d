/root/repo/target/debug/deps/fig01_wasted_cycles-3bb4723ba83fe7b9.d: crates/bench/src/bin/fig01_wasted_cycles.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_wasted_cycles-3bb4723ba83fe7b9.rmeta: crates/bench/src/bin/fig01_wasted_cycles.rs Cargo.toml

crates/bench/src/bin/fig01_wasted_cycles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
