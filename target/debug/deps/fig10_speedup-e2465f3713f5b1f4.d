/root/repo/target/debug/deps/fig10_speedup-e2465f3713f5b1f4.d: crates/bench/src/bin/fig10_speedup.rs

/root/repo/target/debug/deps/libfig10_speedup-e2465f3713f5b1f4.rmeta: crates/bench/src/bin/fig10_speedup.rs

crates/bench/src/bin/fig10_speedup.rs:
