/root/repo/target/debug/deps/prop-836cf097a6a6dd64.d: crates/core/tests/prop.rs

/root/repo/target/debug/deps/prop-836cf097a6a6dd64: crates/core/tests/prop.rs

crates/core/tests/prop.rs:
