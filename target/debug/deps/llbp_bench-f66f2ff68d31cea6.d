/root/repo/target/debug/deps/llbp_bench-f66f2ff68d31cea6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libllbp_bench-f66f2ff68d31cea6.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libllbp_bench-f66f2ff68d31cea6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
