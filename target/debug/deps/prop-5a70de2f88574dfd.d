/root/repo/target/debug/deps/prop-5a70de2f88574dfd.d: crates/bputil/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-5a70de2f88574dfd.rmeta: crates/bputil/tests/prop.rs Cargo.toml

crates/bputil/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
