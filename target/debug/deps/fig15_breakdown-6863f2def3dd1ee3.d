/root/repo/target/debug/deps/fig15_breakdown-6863f2def3dd1ee3.d: crates/bench/src/bin/fig15_breakdown.rs

/root/repo/target/debug/deps/fig15_breakdown-6863f2def3dd1ee3: crates/bench/src/bin/fig15_breakdown.rs

crates/bench/src/bin/fig15_breakdown.rs:
