/root/repo/target/debug/deps/llbp_sim-8fd34c50a47cac04.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/energy.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/faultinject.rs crates/sim/src/journal.rs crates/sim/src/l1i.rs crates/sim/src/memo.rs crates/sim/src/patterns.rs crates/sim/src/report.rs crates/sim/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libllbp_sim-8fd34c50a47cac04.rmeta: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/energy.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/faultinject.rs crates/sim/src/journal.rs crates/sim/src/l1i.rs crates/sim/src/memo.rs crates/sim/src/patterns.rs crates/sim/src/report.rs crates/sim/src/timing.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/config.rs:
crates/sim/src/driver.rs:
crates/sim/src/energy.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/faultinject.rs:
crates/sim/src/journal.rs:
crates/sim/src/l1i.rs:
crates/sim/src/memo.rs:
crates/sim/src/patterns.rs:
crates/sim/src/report.rs:
crates/sim/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
