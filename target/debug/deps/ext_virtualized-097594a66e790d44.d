/root/repo/target/debug/deps/ext_virtualized-097594a66e790d44.d: crates/bench/src/bin/ext_virtualized.rs

/root/repo/target/debug/deps/libext_virtualized-097594a66e790d44.rmeta: crates/bench/src/bin/ext_virtualized.rs

crates/bench/src/bin/ext_virtualized.rs:
