/root/repo/target/debug/deps/fig03_working_set-b377b031deb5ae43.d: crates/bench/src/bin/fig03_working_set.rs

/root/repo/target/debug/deps/fig03_working_set-b377b031deb5ae43: crates/bench/src/bin/fig03_working_set.rs

crates/bench/src/bin/fig03_working_set.rs:
