/root/repo/target/debug/deps/fig12_energy-81a4b7e025c55891.d: crates/bench/src/bin/fig12_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_energy-81a4b7e025c55891.rmeta: crates/bench/src/bin/fig12_energy.rs Cargo.toml

crates/bench/src/bin/fig12_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
