/root/repo/target/debug/deps/table01_workloads-b1490e0ee2c1b750.d: crates/bench/src/bin/table01_workloads.rs

/root/repo/target/debug/deps/libtable01_workloads-b1490e0ee2c1b750.rmeta: crates/bench/src/bin/table01_workloads.rs

crates/bench/src/bin/table01_workloads.rs:
