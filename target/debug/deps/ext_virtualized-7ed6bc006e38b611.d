/root/repo/target/debug/deps/ext_virtualized-7ed6bc006e38b611.d: crates/bench/src/bin/ext_virtualized.rs

/root/repo/target/debug/deps/ext_virtualized-7ed6bc006e38b611: crates/bench/src/bin/ext_virtualized.rs

crates/bench/src/bin/ext_virtualized.rs:
