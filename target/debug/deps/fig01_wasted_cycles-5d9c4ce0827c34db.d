/root/repo/target/debug/deps/fig01_wasted_cycles-5d9c4ce0827c34db.d: crates/bench/src/bin/fig01_wasted_cycles.rs

/root/repo/target/debug/deps/fig01_wasted_cycles-5d9c4ce0827c34db: crates/bench/src/bin/fig01_wasted_cycles.rs

crates/bench/src/bin/fig01_wasted_cycles.rs:
