/root/repo/target/debug/deps/fig10_speedup-17bf00fc01939270.d: crates/bench/src/bin/fig10_speedup.rs

/root/repo/target/debug/deps/fig10_speedup-17bf00fc01939270: crates/bench/src/bin/fig10_speedup.rs

crates/bench/src/bin/fig10_speedup.rs:
