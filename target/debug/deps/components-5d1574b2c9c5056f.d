/root/repo/target/debug/deps/components-5d1574b2c9c5056f.d: crates/bench/benches/components.rs

/root/repo/target/debug/deps/libcomponents-5d1574b2c9c5056f.rmeta: crates/bench/benches/components.rs

crates/bench/benches/components.rs:
