/root/repo/target/debug/deps/table01_workloads-777875fde517c173.d: crates/bench/src/bin/table01_workloads.rs

/root/repo/target/debug/deps/table01_workloads-777875fde517c173: crates/bench/src/bin/table01_workloads.rs

crates/bench/src/bin/table01_workloads.rs:
