/root/repo/target/debug/deps/fig01_wasted_cycles-9738e7034922d59d.d: crates/bench/src/bin/fig01_wasted_cycles.rs

/root/repo/target/debug/deps/fig01_wasted_cycles-9738e7034922d59d: crates/bench/src/bin/fig01_wasted_cycles.rs

crates/bench/src/bin/fig01_wasted_cycles.rs:
