/root/repo/target/debug/deps/prop-f32a6f93c3aa9bf8.d: crates/bputil/tests/prop.rs

/root/repo/target/debug/deps/prop-f32a6f93c3aa9bf8: crates/bputil/tests/prop.rs

crates/bputil/tests/prop.rs:
