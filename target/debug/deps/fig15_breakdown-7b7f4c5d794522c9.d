/root/repo/target/debug/deps/fig15_breakdown-7b7f4c5d794522c9.d: crates/bench/src/bin/fig15_breakdown.rs

/root/repo/target/debug/deps/libfig15_breakdown-7b7f4c5d794522c9.rmeta: crates/bench/src/bin/fig15_breakdown.rs

crates/bench/src/bin/fig15_breakdown.rs:
