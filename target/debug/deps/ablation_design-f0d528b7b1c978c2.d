/root/repo/target/debug/deps/ablation_design-f0d528b7b1c978c2.d: crates/bench/src/bin/ablation_design.rs

/root/repo/target/debug/deps/ablation_design-f0d528b7b1c978c2: crates/bench/src/bin/ablation_design.rs

crates/bench/src/bin/ablation_design.rs:
