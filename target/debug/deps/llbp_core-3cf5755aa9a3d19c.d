/root/repo/target/debug/deps/llbp_core-3cf5755aa9a3d19c.d: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libllbp_core-3cf5755aa9a3d19c.rlib: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libllbp_core-3cf5755aa9a3d19c.rmeta: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/params.rs:
crates/core/src/pattern.rs:
crates/core/src/predictor.rs:
crates/core/src/prefetch.rs:
crates/core/src/rcr.rs:
crates/core/src/stats.rs:
