/root/repo/target/debug/deps/fig13_cid_sensitivity-0f008c0666f62dc0.d: crates/bench/src/bin/fig13_cid_sensitivity.rs

/root/repo/target/debug/deps/fig13_cid_sensitivity-0f008c0666f62dc0: crates/bench/src/bin/fig13_cid_sensitivity.rs

crates/bench/src/bin/fig13_cid_sensitivity.rs:
