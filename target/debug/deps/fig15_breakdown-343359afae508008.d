/root/repo/target/debug/deps/fig15_breakdown-343359afae508008.d: crates/bench/src/bin/fig15_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_breakdown-343359afae508008.rmeta: crates/bench/src/bin/fig15_breakdown.rs Cargo.toml

crates/bench/src/bin/fig15_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
