/root/repo/target/debug/deps/ext_frontend-e95761a0adf8ccf4.d: crates/bench/src/bin/ext_frontend.rs

/root/repo/target/debug/deps/libext_frontend-e95761a0adf8ccf4.rmeta: crates/bench/src/bin/ext_frontend.rs

crates/bench/src/bin/ext_frontend.rs:
