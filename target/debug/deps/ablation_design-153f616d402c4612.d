/root/repo/target/debug/deps/ablation_design-153f616d402c4612.d: crates/bench/src/bin/ablation_design.rs

/root/repo/target/debug/deps/libablation_design-153f616d402c4612.rmeta: crates/bench/src/bin/ablation_design.rs

crates/bench/src/bin/ablation_design.rs:
