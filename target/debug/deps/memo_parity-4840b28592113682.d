/root/repo/target/debug/deps/memo_parity-4840b28592113682.d: crates/sim/tests/memo_parity.rs

/root/repo/target/debug/deps/memo_parity-4840b28592113682: crates/sim/tests/memo_parity.rs

crates/sim/tests/memo_parity.rs:
