/root/repo/target/debug/deps/fig12_energy-57ea170ee8f56fc4.d: crates/bench/src/bin/fig12_energy.rs

/root/repo/target/debug/deps/libfig12_energy-57ea170ee8f56fc4.rmeta: crates/bench/src/bin/fig12_energy.rs

crates/bench/src/bin/fig12_energy.rs:
