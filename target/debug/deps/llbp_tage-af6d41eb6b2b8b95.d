/root/repo/target/debug/deps/llbp_tage-af6d41eb6b2b8b95.d: crates/tage/src/lib.rs crates/tage/src/btb.rs crates/tage/src/classic.rs crates/tage/src/config.rs crates/tage/src/frontend.rs crates/tage/src/ittage.rs crates/tage/src/loop_pred.rs crates/tage/src/predictor.rs crates/tage/src/ras.rs crates/tage/src/sc.rs crates/tage/src/tage.rs crates/tage/src/useful.rs crates/tage/src/tsl.rs

/root/repo/target/debug/deps/llbp_tage-af6d41eb6b2b8b95: crates/tage/src/lib.rs crates/tage/src/btb.rs crates/tage/src/classic.rs crates/tage/src/config.rs crates/tage/src/frontend.rs crates/tage/src/ittage.rs crates/tage/src/loop_pred.rs crates/tage/src/predictor.rs crates/tage/src/ras.rs crates/tage/src/sc.rs crates/tage/src/tage.rs crates/tage/src/useful.rs crates/tage/src/tsl.rs

crates/tage/src/lib.rs:
crates/tage/src/btb.rs:
crates/tage/src/classic.rs:
crates/tage/src/config.rs:
crates/tage/src/frontend.rs:
crates/tage/src/ittage.rs:
crates/tage/src/loop_pred.rs:
crates/tage/src/predictor.rs:
crates/tage/src/ras.rs:
crates/tage/src/sc.rs:
crates/tage/src/tage.rs:
crates/tage/src/useful.rs:
crates/tage/src/tsl.rs:
