/root/repo/target/debug/deps/fig13_cid_sensitivity-d659da8bee685651.d: crates/bench/src/bin/fig13_cid_sensitivity.rs

/root/repo/target/debug/deps/libfig13_cid_sensitivity-d659da8bee685651.rmeta: crates/bench/src/bin/fig13_cid_sensitivity.rs

crates/bench/src/bin/fig13_cid_sensitivity.rs:
