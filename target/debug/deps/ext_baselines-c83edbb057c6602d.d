/root/repo/target/debug/deps/ext_baselines-c83edbb057c6602d.d: crates/bench/src/bin/ext_baselines.rs

/root/repo/target/debug/deps/libext_baselines-c83edbb057c6602d.rmeta: crates/bench/src/bin/ext_baselines.rs

crates/bench/src/bin/ext_baselines.rs:
