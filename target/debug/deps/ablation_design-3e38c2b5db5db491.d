/root/repo/target/debug/deps/ablation_design-3e38c2b5db5db491.d: crates/bench/src/bin/ablation_design.rs Cargo.toml

/root/repo/target/debug/deps/libablation_design-3e38c2b5db5db491.rmeta: crates/bench/src/bin/ablation_design.rs Cargo.toml

crates/bench/src/bin/ablation_design.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
