/root/repo/target/debug/deps/llbp_bench-7754a93e2bd95fa9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/llbp_bench-7754a93e2bd95fa9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
