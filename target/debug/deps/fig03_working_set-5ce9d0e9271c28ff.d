/root/repo/target/debug/deps/fig03_working_set-5ce9d0e9271c28ff.d: crates/bench/src/bin/fig03_working_set.rs

/root/repo/target/debug/deps/libfig03_working_set-5ce9d0e9271c28ff.rmeta: crates/bench/src/bin/fig03_working_set.rs

crates/bench/src/bin/fig03_working_set.rs:
