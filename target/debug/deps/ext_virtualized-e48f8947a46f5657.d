/root/repo/target/debug/deps/ext_virtualized-e48f8947a46f5657.d: crates/bench/src/bin/ext_virtualized.rs Cargo.toml

/root/repo/target/debug/deps/libext_virtualized-e48f8947a46f5657.rmeta: crates/bench/src/bin/ext_virtualized.rs Cargo.toml

crates/bench/src/bin/ext_virtualized.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
