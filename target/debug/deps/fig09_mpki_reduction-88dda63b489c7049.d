/root/repo/target/debug/deps/fig09_mpki_reduction-88dda63b489c7049.d: crates/bench/src/bin/fig09_mpki_reduction.rs

/root/repo/target/debug/deps/libfig09_mpki_reduction-88dda63b489c7049.rmeta: crates/bench/src/bin/fig09_mpki_reduction.rs

crates/bench/src/bin/fig09_mpki_reduction.rs:
