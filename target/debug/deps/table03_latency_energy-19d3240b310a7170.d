/root/repo/target/debug/deps/table03_latency_energy-19d3240b310a7170.d: crates/bench/src/bin/table03_latency_energy.rs Cargo.toml

/root/repo/target/debug/deps/libtable03_latency_energy-19d3240b310a7170.rmeta: crates/bench/src/bin/table03_latency_energy.rs Cargo.toml

crates/bench/src/bin/table03_latency_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
