/root/repo/target/debug/deps/fig12_energy-d17211e1590c51e3.d: crates/bench/src/bin/fig12_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_energy-d17211e1590c51e3.rmeta: crates/bench/src/bin/fig12_energy.rs Cargo.toml

crates/bench/src/bin/fig12_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
