/root/repo/target/debug/deps/memo_parity-32379dc29ea01ed4.d: crates/sim/tests/memo_parity.rs Cargo.toml

/root/repo/target/debug/deps/libmemo_parity-32379dc29ea01ed4.rmeta: crates/sim/tests/memo_parity.rs Cargo.toml

crates/sim/tests/memo_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
