/root/repo/target/debug/deps/table03_latency_energy-9d300d9fbd71a558.d: crates/bench/src/bin/table03_latency_energy.rs

/root/repo/target/debug/deps/table03_latency_energy-9d300d9fbd71a558: crates/bench/src/bin/table03_latency_energy.rs

crates/bench/src/bin/table03_latency_energy.rs:
