/root/repo/target/debug/deps/bputil-c5b4bb380beb79d2.d: crates/bputil/src/lib.rs crates/bputil/src/counter.rs crates/bputil/src/hash.rs crates/bputil/src/history.rs crates/bputil/src/rng.rs crates/bputil/src/stats.rs crates/bputil/src/table.rs

/root/repo/target/debug/deps/libbputil-c5b4bb380beb79d2.rlib: crates/bputil/src/lib.rs crates/bputil/src/counter.rs crates/bputil/src/hash.rs crates/bputil/src/history.rs crates/bputil/src/rng.rs crates/bputil/src/stats.rs crates/bputil/src/table.rs

/root/repo/target/debug/deps/libbputil-c5b4bb380beb79d2.rmeta: crates/bputil/src/lib.rs crates/bputil/src/counter.rs crates/bputil/src/hash.rs crates/bputil/src/history.rs crates/bputil/src/rng.rs crates/bputil/src/stats.rs crates/bputil/src/table.rs

crates/bputil/src/lib.rs:
crates/bputil/src/counter.rs:
crates/bputil/src/hash.rs:
crates/bputil/src/history.rs:
crates/bputil/src/rng.rs:
crates/bputil/src/stats.rs:
crates/bputil/src/table.rs:
