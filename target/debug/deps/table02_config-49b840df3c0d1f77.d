/root/repo/target/debug/deps/table02_config-49b840df3c0d1f77.d: crates/bench/src/bin/table02_config.rs

/root/repo/target/debug/deps/libtable02_config-49b840df3c0d1f77.rmeta: crates/bench/src/bin/table02_config.rs

crates/bench/src/bin/table02_config.rs:
