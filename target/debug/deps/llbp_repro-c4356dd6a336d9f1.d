/root/repo/target/debug/deps/llbp_repro-c4356dd6a336d9f1.d: src/lib.rs

/root/repo/target/debug/deps/llbp_repro-c4356dd6a336d9f1: src/lib.rs

src/lib.rs:
