/root/repo/target/debug/deps/trace_tool-23c1f12d23b9bd35.d: crates/trace/src/bin/trace_tool.rs

/root/repo/target/debug/deps/trace_tool-23c1f12d23b9bd35: crates/trace/src/bin/trace_tool.rs

crates/trace/src/bin/trace_tool.rs:
