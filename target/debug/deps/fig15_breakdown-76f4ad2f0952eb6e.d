/root/repo/target/debug/deps/fig15_breakdown-76f4ad2f0952eb6e.d: crates/bench/src/bin/fig15_breakdown.rs

/root/repo/target/debug/deps/fig15_breakdown-76f4ad2f0952eb6e: crates/bench/src/bin/fig15_breakdown.rs

crates/bench/src/bin/fig15_breakdown.rs:
