/root/repo/target/debug/deps/llbp_repro-c1a97ec87738aa59.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libllbp_repro-c1a97ec87738aa59.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
