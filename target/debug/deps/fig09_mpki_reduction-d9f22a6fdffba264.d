/root/repo/target/debug/deps/fig09_mpki_reduction-d9f22a6fdffba264.d: crates/bench/src/bin/fig09_mpki_reduction.rs

/root/repo/target/debug/deps/libfig09_mpki_reduction-d9f22a6fdffba264.rmeta: crates/bench/src/bin/fig09_mpki_reduction.rs

crates/bench/src/bin/fig09_mpki_reduction.rs:
