/root/repo/target/debug/deps/ext_frontend-56751fc445550c32.d: crates/bench/src/bin/ext_frontend.rs Cargo.toml

/root/repo/target/debug/deps/libext_frontend-56751fc445550c32.rmeta: crates/bench/src/bin/ext_frontend.rs Cargo.toml

crates/bench/src/bin/ext_frontend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
