/root/repo/target/debug/deps/prop-7c8d227400d60a2f.d: crates/trace/tests/prop.rs

/root/repo/target/debug/deps/prop-7c8d227400d60a2f: crates/trace/tests/prop.rs

crates/trace/tests/prop.rs:
