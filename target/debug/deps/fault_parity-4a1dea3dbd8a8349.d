/root/repo/target/debug/deps/fault_parity-4a1dea3dbd8a8349.d: crates/sim/tests/fault_parity.rs Cargo.toml

/root/repo/target/debug/deps/libfault_parity-4a1dea3dbd8a8349.rmeta: crates/sim/tests/fault_parity.rs Cargo.toml

crates/sim/tests/fault_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
