/root/repo/target/debug/deps/table03_latency_energy-049643bfc70f46a8.d: crates/bench/src/bin/table03_latency_energy.rs

/root/repo/target/debug/deps/table03_latency_energy-049643bfc70f46a8: crates/bench/src/bin/table03_latency_energy.rs

crates/bench/src/bin/table03_latency_energy.rs:
