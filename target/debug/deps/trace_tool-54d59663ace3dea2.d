/root/repo/target/debug/deps/trace_tool-54d59663ace3dea2.d: crates/trace/src/bin/trace_tool.rs

/root/repo/target/debug/deps/trace_tool-54d59663ace3dea2: crates/trace/src/bin/trace_tool.rs

crates/trace/src/bin/trace_tool.rs:
