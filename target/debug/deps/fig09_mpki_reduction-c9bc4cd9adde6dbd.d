/root/repo/target/debug/deps/fig09_mpki_reduction-c9bc4cd9adde6dbd.d: crates/bench/src/bin/fig09_mpki_reduction.rs

/root/repo/target/debug/deps/fig09_mpki_reduction-c9bc4cd9adde6dbd: crates/bench/src/bin/fig09_mpki_reduction.rs

crates/bench/src/bin/fig09_mpki_reduction.rs:
