/root/repo/target/debug/deps/ext_frontend-8b3596ca0bebcae2.d: crates/bench/src/bin/ext_frontend.rs Cargo.toml

/root/repo/target/debug/deps/libext_frontend-8b3596ca0bebcae2.rmeta: crates/bench/src/bin/ext_frontend.rs Cargo.toml

crates/bench/src/bin/ext_frontend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
