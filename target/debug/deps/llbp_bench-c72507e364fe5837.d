/root/repo/target/debug/deps/llbp_bench-c72507e364fe5837.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libllbp_bench-c72507e364fe5837.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
