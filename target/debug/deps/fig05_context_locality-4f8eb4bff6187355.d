/root/repo/target/debug/deps/fig05_context_locality-4f8eb4bff6187355.d: crates/bench/src/bin/fig05_context_locality.rs

/root/repo/target/debug/deps/fig05_context_locality-4f8eb4bff6187355: crates/bench/src/bin/fig05_context_locality.rs

crates/bench/src/bin/fig05_context_locality.rs:
