/root/repo/target/debug/deps/llbp_trace-38b49493880b73c3.d: crates/trace/src/lib.rs crates/trace/src/fingerprint.rs crates/trace/src/io.rs crates/trace/src/record.rs crates/trace/src/stats.rs crates/trace/src/synth/mod.rs crates/trace/src/synth/behavior.rs crates/trace/src/synth/catalog.rs crates/trace/src/synth/program.rs

/root/repo/target/debug/deps/libllbp_trace-38b49493880b73c3.rmeta: crates/trace/src/lib.rs crates/trace/src/fingerprint.rs crates/trace/src/io.rs crates/trace/src/record.rs crates/trace/src/stats.rs crates/trace/src/synth/mod.rs crates/trace/src/synth/behavior.rs crates/trace/src/synth/catalog.rs crates/trace/src/synth/program.rs

crates/trace/src/lib.rs:
crates/trace/src/fingerprint.rs:
crates/trace/src/io.rs:
crates/trace/src/record.rs:
crates/trace/src/stats.rs:
crates/trace/src/synth/mod.rs:
crates/trace/src/synth/behavior.rs:
crates/trace/src/synth/catalog.rs:
crates/trace/src/synth/program.rs:
