/root/repo/target/debug/deps/ext_frontend-2ec84555a57d4ecd.d: crates/bench/src/bin/ext_frontend.rs

/root/repo/target/debug/deps/ext_frontend-2ec84555a57d4ecd: crates/bench/src/bin/ext_frontend.rs

crates/bench/src/bin/ext_frontend.rs:
