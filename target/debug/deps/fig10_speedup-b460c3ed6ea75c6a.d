/root/repo/target/debug/deps/fig10_speedup-b460c3ed6ea75c6a.d: crates/bench/src/bin/fig10_speedup.rs

/root/repo/target/debug/deps/libfig10_speedup-b460c3ed6ea75c6a.rmeta: crates/bench/src/bin/fig10_speedup.rs

crates/bench/src/bin/fig10_speedup.rs:
