/root/repo/target/debug/deps/fig11_bandwidth-f7149a67470a887d.d: crates/bench/src/bin/fig11_bandwidth.rs

/root/repo/target/debug/deps/fig11_bandwidth-f7149a67470a887d: crates/bench/src/bin/fig11_bandwidth.rs

crates/bench/src/bin/fig11_bandwidth.rs:
