/root/repo/target/debug/deps/fig12_energy-8353527cd38baf83.d: crates/bench/src/bin/fig12_energy.rs

/root/repo/target/debug/deps/fig12_energy-8353527cd38baf83: crates/bench/src/bin/fig12_energy.rs

crates/bench/src/bin/fig12_energy.rs:
