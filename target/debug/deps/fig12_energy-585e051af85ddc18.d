/root/repo/target/debug/deps/fig12_energy-585e051af85ddc18.d: crates/bench/src/bin/fig12_energy.rs

/root/repo/target/debug/deps/libfig12_energy-585e051af85ddc18.rmeta: crates/bench/src/bin/fig12_energy.rs

crates/bench/src/bin/fig12_energy.rs:
