/root/repo/target/debug/deps/llbp_bench-ee3596333598e4bf.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libllbp_bench-ee3596333598e4bf.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
