/root/repo/target/debug/deps/fault_parity-d052bab2b9e97291.d: crates/sim/tests/fault_parity.rs

/root/repo/target/debug/deps/fault_parity-d052bab2b9e97291: crates/sim/tests/fault_parity.rs

crates/sim/tests/fault_parity.rs:
