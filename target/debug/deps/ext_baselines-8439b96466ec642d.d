/root/repo/target/debug/deps/ext_baselines-8439b96466ec642d.d: crates/bench/src/bin/ext_baselines.rs Cargo.toml

/root/repo/target/debug/deps/libext_baselines-8439b96466ec642d.rmeta: crates/bench/src/bin/ext_baselines.rs Cargo.toml

crates/bench/src/bin/ext_baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
