/root/repo/target/debug/deps/fig01_wasted_cycles-3ddba52800714edd.d: crates/bench/src/bin/fig01_wasted_cycles.rs

/root/repo/target/debug/deps/libfig01_wasted_cycles-3ddba52800714edd.rmeta: crates/bench/src/bin/fig01_wasted_cycles.rs

crates/bench/src/bin/fig01_wasted_cycles.rs:
