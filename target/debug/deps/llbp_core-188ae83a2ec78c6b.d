/root/repo/target/debug/deps/llbp_core-188ae83a2ec78c6b.d: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libllbp_core-188ae83a2ec78c6b.rmeta: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/params.rs:
crates/core/src/pattern.rs:
crates/core/src/predictor.rs:
crates/core/src/prefetch.rs:
crates/core/src/rcr.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
