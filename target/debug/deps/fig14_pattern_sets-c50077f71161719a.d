/root/repo/target/debug/deps/fig14_pattern_sets-c50077f71161719a.d: crates/bench/src/bin/fig14_pattern_sets.rs

/root/repo/target/debug/deps/libfig14_pattern_sets-c50077f71161719a.rmeta: crates/bench/src/bin/fig14_pattern_sets.rs

crates/bench/src/bin/fig14_pattern_sets.rs:
