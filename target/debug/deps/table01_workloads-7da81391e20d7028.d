/root/repo/target/debug/deps/table01_workloads-7da81391e20d7028.d: crates/bench/src/bin/table01_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libtable01_workloads-7da81391e20d7028.rmeta: crates/bench/src/bin/table01_workloads.rs Cargo.toml

crates/bench/src/bin/table01_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
