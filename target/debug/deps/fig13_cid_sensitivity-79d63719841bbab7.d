/root/repo/target/debug/deps/fig13_cid_sensitivity-79d63719841bbab7.d: crates/bench/src/bin/fig13_cid_sensitivity.rs

/root/repo/target/debug/deps/fig13_cid_sensitivity-79d63719841bbab7: crates/bench/src/bin/fig13_cid_sensitivity.rs

crates/bench/src/bin/fig13_cid_sensitivity.rs:
