/root/repo/target/debug/deps/fig01_wasted_cycles-18c14a4a4e565c94.d: crates/bench/src/bin/fig01_wasted_cycles.rs

/root/repo/target/debug/deps/libfig01_wasted_cycles-18c14a4a4e565c94.rmeta: crates/bench/src/bin/fig01_wasted_cycles.rs

crates/bench/src/bin/fig01_wasted_cycles.rs:
