/root/repo/target/debug/deps/table01_workloads-72d9dd147c1a38b6.d: crates/bench/src/bin/table01_workloads.rs

/root/repo/target/debug/deps/table01_workloads-72d9dd147c1a38b6: crates/bench/src/bin/table01_workloads.rs

crates/bench/src/bin/table01_workloads.rs:
