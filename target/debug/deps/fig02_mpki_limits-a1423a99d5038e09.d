/root/repo/target/debug/deps/fig02_mpki_limits-a1423a99d5038e09.d: crates/bench/src/bin/fig02_mpki_limits.rs

/root/repo/target/debug/deps/fig02_mpki_limits-a1423a99d5038e09: crates/bench/src/bin/fig02_mpki_limits.rs

crates/bench/src/bin/fig02_mpki_limits.rs:
