/root/repo/target/debug/deps/fig02_mpki_limits-cc8fe1dabd6288d0.d: crates/bench/src/bin/fig02_mpki_limits.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_mpki_limits-cc8fe1dabd6288d0.rmeta: crates/bench/src/bin/fig02_mpki_limits.rs Cargo.toml

crates/bench/src/bin/fig02_mpki_limits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
