/root/repo/target/debug/deps/speculation-ceb6bb3f41e5ec58.d: tests/speculation.rs

/root/repo/target/debug/deps/libspeculation-ceb6bb3f41e5ec58.rmeta: tests/speculation.rs

tests/speculation.rs:
