/root/repo/target/debug/deps/llbp_core-c70d62468b94ee04.d: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libllbp_core-c70d62468b94ee04.rmeta: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/params.rs:
crates/core/src/pattern.rs:
crates/core/src/predictor.rs:
crates/core/src/prefetch.rs:
crates/core/src/rcr.rs:
crates/core/src/stats.rs:
