/root/repo/target/debug/deps/cli-05011e99c67c6808.d: crates/trace/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-05011e99c67c6808.rmeta: crates/trace/tests/cli.rs Cargo.toml

crates/trace/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_trace_tool=placeholder:trace_tool
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
