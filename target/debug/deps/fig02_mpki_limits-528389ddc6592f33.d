/root/repo/target/debug/deps/fig02_mpki_limits-528389ddc6592f33.d: crates/bench/src/bin/fig02_mpki_limits.rs

/root/repo/target/debug/deps/libfig02_mpki_limits-528389ddc6592f33.rmeta: crates/bench/src/bin/fig02_mpki_limits.rs

crates/bench/src/bin/fig02_mpki_limits.rs:
