/root/repo/target/debug/deps/fig13_cid_sensitivity-7fd73ab3077ac06d.d: crates/bench/src/bin/fig13_cid_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_cid_sensitivity-7fd73ab3077ac06d.rmeta: crates/bench/src/bin/fig13_cid_sensitivity.rs Cargo.toml

crates/bench/src/bin/fig13_cid_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
