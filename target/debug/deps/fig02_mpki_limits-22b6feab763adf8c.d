/root/repo/target/debug/deps/fig02_mpki_limits-22b6feab763adf8c.d: crates/bench/src/bin/fig02_mpki_limits.rs

/root/repo/target/debug/deps/libfig02_mpki_limits-22b6feab763adf8c.rmeta: crates/bench/src/bin/fig02_mpki_limits.rs

crates/bench/src/bin/fig02_mpki_limits.rs:
