/root/repo/target/debug/deps/prop-cc6ea19c4dd18580.d: crates/trace/tests/prop.rs

/root/repo/target/debug/deps/libprop-cc6ea19c4dd18580.rmeta: crates/trace/tests/prop.rs

crates/trace/tests/prop.rs:
