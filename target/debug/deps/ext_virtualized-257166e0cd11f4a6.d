/root/repo/target/debug/deps/ext_virtualized-257166e0cd11f4a6.d: crates/bench/src/bin/ext_virtualized.rs

/root/repo/target/debug/deps/ext_virtualized-257166e0cd11f4a6: crates/bench/src/bin/ext_virtualized.rs

crates/bench/src/bin/ext_virtualized.rs:
