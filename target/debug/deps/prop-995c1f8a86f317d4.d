/root/repo/target/debug/deps/prop-995c1f8a86f317d4.d: crates/tage/tests/prop.rs

/root/repo/target/debug/deps/prop-995c1f8a86f317d4: crates/tage/tests/prop.rs

crates/tage/tests/prop.rs:
