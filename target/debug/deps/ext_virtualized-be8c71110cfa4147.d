/root/repo/target/debug/deps/ext_virtualized-be8c71110cfa4147.d: crates/bench/src/bin/ext_virtualized.rs

/root/repo/target/debug/deps/libext_virtualized-be8c71110cfa4147.rmeta: crates/bench/src/bin/ext_virtualized.rs

crates/bench/src/bin/ext_virtualized.rs:
