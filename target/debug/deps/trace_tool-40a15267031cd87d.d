/root/repo/target/debug/deps/trace_tool-40a15267031cd87d.d: crates/trace/src/bin/trace_tool.rs

/root/repo/target/debug/deps/libtrace_tool-40a15267031cd87d.rmeta: crates/trace/src/bin/trace_tool.rs

crates/trace/src/bin/trace_tool.rs:
