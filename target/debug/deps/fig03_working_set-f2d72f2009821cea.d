/root/repo/target/debug/deps/fig03_working_set-f2d72f2009821cea.d: crates/bench/src/bin/fig03_working_set.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_working_set-f2d72f2009821cea.rmeta: crates/bench/src/bin/fig03_working_set.rs Cargo.toml

crates/bench/src/bin/fig03_working_set.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
