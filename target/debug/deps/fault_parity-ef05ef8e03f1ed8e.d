/root/repo/target/debug/deps/fault_parity-ef05ef8e03f1ed8e.d: crates/sim/tests/fault_parity.rs

/root/repo/target/debug/deps/libfault_parity-ef05ef8e03f1ed8e.rmeta: crates/sim/tests/fault_parity.rs

crates/sim/tests/fault_parity.rs:
