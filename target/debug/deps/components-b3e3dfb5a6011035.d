/root/repo/target/debug/deps/components-b3e3dfb5a6011035.d: crates/bench/benches/components.rs Cargo.toml

/root/repo/target/debug/deps/libcomponents-b3e3dfb5a6011035.rmeta: crates/bench/benches/components.rs Cargo.toml

crates/bench/benches/components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
