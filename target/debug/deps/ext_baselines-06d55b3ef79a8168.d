/root/repo/target/debug/deps/ext_baselines-06d55b3ef79a8168.d: crates/bench/src/bin/ext_baselines.rs

/root/repo/target/debug/deps/ext_baselines-06d55b3ef79a8168: crates/bench/src/bin/ext_baselines.rs

crates/bench/src/bin/ext_baselines.rs:
