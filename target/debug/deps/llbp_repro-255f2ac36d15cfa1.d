/root/repo/target/debug/deps/llbp_repro-255f2ac36d15cfa1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libllbp_repro-255f2ac36d15cfa1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
