/root/repo/target/debug/deps/trace_tool-2f67007377fb5551.d: crates/trace/src/bin/trace_tool.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_tool-2f67007377fb5551.rmeta: crates/trace/src/bin/trace_tool.rs Cargo.toml

crates/trace/src/bin/trace_tool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
