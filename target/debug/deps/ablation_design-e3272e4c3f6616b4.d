/root/repo/target/debug/deps/ablation_design-e3272e4c3f6616b4.d: crates/bench/src/bin/ablation_design.rs

/root/repo/target/debug/deps/libablation_design-e3272e4c3f6616b4.rmeta: crates/bench/src/bin/ablation_design.rs

crates/bench/src/bin/ablation_design.rs:
