/root/repo/target/debug/deps/prop-66a079720d643e0b.d: crates/tage/tests/prop.rs

/root/repo/target/debug/deps/libprop-66a079720d643e0b.rmeta: crates/tage/tests/prop.rs

crates/tage/tests/prop.rs:
