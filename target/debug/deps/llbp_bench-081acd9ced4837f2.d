/root/repo/target/debug/deps/llbp_bench-081acd9ced4837f2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libllbp_bench-081acd9ced4837f2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
