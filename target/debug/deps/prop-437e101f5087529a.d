/root/repo/target/debug/deps/prop-437e101f5087529a.d: crates/tage/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-437e101f5087529a.rmeta: crates/tage/tests/prop.rs Cargo.toml

crates/tage/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
