/root/repo/target/debug/deps/ext_frontend-9b3b2af773c455dc.d: crates/bench/src/bin/ext_frontend.rs

/root/repo/target/debug/deps/ext_frontend-9b3b2af773c455dc: crates/bench/src/bin/ext_frontend.rs

crates/bench/src/bin/ext_frontend.rs:
