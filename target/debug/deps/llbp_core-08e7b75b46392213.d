/root/repo/target/debug/deps/llbp_core-08e7b75b46392213.d: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/llbp_core-08e7b75b46392213: crates/core/src/lib.rs crates/core/src/params.rs crates/core/src/pattern.rs crates/core/src/predictor.rs crates/core/src/prefetch.rs crates/core/src/rcr.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/params.rs:
crates/core/src/pattern.rs:
crates/core/src/predictor.rs:
crates/core/src/prefetch.rs:
crates/core/src/rcr.rs:
crates/core/src/stats.rs:
