/root/repo/target/debug/deps/ext_frontend-6a41d1818eb2f3a4.d: crates/bench/src/bin/ext_frontend.rs

/root/repo/target/debug/deps/libext_frontend-6a41d1818eb2f3a4.rmeta: crates/bench/src/bin/ext_frontend.rs

crates/bench/src/bin/ext_frontend.rs:
