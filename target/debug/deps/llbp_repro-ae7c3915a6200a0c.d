/root/repo/target/debug/deps/llbp_repro-ae7c3915a6200a0c.d: src/lib.rs

/root/repo/target/debug/deps/libllbp_repro-ae7c3915a6200a0c.rmeta: src/lib.rs

src/lib.rs:
