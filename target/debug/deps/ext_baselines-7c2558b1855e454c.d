/root/repo/target/debug/deps/ext_baselines-7c2558b1855e454c.d: crates/bench/src/bin/ext_baselines.rs

/root/repo/target/debug/deps/libext_baselines-7c2558b1855e454c.rmeta: crates/bench/src/bin/ext_baselines.rs

crates/bench/src/bin/ext_baselines.rs:
