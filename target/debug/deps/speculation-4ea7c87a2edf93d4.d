/root/repo/target/debug/deps/speculation-4ea7c87a2edf93d4.d: tests/speculation.rs

/root/repo/target/debug/deps/speculation-4ea7c87a2edf93d4: tests/speculation.rs

tests/speculation.rs:
