/root/repo/target/debug/deps/cli-04e9107567f99917.d: crates/trace/tests/cli.rs

/root/repo/target/debug/deps/libcli-04e9107567f99917.rmeta: crates/trace/tests/cli.rs

crates/trace/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_trace_tool=placeholder:trace_tool
