/root/repo/target/debug/deps/table03_latency_energy-e000823029a31ae8.d: crates/bench/src/bin/table03_latency_energy.rs

/root/repo/target/debug/deps/libtable03_latency_energy-e000823029a31ae8.rmeta: crates/bench/src/bin/table03_latency_energy.rs

crates/bench/src/bin/table03_latency_energy.rs:
