/root/repo/target/debug/deps/fig09_mpki_reduction-06b714eabfcbade6.d: crates/bench/src/bin/fig09_mpki_reduction.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_mpki_reduction-06b714eabfcbade6.rmeta: crates/bench/src/bin/fig09_mpki_reduction.rs Cargo.toml

crates/bench/src/bin/fig09_mpki_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
