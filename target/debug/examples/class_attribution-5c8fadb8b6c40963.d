/root/repo/target/debug/examples/class_attribution-5c8fadb8b6c40963.d: crates/tage/examples/class_attribution.rs

/root/repo/target/debug/examples/libclass_attribution-5c8fadb8b6c40963.rmeta: crates/tage/examples/class_attribution.rs

crates/tage/examples/class_attribution.rs:
