/root/repo/target/debug/examples/custom_predictor-9fd6744285a184c0.d: examples/custom_predictor.rs

/root/repo/target/debug/examples/custom_predictor-9fd6744285a184c0: examples/custom_predictor.rs

examples/custom_predictor.rs:
