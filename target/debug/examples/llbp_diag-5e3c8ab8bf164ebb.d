/root/repo/target/debug/examples/llbp_diag-5e3c8ab8bf164ebb.d: crates/bench/examples/llbp_diag.rs

/root/repo/target/debug/examples/llbp_diag-5e3c8ab8bf164ebb: crates/bench/examples/llbp_diag.rs

crates/bench/examples/llbp_diag.rs:
