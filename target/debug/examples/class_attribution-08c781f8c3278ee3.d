/root/repo/target/debug/examples/class_attribution-08c781f8c3278ee3.d: crates/tage/examples/class_attribution.rs

/root/repo/target/debug/examples/class_attribution-08c781f8c3278ee3: crates/tage/examples/class_attribution.rs

crates/tage/examples/class_attribution.rs:
