/root/repo/target/debug/examples/ratio_check-0c0eaf9ffad03b31.d: crates/trace/examples/ratio_check.rs

/root/repo/target/debug/examples/ratio_check-0c0eaf9ffad03b31: crates/trace/examples/ratio_check.rs

crates/trace/examples/ratio_check.rs:
