/root/repo/target/debug/examples/design_space-8cd2387b539955d8.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-8cd2387b539955d8: examples/design_space.rs

examples/design_space.rs:
