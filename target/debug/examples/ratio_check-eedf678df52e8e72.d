/root/repo/target/debug/examples/ratio_check-eedf678df52e8e72.d: crates/trace/examples/ratio_check.rs

/root/repo/target/debug/examples/libratio_check-eedf678df52e8e72.rmeta: crates/trace/examples/ratio_check.rs

crates/trace/examples/ratio_check.rs:
