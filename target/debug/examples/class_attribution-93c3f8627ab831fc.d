/root/repo/target/debug/examples/class_attribution-93c3f8627ab831fc.d: crates/tage/examples/class_attribution.rs Cargo.toml

/root/repo/target/debug/examples/libclass_attribution-93c3f8627ab831fc.rmeta: crates/tage/examples/class_attribution.rs Cargo.toml

crates/tage/examples/class_attribution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
