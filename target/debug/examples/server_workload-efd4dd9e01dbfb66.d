/root/repo/target/debug/examples/server_workload-efd4dd9e01dbfb66.d: examples/server_workload.rs Cargo.toml

/root/repo/target/debug/examples/libserver_workload-efd4dd9e01dbfb66.rmeta: examples/server_workload.rs Cargo.toml

examples/server_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
