/root/repo/target/debug/examples/quickstart-c3f385444663cbde.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-c3f385444663cbde.rmeta: examples/quickstart.rs

examples/quickstart.rs:
