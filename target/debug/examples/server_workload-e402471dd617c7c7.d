/root/repo/target/debug/examples/server_workload-e402471dd617c7c7.d: examples/server_workload.rs

/root/repo/target/debug/examples/server_workload-e402471dd617c7c7: examples/server_workload.rs

examples/server_workload.rs:
