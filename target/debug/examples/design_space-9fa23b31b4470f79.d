/root/repo/target/debug/examples/design_space-9fa23b31b4470f79.d: examples/design_space.rs

/root/repo/target/debug/examples/libdesign_space-9fa23b31b4470f79.rmeta: examples/design_space.rs

examples/design_space.rs:
