/root/repo/target/debug/examples/llbp_diag-aa4d2da322972cf4.d: crates/bench/examples/llbp_diag.rs

/root/repo/target/debug/examples/libllbp_diag-aa4d2da322972cf4.rmeta: crates/bench/examples/llbp_diag.rs

crates/bench/examples/llbp_diag.rs:
