/root/repo/target/debug/examples/server_workload-49bdafebd7435b99.d: examples/server_workload.rs

/root/repo/target/debug/examples/libserver_workload-49bdafebd7435b99.rmeta: examples/server_workload.rs

examples/server_workload.rs:
