/root/repo/target/debug/examples/ratio_check-779be54a7b94232f.d: crates/trace/examples/ratio_check.rs Cargo.toml

/root/repo/target/debug/examples/libratio_check-779be54a7b94232f.rmeta: crates/trace/examples/ratio_check.rs Cargo.toml

crates/trace/examples/ratio_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
