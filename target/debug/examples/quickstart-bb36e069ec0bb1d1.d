/root/repo/target/debug/examples/quickstart-bb36e069ec0bb1d1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bb36e069ec0bb1d1: examples/quickstart.rs

examples/quickstart.rs:
