/root/repo/target/debug/examples/llbp_diag-e8eefb779d0c09f9.d: crates/bench/examples/llbp_diag.rs Cargo.toml

/root/repo/target/debug/examples/libllbp_diag-e8eefb779d0c09f9.rmeta: crates/bench/examples/llbp_diag.rs Cargo.toml

crates/bench/examples/llbp_diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
