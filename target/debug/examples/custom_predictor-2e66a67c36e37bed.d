/root/repo/target/debug/examples/custom_predictor-2e66a67c36e37bed.d: examples/custom_predictor.rs

/root/repo/target/debug/examples/libcustom_predictor-2e66a67c36e37bed.rmeta: examples/custom_predictor.rs

examples/custom_predictor.rs:
