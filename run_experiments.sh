#!/bin/bash
# Regenerates every table and figure of the paper into results/.
# Usage: ./run_experiments.sh [--quick] [--cold] [--resume] [extra bench args...]
# Exits non-zero if any binary failed, after running all of them.
# Every sweep binary runs --strict, so a figure with any ultimately-failed
# grid cell counts as a failed binary; rerun with --resume to fill gaps.
# Every binary also runs observed: per-figure Chrome trace-event files and
# Prometheus snapshots land under results/telemetry/ (summarize one with
# `cargo run -p llbp-obs --bin obs_tool -- summarize results/telemetry/<b>.trace.json`).
set -u
cd "$(dirname "$0")"
mkdir -p results/telemetry
BINS="table01_workloads table02_config table03_latency_energy \
      fig01_wasted_cycles fig02_mpki_limits fig09_mpki_reduction fig10_speedup \
      fig15_breakdown fig11_bandwidth fig12_energy fig03_working_set \
      fig05_context_locality ext_frontend ablation_design ext_virtualized \
      ext_baselines \
      fig13_cid_sensitivity fig14_pattern_sets"
FAILED=0
for b in $BINS; do
    echo "=== $b $(date +%H:%M:%S)"
    cargo run --release -q -p llbp-bench --bin "$b" -- --strict \
        --trace-events "results/telemetry/$b.trace.json" \
        --metrics-out "results/telemetry/$b.prom" \
        "$@" > "results/$b.md" 2>"results/$b.err" \
        || { echo "FAILED: $b"; FAILED=$((FAILED + 1)); }
done
if [ "$FAILED" -ne 0 ]; then
    echo "CAMPAIGN_FAILED: $FAILED binaries failed $(date +%H:%M:%S)"
    exit 1
fi
echo "CAMPAIGN_DONE $(date +%H:%M:%S)"
