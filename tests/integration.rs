//! Cross-crate integration tests: end-to-end invariants the paper's
//! evaluation relies on, exercised through the public API of the umbrella
//! crate.

use llbp_repro::llbp::{LlbpParams, LlbpPredictor};
use llbp_repro::prelude::*;
use llbp_repro::sim::patterns::{rank_by_mispredictions, useful_patterns_per_context};
use llbp_repro::sim::{EnergyModel, TimingModel};
use llbp_repro::trace::{read_trace, write_trace};

fn trace_for(w: Workload, n: usize) -> llbp_repro::trace::Trace {
    WorkloadSpec::named(w).with_branches(n).generate()
}

#[test]
fn capacity_ordering_holds() {
    // Inf TSL <= 512K TSL <= 64K TSL in mispredictions (with a small
    // tolerance — replacement noise can perturb individual runs).
    for w in [Workload::NodeApp, Workload::Kafka] {
        let trace = trace_for(w, 150_000);
        let cfg = SimConfig::default();
        let base = cfg.run(PredictorKind::Tsl64K, &trace);
        let big = cfg.run(PredictorKind::TslScaled(8), &trace);
        let inf = cfg.run(PredictorKind::InfTsl, &trace);
        assert!(
            big.mispredictions as f64 <= base.mispredictions as f64 * 1.02,
            "{w}: 512K ({}) should not lose to 64K ({})",
            big.mispredictions,
            base.mispredictions
        );
        assert!(
            inf.mispredictions as f64 <= big.mispredictions as f64 * 1.05,
            "{w}: Inf ({}) should not lose to 512K ({})",
            inf.mispredictions,
            big.mispredictions
        );
    }
}

#[test]
fn llbp_helps_context_heavy_workloads() {
    let trace = trace_for(Workload::Merced, 300_000);
    let cfg = SimConfig::default();
    let base = cfg.run(PredictorKind::Tsl64K, &trace);
    let llbp = cfg.run(PredictorKind::Llbp(LlbpParams::default()), &trace);
    assert!(
        llbp.mispredictions < base.mispredictions,
        "LLBP ({}) must beat the baseline ({}) on Merced",
        llbp.mispredictions,
        base.mispredictions
    );
}

#[test]
fn end_to_end_determinism() {
    let run = || {
        let trace = trace_for(Workload::Twitter, 60_000);
        SimConfig::default().run(PredictorKind::Llbp(LlbpParams::default()), &trace)
    };
    let a = run();
    let b = run();
    assert_eq!(a.mispredictions, b.mispredictions);
    assert_eq!(a.conditional_branches, b.conditional_branches);
}

#[test]
fn trace_io_roundtrip_preserves_simulation() {
    let trace = trace_for(Workload::Http, 40_000);
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).unwrap();
    let reloaded = read_trace(buf.as_slice()).unwrap();
    let cfg = SimConfig::default();
    let direct = cfg.run(PredictorKind::Tsl64K, &trace);
    let via_io = cfg.run(PredictorKind::Tsl64K, &reloaded);
    assert_eq!(direct.mispredictions, via_io.mispredictions);
}

#[test]
fn llbp_stats_consistent_through_driver() {
    let trace = trace_for(Workload::Spring, 80_000);
    let mut p = LlbpPredictor::new(LlbpParams::default());
    let result = SimConfig::default().run_predictor(&mut p, &trace);
    let s = p.stats();
    assert!(s.breakdown_is_consistent());
    // The driver predicts every conditional branch; LLBP's own counter
    // covers warmup too, so it must be >= the measured region's count.
    assert!(s.predictions >= result.conditional_branches);
    assert!(s.pb_hits <= s.predictions);
}

#[test]
fn context_locality_claim_reproduces() {
    // Fig. 5's claim through the public probe API: deeper context windows
    // need fewer patterns per context at the 95th percentile.
    let trace = trace_for(Workload::NodeApp, 80_000);
    let ranked = rank_by_mispredictions(&trace);
    let focus: Vec<u64> = ranked.iter().take(64).map(|&(pc, _)| pc).collect();
    let w0 = useful_patterns_per_context(&trace, 0, &focus).percentile(95.0).unwrap_or(0);
    let w32 = useful_patterns_per_context(&trace, 32, &focus).percentile(95.0).unwrap_or(0);
    assert!(w32 < w0, "W=32 p95 ({w32}) must undercut W=0 p95 ({w0})");
}

#[test]
fn timing_and_energy_models_are_wired() {
    let trace = trace_for(Workload::Chirper, 60_000);
    let cfg = SimConfig::default();
    let base = cfg.run(PredictorKind::Tsl64K, &trace);
    let timing = TimingModel::default();
    let wasted = timing.wasted_fraction(base.instructions, base.mispredictions);
    assert!(wasted > 0.0 && wasted < 1.0);

    let mut p = LlbpPredictor::new(LlbpParams::default());
    let _ = cfg.run_predictor(&mut p, &trace);
    let breakdown = EnergyModel::default().fig12(p.stats(), p.params(), 64);
    assert!(breakdown.total() > 1.0, "LLBP adds energy on top of the baseline");
    assert!(breakdown.llbp_structures() < 2.0, "added structures stay moderate");
}

#[test]
fn provider_attribution_covers_all_predictions() {
    let trace = trace_for(Workload::Delta, 60_000);
    let r = SimConfig::default().run(PredictorKind::Llbp(LlbpParams::default()), &trace);
    let total: u64 = r.provider_counts.values().sum();
    assert_eq!(total, r.conditional_branches);
    assert!(r.provider_counts.contains_key("bim"), "bimodal must provide sometimes");
}

#[test]
fn storage_budgets_match_paper_scale() {
    use llbp_repro::tage::Predictor as _;
    let tsl = TageScl::new(TslConfig::cbp64k());
    let kib = tsl.storage_bits() as f64 / 8192.0;
    assert!((40.0..80.0).contains(&kib), "baseline {kib:.1} KiB");

    let llbp = LlbpPredictor::new(LlbpParams::default());
    let extra = (llbp.storage_bits() - tsl.storage_bits()) as f64 / 8192.0;
    assert!((500.0..540.0).contains(&extra), "LLBP adds {extra:.1} KiB (paper ~515)");
}
