//! Failure injection: wrong-path speculation and rollback (§V-E2).
//!
//! A real front-end runs the predictor *speculatively*: histories advance
//! on predicted outcomes and must be rolled back exactly when a
//! misprediction resolves. These tests drive a predictor down a corrupted
//! "wrong path", restore the checkpoint, and verify its subsequent
//! behaviour is bit-identical to a twin that never speculated.

use llbp_repro::llbp::{LlbpParams, LlbpPredictor};
use llbp_repro::prelude::*;
use llbp_repro::tage::Predictor;
use llbp_repro::trace::{BranchKind, BranchRecord, Trace};

fn trace(n: usize) -> Trace {
    WorkloadSpec::named(Workload::Kafka).with_branches(n).generate()
}

/// Drives `p` over `records` the normal way (predict/train on
/// conditionals, history on everything), returning predictions.
fn drive(p: &mut dyn Predictor, records: &[BranchRecord]) -> Vec<bool> {
    let mut preds = Vec::new();
    for r in records {
        if r.kind() == BranchKind::Conditional {
            preds.push(p.predict(r.pc()));
            p.train(r.pc(), r.taken());
        }
        p.update_history(r);
    }
    preds
}

/// Pushes wrong-path noise into the histories *without* training (wrong
/// path instructions never commit).
fn wrong_path(p: &mut dyn Predictor, seed: u64, len: usize) {
    for i in 0..len {
        let pc = 0xBAD_000 + (seed ^ i as u64) * 24;
        let r = BranchRecord::conditional(pc, pc + 16, (seed >> (i % 48)) & 1 == 1, 2);
        p.update_history(&r);
    }
}

#[test]
fn tsl_rollback_restores_exact_behaviour() {
    let t = trace(30_000);
    let records = t.records();
    let (warm, rest) = records.split_at(20_000);

    let mut speculated = TageScl::new(TslConfig::cbp64k());
    let mut reference = TageScl::new(TslConfig::cbp64k());
    drive(&mut speculated, warm);
    drive(&mut reference, warm);

    // Inject a wrong path into one of them, then roll it back.
    let cp = speculated.checkpoint();
    wrong_path(&mut speculated, 0xDEAD, 40);
    speculated.restore(&cp);

    let a = drive(&mut speculated, rest);
    let b = drive(&mut reference, rest);
    assert_eq!(a, b, "post-rollback behaviour must be identical");
}

#[test]
fn llbp_rollback_restores_exact_behaviour() {
    let t = trace(30_000);
    let records = t.records();
    let (warm, rest) = records.split_at(20_000);

    let mut speculated = LlbpPredictor::new(LlbpParams::default());
    let mut reference = LlbpPredictor::new(LlbpParams::default());
    drive(&mut speculated, warm);
    drive(&mut reference, warm);

    let cp = speculated.checkpoint();
    // The wrong path includes unconditional branches, perturbing the RCR
    // and the folded pattern histories.
    for i in 0..24u64 {
        let pc = 0xBAD_400 + i * 32;
        speculated.update_history(&BranchRecord::unconditional(
            pc,
            pc + 0x100,
            BranchKind::DirectJump,
            1,
        ));
        speculated.update_history(&BranchRecord::conditional(pc + 8, pc + 24, i % 3 == 0, 1));
    }
    speculated.restore(&cp);

    let a = drive(&mut speculated, rest);
    let b = drive(&mut reference, rest);
    // The reference keeps its prefetch pipeline; the rolled-back twin had
    // in-flight prefetches squashed, which can perturb a handful of
    // PB-timing-dependent predictions — but direction state must match.
    let diff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
    assert!(diff <= a.len() / 200, "{diff}/{} predictions diverged after rollback", a.len());
}

#[test]
fn rollback_without_speculation_is_identity() {
    let t = trace(10_000);
    let mut p = TageScl::new(TslConfig::cbp64k());
    drive(&mut p, t.records());
    let cp = p.checkpoint();
    p.restore(&cp);
    let l1 = p.lookup(0x1234);
    p.restore(&cp);
    let l2 = p.lookup(0x1234);
    assert_eq!(l1.pred, l2.pred);
    assert_eq!(l1.tage.indices[..8], l2.tage.indices[..8]);
}

#[test]
#[should_panic(expected = "config mismatch")]
fn mismatched_checkpoint_is_rejected() {
    let a = TageScl::new(TslConfig::cbp64k());
    let cp = a.checkpoint();
    let mut small = TslConfig::cbp64k();
    small.tage.history_lengths = vec![4, 8];
    small.tage.tag_bits = vec![9, 9];
    let mut b = TageScl::new(small);
    b.restore(&cp);
}
