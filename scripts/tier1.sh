#!/usr/bin/env bash
# Tier-1 gate: everything here must pass offline (no registry access) on a
# fresh checkout. Run it before sending a PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== tests =="
cargo test --workspace --offline --quiet

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== persistent cache smoke =="
# A warm re-run of the same sweep must be served from the memo store.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
LLBP_CACHE_DIR="$SMOKE_DIR" ./target/release/fig02_mpki_limits --quick \
    > /dev/null 2> "$SMOKE_DIR/first.err"
LLBP_CACHE_DIR="$SMOKE_DIR" ./target/release/fig02_mpki_limits --quick \
    > /dev/null 2> "$SMOKE_DIR/second.err"
grep -q '"memo_misses":0' "$SMOKE_DIR/second.err" || {
    echo "cache smoke: warm run still simulated cells:"; cat "$SMOKE_DIR/second.err"; exit 1
}
grep -Eq '"memo_hits":[1-9]' "$SMOKE_DIR/second.err" || {
    echo "cache smoke: warm run reported no memo hits:"; cat "$SMOKE_DIR/second.err"; exit 1
}

echo "== fault-injection smoke =="
# An injected panic must be retried away: the run exits 0 and prints the
# byte-identical figure. Separate cache dirs keep both runs cold.
FAULT_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$FAULT_DIR"' EXIT
LLBP_CACHE_DIR="$FAULT_DIR/clean" ./target/release/fig02_mpki_limits --quick --strict \
    > "$FAULT_DIR/clean.out" 2> "$FAULT_DIR/clean.err"
LLBP_CACHE_DIR="$FAULT_DIR/faulty" LLBP_FAULT_SPEC="panic:cell=0" \
    ./target/release/fig02_mpki_limits --quick --strict \
    > "$FAULT_DIR/faulty.out" 2> "$FAULT_DIR/faulty.err" || {
    echo "fault smoke: injected panic was not retried away:"; cat "$FAULT_DIR/faulty.err"; exit 1
}
cmp -s "$FAULT_DIR/clean.out" "$FAULT_DIR/faulty.out" || {
    echo "fault smoke: fault-injected run changed the figure output:"
    diff "$FAULT_DIR/clean.out" "$FAULT_DIR/faulty.out" || true
    exit 1
}

echo "== concurrent-campaign smoke =="
# Two campaigns racing the same grid on one cache root must serialize on
# the journal lock or fail fast with the contention exit (3) — and the
# shared journal must contain zero malformed lines either way.
RACE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$FAULT_DIR" "$RACE_DIR"' EXIT
set +e
LLBP_CACHE_DIR="$RACE_DIR" ./target/release/fig02_mpki_limits --quick \
    > /dev/null 2> "$RACE_DIR/a.err" &
PID_A=$!
LLBP_CACHE_DIR="$RACE_DIR" ./target/release/fig02_mpki_limits --quick \
    > /dev/null 2> "$RACE_DIR/b.err" &
PID_B=$!
wait "$PID_A"; STATUS_A=$?
wait "$PID_B"; STATUS_B=$?
set -e
for status in "$STATUS_A" "$STATUS_B"; do
    if [ "$status" -ne 0 ] && [ "$status" -ne 3 ]; then
        echo "concurrent smoke: campaign exited $status (want 0 or 3):"
        cat "$RACE_DIR/a.err" "$RACE_DIR/b.err"; exit 1
    fi
done
if [ "$STATUS_A" -ne 0 ] && [ "$STATUS_B" -ne 0 ]; then
    echo "concurrent smoke: both campaigns lost the lock race:"
    cat "$RACE_DIR/a.err" "$RACE_DIR/b.err"; exit 1
fi
grep -Ehv '^(ok [0-9]+ [0-9a-f]{32} ([0-9a-f]{32}|-)|failed [0-9]+ [a-z_]+|stale [0-9]+ [0-9a-f]{32})$' \
    "$RACE_DIR"/*.journal > "$RACE_DIR/malformed" 2>/dev/null && {
    echo "concurrent smoke: malformed journal lines:"; cat "$RACE_DIR/malformed"; exit 1
}
LLBP_CACHE_DIR="$RACE_DIR" ./target/release/fig02_mpki_limits --quick --resume --strict \
    > /dev/null 2>&1 || {
    echo "concurrent smoke: post-race resume failed"; exit 1
}

echo "== verify-resume smoke =="
# A bit-flipped memo cell must be detected by --verify-resume, demoted
# (stale>=1 in the throughput record), re-run, and the final figure must
# match the untampered run byte-for-byte.
VERIFY_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$FAULT_DIR" "$RACE_DIR" "$VERIFY_DIR"' EXIT
LLBP_CACHE_DIR="$VERIFY_DIR" ./target/release/fig02_mpki_limits --quick --strict \
    > "$VERIFY_DIR/clean.out" 2> /dev/null
CELL="$(ls "$VERIFY_DIR"/results/*.llbr | head -n 1)"
# Flip one payload bit (offset 10 sits inside the checksummed payload).
ORIG="$(dd if="$CELL" bs=1 skip=10 count=1 status=none | od -An -tu1 | tr -d ' ')"
printf "$(printf '\\%03o' $((ORIG ^ 4)))" | dd of="$CELL" bs=1 seek=10 conv=notrunc status=none
LLBP_CACHE_DIR="$VERIFY_DIR" ./target/release/fig02_mpki_limits --quick --verify-resume --strict \
    > "$VERIFY_DIR/verify.out" 2> "$VERIFY_DIR/verify.err" || {
    echo "verify smoke: verified resume failed:"; cat "$VERIFY_DIR/verify.err"; exit 1
}
grep -Eq '"stale":[1-9]' "$VERIFY_DIR/verify.err" || {
    echo "verify smoke: tampered cell was not demoted:"; cat "$VERIFY_DIR/verify.err"; exit 1
}
cmp -s "$VERIFY_DIR/clean.out" "$VERIFY_DIR/verify.out" || {
    echo "verify smoke: verified resume changed the figure output:"
    diff "$VERIFY_DIR/clean.out" "$VERIFY_DIR/verify.out" || true
    exit 1
}

echo "== telemetry smoke =="
# An observed quick sweep must leave a parseable Chrome trace-event file
# containing every per-job stage span, a Prometheus snapshot with the
# matching histograms, and an obs_tool summary that reads both.
TEL_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$FAULT_DIR" "$RACE_DIR" "$VERIFY_DIR" "$TEL_DIR"' EXIT
LLBP_CACHE_DIR="$TEL_DIR" ./target/release/fig02_mpki_limits --quick \
    --trace-events "$TEL_DIR/trace.json" --metrics-out "$TEL_DIR/metrics.prom" \
    > "$TEL_DIR/observed-cold.out" 2> "$TEL_DIR/observed-cold.err"
for span in queue_wait memo_probe generation simulation write_back; do
    grep -q "\"name\":\"$span\"" "$TEL_DIR/trace.json" || {
        echo "telemetry smoke: stage span '$span' missing from trace events"; exit 1
    }
done
./target/release/obs_tool summarize "$TEL_DIR/trace.json" > "$TEL_DIR/summary.md" || {
    echo "telemetry smoke: obs_tool failed to parse the trace-event file"; exit 1
}
grep -q '| simulation |' "$TEL_DIR/summary.md" || {
    echo "telemetry smoke: summary lacks the simulation stage:"; cat "$TEL_DIR/summary.md"; exit 1
}
grep -q '^llbp_simulation_count' "$TEL_DIR/metrics.prom" || {
    echo "telemetry smoke: metrics snapshot lacks the simulation histogram:"
    cat "$TEL_DIR/metrics.prom"; exit 1
}

echo "== telemetry overhead gate =="
# Telemetry must never perturb results: with it disabled again, a warm
# run and a fresh cold run both print the byte-identical figure the
# observed run did. (The zero-cost claim itself is pinned by the obs
# crate's zero-allocation test; this gate pins output equivalence.)
LLBP_CACHE_DIR="$TEL_DIR" ./target/release/fig02_mpki_limits --quick \
    > "$TEL_DIR/plain-warm.out" 2> /dev/null
cmp -s "$TEL_DIR/observed-cold.out" "$TEL_DIR/plain-warm.out" || {
    echo "overhead gate: disabled-telemetry warm run changed the figure output:"
    diff "$TEL_DIR/observed-cold.out" "$TEL_DIR/plain-warm.out" || true
    exit 1
}
LLBP_CACHE_DIR="$TEL_DIR/cold2" ./target/release/fig02_mpki_limits --quick \
    > "$TEL_DIR/plain-cold.out" 2> /dev/null
cmp -s "$TEL_DIR/observed-cold.out" "$TEL_DIR/plain-cold.out" || {
    echo "overhead gate: disabled-telemetry cold run changed the figure output:"
    diff "$TEL_DIR/observed-cold.out" "$TEL_DIR/plain-cold.out" || true
    exit 1
}

echo "== backend parity smoke =="
# The same quick figure cell run under every execution backend must print
# the byte-identical figure (stdout only — stderr carries wall times).
# Separate cold cache dirs per backend keep the memo store from serving
# one backend's cells to another, so each tier actually simulates.
BACKEND_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$FAULT_DIR" "$RACE_DIR" "$VERIFY_DIR" "$TEL_DIR" "$BACKEND_DIR"' EXIT
LLBP_CACHE_DIR="$BACKEND_DIR/reference" ./target/release/fig02_mpki_limits --quick --strict \
    --backend reference > "$BACKEND_DIR/reference.out" 2> /dev/null
for backend in specialized batch auto; do
    LLBP_CACHE_DIR="$BACKEND_DIR/$backend" ./target/release/fig02_mpki_limits --quick --strict \
        --backend "$backend" > "$BACKEND_DIR/$backend.out" 2> /dev/null
    cmp -s "$BACKEND_DIR/reference.out" "$BACKEND_DIR/$backend.out" || {
        echo "backend smoke: backend '$backend' changed the figure output:"
        diff "$BACKEND_DIR/reference.out" "$BACKEND_DIR/$backend.out" || true
        exit 1
    }
done
# The env-var selector must work too (flag wins over env elsewhere; here
# the env alone drives the choice).
LLBP_CACHE_DIR="$BACKEND_DIR/env" LLBP_BACKEND=batch ./target/release/fig02_mpki_limits \
    --quick --strict > "$BACKEND_DIR/env.out" 2> /dev/null
cmp -s "$BACKEND_DIR/reference.out" "$BACKEND_DIR/env.out" || {
    echo "backend smoke: LLBP_BACKEND=batch changed the figure output:"
    diff "$BACKEND_DIR/reference.out" "$BACKEND_DIR/env.out" || true
    exit 1
}

echo "== distributed chaos smoke =="
# A 2-worker distributed campaign against a shared llbp_store — with one
# injected network disconnect AND one worker killed mid-claim — must
# recover via lease takeover and print stdout byte-identical to a plain
# single-process run of the same grid.
DIST_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$FAULT_DIR" "$RACE_DIR" "$VERIFY_DIR" "$TEL_DIR" "$BACKEND_DIR" "$DIST_DIR"' EXIT
LLBP_CACHE_DIR="$DIST_DIR/serial" ./target/release/fig02_mpki_limits --quick \
    --workloads HTTP,Kafka,Tomcat > "$DIST_DIR/serial.out" 2> /dev/null
./target/release/llbp_store --root "$DIST_DIR/shared" --print-addr \
    > "$DIST_DIR/store.addr" 2> "$DIST_DIR/store.err" &
STORE_PID=$!
for _ in $(seq 50); do [ -s "$DIST_DIR/store.addr" ] && break; sleep 0.1; done
[ -s "$DIST_DIR/store.addr" ] || {
    echo "distributed smoke: llbp_store never printed its address:"
    cat "$DIST_DIR/store.err"; kill "$STORE_PID" 2>/dev/null || true; exit 1
}
DIST_STATUS=0
LLBP_CACHE_DIR="$DIST_DIR/dist" LLBP_STORE="tcp://$(cat "$DIST_DIR/store.addr")" \
    LLBP_FAULT_SPEC="net:disconnect:count=1" LLBP_WORKER_ABORT="1:1" \
    ./target/release/llbp_coord --workers 2 --quick --workloads HTTP,Kafka,Tomcat \
    > "$DIST_DIR/dist.out" 2> "$DIST_DIR/dist.err" || DIST_STATUS=$?
kill "$STORE_PID" 2>/dev/null || true
wait "$STORE_PID" 2>/dev/null || true
[ "$DIST_STATUS" -eq 0 ] || {
    echo "distributed smoke: coordinator exited $DIST_STATUS:"; cat "$DIST_DIR/dist.err"; exit 1
}
cmp -s "$DIST_DIR/serial.out" "$DIST_DIR/dist.out" || {
    echo "distributed smoke: distributed stdout diverged from the serial run:"
    diff "$DIST_DIR/serial.out" "$DIST_DIR/dist.out" || true
    exit 1
}
grep -Eq '"lease_takeovers":[1-9]' "$DIST_DIR/dist.err" || {
    echo "distributed smoke: killed worker's lease was never taken over:"
    cat "$DIST_DIR/dist.err"; exit 1
}

echo "== remote-store degradation smoke =="
# With the remote store unreachable from the start, a campaign must
# degrade to its local overlay and still print the byte-identical
# figure, exiting 0.
LLBP_CACHE_DIR="$DIST_DIR/degraded" LLBP_STORE="tcp://127.0.0.1:1" \
    ./target/release/fig02_mpki_limits --quick --workloads HTTP,Kafka,Tomcat \
    > "$DIST_DIR/degraded.out" 2> "$DIST_DIR/degraded.err" || {
    echo "degradation smoke: unreachable store failed the run:"
    cat "$DIST_DIR/degraded.err"; exit 1
}
cmp -s "$DIST_DIR/serial.out" "$DIST_DIR/degraded.out" || {
    echo "degradation smoke: degraded run changed the figure output:"
    diff "$DIST_DIR/serial.out" "$DIST_DIR/degraded.out" || true
    exit 1
}

echo "== merge-crash durability smoke =="
# crash:merge aborts the coordinator between the merged journal's
# temp-file fsync and its rename — the exact window the
# write-temp/fsync/rename/dir-fsync recipe protects. Recovery must find
# no (or an old) merged journal, never a torn one, and a fault-free
# rerun must complete the campaign byte-identically.
CRASH_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$FAULT_DIR" "$RACE_DIR" "$VERIFY_DIR" "$TEL_DIR" "$BACKEND_DIR" "$DIST_DIR" "$CRASH_DIR"' EXIT
set +e
LLBP_CACHE_DIR="$CRASH_DIR" LLBP_FAULT_SPEC="crash:merge" \
    ./target/release/llbp_coord --workers 2 --quick --workloads HTTP,Kafka \
    > /dev/null 2> "$CRASH_DIR/crash.err"
CRASH_STATUS=$?
set -e
[ "$CRASH_STATUS" -ne 0 ] || {
    echo "crash smoke: crash:merge did not abort the coordinator:"
    cat "$CRASH_DIR/crash.err"; exit 1
}
MERGED="$(ls "$CRASH_DIR"/*.journal 2>/dev/null | grep -v '\.w[0-9]*\.journal' || true)"
[ -z "$MERGED" ] || {
    echo "crash smoke: merged journal published despite the pre-rename abort:"
    ls -l "$CRASH_DIR"; exit 1
}
LLBP_CACHE_DIR="$CRASH_DIR/serial" ./target/release/fig02_mpki_limits --quick \
    --workloads HTTP,Kafka > "$CRASH_DIR/serial.out" 2> /dev/null
LLBP_CACHE_DIR="$CRASH_DIR" ./target/release/llbp_coord --workers 2 --quick \
    --workloads HTTP,Kafka > "$CRASH_DIR/rerun.out" 2> "$CRASH_DIR/rerun.err" || {
    echo "crash smoke: post-crash rerun failed:"; cat "$CRASH_DIR/rerun.err"; exit 1
}
cmp -s "$CRASH_DIR/serial.out" "$CRASH_DIR/rerun.out" || {
    echo "crash smoke: post-crash rerun changed the figure output:"
    diff "$CRASH_DIR/serial.out" "$CRASH_DIR/rerun.out" || true
    exit 1
}

echo "== serve daemon smoke =="
# A sweep routed through the resident daemon with --server — under one
# injected client-side disconnect — must print stdout byte-identical to
# a local run, expose live Prometheus metrics, and shut down cleanly.
SERVE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$FAULT_DIR" "$RACE_DIR" "$VERIFY_DIR" "$TEL_DIR" "$BACKEND_DIR" "$DIST_DIR" "$CRASH_DIR" "$SERVE_DIR"' EXIT
LLBP_CACHE_DIR="$SERVE_DIR/local" ./target/release/fig02_mpki_limits --quick \
    > "$SERVE_DIR/local.out" 2> /dev/null
./target/release/llbp_serve --root "$SERVE_DIR/shared" --print-addr \
    > "$SERVE_DIR/serve.addr" 2> "$SERVE_DIR/serve.err" &
SERVE_PID=$!
for _ in $(seq 50); do [ -s "$SERVE_DIR/serve.addr" ] && break; sleep 0.1; done
[ -s "$SERVE_DIR/serve.addr" ] || {
    echo "serve smoke: llbp_serve never printed its address:"
    cat "$SERVE_DIR/serve.err"; kill "$SERVE_PID" 2>/dev/null || true; exit 1
}
SERVE_ADDR="tcp://$(cat "$SERVE_DIR/serve.addr")"
LLBP_CACHE_DIR="$SERVE_DIR/client" LLBP_FAULT_SPEC="net:disconnect:count=1" \
    ./target/release/fig02_mpki_limits --quick --server "$SERVE_ADDR" \
    > "$SERVE_DIR/remote.out" 2> "$SERVE_DIR/remote.err" || {
    echo "serve smoke: remote run failed:"; cat "$SERVE_DIR/remote.err"
    kill "$SERVE_PID" 2>/dev/null || true; exit 1
}
cmp -s "$SERVE_DIR/local.out" "$SERVE_DIR/remote.out" || {
    echo "serve smoke: --server run diverged from the local run:"
    diff "$SERVE_DIR/local.out" "$SERVE_DIR/remote.out" || true
    kill "$SERVE_PID" 2>/dev/null || true; exit 1
}
grep -q '"store":"serve"' "$SERVE_DIR/remote.err" || {
    echo "serve smoke: remote throughput record does not say serve tier:"
    cat "$SERVE_DIR/remote.err"; kill "$SERVE_PID" 2>/dev/null || true; exit 1
}
./target/release/llbp_client --server "$SERVE_ADDR" metrics > "$SERVE_DIR/metrics.prom" || {
    echo "serve smoke: metrics scrape failed"
    kill "$SERVE_PID" 2>/dev/null || true; exit 1
}
grep -q '^llbp_serve_campaigns_total' "$SERVE_DIR/metrics.prom" || {
    echo "serve smoke: metrics lack the campaign counter:"
    cat "$SERVE_DIR/metrics.prom"; kill "$SERVE_PID" 2>/dev/null || true; exit 1
}
./target/release/llbp_client --server "$SERVE_ADDR" shutdown 2> /dev/null || {
    echo "serve smoke: shutdown request failed"
    kill "$SERVE_PID" 2>/dev/null || true; exit 1
}
SERVE_STATUS=0
wait "$SERVE_PID" || SERVE_STATUS=$?
[ "$SERVE_STATUS" -eq 0 ] || {
    echo "serve smoke: daemon exited $SERVE_STATUS after shutdown:"
    cat "$SERVE_DIR/serve.err"; exit 1
}

echo "== provenance smoke =="
# Recording must be free when off and observational when on: stdout is
# byte-identical either way, `prov_tool why` reports the same hottest
# mispredicting branches on every invocation, and the recorder costs
# <3% wall time (min of 3 cold runs per configuration).
PROV_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$FAULT_DIR" "$RACE_DIR" "$VERIFY_DIR" "$TEL_DIR" "$BACKEND_DIR" "$DIST_DIR" "$CRASH_DIR" "$SERVE_DIR" "$PROV_DIR"' EXIT
for i in 1 2 3; do
    LLBP_CACHE_DIR="$PROV_DIR/off$i" ./target/release/fig02_mpki_limits --quick --strict \
        > "$PROV_DIR/off$i.out" 2> "$PROV_DIR/off$i.err"
    LLBP_CACHE_DIR="$PROV_DIR/on$i" ./target/release/fig02_mpki_limits --quick --strict --prov \
        > "$PROV_DIR/on$i.out" 2> "$PROV_DIR/on$i.err"
done
cmp -s "$PROV_DIR/off1.out" "$PROV_DIR/on1.out" || {
    echo "prov smoke: --prov changed the figure output:"
    diff "$PROV_DIR/off1.out" "$PROV_DIR/on1.out" || true
    exit 1
}
grep -q '"prov":{"streams":' "$PROV_DIR/on1.err" || {
    echo "prov smoke: recorded run has no prov section:"; cat "$PROV_DIR/on1.err"; exit 1
}
grep -q '"prov"' "$PROV_DIR/off1.err" && {
    echo "prov smoke: plain run leaked a prov section:"; cat "$PROV_DIR/off1.err"; exit 1
}
OFF_MIN="$(grep -oh '"wall_s":[0-9.]*' "$PROV_DIR"/off?.err | cut -d: -f2 | sort -g | head -n 1)"
ON_MIN="$(grep -oh '"wall_s":[0-9.]*' "$PROV_DIR"/on?.err | cut -d: -f2 | sort -g | head -n 1)"
awk -v off="$OFF_MIN" -v on="$ON_MIN" 'BEGIN { exit !(on <= off * 1.03) }' || {
    echo "prov smoke: recorder overhead exceeds 3% (off ${OFF_MIN}s, on ${ON_MIN}s)"
    exit 1
}
./target/release/prov_tool why "$PROV_DIR/on1" --label "64K TSL" --workload Tomcat --top 10 \
    > "$PROV_DIR/why1.md" || {
    echo "prov smoke: prov_tool why failed on the recorded cache"; exit 1
}
./target/release/prov_tool why "$PROV_DIR/on1" --label "64K TSL" --workload Tomcat --top 10 \
    > "$PROV_DIR/why2.md"
cmp -s "$PROV_DIR/why1.md" "$PROV_DIR/why2.md" || {
    echo "prov smoke: prov_tool why is not deterministic:"
    diff "$PROV_DIR/why1.md" "$PROV_DIR/why2.md" || true
    exit 1
}
# The top-ranked branch must be a real mispredictor with attribution.
grep -Eq '^ +1  0x[0-9a-f]+ +[1-9][0-9]* +(bim|tage|sc|loop|llbp):' "$PROV_DIR/why1.md" || {
    echo "prov smoke: why report lists no attributed hottest branch:"
    cat "$PROV_DIR/why1.md"; exit 1
}

echo "tier1 OK"
