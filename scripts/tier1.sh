#!/usr/bin/env bash
# Tier-1 gate: everything here must pass offline (no registry access) on a
# fresh checkout. Run it before sending a PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== tests =="
cargo test --workspace --offline --quiet

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== persistent cache smoke =="
# A warm re-run of the same sweep must be served from the memo store.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
LLBP_CACHE_DIR="$SMOKE_DIR" ./target/release/fig02_mpki_limits --quick \
    > /dev/null 2> "$SMOKE_DIR/first.err"
LLBP_CACHE_DIR="$SMOKE_DIR" ./target/release/fig02_mpki_limits --quick \
    > /dev/null 2> "$SMOKE_DIR/second.err"
grep -q '"memo_misses":0' "$SMOKE_DIR/second.err" || {
    echo "cache smoke: warm run still simulated cells:"; cat "$SMOKE_DIR/second.err"; exit 1
}
grep -Eq '"memo_hits":[1-9]' "$SMOKE_DIR/second.err" || {
    echo "cache smoke: warm run reported no memo hits:"; cat "$SMOKE_DIR/second.err"; exit 1
}

echo "== fault-injection smoke =="
# An injected panic must be retried away: the run exits 0 and prints the
# byte-identical figure. Separate cache dirs keep both runs cold.
FAULT_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$FAULT_DIR"' EXIT
LLBP_CACHE_DIR="$FAULT_DIR/clean" ./target/release/fig02_mpki_limits --quick --strict \
    > "$FAULT_DIR/clean.out" 2> "$FAULT_DIR/clean.err"
LLBP_CACHE_DIR="$FAULT_DIR/faulty" LLBP_FAULT_SPEC="panic:cell=0" \
    ./target/release/fig02_mpki_limits --quick --strict \
    > "$FAULT_DIR/faulty.out" 2> "$FAULT_DIR/faulty.err" || {
    echo "fault smoke: injected panic was not retried away:"; cat "$FAULT_DIR/faulty.err"; exit 1
}
cmp -s "$FAULT_DIR/clean.out" "$FAULT_DIR/faulty.out" || {
    echo "fault smoke: fault-injected run changed the figure output:"
    diff "$FAULT_DIR/clean.out" "$FAULT_DIR/faulty.out" || true
    exit 1
}

echo "tier1 OK"
