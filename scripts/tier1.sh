#!/usr/bin/env bash
# Tier-1 gate: everything here must pass offline (no registry access) on a
# fresh checkout. Run it before sending a PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== tests =="
cargo test --workspace --offline --quiet

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== persistent cache smoke =="
# A warm re-run of the same sweep must be served from the memo store.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
LLBP_CACHE_DIR="$SMOKE_DIR" ./target/release/fig02_mpki_limits --quick \
    > /dev/null 2> "$SMOKE_DIR/first.err"
LLBP_CACHE_DIR="$SMOKE_DIR" ./target/release/fig02_mpki_limits --quick \
    > /dev/null 2> "$SMOKE_DIR/second.err"
grep -q '"memo_misses":0' "$SMOKE_DIR/second.err" || {
    echo "cache smoke: warm run still simulated cells:"; cat "$SMOKE_DIR/second.err"; exit 1
}
grep -Eq '"memo_hits":[1-9]' "$SMOKE_DIR/second.err" || {
    echo "cache smoke: warm run reported no memo hits:"; cat "$SMOKE_DIR/second.err"; exit 1
}

echo "tier1 OK"
