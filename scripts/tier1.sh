#!/usr/bin/env bash
# Tier-1 gate: everything here must pass offline (no registry access) on a
# fresh checkout. Run it before sending a PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== tests =="
cargo test --workspace --offline --quiet

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "tier1 OK"
