//! Extending the framework: plugging a custom predictor into the
//! simulator via the [`Predictor`] trait.
//!
//! This example implements a classic gshare predictor from the crate's
//! building blocks (`bputil`), runs it against TAGE-SC-L on the same
//! trace, and reports both — the same way a researcher would evaluate a
//! new design inside this framework.
//!
//! ```sh
//! cargo run --release --example custom_predictor
//! ```

use llbp_repro::bputil::counter::SatCounter;
use llbp_repro::bputil::history::HistoryBuffer;
use llbp_repro::prelude::*;
use llbp_repro::tage::{Predictor, ProviderKind};
use llbp_repro::trace::{BranchKind, BranchRecord};

/// A classic gshare predictor: PC XOR global history indexes one table of
/// 2-bit counters.
struct Gshare {
    table: Vec<SatCounter>,
    ghr: HistoryBuffer,
    history_bits: u32,
    label: String,
}

impl Gshare {
    fn new(index_bits: u32, history_bits: u32) -> Self {
        Self {
            table: vec![SatCounter::new_signed(2); 1 << index_bits],
            ghr: HistoryBuffer::new(64),
            history_bits,
            label: format!("gshare-{}k", (1u32 << index_bits) / 1024),
        }
    }

    fn index(&self, pc: u64) -> usize {
        let hist = self.ghr.fold(self.history_bits as usize, self.history_bits);
        ((pc >> 2) ^ u64::from(hist)) as usize & (self.table.len() - 1)
    }
}

impl Predictor for Gshare {
    fn predict(&mut self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }

    fn train(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
    }

    fn update_history(&mut self, record: &BranchRecord) {
        if record.kind() == BranchKind::Conditional {
            self.ghr.push(record.taken());
        }
    }

    fn last_provider(&self) -> ProviderKind {
        ProviderKind::Bimodal
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * 2
    }
}

fn main() {
    let trace = WorkloadSpec::named(Workload::Tpcc).with_branches(300_000).generate();
    let cfg = SimConfig::default();

    let mut gshare = Gshare::new(14, 12); // 16K entries, 12-bit history
    let gshare_result = cfg.run_predictor(&mut gshare, &trace);
    let tsl = cfg.run(PredictorKind::Tsl64K, &trace);

    println!("{:12} {:>8}  {:>10}", "predictor", "MPKI", "bits");
    for r in [&gshare_result, &tsl] {
        println!("{:12} {:>8.3}", r.label, r.mpki());
    }
    println!(
        "\nTAGE-SC-L beats gshare by {:.1}% MPKI — three decades of branch \
         prediction research at work.",
        gshare_result.mpki() / tsl.mpki() * 100.0 - 100.0
    );
}
