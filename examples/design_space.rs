//! Domain scenario: exploring the LLBP design space.
//!
//! An architect sizing a last-level predictor wants to know how the MPKI
//! reduction trades against storage: context count, pattern-set size,
//! prefetch distance and pattern-buffer capacity. This example sweeps a
//! small grid (the full sweeps are the `fig13_cid_sensitivity` and
//! `fig14_pattern_sets` harness binaries) and prints reduction per KiB.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use llbp_repro::prelude::*;

fn main() {
    let trace = WorkloadSpec::named(Workload::Merced).with_branches(400_000).generate();
    let cfg = SimConfig::default();
    let base = cfg.run(PredictorKind::Tsl64K, &trace);
    println!("baseline 64K TSL: {:.3} MPKI on {}\n", base.mpki(), trace.name());

    println!("{:28} {:>10} {:>12} {:>14}", "configuration", "KiB", "MPKI red.", "red. per 100KiB");

    // Sweep pattern-set capacity (the Fig. 14 axis).
    for (contexts, set_size) in [(8_192, 8), (16_384, 8), (16_384, 16), (32_768, 16)] {
        let params = LlbpParams::study_full_assoc(contexts, set_size);
        let kib = params.storage_bits() as f64 / 8192.0;
        let r = cfg.run(PredictorKind::Llbp(params), &trace);
        let red = r.mpki_reduction_vs(&base);
        println!(
            "{:28} {:>10.0} {:>11.1}% {:>13.2}%",
            format!("{}K contexts x {}", contexts / 1024, set_size),
            kib,
            red,
            red / (kib / 100.0)
        );
    }

    // Prefetch distance (the Fig. 13 axis) on the deployable design.
    println!();
    for d in [0usize, 4, 8] {
        let params = LlbpParams {
            prefetch_distance: d,
            label: format!("LLBP D={d}"),
            ..LlbpParams::default()
        };
        let r = cfg.run(PredictorKind::Llbp(params), &trace);
        println!(
            "{:28} {:>10} {:>11.1}%",
            format!("deployable LLBP, D={d}"),
            "512",
            r.mpki_reduction_vs(&base)
        );
    }
}
