//! Domain scenario: capacity planning for a server fleet's front-end.
//!
//! A server operator wants to know where the branch-misprediction cycles
//! go (the paper's Fig. 1 motivation) and how much a last-level branch
//! predictor would buy across a representative workload mix. This example
//! runs three server workloads through the baseline and LLBP, attributes
//! wasted cycles with the Top-Down-style timing model, and prints a
//! per-workload report.
//!
//! ```sh
//! cargo run --release --example server_workload
//! ```

use llbp_repro::prelude::*;
use llbp_repro::sim::TimingModel;

fn main() {
    let timing = TimingModel::default();
    let cfg = SimConfig::default();

    println!(
        "{:10} {:>10} {:>10} {:>13} {:>13} {:>9}",
        "workload", "base MPKI", "LLBP MPKI", "wasted(base)", "wasted(llbp)", "speedup"
    );
    for workload in [Workload::NodeApp, Workload::Tomcat, Workload::Http] {
        let trace = WorkloadSpec::named(workload).with_branches(400_000).generate();
        let base = cfg.run(PredictorKind::Tsl64K, &trace);
        let llbp = cfg.run(PredictorKind::Llbp(LlbpParams::default()), &trace);

        let wasted_base = timing.wasted_fraction(base.instructions, base.mispredictions);
        let wasted_llbp = timing.wasted_fraction(llbp.instructions, llbp.mispredictions);
        let speedup = timing.speedup(base.instructions, base.mispredictions, llbp.mispredictions);

        println!(
            "{:10} {:>10.3} {:>10.3} {:>12.1}% {:>12.1}% {:>8.3}x",
            workload.to_string(),
            base.mpki(),
            llbp.mpki(),
            wasted_base * 100.0,
            wasted_llbp * 100.0,
            speedup
        );
    }
    println!(
        "\n'wasted' = fraction of execution cycles lost to conditional-branch \
         mispredictions (Fig. 1 metric)."
    );
}
