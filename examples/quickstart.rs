//! Quickstart: generate a synthetic server workload, run the 64 KiB
//! TAGE-SC-L baseline and LLBP over it, and compare MPKI.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use llbp_repro::prelude::*;

fn main() {
    // 1. Generate a trace. `Workload` presets mirror Table I of the paper;
    //    NodeApp is the most context-dependent (LLBP's best case).
    let trace = WorkloadSpec::named(Workload::NodeApp).with_branches(400_000).generate();
    let stats = trace.stats();
    println!(
        "trace: {} branch records, {} instructions, {} static conditional branches",
        trace.len(),
        trace.instructions(),
        stats.static_conditional
    );

    // 2. Run the baseline and LLBP through the simulator. The first third
    //    of the trace warms the predictors; statistics come from the rest.
    let cfg = SimConfig::default();
    let baseline = cfg.run(PredictorKind::Tsl64K, &trace);
    let llbp = cfg.run(PredictorKind::Llbp(LlbpParams::default()), &trace);

    println!("\n{:12} {:>8}  {:>12}", "predictor", "MPKI", "mispredicts");
    for r in [&baseline, &llbp] {
        println!("{:12} {:>8.3}  {:>12}", r.label, r.mpki(), r.mispredictions);
    }
    println!(
        "\nLLBP reduces MPKI by {:.1}% over the 64K TSL baseline",
        llbp.mpki_reduction_vs(&baseline)
    );
}
