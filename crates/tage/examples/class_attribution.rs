//! Attributes 64K TSL mispredictions to the synthetic workloads'
//! behaviour classes — the calibration tool used to tune the generator
//! (see `DESIGN.md` §3).
//!
//! ```sh
//! cargo run --release -p llbp-tage --example class_attribution [branches]
//! ```

use llbp_tage::{Predictor, TageScl, TslConfig};
use llbp_trace::synth::Behavior;
use llbp_trace::{BranchKind, Workload, WorkloadSpec};
use std::collections::HashMap;

fn class_of(b: &Option<Behavior>) -> &'static str {
    match b {
        None => "loop",
        Some(Behavior::Biased { .. }) => "biased",
        Some(Behavior::PathTable { .. }) => "path",
        Some(Behavior::GlobalParity { lookback }) if *lookback >= 8 => "parity-long",
        Some(Behavior::GlobalParity { .. }) => "parity-short",
        Some(Behavior::ContextTable { .. }) => "context",
        Some(Behavior::Random { .. }) => "random",
    }
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(500_000);
    for w in [Workload::Http, Workload::NodeApp, Workload::Tomcat] {
        let spec = WorkloadSpec::named(w).with_branches(n);
        let classes = spec.build_program().behavior_map();
        let trace = spec.generate();
        let mut p = TageScl::new(TslConfig::cbp64k());
        let mut per: HashMap<&'static str, (u64, u64)> = HashMap::new();
        let warmup = trace.len() / 3;
        for (i, r) in trace.iter().enumerate() {
            if r.kind() == BranchKind::Conditional {
                let pred = p.predict(r.pc());
                p.train(r.pc(), r.taken());
                if i > warmup {
                    let c = class_of(classes.get(&r.pc()).unwrap_or(&None));
                    let e = per.entry(c).or_default();
                    e.0 += 1;
                    e.1 += u64::from(pred != r.taken());
                }
            }
            p.update_history(r);
        }
        let total: u64 = per.values().map(|e| e.0).sum();
        let total_mis: u64 = per.values().map(|e| e.1).sum();
        println!("== {w}: post-warmup rate {:.3}", total_mis as f64 / total as f64);
        let mut rows: Vec<_> = per.into_iter().collect();
        rows.sort_by_key(|(_, (_, mis))| std::cmp::Reverse(*mis));
        for (class, (count, mis)) in rows {
            println!(
                "  {class:12} dyn-share={:5.1}%  rate={:.3}  share-of-mispredicts={:5.1}%",
                100.0 * count as f64 / total as f64,
                mis as f64 / count.max(1) as f64,
                100.0 * mis as f64 / total_mis.max(1) as f64
            );
        }
    }
}
