//! The loop predictor of TAGE-SC-L.
//!
//! Counted loops produce a long run of taken back-edges followed by one
//! not-taken exit. History predictors waste long-history entries learning
//! each trip count; a dedicated loop predictor captures the whole loop
//! with one entry: it tracks the iteration count, gains confidence when
//! the same count repeats, and then predicts the exit exactly.

use bputil::counter::SatCounter;
use bputil::table::SetAssoc;

/// Confidence needed before the loop predictor is allowed to provide.
const CONFIDENT: u16 = 3;
/// Maximum tracked iteration count.
const MAX_ITER: u16 = u16::MAX - 1;

/// One loop table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LoopEntry {
    /// Trip count observed on the last completed traversal.
    past_iter: u16,
    /// Iterations seen in the current traversal.
    current_iter: u16,
    /// How many consecutive traversals matched `past_iter`.
    confidence: u16,
    /// The repeated (loop-continuing) direction.
    dir: bool,
    /// Replacement age, decremented when unconfident entries linger.
    age: u8,
}

/// Per-lookup state handed back at training time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopLookup {
    /// The prediction, when the entry is confident.
    pub pred: Option<bool>,
    set: u64,
    tag: u64,
}

/// The loop predictor: a small set-associative table keyed by branch PC.
#[derive(Debug, Clone)]
pub struct LoopPredictor {
    table: SetAssoc<LoopEntry>,
    /// Global gate learning whether loop predictions help this workload.
    use_loop: SatCounter,
    provides: u64,
}

impl LoopPredictor {
    /// Creates a loop predictor with `2^index_bits` sets, 4-way.
    #[must_use]
    pub fn new(index_bits: u32) -> Self {
        let mut use_loop = SatCounter::new_signed(7);
        use_loop.set(0);
        Self { table: SetAssoc::new(index_bits, 4), use_loop, provides: 0 }
    }

    /// Times the loop predictor actually provided a direction.
    #[must_use]
    pub fn provides(&self) -> u64 {
        self.provides
    }

    fn key(&self, pc: u64) -> (u64, u64) {
        let h = bputil::hash::mix64(pc >> 2);
        (h & (self.table.num_sets() as u64 - 1).max(1), h >> 40)
    }

    /// Looks up `pc`; returns a prediction only when the entry is
    /// confident and the global gate agrees.
    pub fn lookup(&mut self, pc: u64) -> LoopLookup {
        let (set, tag) = self.key(pc);
        #[allow(clippy::unnecessary_lazy_evaluations)]
        let pred = self.table.peek(set, tag).and_then(|e| {
            (e.confidence >= CONFIDENT && self.use_loop.taken()).then(|| {
                // The next occurrence is the exit once the in-loop count
                // reaches the learned trip count.
                if e.current_iter >= e.past_iter {
                    !e.dir
                } else {
                    e.dir
                }
            })
        });
        if pred.is_some() {
            self.provides += 1;
        }
        LoopLookup { pred, set, tag }
    }

    /// Trains on the resolved direction. `tage_pred` is the baseline
    /// prediction (used to learn the global gate) and `tage_mispredicted`
    /// gates new allocations, as in CBP-5.
    pub fn train(
        &mut self,
        lookup: &LoopLookup,
        taken: bool,
        tage_pred: bool,
        tage_mispredicted: bool,
    ) {
        if let Some(p) = lookup.pred {
            if p != tage_pred {
                // The gate learns from disagreements.
                self.use_loop.update(p == taken);
            }
        }
        if let Some(e) = self.table.get_mut(lookup.set, lookup.tag) {
            if taken == e.dir {
                e.current_iter = e.current_iter.saturating_add(1).min(MAX_ITER);
                if e.current_iter > e.past_iter && e.confidence > 0 {
                    // Ran past the learned trip count: the count changed.
                    e.confidence = 0;
                }
            } else {
                // Loop exit: compare against the learned trip count.
                if e.current_iter == e.past_iter {
                    e.confidence = (e.confidence + 1).min(15);
                    e.age = e.age.saturating_add(1).min(7);
                } else {
                    e.past_iter = e.current_iter;
                    e.confidence = 0;
                }
                e.current_iter = 0;
            }
            return;
        }
        // Allocate on a baseline misprediction. A loop exit mispredicts
        // against the repeated direction, so the repeated direction is the
        // *opposite* of the mispredicted outcome.
        if tage_mispredicted {
            let entry =
                LoopEntry { past_iter: 0, current_iter: 0, confidence: 0, dir: !taken, age: 3 };
            self.table.insert_with(lookup.set, lookup.tag, entry, |ways| {
                // Prefer the lowest-age way.
                ways.iter().enumerate().min_by_key(|(_, (_, e))| e.age).map(|(i, _)| i).unwrap_or(0)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a fixed-trip loop: `trips - 1` taken back-edges then one
    /// not-taken exit, repeated.
    fn drive_loop(lp: &mut LoopPredictor, pc: u64, trips: usize, rounds: usize) -> (u64, u64) {
        let mut predicted = 0;
        let mut correct_exits = 0;
        for _ in 0..rounds {
            for i in 0..trips {
                let taken = i + 1 < trips;
                let l = lp.lookup(pc);
                if let Some(p) = l.pred {
                    predicted += 1;
                    if !taken && p == taken {
                        correct_exits += 1;
                    }
                }
                // Pretend TAGE always says "taken" (mispredicting exits).
                lp.train(&l, taken, true, !taken);
            }
        }
        (predicted, correct_exits)
    }

    #[test]
    fn learns_fixed_trip_count() {
        let mut lp = LoopPredictor::new(4);
        let (predicted, correct_exits) = drive_loop(&mut lp, 0x100, 7, 60);
        assert!(predicted > 0, "loop predictor never engaged");
        assert!(correct_exits > 30, "only {correct_exits} exits predicted");
    }

    #[test]
    fn stays_quiet_on_varying_trip_counts() {
        let mut lp = LoopPredictor::new(4);
        let mut rng = bputil::rng::SplitMix64::new(17);
        let mut engaged = 0;
        for _ in 0..200 {
            let trips = 2 + rng.below(10) as usize;
            for i in 0..trips {
                let taken = i + 1 < trips;
                let l = lp.lookup(0x200);
                if l.pred.is_some() {
                    engaged += 1;
                }
                lp.train(&l, taken, true, !taken);
            }
        }
        // Varying counts never build confidence, so engagement stays rare.
        assert!(engaged < 100, "engaged {engaged} times on a varying loop");
    }

    #[test]
    fn no_allocation_without_misprediction() {
        let mut lp = LoopPredictor::new(4);
        for _ in 0..100 {
            let l = lp.lookup(0x300);
            lp.train(&l, true, true, false); // baseline correct
        }
        assert_eq!(lp.provides(), 0);
    }
}
