//! A return address stack (RAS).
//!
//! Calls push their fall-through address; returns pop it as the predicted
//! target. A fixed-depth circular stack models the hardware: deep
//! recursion wraps and the stale entries mispredict, exactly as real RAS
//! overflow does.

/// A fixed-depth circular return-address stack.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    entries: Vec<u64>,
    top: usize,
    /// Live entries (saturates at capacity; older frames are overwritten).
    depth: usize,
    predictions: u64,
    mispredictions: u64,
}

impl ReturnAddressStack {
    /// Creates a RAS of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS needs at least one entry");
        Self { entries: vec![0; capacity], top: 0, depth: 0, predictions: 0, mispredictions: 0 }
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, return_address: u64) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = return_address;
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pops the predicted return target and scores it against the actual
    /// target. Returns `true` when the prediction was correct.
    pub fn pop_and_check(&mut self, actual_target: u64) -> bool {
        self.predictions += 1;
        let predicted = if self.depth > 0 {
            let v = self.entries[self.top];
            self.top = (self.top + self.entries.len() - 1) % self.entries.len();
            self.depth -= 1;
            Some(v)
        } else {
            None
        };
        let correct = predicted == Some(actual_target);
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Current live depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Return predictions made.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Return mispredictions (including underflow).
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }
}

impl Default for ReturnAddressStack {
    fn default() -> Self {
        Self::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_calls_predict_perfectly() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(0x100);
        ras.push(0x200);
        assert!(ras.pop_and_check(0x200));
        assert!(ras.pop_and_check(0x100));
        assert_eq!(ras.mispredictions(), 0);
    }

    #[test]
    fn underflow_mispredicts() {
        let mut ras = ReturnAddressStack::new(4);
        assert!(!ras.pop_and_check(0x100));
        assert_eq!(ras.mispredictions(), 1);
    }

    #[test]
    fn overflow_wraps_and_mispredicts_deep_frames() {
        let mut ras = ReturnAddressStack::new(4);
        for i in 0..6u64 {
            ras.push(0x1000 + i);
        }
        // The four most recent predictions are intact…
        for i in (2..6u64).rev() {
            assert!(ras.pop_and_check(0x1000 + i), "frame {i}");
        }
        // …the two oldest were overwritten.
        assert!(!ras.pop_and_check(0x1001));
        assert!(!ras.pop_and_check(0x1000));
    }

    #[test]
    fn depth_tracks_saturation() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.depth(), 2);
    }
}
