//! The statistical corrector (SC) of TAGE-SC-L.
//!
//! TAGE mispredicts statistically biased branches that correlate only
//! weakly with history: it keeps allocating entries that capture noise.
//! The SC is a GEHL-style adder tree ([Seznec'11]): several tables of
//! centered signed counters, indexed by the PC hashed with global history
//! of assorted short lengths plus a bias component, are summed together
//! with TAGE's own vote; when the magnitude of the sum clears an adaptive
//! threshold, the sign of the sum replaces TAGE's prediction.

use bputil::counter::SatCounter;
use bputil::hash::{fold_to_bits, mix64};
use bputil::history::{FoldedHistory, HistoryBuffer};

/// Weight of the TAGE vote inside the SC sum.
const TAGE_VOTE: i32 = 16;
/// Width of the component counters.
const CTR_BITS: u32 = 6;

/// Per-lookup SC state, consumed at update time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScLookup {
    /// The adder-tree sum, including the TAGE vote.
    pub sum: i32,
    /// The SC's own direction (sign of the sum).
    pub pred: bool,
    /// Whether the sum cleared the confidence threshold (SC overrides).
    pub confident: bool,
    /// Component indices (bias first, then one per history length).
    indices: [u32; MAX_COMPONENTS],
    num_components: usize,
}

const MAX_COMPONENTS: usize = 16;

/// The statistical corrector.
#[derive(Debug, Clone)]
pub struct StatisticalCorrector {
    /// One table per component: `components[0]` is the bias table indexed
    /// by PC and TAGE direction; the rest are GEHL tables.
    tables: Vec<Vec<SatCounter>>,
    folded: Vec<Option<FoldedHistory>>,
    index_bits: u32,
    /// Adaptive confidence threshold (O-GEHL style).
    threshold: i32,
    /// Smoothing counter for threshold adaptation.
    tc: SatCounter,
    overrides: u64,
}

impl StatisticalCorrector {
    /// Creates a corrector with `2^index_bits` entries per component and
    /// the given GEHL history lengths (length 0 = PC-only component).
    ///
    /// # Panics
    ///
    /// Panics if no history lengths are given or there are more than 15.
    #[must_use]
    pub fn new(index_bits: u32, history_lengths: &[usize]) -> Self {
        assert!(!history_lengths.is_empty(), "SC needs at least one component");
        assert!(history_lengths.len() < MAX_COMPONENTS, "too many SC components");
        let entries = 1usize << index_bits;
        let mut tables = vec![vec![SatCounter::new_signed(CTR_BITS); entries]]; // bias
        let mut folded = vec![None]; // bias has no history
        for &l in history_lengths {
            tables.push(vec![SatCounter::new_signed(CTR_BITS); entries]);
            folded.push((l > 0).then(|| FoldedHistory::new(l, index_bits)));
        }
        Self {
            tables,
            folded,
            index_bits,
            threshold: 6,
            tc: SatCounter::new_signed(7),
            overrides: 0,
        }
    }

    /// Times the SC overrode TAGE so far.
    #[must_use]
    pub fn overrides(&self) -> u64 {
        self.overrides
    }

    /// Current adaptive threshold.
    #[must_use]
    pub fn threshold(&self) -> i32 {
        self.threshold
    }

    fn component_index(&self, c: usize, pc: u64, tage_pred: bool) -> u32 {
        let mask = (1u32 << self.index_bits) - 1;
        let fold = self.folded[c].as_ref().map_or(0, FoldedHistory::value);
        let h = if c == 0 {
            // Bias component: PC plus the TAGE direction.
            mix64(pc ^ u64::from(tage_pred) << 1)
        } else {
            mix64(pc.rotate_left(c as u32 * 7) ^ u64::from(fold))
        };
        (fold_to_bits(h, self.index_bits)) as u32 & mask
    }

    /// Computes the SC decision for `pc` given TAGE's direction.
    #[must_use]
    pub fn lookup(&self, pc: u64, tage_pred: bool) -> ScLookup {
        let mut indices = [0u32; MAX_COMPONENTS];
        let mut sum: i32 = if tage_pred { TAGE_VOTE } else { -TAGE_VOTE };
        for (c, (slot, table)) in indices.iter_mut().zip(&self.tables).enumerate() {
            let i = self.component_index(c, pc, tage_pred);
            *slot = i;
            sum += 2 * i32::from(table[i as usize].value()) + 1;
        }
        ScLookup {
            sum,
            pred: sum >= 0,
            confident: sum.abs() > self.threshold,
            indices,
            num_components: self.tables.len(),
        }
    }

    /// The direction the composition should use.
    #[must_use]
    pub fn arbitrate(&mut self, lookup: &ScLookup, tage_pred: bool) -> bool {
        if lookup.confident && lookup.pred != tage_pred {
            self.overrides += 1;
            lookup.pred
        } else {
            tage_pred
        }
    }

    /// Trains the components and adapts the threshold (O-GEHL rules:
    /// update on a wrong final SC direction or on a low-confidence sum).
    pub fn train(&mut self, lookup: &ScLookup, taken: bool) {
        let correct = lookup.pred == taken;
        if !correct || lookup.sum.abs() <= self.threshold {
            for c in 0..lookup.num_components {
                self.tables[c][lookup.indices[c] as usize].update(taken);
            }
        }
        // Threshold adaptation, smoothed through `tc`.
        if !correct {
            self.tc.update(true);
            if self.tc.is_saturated() && self.tc.taken() {
                self.threshold = (self.threshold + 1).min(127);
                self.tc.set(0);
            }
        } else if lookup.sum.abs() <= self.threshold {
            self.tc.update(false);
            if self.tc.is_saturated() && !self.tc.taken() {
                self.threshold = (self.threshold - 1).max(4);
                self.tc.set(0);
            }
        }
    }

    /// Captures the component folded-history values for rollback.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u32> {
        self.folded.iter().map(|f| f.as_ref().map_or(0, FoldedHistory::value)).collect()
    }

    /// Restores folded histories captured by
    /// [`StatisticalCorrector::checkpoint`].
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint came from a different configuration.
    pub fn restore(&mut self, checkpoint: &[u32]) {
        assert_eq!(checkpoint.len(), self.folded.len(), "config mismatch");
        for (f, &v) in self.folded.iter_mut().zip(checkpoint) {
            if let Some(f) = f {
                f.restore(v);
            }
        }
    }

    /// Advances the component folded histories. Must be called with the
    /// global history buffer *before* the new outcome bit is pushed into
    /// it (same contract as [`FoldedHistory::update_before_push`]).
    pub fn update_history(&mut self, ghr: &HistoryBuffer, bit: bool) {
        for f in self.folded.iter_mut().flatten() {
            f.update_before_push(ghr, bit);
        }
    }

    /// [`StatisticalCorrector::update_history`] with branch-free folded
    /// updates ([`FoldedHistory::update_with_out_bit`]). Same contract,
    /// bit-identical results.
    pub fn update_history_fast(&mut self, ghr: &HistoryBuffer, bit: bool) {
        for f in self.folded.iter_mut().flatten() {
            let out = ghr.bit(f.original_len() - 1);
            f.update_with_out_bit(out, bit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc() -> StatisticalCorrector {
        StatisticalCorrector::new(8, &[0, 3, 8])
    }

    #[test]
    fn corrects_a_biased_branch_tage_gets_wrong() {
        // TAGE keeps saying "taken" for a branch that is 90% not-taken;
        // the SC must learn to override.
        let mut s = sc();
        let ghr = HistoryBuffer::new(64);
        let mut rng = bputil::rng::SplitMix64::new(3);
        let mut late_wrong = 0;
        for i in 0..5000 {
            let taken = rng.chance(1, 10);
            let l = s.lookup(0x500, true); // TAGE insists on taken
            let final_pred = s.arbitrate(&l, true);
            if i > 2000 && final_pred != taken {
                late_wrong += 1;
            }
            s.train(&l, taken);
            s.update_history(&ghr, taken);
        }
        // Without the SC every not-taken outcome (90%) would mispredict;
        // with it the rate must be near the 10% noise floor.
        assert!(late_wrong < 600, "late_wrong={late_wrong}");
        assert!(s.overrides() > 0);
    }

    #[test]
    fn agrees_with_confident_tage_on_easy_branches() {
        let mut s = sc();
        let ghr = HistoryBuffer::new(64);
        let mut disagreements = 0;
        for _ in 0..1000 {
            let l = s.lookup(0x600, true);
            if !s.arbitrate(&l, true) {
                disagreements += 1;
            }
            s.train(&l, true);
            s.update_history(&ghr, true);
        }
        assert!(disagreements < 50, "{disagreements} needless overrides");
    }

    #[test]
    fn threshold_stays_in_bounds() {
        let mut s = sc();
        let ghr = HistoryBuffer::new(64);
        let mut rng = bputil::rng::SplitMix64::new(4);
        for _ in 0..20_000 {
            let taken = rng.chance(1, 2);
            let l = s.lookup(rng.next_u64() % 1024, rng.chance(1, 2));
            s.train(&l, taken);
            s.update_history(&ghr, taken);
            assert!((4..=127).contains(&s.threshold()));
        }
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_components_panic() {
        let _ = StatisticalCorrector::new(8, &[]);
    }
}
