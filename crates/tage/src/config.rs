//! Configuration of TAGE and TAGE-SC-L instances, with storage accounting.

/// How the tagged tables are backed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StorageKind {
    /// Fixed-size direct-mapped tables with partial tags — the realistic
    /// hardware organisation.
    #[default]
    Finite,
    /// Unbounded associativity with entries additionally tagged by the
    /// full branch PC, as the paper's `Inf` configurations do (§VI): hash
    /// functions and table count stay unchanged so the comparison isolates
    /// pure capacity.
    Infinite,
}

/// Configuration of the core TAGE predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct TageConfig {
    /// Geometric history length per tagged table, ascending. Repeated
    /// lengths model CBP-5's twin tables with alternate hash functions
    /// (the table id perturbs the hash, so twins never alias).
    pub history_lengths: Vec<usize>,
    /// Partial tag width per tagged table (bits).
    pub tag_bits: Vec<u32>,
    /// log2 entries per tagged table.
    pub index_bits: u32,
    /// log2 entries of the bimodal base predictor.
    pub bimodal_bits: u32,
    /// Width of the signed prediction counters (3 in CBP-5).
    pub counter_bits: u32,
    /// Width of the usefulness counters (1–2).
    pub useful_bits: u32,
    /// Path-history width folded into table indices.
    pub path_bits: u32,
    /// Maximum tables examined when allocating after a misprediction.
    pub alloc_tries: usize,
    /// Storage backing (finite tables or the infinite study variant).
    pub storage: StorageKind,
    /// When `true`, record the set of patterns that ever provided a
    /// *useful* prediction per branch (Figs. 3b & 5 probes). Costs memory;
    /// off by default.
    pub track_useful: bool,
    /// PRNG seed for allocation tie-breaking.
    pub seed: u64,
}

impl TageConfig {
    /// The 21-table geometric series used throughout this reproduction.
    ///
    /// Lengths span 6..3000 as in CBP-5's 64 KiB TAGE-SC-L; the starred
    /// duplicates of the paper's LLBP length list (54, 78, 112, 161) are
    /// realised as twin tables with alternate hashes. The LLBP pattern
    /// lengths (§VI) are a strict subset of this list.
    pub const CBP5_LENGTHS: [usize; 21] = [
        6, 12, 18, 26, 36, 54, 54, 78, 78, 112, 112, 161, 161, 232, 336, 482, 695, 1010, 1444,
        2048, 3000,
    ];

    /// CBP-5-flavoured 64 KiB core TAGE: 21 tables of 1K entries.
    #[must_use]
    pub fn cbp64k() -> Self {
        let lengths = Self::CBP5_LENGTHS.to_vec();
        // Short-history tables use shorter tags, like CBP-5.
        let tag_bits = lengths
            .iter()
            .enumerate()
            .map(|(i, _)| {
                if i < 7 {
                    9
                } else if i < 14 {
                    11
                } else {
                    13
                }
            })
            .collect();
        Self {
            history_lengths: lengths,
            tag_bits,
            index_bits: 10,
            bimodal_bits: 13,
            counter_bits: 3,
            useful_bits: 1,
            path_bits: 27,
            alloc_tries: 3,
            storage: StorageKind::Finite,
            track_useful: false,
            seed: 0x7A6E,
        }
    }

    /// The same predictor with each tagged table scaled by `factor`
    /// (a power of two), as the paper's 128K–1M TSL configurations do.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a power of two.
    #[must_use]
    pub fn scaled(factor: u32) -> Self {
        assert!(factor.is_power_of_two(), "scale factor must be a power of two");
        let mut cfg = Self::cbp64k();
        cfg.index_bits += factor.trailing_zeros();
        cfg
    }

    /// The infinite-capacity study variant (`Inf TAGE` tables): unchanged
    /// hashes, entries tagged by full PC, unbounded associativity.
    #[must_use]
    pub fn infinite() -> Self {
        Self { storage: StorageKind::Infinite, ..Self::cbp64k() }
    }

    /// Number of tagged tables.
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.history_lengths.len()
    }

    /// Longest history length used.
    #[must_use]
    pub fn max_history(&self) -> usize {
        self.history_lengths.iter().copied().max().unwrap_or(0)
    }

    /// Storage cost in bits (tagged tables + bimodal). Infinite storage
    /// reports the finite-equivalent geometry cost and is only meaningful
    /// for labelling.
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        let entries = 1u64 << self.index_bits;
        let tagged: u64 = self
            .tag_bits
            .iter()
            .map(|&t| entries * u64::from(t + self.counter_bits + self.useful_bits))
            .sum();
        // Bimodal: 1 direction bit per entry + shared hysteresis (1 bit
        // per 4 entries), the CBP-5 split.
        let bimodal = (1u64 << self.bimodal_bits) + (1u64 << self.bimodal_bits) / 4;
        tagged + bimodal
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.history_lengths.is_empty() {
            return Err("at least one tagged table is required".into());
        }
        if self.tag_bits.len() != self.history_lengths.len() {
            return Err(format!(
                "tag_bits has {} entries but there are {} tables",
                self.tag_bits.len(),
                self.history_lengths.len()
            ));
        }
        if self.history_lengths.windows(2).any(|w| w[0] > w[1]) {
            return Err("history lengths must be ascending".into());
        }
        if self.history_lengths[0] == 0 {
            return Err("history lengths must be non-zero".into());
        }
        if !(1..=15).contains(&self.counter_bits) {
            return Err(format!("counter_bits out of range: {}", self.counter_bits));
        }
        if self.tag_bits.iter().any(|&t| !(4..=16).contains(&t)) {
            return Err("tag widths must be in 4..=16".into());
        }
        Ok(())
    }
}

impl Default for TageConfig {
    fn default() -> Self {
        Self::cbp64k()
    }
}

/// Configuration of the full TAGE-SC-L predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct TslConfig {
    /// Core TAGE configuration.
    pub tage: TageConfig,
    /// Enable the statistical corrector.
    pub sc_enabled: bool,
    /// log2 entries of each SC component table.
    pub sc_index_bits: u32,
    /// Global-history lengths of the SC's GEHL components.
    pub sc_history_lengths: Vec<usize>,
    /// Enable the loop predictor.
    pub loop_enabled: bool,
    /// log2 sets of the loop predictor (4-way associative).
    pub loop_index_bits: u32,
    /// Human-readable label used in reports ("64K TSL", …).
    pub label: String,
}

impl TslConfig {
    /// The baseline 64 KiB TAGE-SC-L (the paper's `64K TSL`).
    #[must_use]
    pub fn cbp64k() -> Self {
        Self {
            tage: TageConfig::cbp64k(),
            sc_enabled: true,
            sc_index_bits: 10,
            sc_history_lengths: vec![0, 3, 8, 12, 17, 27, 44],
            loop_enabled: true,
            loop_index_bits: 4,
            label: "64K TSL".into(),
        }
    }

    /// TSL with TAGE tables scaled by `factor` (the paper's 128K–1M TSL).
    /// The auxiliary components keep their baseline size, matching the
    /// paper's `Inf TAGE` isolation argument.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a power of two.
    #[must_use]
    pub fn scaled(factor: u32) -> Self {
        let mut cfg = Self::cbp64k();
        cfg.tage = TageConfig::scaled(factor);
        cfg.label = format!("{}K TSL", 64 * factor);
        cfg
    }

    /// `Inf TAGE`: unbounded TAGE tables, baseline SC and loop predictor.
    #[must_use]
    pub fn infinite_tage() -> Self {
        let mut cfg = Self::cbp64k();
        cfg.tage = TageConfig::infinite();
        cfg.label = "Inf TAGE".into();
        cfg
    }

    /// `Inf TSL`: unbounded TAGE tables *and* enlarged auxiliary
    /// components (the paper scales SC/loop tables to 2M entries).
    #[must_use]
    pub fn infinite_tsl() -> Self {
        let mut cfg = Self::infinite_tage();
        cfg.sc_index_bits = 21;
        cfg.loop_index_bits = 12;
        cfg.label = "Inf TSL".into();
        cfg
    }

    /// Storage bits of the whole composition (finite geometry).
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        let mut bits = self.tage.storage_bits();
        if self.sc_enabled {
            // 6-bit counters per GEHL/bias table entry.
            bits += (self.sc_history_lengths.len() as u64 + 2) * (1u64 << self.sc_index_bits) * 6;
        }
        if self.loop_enabled {
            // ~52 bits per loop entry, 4 ways per set.
            bits += 4 * (1u64 << self.loop_index_bits) * 52;
        }
        bits
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.tage.validate()?;
        if self.sc_enabled && self.sc_history_lengths.is_empty() {
            return Err("SC enabled but no component history lengths given".into());
        }
        Ok(())
    }
}

impl Default for TslConfig {
    fn default() -> Self {
        Self::cbp64k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_roughly_64_kib() {
        let bits = TslConfig::cbp64k().storage_bits();
        let kib = bits as f64 / 8192.0;
        assert!((40.0..80.0).contains(&kib), "baseline is {kib:.1} KiB");
    }

    #[test]
    fn scaled_grows_by_factor() {
        let base = TageConfig::cbp64k().storage_bits();
        let big = TageConfig::scaled(8).storage_bits();
        // Tagged tables grow 8x; bimodal stays, so ratio is slightly below 8.
        assert!(big > 6 * base && big < 9 * base);
    }

    #[test]
    fn llbp_lengths_are_a_subset() {
        let llbp = [12, 26, 54, 54, 78, 78, 112, 112, 161, 161, 232, 336, 482, 695, 1444, 3000];
        let mut pool: Vec<usize> = TageConfig::CBP5_LENGTHS.to_vec();
        for l in llbp {
            let pos = pool.iter().position(|&x| x == l).expect("length present");
            pool.remove(pos);
        }
    }

    #[test]
    fn validate_accepts_presets() {
        TslConfig::cbp64k().validate().unwrap();
        TslConfig::scaled(8).validate().unwrap();
        TslConfig::infinite_tage().validate().unwrap();
        TslConfig::infinite_tsl().validate().unwrap();
    }

    #[test]
    fn validate_rejects_descending_lengths() {
        let mut cfg = TageConfig::cbp64k();
        cfg.history_lengths = vec![10, 5];
        cfg.tag_bits = vec![9, 9];
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_mismatched_tags() {
        let mut cfg = TageConfig::cbp64k();
        cfg.tag_bits.pop();
        assert!(cfg.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn scaled_requires_power_of_two() {
        let _ = TageConfig::scaled(3);
    }

    #[test]
    fn labels_follow_paper_naming() {
        assert_eq!(TslConfig::cbp64k().label, "64K TSL");
        assert_eq!(TslConfig::scaled(8).label, "512K TSL");
        assert_eq!(TslConfig::infinite_tsl().label, "Inf TSL");
    }
}
