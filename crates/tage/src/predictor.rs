//! The driving interface shared by every predictor under study.

use llbp_trace::BranchRecord;

/// Which component supplied the final direction of the last prediction.
///
/// Used by the simulator to attribute predictions (e.g. the paper's
/// statistic that 49% of predictions come from the bimodal table, §VII-G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProviderKind {
    /// The bimodal base table.
    Bimodal,
    /// A tagged TAGE table (with its index).
    Tage {
        /// Index of the providing tagged table (0 = shortest history).
        table: usize,
    },
    /// The statistical corrector overrode TAGE.
    StatisticalCorrector,
    /// The loop predictor overrode.
    Loop,
    /// LLBP overrode the baseline predictor.
    Llbp,
}

impl ProviderKind {
    /// Number of distinct providers (the length of
    /// [`ProviderKind::LABELS`] and the exclusive upper bound of
    /// [`ProviderKind::ordinal`]).
    pub const COUNT: usize = 5;

    /// Report labels in [`ProviderKind::ordinal`] order — the single
    /// source of truth for the label↔ordinal mapping. The simulator's
    /// per-provider counting arrays, the report maps, and the memo-store
    /// deserializer all derive from this table, so a new provider only
    /// has to be added here and in `ordinal` (where a missing arm is a
    /// compile error).
    pub const LABELS: [&'static str; Self::COUNT] = ["bim", "tage", "sc", "loop", "llbp"];

    /// Dense index of this provider, in `0..ProviderKind::COUNT`.
    #[must_use]
    pub fn ordinal(self) -> usize {
        match self {
            ProviderKind::Bimodal => 0,
            ProviderKind::Tage { .. } => 1,
            ProviderKind::StatisticalCorrector => 2,
            ProviderKind::Loop => 3,
            ProviderKind::Llbp => 4,
        }
    }

    /// Short label for reports, derived from [`ProviderKind::LABELS`].
    #[must_use]
    pub fn label(self) -> &'static str {
        Self::LABELS[self.ordinal()]
    }

    /// Maps a label back to its interned `&'static str` from
    /// [`ProviderKind::LABELS`] (deserializers must key report maps with
    /// the same statics the simulator uses). Unknown labels return
    /// `None`, which readers treat as data from an incompatible version.
    #[must_use]
    pub fn intern_label(label: &str) -> Option<&'static str> {
        Self::LABELS.iter().find(|&&l| l == label).copied()
    }
}

/// Everything a predictor can say about how its most recent prediction
/// was formed — the provenance record behind one `predict` call.
///
/// This is the unit the `llbp-prov` side-stream captures: which
/// component provided, whether the providing counter was weak, what the
/// alternate and baseline predictions were, and (for composite
/// predictors) whether LLBP hit and overrode. Predictors that track
/// less detail leave the extra fields at their defaults; the only
/// fields every implementation must fill are `pred` and `provider`.
///
/// `pred` is filled by the *caller* of [`Predictor::last_prediction_info`]
/// (the trait method is `&self` and some implementations cannot recover
/// the final direction after the fact); the fused
/// [`Predictor::predict_train_info`] returns it already filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictionInfo {
    /// Final predicted direction.
    pub pred: bool,
    /// What the baseline (pre-override) predictor said. Equal to `pred`
    /// for non-composite predictors.
    pub baseline_pred: bool,
    /// Component that supplied the final direction.
    pub provider: ProviderKind,
    /// A tagged TAGE table hit (`provider` may still be bimodal if the
    /// alternate prediction was used or a corrector overrode).
    pub tage_hit: bool,
    /// Direction of the providing TAGE component counter.
    pub provider_pred: bool,
    /// The providing counter was weak (newly allocated / low confidence).
    pub provider_weak: bool,
    /// Direction of the alternate prediction (next-longest hit or bimodal).
    pub alt_pred: bool,
    /// The alternate prediction was chosen over the provider.
    pub used_alt: bool,
    /// Geometric history length of the providing table (0 = bimodal).
    pub provider_hist_len: u16,
    /// LLBP matched a pattern for this branch's context.
    pub llbp_hit: bool,
    /// Direction LLBP predicted (meaningful only when `llbp_hit`).
    pub llbp_pred: bool,
    /// The matching LLBP counter was weak.
    pub llbp_weak: bool,
    /// LLBP's prediction replaced the baseline's.
    pub llbp_override: bool,
    /// History length of the matching LLBP pattern (0 = no hit).
    pub llbp_hist_len: u16,
}

impl Default for PredictionInfo {
    fn default() -> Self {
        PredictionInfo {
            pred: false,
            baseline_pred: false,
            provider: ProviderKind::Bimodal,
            tage_hit: false,
            provider_pred: false,
            provider_weak: false,
            alt_pred: false,
            used_alt: false,
            provider_hist_len: 0,
            llbp_hit: false,
            llbp_pred: false,
            llbp_weak: false,
            llbp_override: false,
            llbp_hist_len: 0,
        }
    }
}

impl PredictionInfo {
    /// Minimal record for predictors that only track their provider:
    /// the final direction stands in for every component direction.
    #[must_use]
    pub fn from_provider(pred: bool, provider: ProviderKind) -> Self {
        PredictionInfo {
            pred,
            baseline_pred: pred,
            provider,
            provider_pred: pred,
            alt_pred: pred,
            ..PredictionInfo::default()
        }
    }

    /// Index of the providing tagged table, 0 for every other provider.
    #[must_use]
    pub fn provider_table(&self) -> u8 {
        match self.provider {
            ProviderKind::Tage { table } => table.min(u8::MAX as usize) as u8,
            _ => 0,
        }
    }
}

/// A trace-driven conditional branch direction predictor.
///
/// The driving protocol, per retired branch record:
///
/// 1. For conditional branches: call [`Predictor::predict`], compare with
///    the resolved direction, then call [`Predictor::train`].
/// 2. For **every** branch (conditional or not): call
///    [`Predictor::update_history`] afterwards, so global/path histories
///    and context registers advance.
///
/// This mirrors the CBP simulation loop; predictors may stash per-branch
/// metadata between `predict` and `train` (the calls are always paired
/// and in order).
pub trait Predictor {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains with the resolved direction of the branch last passed to
    /// [`Predictor::predict`].
    fn train(&mut self, pc: u64, taken: bool);

    /// Observes a retired branch of any kind, updating histories.
    fn update_history(&mut self, record: &BranchRecord);

    /// Fused [`Predictor::predict`] + [`Predictor::last_provider`] +
    /// [`Predictor::train`] for callers that resolve the branch
    /// immediately (trace-driven simulation). Must be observably identical
    /// to the split sequence; the default simply performs it. Implementors
    /// may override to skip per-call state that only exists to bridge the
    /// split (e.g. stashing a lookup between predict and train).
    fn predict_train(&mut self, pc: u64, taken: bool) -> (bool, ProviderKind) {
        let pred = self.predict(pc);
        let provider = self.last_provider();
        self.train(pc, taken);
        (pred, provider)
    }

    /// [`Predictor::update_history`], throughput-oriented: implementors
    /// may override with a bit-identical but faster history advance (the
    /// default is the reference path). Simulation backends other than the
    /// reference tier call this variant.
    fn update_history_fast(&mut self, record: &BranchRecord) {
        self.update_history(record);
    }

    /// The component that provided the most recent prediction.
    fn last_provider(&self) -> ProviderKind;

    /// Full provenance of the most recent prediction. Valid between
    /// [`Predictor::predict`] and [`Predictor::train`], like
    /// [`Predictor::last_provider`]. `pred` is the direction `predict`
    /// just returned — the default builds a minimal record from it and
    /// [`Predictor::last_provider`]; implementations with richer
    /// per-lookup state override, fill every field they track, and may
    /// ignore the argument (their stashed lookup already knows it).
    fn last_prediction_info(&self, pred: bool) -> PredictionInfo {
        PredictionInfo::from_provider(pred, self.last_provider())
    }

    /// Fused [`Predictor::predict`] + [`Predictor::last_prediction_info`] +
    /// [`Predictor::train`], the provenance-recording analogue of
    /// [`Predictor::predict_train`]. Must predict and train observably
    /// identically to the split sequence. The default performs the split
    /// sequence; implementors may override to fill the info record from
    /// the lookup they already computed.
    fn predict_train_info(&mut self, pc: u64, taken: bool) -> (bool, PredictionInfo) {
        let pred = self.predict(pc);
        let info = self.last_prediction_info(pred);
        self.train(pc, taken);
        (pred, info)
    }

    /// Human-readable configuration label (e.g. `"64K TSL"`).
    fn label(&self) -> &str;

    /// Nominal storage budget in bits (finite-geometry equivalent).
    fn storage_bits(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_labels() {
        assert_eq!(ProviderKind::Bimodal.label(), "bim");
        assert_eq!(ProviderKind::Tage { table: 3 }.label(), "tage");
        assert_eq!(ProviderKind::Llbp.label(), "llbp");
    }

    #[test]
    fn minimal_info_mirrors_the_final_direction() {
        let info = PredictionInfo::from_provider(true, ProviderKind::Tage { table: 7 });
        assert!(info.pred && info.baseline_pred && info.provider_pred && info.alt_pred);
        assert!(!info.llbp_hit && !info.llbp_override);
        assert_eq!(info.provider_table(), 7);
        assert_eq!(PredictionInfo::from_provider(false, ProviderKind::Bimodal).provider_table(), 0);
    }

    #[test]
    fn ordinal_label_roundtrip() {
        let all = [
            ProviderKind::Bimodal,
            ProviderKind::Tage { table: 0 },
            ProviderKind::StatisticalCorrector,
            ProviderKind::Loop,
            ProviderKind::Llbp,
        ];
        assert_eq!(all.len(), ProviderKind::COUNT);
        for (i, kind) in all.into_iter().enumerate() {
            assert_eq!(kind.ordinal(), i, "ordinals must be dense and in LABELS order");
            assert_eq!(ProviderKind::LABELS[kind.ordinal()], kind.label());
            assert_eq!(ProviderKind::intern_label(kind.label()), Some(kind.label()));
        }
        assert_eq!(ProviderKind::intern_label("nope"), None);
    }
}
