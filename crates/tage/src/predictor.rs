//! The driving interface shared by every predictor under study.

use llbp_trace::BranchRecord;

/// Which component supplied the final direction of the last prediction.
///
/// Used by the simulator to attribute predictions (e.g. the paper's
/// statistic that 49% of predictions come from the bimodal table, §VII-G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProviderKind {
    /// The bimodal base table.
    Bimodal,
    /// A tagged TAGE table (with its index).
    Tage {
        /// Index of the providing tagged table (0 = shortest history).
        table: usize,
    },
    /// The statistical corrector overrode TAGE.
    StatisticalCorrector,
    /// The loop predictor overrode.
    Loop,
    /// LLBP overrode the baseline predictor.
    Llbp,
}

impl ProviderKind {
    /// Number of distinct providers (the length of
    /// [`ProviderKind::LABELS`] and the exclusive upper bound of
    /// [`ProviderKind::ordinal`]).
    pub const COUNT: usize = 5;

    /// Report labels in [`ProviderKind::ordinal`] order — the single
    /// source of truth for the label↔ordinal mapping. The simulator's
    /// per-provider counting arrays, the report maps, and the memo-store
    /// deserializer all derive from this table, so a new provider only
    /// has to be added here and in `ordinal` (where a missing arm is a
    /// compile error).
    pub const LABELS: [&'static str; Self::COUNT] = ["bim", "tage", "sc", "loop", "llbp"];

    /// Dense index of this provider, in `0..ProviderKind::COUNT`.
    #[must_use]
    pub fn ordinal(self) -> usize {
        match self {
            ProviderKind::Bimodal => 0,
            ProviderKind::Tage { .. } => 1,
            ProviderKind::StatisticalCorrector => 2,
            ProviderKind::Loop => 3,
            ProviderKind::Llbp => 4,
        }
    }

    /// Short label for reports, derived from [`ProviderKind::LABELS`].
    #[must_use]
    pub fn label(self) -> &'static str {
        Self::LABELS[self.ordinal()]
    }

    /// Maps a label back to its interned `&'static str` from
    /// [`ProviderKind::LABELS`] (deserializers must key report maps with
    /// the same statics the simulator uses). Unknown labels return
    /// `None`, which readers treat as data from an incompatible version.
    #[must_use]
    pub fn intern_label(label: &str) -> Option<&'static str> {
        Self::LABELS.iter().find(|&&l| l == label).copied()
    }
}

/// A trace-driven conditional branch direction predictor.
///
/// The driving protocol, per retired branch record:
///
/// 1. For conditional branches: call [`Predictor::predict`], compare with
///    the resolved direction, then call [`Predictor::train`].
/// 2. For **every** branch (conditional or not): call
///    [`Predictor::update_history`] afterwards, so global/path histories
///    and context registers advance.
///
/// This mirrors the CBP simulation loop; predictors may stash per-branch
/// metadata between `predict` and `train` (the calls are always paired
/// and in order).
pub trait Predictor {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains with the resolved direction of the branch last passed to
    /// [`Predictor::predict`].
    fn train(&mut self, pc: u64, taken: bool);

    /// Observes a retired branch of any kind, updating histories.
    fn update_history(&mut self, record: &BranchRecord);

    /// Fused [`Predictor::predict`] + [`Predictor::last_provider`] +
    /// [`Predictor::train`] for callers that resolve the branch
    /// immediately (trace-driven simulation). Must be observably identical
    /// to the split sequence; the default simply performs it. Implementors
    /// may override to skip per-call state that only exists to bridge the
    /// split (e.g. stashing a lookup between predict and train).
    fn predict_train(&mut self, pc: u64, taken: bool) -> (bool, ProviderKind) {
        let pred = self.predict(pc);
        let provider = self.last_provider();
        self.train(pc, taken);
        (pred, provider)
    }

    /// [`Predictor::update_history`], throughput-oriented: implementors
    /// may override with a bit-identical but faster history advance (the
    /// default is the reference path). Simulation backends other than the
    /// reference tier call this variant.
    fn update_history_fast(&mut self, record: &BranchRecord) {
        self.update_history(record);
    }

    /// The component that provided the most recent prediction.
    fn last_provider(&self) -> ProviderKind;

    /// Human-readable configuration label (e.g. `"64K TSL"`).
    fn label(&self) -> &str;

    /// Nominal storage budget in bits (finite-geometry equivalent).
    fn storage_bits(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_labels() {
        assert_eq!(ProviderKind::Bimodal.label(), "bim");
        assert_eq!(ProviderKind::Tage { table: 3 }.label(), "tage");
        assert_eq!(ProviderKind::Llbp.label(), "llbp");
    }

    #[test]
    fn ordinal_label_roundtrip() {
        let all = [
            ProviderKind::Bimodal,
            ProviderKind::Tage { table: 0 },
            ProviderKind::StatisticalCorrector,
            ProviderKind::Loop,
            ProviderKind::Llbp,
        ];
        assert_eq!(all.len(), ProviderKind::COUNT);
        for (i, kind) in all.into_iter().enumerate() {
            assert_eq!(kind.ordinal(), i, "ordinals must be dense and in LABELS order");
            assert_eq!(ProviderKind::LABELS[kind.ordinal()], kind.label());
            assert_eq!(ProviderKind::intern_label(kind.label()), Some(kind.label()));
        }
        assert_eq!(ProviderKind::intern_label("nope"), None);
    }
}
