//! The driving interface shared by every predictor under study.

use llbp_trace::BranchRecord;

/// Which component supplied the final direction of the last prediction.
///
/// Used by the simulator to attribute predictions (e.g. the paper's
/// statistic that 49% of predictions come from the bimodal table, §VII-G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProviderKind {
    /// The bimodal base table.
    Bimodal,
    /// A tagged TAGE table (with its index).
    Tage {
        /// Index of the providing tagged table (0 = shortest history).
        table: usize,
    },
    /// The statistical corrector overrode TAGE.
    StatisticalCorrector,
    /// The loop predictor overrode.
    Loop,
    /// LLBP overrode the baseline predictor.
    Llbp,
}

impl ProviderKind {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProviderKind::Bimodal => "bim",
            ProviderKind::Tage { .. } => "tage",
            ProviderKind::StatisticalCorrector => "sc",
            ProviderKind::Loop => "loop",
            ProviderKind::Llbp => "llbp",
        }
    }
}

/// A trace-driven conditional branch direction predictor.
///
/// The driving protocol, per retired branch record:
///
/// 1. For conditional branches: call [`Predictor::predict`], compare with
///    the resolved direction, then call [`Predictor::train`].
/// 2. For **every** branch (conditional or not): call
///    [`Predictor::update_history`] afterwards, so global/path histories
///    and context registers advance.
///
/// This mirrors the CBP simulation loop; predictors may stash per-branch
/// metadata between `predict` and `train` (the calls are always paired
/// and in order).
pub trait Predictor {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains with the resolved direction of the branch last passed to
    /// [`Predictor::predict`].
    fn train(&mut self, pc: u64, taken: bool);

    /// Observes a retired branch of any kind, updating histories.
    fn update_history(&mut self, record: &BranchRecord);

    /// The component that provided the most recent prediction.
    fn last_provider(&self) -> ProviderKind;

    /// Human-readable configuration label (e.g. `"64K TSL"`).
    fn label(&self) -> &str;

    /// Nominal storage budget in bits (finite-geometry equivalent).
    fn storage_bits(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_labels() {
        assert_eq!(ProviderKind::Bimodal.label(), "bim");
        assert_eq!(ProviderKind::Tage { table: 3 }.label(), "tage");
        assert_eq!(ProviderKind::Llbp.label(), "llbp");
    }
}
