//! Classic baseline predictors: gshare, a two-level local-history
//! predictor, and the hashed perceptron.
//!
//! None of these appear in the paper's evaluation, but a branch-prediction
//! framework is only useful for new research if the canonical comparators
//! are on hand. All three implement [`Predictor`] and plug straight into
//! the simulator and harness:
//!
//! ```
//! use llbp_tage::classic::Gshare;
//! use llbp_tage::Predictor;
//!
//! let mut p = Gshare::new(14, 12);
//! let _ = p.predict(0x1000);
//! p.train(0x1000, true);
//! ```

use crate::predictor::{Predictor, ProviderKind};
use bputil::counter::SatCounter;
use bputil::hash::{fold_to_bits, mix64};
use llbp_trace::{BranchKind, BranchRecord};

/// gshare ([McFarling '93]): one table of 2-bit counters indexed by
/// `PC ⊕ global history`.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<SatCounter>,
    history: u64,
    history_bits: u32,
    label: String,
}

impl Gshare {
    /// Creates a gshare with `2^index_bits` counters and `history_bits`
    /// of global history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` exceeds 28 or `history_bits` exceeds 63.
    #[must_use]
    pub fn new(index_bits: u32, history_bits: u32) -> Self {
        assert!(index_bits <= 28, "table too large");
        assert!(history_bits <= 63, "history too long");
        Self {
            table: vec![SatCounter::new_signed(2); 1 << index_bits],
            history: 0,
            history_bits,
            label: format!("gshare-{index_bits}b"),
        }
    }

    fn index(&self, pc: u64) -> usize {
        let h = self.history & ((1u64 << self.history_bits) - 1).max(1);
        ((pc >> 2) ^ h) as usize & (self.table.len() - 1)
    }
}

impl Predictor for Gshare {
    fn predict(&mut self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }

    fn train(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
    }

    fn update_history(&mut self, record: &BranchRecord) {
        if record.kind() == BranchKind::Conditional {
            self.history = (self.history << 1) | u64::from(record.taken());
        }
    }

    fn last_provider(&self) -> ProviderKind {
        ProviderKind::Bimodal
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * 2 + u64::from(self.history_bits)
    }
}

/// A two-level predictor with per-branch local history (PAg flavour,
/// [Yeh & Patt '91]): a table of local history registers selects into a
/// shared pattern table of 2-bit counters.
#[derive(Debug, Clone)]
pub struct TwoLevelLocal {
    histories: Vec<u16>,
    pattern_table: Vec<SatCounter>,
    local_bits: u32,
    label: String,
}

impl TwoLevelLocal {
    /// Creates a predictor with `2^bht_bits` local history registers of
    /// `local_bits` bits and a `2^local_bits`-entry pattern table.
    ///
    /// # Panics
    ///
    /// Panics if `local_bits` is not in `1..=16` or `bht_bits` exceeds 24.
    #[must_use]
    pub fn new(bht_bits: u32, local_bits: u32) -> Self {
        assert!((1..=16).contains(&local_bits), "local history out of range");
        assert!(bht_bits <= 24, "history table too large");
        Self {
            histories: vec![0; 1 << bht_bits],
            pattern_table: vec![SatCounter::new_signed(2); 1 << local_bits],
            local_bits,
            label: format!("2level-{bht_bits}x{local_bits}"),
        }
    }

    fn history_index(&self, pc: u64) -> usize {
        (mix64(pc >> 2) as usize) & (self.histories.len() - 1)
    }

    fn pattern_index(&self, pc: u64) -> usize {
        let h = self.histories[self.history_index(pc)];
        (h as usize) & (self.pattern_table.len() - 1)
    }
}

impl Predictor for TwoLevelLocal {
    fn predict(&mut self, pc: u64) -> bool {
        self.pattern_table[self.pattern_index(pc)].taken()
    }

    fn train(&mut self, pc: u64, taken: bool) {
        let pi = self.pattern_index(pc);
        self.pattern_table[pi].update(taken);
        let hi = self.history_index(pc);
        let mask = (1u16 << self.local_bits) - 1;
        self.histories[hi] = ((self.histories[hi] << 1) | u16::from(taken)) & mask;
    }

    fn update_history(&mut self, _record: &BranchRecord) {
        // Local histories advance in `train`; no global state.
    }

    fn last_provider(&self) -> ProviderKind {
        ProviderKind::Bimodal
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn storage_bits(&self) -> u64 {
        self.histories.len() as u64 * u64::from(self.local_bits)
            + self.pattern_table.len() as u64 * 2
    }
}

/// The hashed perceptron ([Jiménez & Lin '01], hashed variant): signed
/// weight vectors dotted with the global history; magnitude-thresholded
/// training.
#[derive(Debug, Clone)]
pub struct HashedPerceptron {
    /// `tables[t][index]` = 8-bit weight; each table hashes a different
    /// history segment.
    tables: Vec<Vec<i8>>,
    history: u64,
    segment_bits: u32,
    threshold: i32,
    /// Per-prediction state: the last computed sum and indices.
    last: Option<(i32, Vec<usize>)>,
    label: String,
}

impl HashedPerceptron {
    /// Creates a perceptron with `num_tables` weight tables of
    /// `2^index_bits` 8-bit weights; table `t` hashes history bits
    /// `[t·segment, (t+1)·segment)`.
    ///
    /// # Panics
    ///
    /// Panics if `num_tables` is zero or the geometry exceeds 60 history
    /// bits.
    #[must_use]
    pub fn new(num_tables: usize, index_bits: u32, segment_bits: u32) -> Self {
        assert!(num_tables > 0, "need at least one table");
        assert!(num_tables as u32 * segment_bits <= 60, "history too long");
        // The classic θ = 1.93·h + 14 training threshold.
        let h = num_tables as f64 * f64::from(segment_bits);
        Self {
            tables: vec![vec![0i8; 1 << index_bits]; num_tables],
            history: 0,
            segment_bits,
            threshold: (1.93 * h + 14.0) as i32,
            last: None,
            label: format!("perceptron-{num_tables}x{index_bits}b"),
        }
    }

    fn compute(&self, pc: u64) -> (i32, Vec<usize>) {
        let mut sum = 0i32;
        let mut indices = Vec::with_capacity(self.tables.len());
        for (t, table) in self.tables.iter().enumerate() {
            let seg = (self.history >> (t as u32 * self.segment_bits))
                & ((1u64 << self.segment_bits) - 1);
            let i = fold_to_bits(mix64(pc ^ seg.rotate_left(17) ^ (t as u64) << 40), 30) as usize
                & (table.len() - 1);
            indices.push(i);
            sum += i32::from(table[i]);
        }
        (sum, indices)
    }
}

impl Predictor for HashedPerceptron {
    fn predict(&mut self, pc: u64) -> bool {
        let (sum, indices) = self.compute(pc);
        self.last = Some((sum, indices));
        sum >= 0
    }

    fn train(&mut self, _pc: u64, taken: bool) {
        let (sum, indices) = self.last.take().expect("train() without predict()");
        let correct = (sum >= 0) == taken;
        if !correct || sum.abs() <= self.threshold {
            for (t, &i) in indices.iter().enumerate() {
                let w = &mut self.tables[t][i];
                *w = if taken { w.saturating_add(1) } else { w.saturating_sub(1) };
            }
        }
    }

    fn update_history(&mut self, record: &BranchRecord) {
        if record.kind() == BranchKind::Conditional {
            self.history = (self.history << 1) | u64::from(record.taken());
        }
    }

    fn last_provider(&self) -> ProviderKind {
        ProviderKind::Bimodal
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn storage_bits(&self) -> u64 {
        self.tables.iter().map(|t| t.len() as u64 * 8).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut dyn Predictor, pc: u64, taken: bool) -> bool {
        let pred = p.predict(pc);
        p.train(pc, taken);
        p.update_history(&BranchRecord::conditional(pc, pc + 8, taken, 0));
        pred
    }

    fn late_errors<F: Fn(usize) -> bool>(p: &mut dyn Predictor, pc: u64, f: F, n: usize) -> usize {
        let mut wrong = 0;
        for i in 0..n {
            let taken = f(i);
            if drive(p, pc, taken) != taken && i > n / 2 {
                wrong += 1;
            }
        }
        wrong
    }

    #[test]
    fn gshare_learns_patterns() {
        let mut p = Gshare::new(12, 8);
        let wrong = late_errors(&mut p, 0x100, |i| i % 3 == 0, 3000);
        assert!(wrong < 60, "gshare failed a period-3 pattern: {wrong}");
    }

    #[test]
    fn two_level_learns_local_patterns() {
        let mut p = TwoLevelLocal::new(10, 10);
        // Interleave two branches with different periods: local history
        // separates them without global-history pollution.
        let mut wrong = 0;
        for i in 0..4000 {
            let a = i % 2 == 0;
            let b = i % 5 == 0;
            if drive(&mut p, 0xA00, a) != a && i > 2000 {
                wrong += 1;
            }
            if drive(&mut p, 0xB00, b) != b && i > 2000 {
                wrong += 1;
            }
        }
        assert!(wrong < 120, "two-level failed interleaved patterns: {wrong}");
    }

    #[test]
    fn perceptron_learns_linearly_separable_correlation() {
        // Outcome = previous outcome of the same branch (strong single-bit
        // correlation — exactly what a perceptron weights up).
        let mut p = HashedPerceptron::new(8, 12, 6);
        let mut wrong = 0;
        let mut last = false;
        for i in 0..4000 {
            let taken = last;
            if drive(&mut p, 0xC00, taken) != taken && i > 2000 {
                wrong += 1;
            }
            last = i % 7 < 3; // deterministic driver pattern
        }
        assert!(wrong < 200, "perceptron failed correlation: {wrong}");
    }

    #[test]
    fn storage_accounting() {
        assert_eq!(Gshare::new(10, 10).storage_bits(), 2 * 1024 + 10);
        assert_eq!(TwoLevelLocal::new(10, 10).storage_bits(), 10 * 1024 + 2 * 1024);
        assert_eq!(HashedPerceptron::new(4, 10, 6).storage_bits(), 4 * 1024 * 8);
    }

    #[test]
    fn labels_are_informative() {
        assert!(Gshare::new(10, 8).label().contains("gshare"));
        assert!(TwoLevelLocal::new(8, 8).label().contains("2level"));
        assert!(HashedPerceptron::new(4, 10, 6).label().contains("perceptron"));
    }

    #[test]
    #[should_panic(expected = "train() without predict()")]
    fn perceptron_protocol_enforced() {
        let mut p = HashedPerceptron::new(4, 10, 6);
        p.train(0x100, true);
    }
}
