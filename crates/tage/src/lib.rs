//! TAGE-SC-L: the state-of-the-art branch predictor the LLBP paper builds
//! on, reimplemented from scratch.
//!
//! The crate provides:
//!
//! * [`Tage`] — the core TAgged GEometric history length predictor
//!   ([Seznec & Michaud '06], CBP-5 '16 configuration): a bimodal base
//!   table plus tagged tables indexed by geometrically increasing folded
//!   global history, with usefulness-guided allocation.
//! * [`StatisticalCorrector`] — a GEHL-style corrector that revises
//!   statistically biased TAGE predictions.
//! * [`LoopPredictor`] — a confidence-gated loop-exit predictor.
//! * [`TageScl`] — the full TAGE-SC-L composition, configurable from 64 KiB
//!   ([`TslConfig::cbp64k`]) up to 1 MiB and beyond by table scaling, plus
//!   the paper's *infinite* variants (`Inf TAGE`, `Inf TSL`) which give the
//!   tagged tables unbounded associativity while keeping the hash
//!   functions unchanged (§VI).
//! * [`Predictor`] — the driving trait shared with LLBP and the simulator.
//!
//! # Example
//!
//! ```
//! use llbp_tage::{Predictor, TageScl, TslConfig};
//! use llbp_trace::{Workload, WorkloadSpec};
//!
//! let mut tsl = TageScl::new(TslConfig::cbp64k());
//! let trace = WorkloadSpec::named(Workload::Http).with_branches(2_000).generate();
//! let mut mispredicts = 0u64;
//! for r in &trace {
//!     if r.kind() == llbp_trace::BranchKind::Conditional {
//!         let pred = tsl.predict(r.pc());
//!         mispredicts += u64::from(pred != r.taken());
//!         tsl.train(r.pc(), r.taken());
//!     }
//!     tsl.update_history(r);
//! }
//! assert!(mispredicts < 2_000);
//! ```

pub mod btb;
pub mod classic;
pub mod config;
pub mod frontend;
pub mod ittage;
pub mod loop_pred;
pub mod predictor;
pub mod ras;
pub mod sc;
pub mod tage;
pub mod useful;

pub use btb::Btb;
pub use config::{StorageKind, TageConfig, TslConfig};
pub use frontend::{FrontEnd, FrontEndStats, ResetReason};
pub use ittage::Ittage;
pub use loop_pred::LoopPredictor;
pub use predictor::{PredictionInfo, Predictor, ProviderKind};
pub use ras::ReturnAddressStack;
pub use sc::StatisticalCorrector;
pub use tage::{Tage, TageLookup};
pub use useful::UsefulPatternTracker;

mod tsl;
pub use tsl::{TageScl, TslCheckpoint, TslLookup};
