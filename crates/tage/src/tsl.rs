//! The TAGE-SC-L composition: core TAGE, statistical corrector and loop
//! predictor, arbitrated as in CBP-5.

use crate::config::TslConfig;
use crate::loop_pred::{LoopLookup, LoopPredictor};
use crate::predictor::{PredictionInfo, Predictor, ProviderKind};
use crate::sc::{ScLookup, StatisticalCorrector};
use crate::tage::{Tage, TageLookup, UpdateMode};
use bputil::history::HistoryBuffer;
use llbp_trace::{BranchKind, BranchRecord};

/// Everything computed during a TAGE-SC-L lookup.
#[derive(Debug, Clone, Copy)]
pub struct TslLookup {
    /// The core TAGE lookup (LLBP arbitrates against its history length).
    pub tage: TageLookup,
    /// The statistical corrector's view of the *used* datapath, when SC
    /// is enabled.
    pub sc: Option<ScLookup>,
    /// The loop predictor's view, when enabled.
    pub loop_lookup: Option<LoopLookup>,
    /// Final direction of the composition.
    pub pred: bool,
    /// What the composition would have predicted *without* an injected
    /// TAGE replacement (equals `pred` when nothing was injected). Used
    /// to attribute good/bad overrides (Fig. 15).
    pub baseline_pred: bool,
    /// Which component provided the final direction.
    pub provider: ProviderKind,
}

impl TslLookup {
    /// Provenance record of this lookup. The LLBP fields stay at their
    /// defaults; the composite predictor in `crates/core` fills them in
    /// when it wraps this lookup.
    #[must_use]
    pub fn prediction_info(&self) -> PredictionInfo {
        PredictionInfo {
            pred: self.pred,
            baseline_pred: self.baseline_pred,
            provider: self.provider,
            tage_hit: self.tage.provider.is_some(),
            provider_pred: self.tage.provider_pred,
            provider_weak: self.tage.provider_weak,
            alt_pred: self.tage.alt_pred,
            used_alt: self.tage.used_alt,
            provider_hist_len: self.tage.provider_hist_len.min(u16::MAX as usize) as u16,
            ..PredictionInfo::default()
        }
    }
}

/// The full TAGE-SC-L predictor (the paper's `64K TSL` baseline and its
/// scaled/infinite variants, depending on [`TslConfig`]).
#[derive(Debug, Clone)]
pub struct TageScl {
    tage: Tage,
    sc: Option<StatisticalCorrector>,
    loop_pred: Option<LoopPredictor>,
    cfg: TslConfig,
    pending: Option<TslLookup>,
    predictions: u64,
}

impl TageScl {
    /// Builds the composition from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`TslConfig::validate`].
    #[must_use]
    pub fn new(cfg: TslConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("invalid TSL config: {e}"));
        let tage = Tage::new(cfg.tage.clone());
        let sc = cfg
            .sc_enabled
            .then(|| StatisticalCorrector::new(cfg.sc_index_bits, &cfg.sc_history_lengths));
        let loop_pred = cfg.loop_enabled.then(|| LoopPredictor::new(cfg.loop_index_bits));
        Self { tage, sc, loop_pred, cfg, pending: None, predictions: 0 }
    }

    /// The configuration this instance was built from.
    #[must_use]
    pub fn config(&self) -> &TslConfig {
        &self.cfg
    }

    /// Access to the core TAGE (for probes and LLBP composition).
    #[must_use]
    pub fn tage(&self) -> &Tage {
        &self.tage
    }

    /// The shared global history buffer.
    #[must_use]
    pub fn ghr(&self) -> &HistoryBuffer {
        self.tage.ghr()
    }

    /// Performs a full lookup without committing any state (except loop
    /// predictor engagement statistics).
    pub fn lookup(&mut self, pc: u64) -> TslLookup {
        let tage = self.tage.lookup(pc);
        self.finish_lookup(pc, tage, None)
    }

    /// Completes a lookup from a pre-computed TAGE stage, optionally
    /// *replacing* TAGE's direction with `inject` before the statistical
    /// corrector and loop predictor apply — the composition point LLBP
    /// uses (§V-B, footnote 2: LLBP overrides TAGE, and the auxiliary
    /// correctors then operate on the combined prediction).
    pub fn finish_lookup(&mut self, pc: u64, tage: TageLookup, inject: Option<bool>) -> TslLookup {
        let injected_dir = inject.unwrap_or(tage.pred);
        let mut pred = injected_dir;
        let mut baseline = tage.pred;
        let mut provider = if inject.is_some() {
            ProviderKind::Llbp
        } else {
            match tage.provider {
                Some(t) if !tage.used_alt => ProviderKind::Tage { table: t },
                Some(_) => tage
                    .alt_table
                    .map_or(ProviderKind::Bimodal, |t| ProviderKind::Tage { table: t }),
                None => ProviderKind::Bimodal,
            }
        };

        let sc = self.sc.as_mut().map(|s| {
            // The real datapath corrects the (possibly injected) direction;
            // the baseline path is recomputed for attribution only.
            let l = s.lookup(pc, pred);
            let corrected = s.arbitrate(&l, pred);
            if corrected != pred {
                provider = ProviderKind::StatisticalCorrector;
                pred = corrected;
            }
            if inject.is_some() {
                let lb = s.lookup(pc, baseline);
                if lb.confident && lb.pred != baseline {
                    baseline = lb.pred;
                }
            } else {
                baseline = pred;
            }
            l
        });

        let loop_lookup = self.loop_pred.as_mut().map(|lp| {
            let l = lp.lookup(pc);
            if let Some(p) = l.pred {
                if p != pred {
                    provider = ProviderKind::Loop;
                }
                pred = p;
                baseline = p;
            }
            l
        });

        TslLookup { tage, sc, loop_lookup, pred, baseline_pred: baseline, provider }
    }

    /// The core TAGE stage only (pure); combine with
    /// [`TageScl::finish_lookup`].
    #[must_use]
    pub fn lookup_tage(&self, pc: u64) -> TageLookup {
        self.tage.lookup(pc)
    }

    /// Trains all components with the resolved direction.
    ///
    /// With [`UpdateMode::Cancelled`] (LLBP overrode the baseline), the
    /// core TAGE cancels its update per §V-D; the SC and loop predictor
    /// still observe the outcome — they are outcome-trained side tables
    /// whose state LLBP does not replicate.
    pub fn commit(&mut self, lookup: &TslLookup, taken: bool, mode: UpdateMode) {
        if let (Some(lp), Some(ll)) = (&mut self.loop_pred, &lookup.loop_lookup) {
            lp.train(ll, taken, lookup.tage.pred, lookup.tage.pred != taken);
        }
        if let (Some(sc), Some(sl)) = (&mut self.sc, &lookup.sc) {
            sc.train(sl, taken);
        }
        self.tage.commit(&lookup.tage, taken, mode);
    }

    /// Advances histories for a retired branch of any kind.
    pub fn update_history(&mut self, record: &BranchRecord) {
        if let Some(sc) = &mut self.sc {
            let bit = if record.kind() == BranchKind::Conditional {
                record.taken()
            } else {
                ((record.pc() >> 2) ^ (record.target() >> 3)) & 1 == 1
            };
            sc.update_history(self.tage.ghr(), bit);
        }
        self.tage.update_history(record);
    }

    /// [`TageScl::update_history`] via the branch-free folded-register
    /// paths ([`Tage::update_history_fast`]). Bit-identical; same SC-first
    /// ordering (the SC folds against the GHR before the push).
    pub fn update_history_fast(&mut self, record: &BranchRecord) {
        if let Some(sc) = &mut self.sc {
            let bit = if record.kind() == BranchKind::Conditional {
                record.taken()
            } else {
                ((record.pc() >> 2) ^ (record.target() >> 3)) & 1 == 1
            };
            sc.update_history_fast(self.tage.ghr(), bit);
        }
        self.tage.update_history_fast(record);
    }

    /// Conditional branch predictions made so far.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Captures all speculative history state across TAGE and the SC
    /// (§V-E2). Prediction tables train at commit and are not included.
    #[must_use]
    pub fn checkpoint(&self) -> TslCheckpoint {
        TslCheckpoint {
            tage: self.tage.checkpoint(),
            sc: self.sc.as_ref().map(StatisticalCorrector::checkpoint),
        }
    }

    /// Restores a checkpoint taken by [`TageScl::checkpoint`].
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint came from a different configuration.
    pub fn restore(&mut self, checkpoint: &TslCheckpoint) {
        self.tage.restore(&checkpoint.tage);
        match (&mut self.sc, &checkpoint.sc) {
            (Some(sc), Some(cp)) => sc.restore(cp),
            (None, None) => {}
            _ => panic!("checkpoint SC presence does not match configuration"),
        }
    }
}

/// A snapshot of TAGE-SC-L's speculative history state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TslCheckpoint {
    tage: crate::tage::TageCheckpoint,
    sc: Option<Vec<u32>>,
}

impl Predictor for TageScl {
    fn predict(&mut self, pc: u64) -> bool {
        let lookup = self.lookup(pc);
        let pred = lookup.pred;
        self.pending = Some(lookup);
        self.predictions += 1;
        pred
    }

    fn train(&mut self, pc: u64, taken: bool) {
        let lookup = self.pending.take().expect("train() without a matching predict()");
        debug_assert_eq!(lookup.tage.pc, pc, "train() PC does not match predict()");
        self.commit(&lookup, taken, UpdateMode::Full);
    }

    fn predict_train(&mut self, pc: u64, taken: bool) -> (bool, ProviderKind) {
        // Fused lookup+commit: the ~0.5 KiB `TslLookup` never round-trips
        // through `self.pending` (predict stashes it, train takes it back
        // out), it lives on this stack frame only. `pending` stays `None`,
        // which is indistinguishable from the split path after `train()`.
        let lookup = self.lookup(pc);
        self.predictions += 1;
        let out = (lookup.pred, lookup.provider);
        self.commit(&lookup, taken, UpdateMode::Full);
        out
    }

    fn predict_train_info(&mut self, pc: u64, taken: bool) -> (bool, PredictionInfo) {
        // Same fusion as `predict_train`: the provenance record is filled
        // straight from the lookup this frame already computed, so the
        // recording path adds a few stores, not a second lookup.
        let lookup = self.lookup(pc);
        self.predictions += 1;
        let out = (lookup.pred, lookup.prediction_info());
        self.commit(&lookup, taken, UpdateMode::Full);
        out
    }

    fn update_history(&mut self, record: &BranchRecord) {
        TageScl::update_history(self, record);
    }

    fn update_history_fast(&mut self, record: &BranchRecord) {
        TageScl::update_history_fast(self, record);
    }

    fn last_provider(&self) -> ProviderKind {
        self.pending.as_ref().map_or(ProviderKind::Bimodal, |l| l.provider)
    }

    fn last_prediction_info(&self, pred: bool) -> PredictionInfo {
        self.pending.as_ref().map_or_else(
            || PredictionInfo::from_provider(pred, ProviderKind::Bimodal),
            TslLookup::prediction_info,
        )
    }

    fn label(&self) -> &str {
        &self.cfg.label
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TslConfig;
    use llbp_trace::{Workload, WorkloadSpec};

    /// Runs a workload through a predictor and returns MPKI.
    fn mpki(cfg: TslConfig, workload: Workload, branches: usize) -> f64 {
        let trace = WorkloadSpec::named(workload).with_branches(branches).generate();
        let mut p = TageScl::new(cfg);
        let mut mispredicts = 0u64;
        for r in &trace {
            if r.kind() == BranchKind::Conditional {
                let l = p.lookup(r.pc());
                if l.pred != r.taken() {
                    mispredicts += 1;
                }
                p.commit(&l, r.taken(), UpdateMode::Full);
            }
            TageScl::update_history(&mut p, r);
        }
        mispredicts as f64 * 1000.0 / trace.instructions() as f64
    }

    #[test]
    fn baseline_predicts_far_better_than_chance() {
        let trace = WorkloadSpec::named(Workload::Http).with_branches(50_000).generate();
        let mut p = TageScl::new(TslConfig::cbp64k());
        let mut mispredicts = 0u64;
        let mut conds = 0u64;
        for r in &trace {
            if r.kind() == BranchKind::Conditional {
                conds += 1;
                if p.predict(r.pc()) != r.taken() {
                    mispredicts += 1;
                }
                p.train(r.pc(), r.taken());
            }
            Predictor::update_history(&mut p, r);
        }
        // Even warming up on a short trace the predictor must beat a
        // static guess by a wide margin (the workload's taken rate is
        // ≈0.5, so chance is ≈0.5).
        let rate = mispredicts as f64 / conds as f64;
        assert!(rate < 0.25, "misprediction rate {rate:.3} too high");
    }

    #[test]
    fn fast_paths_are_bit_identical_to_reference_paths() {
        // Drive two clones of the full TAGE-SC-L over the same trace: one
        // through the split reference sequence, one through the fused
        // `predict_train` + branch-free `update_history_fast`. Every
        // prediction, every provider, and the complete speculative history
        // state must agree at every step — this is the contract that lets
        // the non-reference simulation backends use the fast paths.
        let trace = WorkloadSpec::named(Workload::Kafka).with_branches(20_000).generate();
        let mut slow = TageScl::new(TslConfig::cbp64k());
        let mut fast = slow.clone();
        let mut prov = slow.clone();
        for (i, r) in trace.iter().enumerate() {
            if r.kind() == BranchKind::Conditional {
                let pred = slow.predict(r.pc());
                let provider = Predictor::last_provider(&slow);
                let info = Predictor::last_prediction_info(&slow, pred);
                slow.train(r.pc(), r.taken());
                let (fast_pred, fast_provider) = fast.predict_train(r.pc(), r.taken());
                assert_eq!(pred, fast_pred, "prediction diverged at record {i}");
                assert_eq!(provider, fast_provider, "provider diverged at record {i}");
                let (prov_pred, prov_info) = prov.predict_train_info(r.pc(), r.taken());
                assert_eq!(pred, prov_pred, "info-path prediction diverged at record {i}");
                assert_eq!(info, prov_info, "provenance record diverged at record {i}");
                assert_eq!(info.pred, pred);
                assert_eq!(info.provider, provider);
            }
            Predictor::update_history(&mut slow, r);
            Predictor::update_history_fast(&mut fast, r);
            Predictor::update_history_fast(&mut prov, r);
            assert_eq!(slow.checkpoint(), fast.checkpoint(), "history diverged at record {i}");
            assert_eq!(slow.checkpoint(), prov.checkpoint(), "info-path history diverged at {i}");
        }
        assert_eq!(slow.predictions(), fast.predictions());
        assert_eq!(slow.predictions(), prov.predictions());
    }

    #[test]
    fn infinite_beats_baseline() {
        let base = mpki(TslConfig::cbp64k(), Workload::NodeApp, 120_000);
        let inf = mpki(TslConfig::infinite_tage(), Workload::NodeApp, 120_000);
        assert!(inf < base, "Inf TAGE ({inf:.3} MPKI) should beat 64K TSL ({base:.3} MPKI)");
    }

    #[test]
    fn scaled_beats_baseline() {
        let base = mpki(TslConfig::cbp64k(), Workload::Tpcc, 120_000);
        let big = mpki(TslConfig::scaled(8), Workload::Tpcc, 120_000);
        assert!(big < base, "512K TSL ({big:.3} MPKI) should beat 64K TSL ({base:.3} MPKI)");
    }

    #[test]
    #[should_panic(expected = "train() without a matching predict()")]
    fn train_requires_predict() {
        let mut p = TageScl::new(TslConfig::cbp64k());
        p.train(0x1000, true);
    }

    #[test]
    fn provider_is_reported() {
        let mut p = TageScl::new(TslConfig::cbp64k());
        let _ = p.predict(0x1000);
        // Fresh predictor: bimodal provides.
        assert_eq!(p.last_provider(), ProviderKind::Bimodal);
        p.train(0x1000, true);
    }

    #[test]
    fn label_and_storage() {
        let p = TageScl::new(TslConfig::cbp64k());
        assert_eq!(p.label(), "64K TSL");
        assert!(p.storage_bits() > 0);
    }
}
