//! The core TAGE predictor: a bimodal base plus tagged tables indexed by
//! geometrically increasing folded global history.
//!
//! The implementation follows the CBP-5 TAGE-SC-L structure ([Seznec'16]):
//! partial-tag matching with provider/alternate selection, weak-entry
//! `use_alt_on_na` arbitration, usefulness-guided allocation with a global
//! tick-based reset, and folded histories maintained incrementally.
//!
//! Two storage backings are supported (§VI of the paper): realistic finite
//! direct-mapped tables, and the *infinite* study variant where entries
//! carry the full branch PC and associativity is unbounded while hash
//! functions stay identical.

use crate::config::{StorageKind, TageConfig};
use crate::useful::UsefulPatternTracker;
use bputil::counter::{SatCounter, UnsignedCounter};
use bputil::hash::{tage_index, tage_tag};
use bputil::history::{FoldedHistory, HistoryBuffer, PathHistory};
use bputil::rng::SplitMix64;
use llbp_trace::{BranchKind, BranchRecord};
use std::collections::HashMap;

/// Upper bound on tagged tables, sized generously above CBP-5's 30.
pub const MAX_TABLES: usize = 32;

/// One tagged-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    tag: u32,
    ctr: SatCounter,
    useful: UnsignedCounter,
    valid: bool,
}

impl Entry {
    fn empty(counter_bits: u32, useful_bits: u32) -> Self {
        Self {
            tag: 0,
            ctr: SatCounter::new_signed(counter_bits),
            useful: UnsignedCounter::new(useful_bits),
            valid: false,
        }
    }
}

/// Key of an infinite-storage entry: `(table, index, tag, pc)` — the full
/// PC tag removes aliasing while the index/tag hashes stay unchanged.
type InfKey = (u8, u64, u32, u64);

/// Everything computed during a TAGE lookup, consumed again at update.
///
/// LLBP reads `provider_hist_len` to arbitrate by history length (§V-B).
#[derive(Debug, Clone, Copy)]
pub struct TageLookup {
    /// The PC this lookup was made for.
    pub pc: u64,
    /// Per-table indices (only the first `num_tables` are meaningful).
    pub indices: [u64; MAX_TABLES],
    /// Per-table partial tags.
    pub tags: [u32; MAX_TABLES],
    /// Longest-history matching table, if any.
    pub provider: Option<usize>,
    /// Direction predicted by the provider entry.
    pub provider_pred: bool,
    /// `true` when the provider entry's counter is in a weak state.
    pub provider_weak: bool,
    /// Next-longest matching table (alternate provider).
    pub alt_table: Option<usize>,
    /// Alternate prediction (table or bimodal fallback).
    pub alt_pred: bool,
    /// Bimodal direction for this PC.
    pub bim_pred: bool,
    /// Final TAGE direction after `use_alt_on_na` arbitration.
    pub pred: bool,
    /// Whether the alternate prediction was chosen over a weak provider.
    pub used_alt: bool,
    /// History length of the providing table (0 when bimodal provides or
    /// the alternate was used with no alternate table).
    pub provider_hist_len: usize,
}

/// How a resolved branch should update TAGE state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Normal training.
    Full,
    /// LLBP overrode the prediction: TAGE cancels its update (§V-D).
    Cancelled,
}

/// The core TAGE predictor.
#[derive(Debug, Clone)]
pub struct Tage {
    cfg: TageConfig,
    // --- histories ---
    ghr: HistoryBuffer,
    path: PathHistory,
    folded_index: Vec<FoldedHistory>,
    folded_tag0: Vec<FoldedHistory>,
    folded_tag1: Vec<FoldedHistory>,
    // --- storage ---
    bim_dir: Vec<bool>,
    bim_hyst: Vec<bool>,
    tables: Vec<Vec<Entry>>,
    infinite: HashMap<InfKey, Entry>,
    // --- policy state ---
    rng: SplitMix64,
    use_alt_on_na: SatCounter,
    /// Allocation-pressure tick: grows on failed allocations; clearing all
    /// useful bits when saturated (CBP-5's aging).
    tick: u32,
    // --- probes ---
    tracker: Option<UsefulPatternTracker>,
    allocations: u64,
    alloc_failures: u64,
}

impl Tage {
    /// Creates a TAGE predictor from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`TageConfig::validate`].
    #[must_use]
    pub fn new(cfg: TageConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("invalid TAGE config: {e}"));
        assert!(cfg.num_tables() <= MAX_TABLES, "too many tables");
        let ghr = HistoryBuffer::new(cfg.max_history() + 64);
        let path = PathHistory::new(cfg.path_bits);
        let folded_index = cfg
            .history_lengths
            .iter()
            .map(|&l| FoldedHistory::new(l, cfg.index_bits))
            .collect();
        let folded_tag0 = cfg
            .history_lengths
            .iter()
            .zip(&cfg.tag_bits)
            .map(|(&l, &t)| FoldedHistory::new(l, t))
            .collect();
        let folded_tag1 = cfg
            .history_lengths
            .iter()
            .zip(&cfg.tag_bits)
            .map(|(&l, &t)| FoldedHistory::new(l, (t - 1).max(1)))
            .collect();
        let tables = match cfg.storage {
            StorageKind::Finite => cfg
                .history_lengths
                .iter()
                .map(|_| {
                    vec![Entry::empty(cfg.counter_bits, cfg.useful_bits); 1 << cfg.index_bits]
                })
                .collect(),
            StorageKind::Infinite => Vec::new(),
        };
        let tracker = cfg.track_useful.then(UsefulPatternTracker::new);
        let mut use_alt_on_na = SatCounter::new_signed(4);
        use_alt_on_na.set(0);
        Self {
            rng: SplitMix64::new(cfg.seed),
            ghr,
            path,
            folded_index,
            folded_tag0,
            folded_tag1,
            bim_dir: vec![false; 1 << cfg.bimodal_bits],
            bim_hyst: vec![true; 1 << (cfg.bimodal_bits - 2)],
            tables,
            infinite: HashMap::new(),
            use_alt_on_na,
            tick: 0,
            tracker,
            allocations: 0,
            alloc_failures: 0,
            cfg,
        }
    }

    /// The configuration this instance was built from.
    #[must_use]
    pub fn config(&self) -> &TageConfig {
        &self.cfg
    }

    /// Read-only access to the useful-pattern tracker, when enabled.
    #[must_use]
    pub fn useful_tracker(&self) -> Option<&UsefulPatternTracker> {
        self.tracker.as_ref()
    }

    /// Successful allocations so far.
    #[must_use]
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Failed allocation attempts (no free entry found) so far.
    #[must_use]
    pub fn alloc_failures(&self) -> u64 {
        self.alloc_failures
    }

    /// Number of live entries in infinite storage (0 for finite storage).
    #[must_use]
    pub fn infinite_entries(&self) -> usize {
        self.infinite.len()
    }

    fn bim_index(&self, pc: u64) -> usize {
        // Hash rather than truncate: plain low bits systematically alias
        // for the strided PC layouts compilers (and our synthetic
        // workloads) produce.
        (bputil::hash::mix64(pc >> 2) as usize) & (self.bim_dir.len() - 1)
    }

    fn entry(&self, table: usize, index: u64, tag: u32, pc: u64) -> Option<&Entry> {
        match self.cfg.storage {
            StorageKind::Finite => {
                let e = &self.tables[table][index as usize];
                (e.valid && e.tag == tag).then_some(e)
            }
            StorageKind::Infinite => self.infinite.get(&(table as u8, index, tag, pc)),
        }
    }

    fn entry_mut(&mut self, table: usize, index: u64, tag: u32, pc: u64) -> Option<&mut Entry> {
        match self.cfg.storage {
            StorageKind::Finite => {
                let e = &mut self.tables[table][index as usize];
                (e.valid && e.tag == tag).then_some(e)
            }
            StorageKind::Infinite => self.infinite.get_mut(&(table as u8, index, tag, pc)),
        }
    }

    /// Performs a full lookup for the conditional branch at `pc`.
    #[must_use]
    pub fn lookup(&self, pc: u64) -> TageLookup {
        let n = self.cfg.num_tables();
        let mut indices = [0u64; MAX_TABLES];
        let mut tags = [0u32; MAX_TABLES];
        for t in 0..n {
            indices[t] = tage_index(
                pc,
                self.folded_index[t].value(),
                self.path.value(),
                t as u32,
                self.cfg.index_bits,
            );
            tags[t] = tage_tag(
                pc ^ (t as u64).rotate_left(11),
                self.folded_tag0[t].value(),
                self.folded_tag1[t].value(),
                self.cfg.tag_bits[t],
            );
        }

        let bim_pred = self.bim_dir[self.bim_index(pc)];

        let mut provider = None;
        let mut alt_table = None;
        for t in (0..n).rev() {
            if self.entry(t, indices[t], tags[t], pc).is_some() {
                if provider.is_none() {
                    provider = Some(t);
                } else {
                    alt_table = Some(t);
                    break;
                }
            }
        }

        let (provider_pred, provider_weak) = provider
            .and_then(|t| self.entry(t, indices[t], tags[t], pc))
            .map_or((bim_pred, false), |e| (e.ctr.taken(), e.ctr.is_weak()));
        let alt_pred = alt_table
            .and_then(|t| self.entry(t, indices[t], tags[t], pc))
            .map_or(bim_pred, |e| e.ctr.taken());

        // Newly allocated (weak) providers are statistically unreliable;
        // a global counter learns whether the alternate does better.
        let used_alt = provider.is_some() && provider_weak && self.use_alt_on_na.taken();
        let pred = if provider.is_none() {
            bim_pred
        } else if used_alt {
            alt_pred
        } else {
            provider_pred
        };

        let provider_hist_len = match (used_alt, provider, alt_table) {
            (false, Some(p), _) => self.cfg.history_lengths[p],
            (true, _, Some(a)) => self.cfg.history_lengths[a],
            _ => 0,
        };

        TageLookup {
            pc,
            indices,
            tags,
            provider,
            provider_pred,
            provider_weak,
            alt_table,
            alt_pred,
            bim_pred,
            pred,
            used_alt,
            provider_hist_len,
        }
    }

    /// Trains the predictor with the resolved direction.
    ///
    /// `lookup` must be the value returned by [`Tage::lookup`] for this
    /// same dynamic branch, *before* any intervening history update.
    pub fn commit(&mut self, lookup: &TageLookup, taken: bool, mode: UpdateMode) {
        if mode == UpdateMode::Cancelled {
            return;
        }
        let pc = lookup.pc;

        // 1. Usefulness + use_alt_on_na bookkeeping.
        if let Some(p) = lookup.provider {
            let provider_correct = lookup.provider_pred == taken;
            let alt_differs = lookup.alt_pred != lookup.provider_pred;
            if alt_differs {
                if let Some(e) = self.entry_mut(p, lookup.indices[p], lookup.tags[p], pc) {
                    if provider_correct {
                        e.useful.increment();
                    } else {
                        e.useful.decrement();
                    }
                }
                if lookup.provider_weak {
                    // Learn whether weak providers should defer to alt.
                    self.use_alt_on_na.update(lookup.alt_pred == taken);
                }
                if provider_correct {
                    if let Some(tr) = &mut self.tracker {
                        tr.record(pc, p as u8, lookup.indices[p], lookup.tags[p]);
                    }
                }
            }

            // 2. Counter updates: provider always; the chosen alternate too.
            if let Some(e) = self.entry_mut(p, lookup.indices[p], lookup.tags[p], pc) {
                e.ctr.update(taken);
            }
            if lookup.used_alt {
                if let Some(a) = lookup.alt_table {
                    if let Some(e) = self.entry_mut(a, lookup.indices[a], lookup.tags[a], pc) {
                        e.ctr.update(taken);
                    }
                } else {
                    self.update_bimodal(pc, taken);
                }
            }
        } else {
            self.update_bimodal(pc, taken);
        }

        // 3. Allocation on a wrong final TAGE prediction.
        if lookup.pred != taken {
            let start = lookup.provider.map_or(0, |p| p + 1);
            if start < self.cfg.num_tables() {
                self.allocate(lookup, taken, start);
            }
        }
    }

    fn update_bimodal(&mut self, pc: u64, taken: bool) {
        let i = self.bim_index(pc);
        let h = i >> 2; // hysteresis shared across 4 direction entries
        if self.bim_dir[i] == taken {
            self.bim_hyst[h] = true;
        } else if self.bim_hyst[h] {
            self.bim_hyst[h] = false;
        } else {
            self.bim_dir[i] = taken;
        }
    }

    fn allocate(&mut self, lookup: &TageLookup, taken: bool, start: usize) {
        let n = self.cfg.num_tables();
        // CBP-style randomised start: skip forward geometrically so twin
        // tables share allocation pressure.
        let mut first = start;
        for _ in 0..2 {
            if first + 1 < n && self.rng.chance(1, 2) {
                first += 1;
            }
        }

        match self.cfg.storage {
            StorageKind::Infinite => {
                // Unbounded storage: always allocate in the first candidate.
                let t = first.min(n - 1);
                let key = (t as u8, lookup.indices[t], lookup.tags[t], lookup.pc);
                let e = self
                    .infinite
                    .entry(key)
                    .or_insert_with(|| Entry::empty(self.cfg.counter_bits, self.cfg.useful_bits));
                e.valid = true;
                e.tag = lookup.tags[t];
                e.ctr = SatCounter::weak(self.cfg.counter_bits, taken);
                self.allocations += 1;
            }
            StorageKind::Finite => {
                let mut done = false;
                let last = (first + self.cfg.alloc_tries).min(n);
                for t in first..last {
                    let slot = &mut self.tables[t][lookup.indices[t] as usize];
                    if !slot.valid || slot.useful.is_zero() {
                        *slot = Entry {
                            tag: lookup.tags[t],
                            ctr: SatCounter::weak(self.cfg.counter_bits, taken),
                            useful: UnsignedCounter::new(self.cfg.useful_bits),
                            valid: true,
                        };
                        self.allocations += 1;
                        done = true;
                        break;
                    }
                }
                if done {
                    self.tick = self.tick.saturating_sub(1);
                } else {
                    // All candidates useful: age them and bump the global
                    // pressure tick.
                    self.alloc_failures += 1;
                    for t in first..(first + self.cfg.alloc_tries).min(n) {
                        self.tables[t][lookup.indices[t] as usize].useful.decrement();
                    }
                    self.tick += 1;
                    if self.tick >= 1024 {
                        self.reset_useful();
                        self.tick = 0;
                    }
                }
            }
        }
    }

    fn reset_useful(&mut self) {
        for table in &mut self.tables {
            for e in table.iter_mut() {
                e.useful.halve();
            }
        }
    }

    /// Advances global, folded and path histories for a retired branch of
    /// any kind. Conditional branches insert their outcome; unconditional
    /// branches insert a PC/target-derived path bit, which lets long
    /// histories encode calling context.
    pub fn update_history(&mut self, record: &BranchRecord) {
        let bit = if record.kind == BranchKind::Conditional {
            record.taken
        } else {
            ((record.pc >> 2) ^ (record.target >> 3)) & 1 == 1
        };
        for f in self
            .folded_index
            .iter_mut()
            .chain(self.folded_tag0.iter_mut())
            .chain(self.folded_tag1.iter_mut())
        {
            f.update_before_push(&self.ghr, bit);
        }
        self.ghr.push(bit);
        self.path.push(record.pc >> 2);
    }

    /// The global history buffer (exposed for composition and tests).
    #[must_use]
    pub fn ghr(&self) -> &HistoryBuffer {
        &self.ghr
    }

    /// Captures all speculative history state (§V-E2): the GHR, the path
    /// history and every folded register. Table contents are *not*
    /// checkpointed — they are trained at commit, so wrong-path execution
    /// never touches them in this model.
    #[must_use]
    pub fn checkpoint(&self) -> TageCheckpoint {
        TageCheckpoint {
            ghr: self.ghr.checkpoint(),
            path: self.path.value(),
            folded_index: self.folded_index.iter().map(FoldedHistory::value).collect(),
            folded_tag0: self.folded_tag0.iter().map(FoldedHistory::value).collect(),
            folded_tag1: self.folded_tag1.iter().map(FoldedHistory::value).collect(),
        }
    }

    /// Restores a checkpoint taken by [`Tage::checkpoint`], rolling back
    /// all speculative history updates made since.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint came from a differently-configured
    /// predictor.
    pub fn restore(&mut self, checkpoint: &TageCheckpoint) {
        assert_eq!(checkpoint.folded_index.len(), self.folded_index.len(), "config mismatch");
        self.ghr.restore(&checkpoint.ghr);
        self.path.restore(checkpoint.path);
        for (f, &v) in self.folded_index.iter_mut().zip(&checkpoint.folded_index) {
            f.restore(v);
        }
        for (f, &v) in self.folded_tag0.iter_mut().zip(&checkpoint.folded_tag0) {
            f.restore(v);
        }
        for (f, &v) in self.folded_tag1.iter_mut().zip(&checkpoint.folded_tag1) {
            f.restore(v);
        }
    }
}

/// A snapshot of TAGE's speculative history state (§V-E2 rollback).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageCheckpoint {
    ghr: bputil::history::HistoryCheckpoint,
    path: u64,
    folded_index: Vec<u32>,
    folded_tag0: Vec<u32>,
    folded_tag1: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TageConfig;

    fn small_cfg() -> TageConfig {
        TageConfig {
            history_lengths: vec![4, 8, 16, 32],
            tag_bits: vec![9, 9, 11, 11],
            index_bits: 7,
            bimodal_bits: 8,
            ..TageConfig::cbp64k()
        }
    }

    fn drive(tage: &mut Tage, pc: u64, taken: bool) -> bool {
        let l = tage.lookup(pc);
        tage.commit(&l, taken, UpdateMode::Full);
        tage.update_history(&BranchRecord::conditional(pc, pc + 8, taken, 0));
        l.pred
    }

    #[test]
    fn learns_a_constant_branch() {
        let mut t = Tage::new(small_cfg());
        let mut wrong = 0;
        for _ in 0..200 {
            if !drive(&mut t, 0x1000, true) {
                wrong += 1;
            }
        }
        assert!(wrong < 10, "{wrong} mispredicts on an always-taken branch");
    }

    #[test]
    fn learns_a_short_pattern() {
        let mut t = Tage::new(small_cfg());
        let pattern = [true, true, false];
        let mut wrong_late = 0;
        for i in 0..3000 {
            let taken = pattern[i % 3];
            let pred = drive(&mut t, 0x2000, taken);
            if i > 2000 && pred != taken {
                wrong_late += 1;
            }
        }
        assert!(wrong_late < 50, "{wrong_late} late mispredicts on a period-3 pattern");
    }

    #[test]
    fn learns_history_correlation() {
        // Branch B's outcome equals branch A's previous outcome: pure
        // global-history correlation the bimodal cannot capture.
        let mut t = Tage::new(small_cfg());
        let mut rng = SplitMix64::new(5);
        let mut last_a = false;
        let mut wrong_late = 0;
        for i in 0..4000 {
            let a_taken = rng.chance(1, 2);
            drive(&mut t, 0xA000, a_taken);
            let b_taken = last_a;
            let pred = drive(&mut t, 0xB000, b_taken);
            if i > 3000 && pred != b_taken {
                wrong_late += 1;
            }
            last_a = a_taken;
        }
        assert!(wrong_late < 100, "{wrong_late} late mispredicts on correlated branch");
    }

    #[test]
    fn cancelled_update_freezes_state() {
        let mut t = Tage::new(small_cfg());
        for _ in 0..100 {
            drive(&mut t, 0x3000, true);
        }
        let before = t.allocations();
        // A mispredicted branch with a cancelled update must not allocate.
        let l = t.lookup(0x3000);
        t.commit(&l, !l.pred, UpdateMode::Cancelled);
        assert_eq!(t.allocations(), before);
    }

    #[test]
    fn infinite_storage_grows_without_eviction() {
        let mut cfg = small_cfg();
        cfg.storage = StorageKind::Infinite;
        let mut t = Tage::new(cfg);
        let mut rng = SplitMix64::new(9);
        for i in 0..3000 {
            let pc = 0x1000 + (i % 64) * 16;
            drive(&mut t, pc, rng.chance(1, 2));
        }
        assert!(t.infinite_entries() > 100);
        assert_eq!(t.alloc_failures(), 0, "infinite storage never fails to allocate");
    }

    #[test]
    fn infinite_beats_finite_on_capacity_stress() {
        // Many branches each needing its own pattern: a tiny finite TAGE
        // thrashes; infinite does not.
        let run = |storage: StorageKind| -> u64 {
            let mut cfg = small_cfg();
            cfg.index_bits = 4; // deliberately tiny
            cfg.storage = storage;
            let mut t = Tage::new(cfg);
            let mut rng = SplitMix64::new(7);
            let mut mispredicts = 0;
            // Each branch alternates with its own period in 2..6.
            let mut phase = vec![0usize; 48];
            for i in 0..30_000 {
                let b = (rng.next_u64() % 48) as usize;
                let pc = 0x4000 + (b as u64) * 64;
                let period = 2 + b % 5;
                let taken = phase[b].is_multiple_of(period);
                phase[b] += 1;
                let l = t.lookup(pc);
                if i > 10_000 && l.pred != taken {
                    mispredicts += 1;
                }
                t.commit(&l, taken, UpdateMode::Full);
                t.update_history(&BranchRecord::conditional(pc, pc + 8, taken, 0));
            }
            mispredicts
        };
        let finite = run(StorageKind::Finite);
        let infinite = run(StorageKind::Infinite);
        assert!(
            infinite < finite,
            "infinite ({infinite}) should beat finite ({finite}) under capacity stress"
        );
    }

    #[test]
    fn useful_tracking_records_patterns() {
        let mut cfg = small_cfg();
        cfg.track_useful = true;
        let mut t = Tage::new(cfg);
        let mut rng = SplitMix64::new(11);
        let mut last = false;
        for _ in 0..4000 {
            let a = rng.chance(1, 2);
            drive(&mut t, 0xA00, a);
            drive(&mut t, 0xB00, last);
            last = a;
        }
        let tracker = t.useful_tracker().expect("tracking enabled");
        assert!(tracker.total_patterns() > 0, "some patterns must be useful");
    }

    #[test]
    fn lookup_is_pure() {
        let t = Tage::new(small_cfg());
        let a = t.lookup(0x1234);
        let b = t.lookup(0x1234);
        assert_eq!(a.pred, b.pred);
        assert_eq!(a.indices[..4], b.indices[..4]);
    }
}
