//! The core TAGE predictor: a bimodal base plus tagged tables indexed by
//! geometrically increasing folded global history.
//!
//! The implementation follows the CBP-5 TAGE-SC-L structure ([Seznec'16]):
//! partial-tag matching with provider/alternate selection, weak-entry
//! `use_alt_on_na` arbitration, usefulness-guided allocation with a global
//! tick-based reset, and folded histories maintained incrementally.
//!
//! Two storage backings are supported (§VI of the paper): realistic finite
//! direct-mapped tables, and the *infinite* study variant where entries
//! carry the full branch PC and associativity is unbounded while hash
//! functions stay identical.

use crate::config::{StorageKind, TageConfig};
use crate::useful::UsefulPatternTracker;
use bputil::counter::{SatCounter, UnsignedCounter};
use bputil::hash::{tage_tag, FastHashMap, IndexCtx};
use bputil::history::{FoldedHistory, HistoryBuffer, PathHistory};
use bputil::rng::SplitMix64;
use llbp_trace::{BranchKind, BranchRecord};

/// Upper bound on tagged tables, sized generously above CBP-5's 30.
pub const MAX_TABLES: usize = 32;

/// One tagged-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    tag: u32,
    ctr: SatCounter,
    useful: UnsignedCounter,
    valid: bool,
}

impl Entry {
    fn empty(counter_bits: u32, useful_bits: u32) -> Self {
        Self {
            tag: 0,
            ctr: SatCounter::new_signed(counter_bits),
            useful: UnsignedCounter::new(useful_bits),
            valid: false,
        }
    }
}

/// One infinite-storage pattern: the owning table and the exact
/// `(index, tag)` pair it was allocated under. The full-PC key (the map
/// key) removes aliasing while the index/tag hashes stay unchanged.
/// Slots for one PC form a singly-linked chain through the arena
/// (`next`, [`NO_SLOT`]-terminated).
#[derive(Debug, Clone)]
struct InfSlot {
    table: u8,
    tag: u32,
    next: u32,
    index: u64,
    entry: Entry,
}

/// Chain terminator for [`InfSlot::next`].
const NO_SLOT: u32 = u32::MAX;

impl InfSlot {
    #[inline]
    fn matches(&self, table: usize, index: u64, tag: u32) -> bool {
        self.table as usize == table && self.index == index && self.tag == tag
    }
}

/// Everything computed during a TAGE lookup, consumed again at update.
///
/// LLBP reads `provider_hist_len` to arbitrate by history length (§V-B).
#[derive(Debug, Clone, Copy)]
pub struct TageLookup {
    /// The PC this lookup was made for.
    pub pc: u64,
    /// Per-table indices (only the first `num_tables` are meaningful).
    pub indices: [u64; MAX_TABLES],
    /// Per-table partial tags.
    pub tags: [u32; MAX_TABLES],
    /// Longest-history matching table, if any.
    pub provider: Option<usize>,
    /// Direction predicted by the provider entry.
    pub provider_pred: bool,
    /// `true` when the provider entry's counter is in a weak state.
    pub provider_weak: bool,
    /// Next-longest matching table (alternate provider).
    pub alt_table: Option<usize>,
    /// Alternate prediction (table or bimodal fallback).
    pub alt_pred: bool,
    /// Bimodal direction for this PC.
    pub bim_pred: bool,
    /// Final TAGE direction after `use_alt_on_na` arbitration.
    pub pred: bool,
    /// Whether the alternate prediction was chosen over a weak provider.
    pub used_alt: bool,
    /// History length of the providing table (0 when bimodal provides or
    /// the alternate was used with no alternate table).
    pub provider_hist_len: usize,
}

/// How a resolved branch should update TAGE state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Normal training.
    Full,
    /// LLBP overrode the prediction: TAGE cancels its update (§V-D).
    Cancelled,
}

/// The core TAGE predictor.
#[derive(Debug, Clone)]
pub struct Tage {
    cfg: TageConfig,
    // --- histories ---
    ghr: HistoryBuffer,
    path: PathHistory,
    folded_index: Vec<FoldedHistory>,
    folded_tag0: Vec<FoldedHistory>,
    folded_tag1: Vec<FoldedHistory>,
    // --- storage ---
    bim_dir: Vec<bool>,
    bim_hyst: Vec<bool>,
    tables: Vec<Vec<Entry>>,
    /// Infinite-storage backing, grouped by branch PC: `infinite_head`
    /// maps a PC to the head of its slot chain inside `infinite_arena`.
    /// A prediction costs one hash probe plus a chain walk instead of one
    /// scattered map probe per table — with a flat `(table, index, tag,
    /// pc)`-keyed map the ~`num_tables` random probes per branch dominate
    /// the infinite-variant runs. A single growing arena (rather than a
    /// `Vec` per PC) keeps the allocator out of the hot path and makes
    /// teardown two frees instead of thousands.
    infinite_head: FastHashMap<u64, u32>,
    infinite_arena: Vec<InfSlot>,
    // --- policy state ---
    rng: SplitMix64,
    use_alt_on_na: SatCounter,
    /// Allocation-pressure tick: grows on failed allocations; clearing all
    /// useful bits when saturated (CBP-5's aging).
    tick: u32,
    // --- probes ---
    tracker: Option<UsefulPatternTracker>,
    allocations: u64,
    alloc_failures: u64,
}

impl Tage {
    /// Creates a TAGE predictor from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`TageConfig::validate`].
    #[must_use]
    pub fn new(cfg: TageConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("invalid TAGE config: {e}"));
        assert!(cfg.num_tables() <= MAX_TABLES, "too many tables");
        let ghr = HistoryBuffer::new(cfg.max_history() + 64);
        let path = PathHistory::new(cfg.path_bits);
        let folded_index =
            cfg.history_lengths.iter().map(|&l| FoldedHistory::new(l, cfg.index_bits)).collect();
        let folded_tag0 = cfg
            .history_lengths
            .iter()
            .zip(&cfg.tag_bits)
            .map(|(&l, &t)| FoldedHistory::new(l, t))
            .collect();
        let folded_tag1 = cfg
            .history_lengths
            .iter()
            .zip(&cfg.tag_bits)
            .map(|(&l, &t)| FoldedHistory::new(l, (t - 1).max(1)))
            .collect();
        let tables = match cfg.storage {
            StorageKind::Finite => cfg
                .history_lengths
                .iter()
                .map(|_| vec![Entry::empty(cfg.counter_bits, cfg.useful_bits); 1 << cfg.index_bits])
                .collect(),
            StorageKind::Infinite => Vec::new(),
        };
        let tracker = cfg.track_useful.then(UsefulPatternTracker::new);
        let mut use_alt_on_na = SatCounter::new_signed(4);
        use_alt_on_na.set(0);
        Self {
            rng: SplitMix64::new(cfg.seed),
            ghr,
            path,
            folded_index,
            folded_tag0,
            folded_tag1,
            bim_dir: vec![false; 1 << cfg.bimodal_bits],
            bim_hyst: vec![true; 1 << (cfg.bimodal_bits - 2)],
            tables,
            infinite_head: FastHashMap::default(),
            infinite_arena: Vec::new(),
            use_alt_on_na,
            tick: 0,
            tracker,
            allocations: 0,
            alloc_failures: 0,
            cfg,
        }
    }

    /// The configuration this instance was built from.
    #[must_use]
    pub fn config(&self) -> &TageConfig {
        &self.cfg
    }

    /// Read-only access to the useful-pattern tracker, when enabled.
    #[must_use]
    pub fn useful_tracker(&self) -> Option<&UsefulPatternTracker> {
        self.tracker.as_ref()
    }

    /// Successful allocations so far.
    #[must_use]
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Failed allocation attempts (no free entry found) so far.
    #[must_use]
    pub fn alloc_failures(&self) -> u64 {
        self.alloc_failures
    }

    /// Number of live entries in infinite storage (0 for finite storage).
    #[must_use]
    pub fn infinite_entries(&self) -> usize {
        self.infinite_arena.len()
    }

    fn bim_index(&self, pc: u64) -> usize {
        // Hash rather than truncate: plain low bits systematically alias
        // for the strided PC layouts compilers (and our synthetic
        // workloads) produce.
        (bputil::hash::mix64(pc >> 2) as usize) & (self.bim_dir.len() - 1)
    }

    /// Walks `pc`'s slot chain for the slot matching `(table, index, tag)`,
    /// returning its arena position.
    fn find_slot(&self, table: usize, index: u64, tag: u32, pc: u64) -> Option<u32> {
        let mut cur = self.infinite_head.get(&pc).copied().unwrap_or(NO_SLOT);
        while cur != NO_SLOT {
            let s = &self.infinite_arena[cur as usize];
            if s.matches(table, index, tag) {
                return Some(cur);
            }
            cur = s.next;
        }
        None
    }

    fn entry(&self, table: usize, index: u64, tag: u32, pc: u64) -> Option<&Entry> {
        match self.cfg.storage {
            StorageKind::Finite => {
                let e = &self.tables[table][index as usize];
                (e.valid && e.tag == tag).then_some(e)
            }
            StorageKind::Infinite => self
                .find_slot(table, index, tag, pc)
                .map(|i| &self.infinite_arena[i as usize].entry),
        }
    }

    fn entry_mut(&mut self, table: usize, index: u64, tag: u32, pc: u64) -> Option<&mut Entry> {
        match self.cfg.storage {
            StorageKind::Finite => {
                let e = &mut self.tables[table][index as usize];
                (e.valid && e.tag == tag).then_some(e)
            }
            StorageKind::Infinite => self
                .find_slot(table, index, tag, pc)
                .map(|i| &mut self.infinite_arena[i as usize].entry),
        }
    }

    /// Performs a full lookup for the conditional branch at `pc`.
    #[must_use]
    pub fn lookup(&self, pc: u64) -> TageLookup {
        let n = self.cfg.num_tables();
        let mut indices = [0u64; MAX_TABLES];
        let mut tags = [0u32; MAX_TABLES];
        // The PC scramble and path masking are identical for every table;
        // hoist them so the per-table loop only mixes the folded history.
        let idx_ctx = IndexCtx::new(pc, self.path.value(), self.cfg.index_bits);
        for t in 0..n {
            indices[t] = idx_ctx.index(self.folded_index[t].value(), t as u32);
            tags[t] = tage_tag(
                pc ^ (t as u64).rotate_left(11),
                self.folded_tag0[t].value(),
                self.folded_tag1[t].value(),
                self.cfg.tag_bits[t],
            );
        }

        let bim_pred = self.bim_dir[self.bim_index(pc)];

        // One storage probe per table: the provider's and alternate's
        // counter state is captured during the scan instead of re-probing
        // the winning entries afterwards.
        let mut provider = None;
        let mut provider_state = None;
        let mut alt_table = None;
        let mut alt_state = None;
        match self.cfg.storage {
            StorageKind::Finite => {
                for t in (0..n).rev() {
                    if let Some(e) = self.entry(t, indices[t], tags[t], pc) {
                        if provider.is_none() {
                            provider = Some(t);
                            provider_state = Some((e.ctr.taken(), e.ctr.is_weak()));
                        } else {
                            alt_table = Some(t);
                            alt_state = Some(e.ctr.taken());
                            break;
                        }
                    }
                }
            }
            StorageKind::Infinite => {
                // Infinite storage chains all of this PC's patterns
                // together: a single hash probe plus one chain walk finds
                // the two longest-history matches, instead of one
                // scattered probe per table. At most one slot per table can
                // match the current (index, tag), so tracking the top two
                // table numbers reproduces the reverse scan exactly.
                let mut cur = self.infinite_head.get(&pc).copied().unwrap_or(NO_SLOT);
                while cur != NO_SLOT {
                    let s = &self.infinite_arena[cur as usize];
                    let t = s.table as usize;
                    if t < n && s.matches(t, indices[t], tags[t]) {
                        match provider {
                            None => {
                                provider = Some(t);
                                provider_state = Some((s.entry.ctr.taken(), s.entry.ctr.is_weak()));
                            }
                            Some(p) if t > p => {
                                alt_table = provider;
                                alt_state = provider_state.map(|(taken, _)| taken);
                                provider = Some(t);
                                provider_state = Some((s.entry.ctr.taken(), s.entry.ctr.is_weak()));
                            }
                            Some(_) => {
                                if alt_table.is_none_or(|a| t > a) {
                                    alt_table = Some(t);
                                    alt_state = Some(s.entry.ctr.taken());
                                }
                            }
                        }
                    }
                    cur = s.next;
                }
            }
        }

        let (provider_pred, provider_weak) = provider_state.unwrap_or((bim_pred, false));
        let alt_pred = alt_state.unwrap_or(bim_pred);

        // Newly allocated (weak) providers are statistically unreliable;
        // a global counter learns whether the alternate does better.
        let used_alt = provider.is_some() && provider_weak && self.use_alt_on_na.taken();
        let pred = if provider.is_none() {
            bim_pred
        } else if used_alt {
            alt_pred
        } else {
            provider_pred
        };

        let provider_hist_len = match (used_alt, provider, alt_table) {
            (false, Some(p), _) => self.cfg.history_lengths[p],
            (true, _, Some(a)) => self.cfg.history_lengths[a],
            _ => 0,
        };

        TageLookup {
            pc,
            indices,
            tags,
            provider,
            provider_pred,
            provider_weak,
            alt_table,
            alt_pred,
            bim_pred,
            pred,
            used_alt,
            provider_hist_len,
        }
    }

    /// Trains the predictor with the resolved direction.
    ///
    /// `lookup` must be the value returned by [`Tage::lookup`] for this
    /// same dynamic branch, *before* any intervening history update.
    pub fn commit(&mut self, lookup: &TageLookup, taken: bool, mode: UpdateMode) {
        if mode == UpdateMode::Cancelled {
            return;
        }
        let pc = lookup.pc;

        // 1. Usefulness bookkeeping and the provider counter update share
        //    a single storage probe (a hash-map lookup in infinite mode).
        if let Some(p) = lookup.provider {
            let provider_correct = lookup.provider_pred == taken;
            let alt_differs = lookup.alt_pred != lookup.provider_pred;
            if let Some(e) = self.entry_mut(p, lookup.indices[p], lookup.tags[p], pc) {
                if alt_differs {
                    if provider_correct {
                        e.useful.increment();
                    } else {
                        e.useful.decrement();
                    }
                }
                e.ctr.update(taken);
            }
            if alt_differs {
                if lookup.provider_weak {
                    // Learn whether weak providers should defer to alt.
                    self.use_alt_on_na.update(lookup.alt_pred == taken);
                }
                if provider_correct {
                    if let Some(tr) = &mut self.tracker {
                        tr.record(pc, p as u8, lookup.indices[p], lookup.tags[p]);
                    }
                }
            }

            // 2. The chosen alternate trains too.
            if lookup.used_alt {
                if let Some(a) = lookup.alt_table {
                    if let Some(e) = self.entry_mut(a, lookup.indices[a], lookup.tags[a], pc) {
                        e.ctr.update(taken);
                    }
                } else {
                    self.update_bimodal(pc, taken);
                }
            }
        } else {
            self.update_bimodal(pc, taken);
        }

        // 3. Allocation on a wrong final TAGE prediction.
        if lookup.pred != taken {
            let start = lookup.provider.map_or(0, |p| p + 1);
            if start < self.cfg.num_tables() {
                self.allocate(lookup, taken, start);
            }
        }
    }

    fn update_bimodal(&mut self, pc: u64, taken: bool) {
        let i = self.bim_index(pc);
        let h = i >> 2; // hysteresis shared across 4 direction entries
        if self.bim_dir[i] == taken {
            self.bim_hyst[h] = true;
        } else if self.bim_hyst[h] {
            self.bim_hyst[h] = false;
        } else {
            self.bim_dir[i] = taken;
        }
    }

    fn allocate(&mut self, lookup: &TageLookup, taken: bool, start: usize) {
        let n = self.cfg.num_tables();
        // CBP-style randomised start: skip forward geometrically so twin
        // tables share allocation pressure.
        let mut first = start;
        for _ in 0..2 {
            if first + 1 < n && self.rng.chance(1, 2) {
                first += 1;
            }
        }

        match self.cfg.storage {
            StorageKind::Infinite => {
                // Unbounded storage: always allocate in the first candidate.
                let t = first.min(n - 1);
                let (index, tag) = (lookup.indices[t], lookup.tags[t]);
                let slot = match self.find_slot(t, index, tag, lookup.pc) {
                    Some(i) => i,
                    None => {
                        // Prepend a fresh arena slot to the PC's chain.
                        let i = u32::try_from(self.infinite_arena.len())
                            .expect("infinite arena exceeds u32 indexing");
                        let head = self.infinite_head.entry(lookup.pc).or_insert(NO_SLOT);
                        self.infinite_arena.push(InfSlot {
                            table: t as u8,
                            tag,
                            next: *head,
                            index,
                            entry: Entry::empty(self.cfg.counter_bits, self.cfg.useful_bits),
                        });
                        *head = i;
                        i
                    }
                };
                let e = &mut self.infinite_arena[slot as usize].entry;
                e.valid = true;
                e.tag = tag;
                e.ctr = SatCounter::weak(self.cfg.counter_bits, taken);
                self.allocations += 1;
            }
            StorageKind::Finite => {
                let mut done = false;
                let last = (first + self.cfg.alloc_tries).min(n);
                for t in first..last {
                    let slot = &mut self.tables[t][lookup.indices[t] as usize];
                    if !slot.valid || slot.useful.is_zero() {
                        *slot = Entry {
                            tag: lookup.tags[t],
                            ctr: SatCounter::weak(self.cfg.counter_bits, taken),
                            useful: UnsignedCounter::new(self.cfg.useful_bits),
                            valid: true,
                        };
                        self.allocations += 1;
                        done = true;
                        break;
                    }
                }
                if done {
                    self.tick = self.tick.saturating_sub(1);
                } else {
                    // All candidates useful: age them and bump the global
                    // pressure tick.
                    self.alloc_failures += 1;
                    for t in first..(first + self.cfg.alloc_tries).min(n) {
                        self.tables[t][lookup.indices[t] as usize].useful.decrement();
                    }
                    self.tick += 1;
                    if self.tick >= 1024 {
                        self.reset_useful();
                        self.tick = 0;
                    }
                }
            }
        }
    }

    fn reset_useful(&mut self) {
        for table in &mut self.tables {
            for e in table.iter_mut() {
                e.useful.halve();
            }
        }
    }

    /// The bit a retired branch inserts into global history: conditionals
    /// insert their outcome; unconditional branches insert a
    /// PC/target-derived path bit, which lets long histories encode
    /// calling context.
    fn history_bit(record: &BranchRecord) -> bool {
        if record.kind() == BranchKind::Conditional {
            record.taken()
        } else {
            ((record.pc() >> 2) ^ (record.target() >> 3)) & 1 == 1
        }
    }

    /// Advances global, folded and path histories for a retired branch of
    /// any kind.
    pub fn update_history(&mut self, record: &BranchRecord) {
        let bit = Self::history_bit(record);
        for f in self
            .folded_index
            .iter_mut()
            .chain(self.folded_tag0.iter_mut())
            .chain(self.folded_tag1.iter_mut())
        {
            f.update_before_push(&self.ghr, bit);
        }
        self.ghr.push(bit);
        self.path.push(record.pc() >> 2);
    }

    /// [`Tage::update_history`] restructured for throughput: the index and
    /// both tag folds of table `i` share one window length
    /// (`history_lengths[i]`), so the outgoing GHR bit is read once per
    /// table and applied branch-free via
    /// [`FoldedHistory::update_with_out_bit`]. Bit-identical to the
    /// reference path (pinned by a test below).
    pub fn update_history_fast(&mut self, record: &BranchRecord) {
        let bit = Self::history_bit(record);
        for i in 0..self.folded_index.len() {
            let out = self.ghr.bit(self.folded_index[i].original_len() - 1);
            self.folded_index[i].update_with_out_bit(out, bit);
            self.folded_tag0[i].update_with_out_bit(out, bit);
            self.folded_tag1[i].update_with_out_bit(out, bit);
        }
        self.ghr.push(bit);
        self.path.push(record.pc() >> 2);
    }

    /// The global history buffer (exposed for composition and tests).
    #[must_use]
    pub fn ghr(&self) -> &HistoryBuffer {
        &self.ghr
    }

    /// Captures all speculative history state (§V-E2): the GHR, the path
    /// history and every folded register. Table contents are *not*
    /// checkpointed — they are trained at commit, so wrong-path execution
    /// never touches them in this model.
    #[must_use]
    pub fn checkpoint(&self) -> TageCheckpoint {
        TageCheckpoint {
            ghr: self.ghr.checkpoint(),
            path: self.path.value(),
            folded_index: self.folded_index.iter().map(FoldedHistory::value).collect(),
            folded_tag0: self.folded_tag0.iter().map(FoldedHistory::value).collect(),
            folded_tag1: self.folded_tag1.iter().map(FoldedHistory::value).collect(),
        }
    }

    /// Restores a checkpoint taken by [`Tage::checkpoint`], rolling back
    /// all speculative history updates made since.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint came from a differently-configured
    /// predictor.
    pub fn restore(&mut self, checkpoint: &TageCheckpoint) {
        assert_eq!(checkpoint.folded_index.len(), self.folded_index.len(), "config mismatch");
        self.ghr.restore(&checkpoint.ghr);
        self.path.restore(checkpoint.path);
        for (f, &v) in self.folded_index.iter_mut().zip(&checkpoint.folded_index) {
            f.restore(v);
        }
        for (f, &v) in self.folded_tag0.iter_mut().zip(&checkpoint.folded_tag0) {
            f.restore(v);
        }
        for (f, &v) in self.folded_tag1.iter_mut().zip(&checkpoint.folded_tag1) {
            f.restore(v);
        }
    }
}

/// A snapshot of TAGE's speculative history state (§V-E2 rollback).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageCheckpoint {
    ghr: bputil::history::HistoryCheckpoint,
    path: u64,
    folded_index: Vec<u32>,
    folded_tag0: Vec<u32>,
    folded_tag1: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TageConfig;

    fn small_cfg() -> TageConfig {
        TageConfig {
            history_lengths: vec![4, 8, 16, 32],
            tag_bits: vec![9, 9, 11, 11],
            index_bits: 7,
            bimodal_bits: 8,
            ..TageConfig::cbp64k()
        }
    }

    fn drive(tage: &mut Tage, pc: u64, taken: bool) -> bool {
        let l = tage.lookup(pc);
        tage.commit(&l, taken, UpdateMode::Full);
        tage.update_history(&BranchRecord::conditional(pc, pc + 8, taken, 0));
        l.pred
    }

    #[test]
    fn learns_a_constant_branch() {
        let mut t = Tage::new(small_cfg());
        let mut wrong = 0;
        for _ in 0..200 {
            if !drive(&mut t, 0x1000, true) {
                wrong += 1;
            }
        }
        assert!(wrong < 10, "{wrong} mispredicts on an always-taken branch");
    }

    #[test]
    fn learns_a_short_pattern() {
        let mut t = Tage::new(small_cfg());
        let pattern = [true, true, false];
        let mut wrong_late = 0;
        for i in 0..3000 {
            let taken = pattern[i % 3];
            let pred = drive(&mut t, 0x2000, taken);
            if i > 2000 && pred != taken {
                wrong_late += 1;
            }
        }
        assert!(wrong_late < 50, "{wrong_late} late mispredicts on a period-3 pattern");
    }

    #[test]
    fn learns_history_correlation() {
        // Branch B's outcome equals branch A's previous outcome: pure
        // global-history correlation the bimodal cannot capture.
        let mut t = Tage::new(small_cfg());
        let mut rng = SplitMix64::new(5);
        let mut last_a = false;
        let mut wrong_late = 0;
        for i in 0..4000 {
            let a_taken = rng.chance(1, 2);
            drive(&mut t, 0xA000, a_taken);
            let b_taken = last_a;
            let pred = drive(&mut t, 0xB000, b_taken);
            if i > 3000 && pred != b_taken {
                wrong_late += 1;
            }
            last_a = a_taken;
        }
        assert!(wrong_late < 100, "{wrong_late} late mispredicts on correlated branch");
    }

    #[test]
    fn cancelled_update_freezes_state() {
        let mut t = Tage::new(small_cfg());
        for _ in 0..100 {
            drive(&mut t, 0x3000, true);
        }
        let before = t.allocations();
        // A mispredicted branch with a cancelled update must not allocate.
        let l = t.lookup(0x3000);
        t.commit(&l, !l.pred, UpdateMode::Cancelled);
        assert_eq!(t.allocations(), before);
    }

    #[test]
    fn infinite_storage_grows_without_eviction() {
        let mut cfg = small_cfg();
        cfg.storage = StorageKind::Infinite;
        let mut t = Tage::new(cfg);
        let mut rng = SplitMix64::new(9);
        for i in 0..3000 {
            let pc = 0x1000 + (i % 64) * 16;
            drive(&mut t, pc, rng.chance(1, 2));
        }
        assert!(t.infinite_entries() > 100);
        assert_eq!(t.alloc_failures(), 0, "infinite storage never fails to allocate");
    }

    #[test]
    fn infinite_beats_finite_on_capacity_stress() {
        // Many branches each needing its own pattern: a tiny finite TAGE
        // thrashes; infinite does not.
        let run = |storage: StorageKind| -> u64 {
            let mut cfg = small_cfg();
            cfg.index_bits = 4; // deliberately tiny
            cfg.storage = storage;
            let mut t = Tage::new(cfg);
            let mut rng = SplitMix64::new(7);
            let mut mispredicts = 0;
            // Each branch alternates with its own period in 2..6.
            let mut phase = vec![0usize; 48];
            for i in 0..30_000 {
                let b = (rng.next_u64() % 48) as usize;
                let pc = 0x4000 + (b as u64) * 64;
                let period = 2 + b % 5;
                let taken = phase[b].is_multiple_of(period);
                phase[b] += 1;
                let l = t.lookup(pc);
                if i > 10_000 && l.pred != taken {
                    mispredicts += 1;
                }
                t.commit(&l, taken, UpdateMode::Full);
                t.update_history(&BranchRecord::conditional(pc, pc + 8, taken, 0));
            }
            mispredicts
        };
        let finite = run(StorageKind::Finite);
        let infinite = run(StorageKind::Infinite);
        assert!(
            infinite < finite,
            "infinite ({infinite}) should beat finite ({finite}) under capacity stress"
        );
    }

    #[test]
    fn useful_tracking_records_patterns() {
        let mut cfg = small_cfg();
        cfg.track_useful = true;
        let mut t = Tage::new(cfg);
        let mut rng = SplitMix64::new(11);
        let mut last = false;
        for _ in 0..4000 {
            let a = rng.chance(1, 2);
            drive(&mut t, 0xA00, a);
            drive(&mut t, 0xB00, last);
            last = a;
        }
        let tracker = t.useful_tracker().expect("tracking enabled");
        assert!(tracker.total_patterns() > 0, "some patterns must be useful");
    }

    #[test]
    fn lookup_is_pure() {
        let t = Tage::new(small_cfg());
        let a = t.lookup(0x1234);
        let b = t.lookup(0x1234);
        assert_eq!(a.pred, b.pred);
        assert_eq!(a.indices[..4], b.indices[..4]);
    }
}
