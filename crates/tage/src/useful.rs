//! Tracking of *useful patterns* per static branch.
//!
//! The paper's §II-D defines a pattern as useful "when it provides a
//! correct prediction while the alternative prediction from a shorter
//! matching pattern or the bimodal predictor is incorrect", and counts the
//! distinct useful patterns per branch (Fig. 3b) and per program context
//! (Fig. 5). This tracker records the distinct `(table, index, tag)`
//! triples that were ever useful, keyed by branch PC (optionally extended
//! with a context signature by the caller — see the Fig. 5 harness).

use bputil::hash::{FastHashMap, FastHashSet};
use bputil::stats::Histogram;

/// Records distinct useful patterns per key (branch PC, or PC-plus-context
/// when the caller folds a context signature into the key).
#[derive(Debug, Clone, Default)]
pub struct UsefulPatternTracker {
    patterns: FastHashMap<u64, FastHashSet<(u8, u64, u32)>>,
    useful_events: u64,
}

impl UsefulPatternTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the pattern `(table, index, tag)` was useful for `key`.
    pub fn record(&mut self, key: u64, table: u8, index: u64, tag: u32) {
        self.useful_events += 1;
        self.patterns.entry(key).or_default().insert((table, index, tag));
    }

    /// Number of distinct keys (static branches / contexts) observed.
    #[must_use]
    pub fn num_keys(&self) -> usize {
        self.patterns.len()
    }

    /// Total distinct useful patterns across all keys.
    #[must_use]
    pub fn total_patterns(&self) -> usize {
        self.patterns.values().map(FastHashSet::len).sum()
    }

    /// Total useful events recorded (non-distinct).
    #[must_use]
    pub fn useful_events(&self) -> u64 {
        self.useful_events
    }

    /// Distinct useful patterns for one key (0 if never seen).
    #[must_use]
    pub fn patterns_for(&self, key: u64) -> usize {
        self.patterns.get(&key).map_or(0, FastHashSet::len)
    }

    /// Distribution of patterns-per-key as a histogram (Fig. 3b / Fig. 5).
    #[must_use]
    pub fn histogram(&self) -> Histogram {
        self.patterns.values().map(|s| s.len() as u64).collect()
    }

    /// Iterates over `(key, distinct_pattern_count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.patterns.iter().map(|(&k, v)| (k, v.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_patterns_deduplicate() {
        let mut t = UsefulPatternTracker::new();
        t.record(1, 0, 10, 99);
        t.record(1, 0, 10, 99); // duplicate
        t.record(1, 1, 10, 99);
        assert_eq!(t.patterns_for(1), 2);
        assert_eq!(t.useful_events(), 3);
        assert_eq!(t.num_keys(), 1);
    }

    #[test]
    fn histogram_reflects_counts() {
        let mut t = UsefulPatternTracker::new();
        t.record(1, 0, 0, 0);
        t.record(2, 0, 0, 0);
        t.record(2, 1, 0, 0);
        let h = t.histogram();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(2));
        assert_eq!(t.total_patterns(), 3);
    }

    #[test]
    fn missing_key_has_zero_patterns() {
        let t = UsefulPatternTracker::new();
        assert_eq!(t.patterns_for(42), 0);
    }
}
