//! A branch target buffer (Table II: 16K entries, 8-way).
//!
//! The BTB is not a direction predictor; it caches decoded branch targets
//! so the front-end can redirect fetch without waiting for decode. A BTB
//! miss on a taken branch costs a front-end redirect — one of the two
//! pipeline-reset sources that squash LLBP's prefetches (§VI).

use bputil::hash::mix64;
use bputil::table::SetAssoc;

/// A branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    table: SetAssoc<u64>,
    lookups: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `2^index_bits` sets of `ways` entries
    /// (Table II: 11 index bits × 8 ways = 16K entries).
    #[must_use]
    pub fn new(index_bits: u32, ways: usize) -> Self {
        Self { table: SetAssoc::new(index_bits, ways), lookups: 0, misses: 0 }
    }

    /// The Table II configuration.
    #[must_use]
    pub fn table2() -> Self {
        Self::new(11, 8)
    }

    fn key(&self, pc: u64) -> (u64, u64) {
        let h = mix64(pc >> 1);
        (h & (self.table.num_sets() as u64 - 1), h >> 20)
    }

    /// Looks up the cached target for the branch at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.lookups += 1;
        let (set, tag) = self.key(pc);
        let hit = self.table.get(set, tag).copied();
        if hit.is_none() {
            self.misses += 1;
        }
        hit
    }

    /// Installs or refreshes the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let (set, tag) = self.key(pc);
        self.table.insert_lru(set, tag, target);
    }

    /// Lookups so far.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all lookups.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups as f64
        }
    }
}

impl Default for Btb {
    fn default() -> Self {
        Self::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::table2();
        assert_eq!(btb.lookup(0x1000), None);
        btb.update(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000), Some(0x2000));
        assert_eq!(btb.misses(), 1);
        assert_eq!(btb.lookups(), 2);
    }

    #[test]
    fn update_replaces_target() {
        let mut btb = Btb::table2();
        btb.update(0x1000, 0x2000);
        btb.update(0x1000, 0x3000);
        assert_eq!(btb.lookup(0x1000), Some(0x3000));
    }

    #[test]
    fn capacity_evicts_old_entries() {
        let mut btb = Btb::new(2, 2); // 8 entries total
        for i in 0..64u64 {
            btb.update(0x1000 + i * 8, i);
        }
        let resident = (0..64u64).filter(|i| btb.lookup(0x1000 + i * 8).is_some()).count();
        assert!(resident <= 8, "only {resident} can be resident in an 8-entry BTB");
    }

    #[test]
    fn miss_rate_decreases_with_locality() {
        let mut btb = Btb::table2();
        for _ in 0..10 {
            for pc in (0x1000u64..0x1100).step_by(8) {
                if btb.lookup(pc).is_none() {
                    btb.update(pc, pc + 64);
                }
            }
        }
        assert!(btb.miss_rate() < 0.2, "rate {:.2}", btb.miss_rate());
    }
}
