//! The front-end target-prediction complex: BTB + return-address stack +
//! ITTAGE, composed the way Table II's core uses them.
//!
//! Direction prediction is handled elsewhere (TAGE-SC-L / LLBP); this
//! module answers a different question per retired branch: *would the
//! front-end have redirected late* — a BTB miss on a taken branch, a
//! return-stack mismatch, or an indirect-target misprediction? Each such
//! event is a pipeline reset, and pipeline resets are what squash LLBP's
//! context prefetches (§VI).

use crate::btb::Btb;
use crate::ittage::Ittage;
use crate::ras::ReturnAddressStack;
use llbp_trace::{BranchKind, BranchRecord};

/// Why the front-end reset, when it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResetReason {
    /// A taken branch missed in the BTB.
    BtbMiss,
    /// A return popped the wrong address (or underflowed).
    RasMismatch,
    /// An indirect call/jump target was mispredicted.
    IndirectTarget,
}

/// Aggregate front-end statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontEndStats {
    /// Branches observed.
    pub branches: u64,
    /// Resets due to BTB misses on taken branches.
    pub btb_resets: u64,
    /// Resets due to return-address mismatches.
    pub ras_resets: u64,
    /// Resets due to indirect-target mispredictions.
    pub indirect_resets: u64,
}

impl FrontEndStats {
    /// Total resets of any kind.
    #[must_use]
    pub fn total_resets(&self) -> u64 {
        self.btb_resets + self.ras_resets + self.indirect_resets
    }

    /// Resets per kilo-branch.
    #[must_use]
    pub fn resets_per_kilo_branch(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.total_resets() as f64 * 1000.0 / self.branches as f64
        }
    }
}

/// The composed front-end model.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    btb: Btb,
    ras: ReturnAddressStack,
    ittage: Ittage,
    stats: FrontEndStats,
}

impl FrontEnd {
    /// Creates the Table II front-end: 16K-entry 8-way BTB, 32-deep RAS,
    /// default ITTAGE.
    #[must_use]
    pub fn new() -> Self {
        Self {
            btb: Btb::table2(),
            ras: ReturnAddressStack::new(32),
            ittage: Ittage::new(),
            stats: FrontEndStats::default(),
        }
    }

    /// Observes one retired branch; returns the reset reason if the
    /// front-end would have redirected late on it.
    pub fn observe(&mut self, record: &BranchRecord) -> Option<ResetReason> {
        self.stats.branches += 1;
        let reset = match record.kind() {
            BranchKind::Conditional => {
                if record.taken() {
                    let hit = self.btb.lookup(record.pc()).is_some();
                    self.btb.update(record.pc(), record.target());
                    (!hit).then_some(ResetReason::BtbMiss)
                } else {
                    None
                }
            }
            BranchKind::DirectJump | BranchKind::DirectCall => {
                let hit = self.btb.lookup(record.pc()).is_some();
                self.btb.update(record.pc(), record.target());
                if record.kind() == BranchKind::DirectCall {
                    self.ras.push(record.pc() + 4);
                }
                (!hit).then_some(ResetReason::BtbMiss)
            }
            BranchKind::IndirectJump | BranchKind::IndirectCall => {
                let lookup = self.ittage.lookup(record.pc());
                let correct = self.ittage.update(&lookup, record.target());
                if record.kind() == BranchKind::IndirectCall {
                    self.ras.push(record.pc() + 4);
                }
                (!correct).then_some(ResetReason::IndirectTarget)
            }
            BranchKind::Return => {
                let correct = self.ras.pop_and_check(record.target());
                (!correct).then_some(ResetReason::RasMismatch)
            }
        };
        // Control-flow redirections feed ITTAGE's path history.
        if record.taken() {
            self.ittage.update_history(record.pc());
        }
        match reset {
            Some(ResetReason::BtbMiss) => self.stats.btb_resets += 1,
            Some(ResetReason::RasMismatch) => self.stats.ras_resets += 1,
            Some(ResetReason::IndirectTarget) => self.stats.indirect_resets += 1,
            None => {}
        }
        reset
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> &FrontEndStats {
        &self.stats
    }

    /// The indirect-target predictor (for probes).
    #[must_use]
    pub fn ittage(&self) -> &Ittage {
        &self.ittage
    }

    /// The branch target buffer (for probes).
    #[must_use]
    pub fn btb(&self) -> &Btb {
        &self.btb
    }
}

impl Default for FrontEnd {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(pc: u64, target: u64) -> BranchRecord {
        BranchRecord::unconditional(pc, target, BranchKind::DirectCall, 2)
    }

    fn ret(pc: u64, target: u64) -> BranchRecord {
        BranchRecord::unconditional(pc, target, BranchKind::Return, 2)
    }

    #[test]
    fn matched_call_return_does_not_reset() {
        let mut fe = FrontEnd::new();
        // Warm the BTB for the call site.
        fe.observe(&call(0x100, 0x2000));
        assert_eq!(fe.observe(&call(0x100, 0x2000)), None);
        assert_eq!(fe.observe(&ret(0x2040, 0x104)), None, "RAS should predict the return");
    }

    #[test]
    fn cold_taken_branch_resets_via_btb() {
        let mut fe = FrontEnd::new();
        let r = BranchRecord::conditional(0x300, 0x400, true, 1);
        assert_eq!(fe.observe(&r), Some(ResetReason::BtbMiss));
        assert_eq!(fe.observe(&r), None, "warm BTB hit");
    }

    #[test]
    fn not_taken_branches_never_touch_the_btb() {
        let mut fe = FrontEnd::new();
        let r = BranchRecord::conditional(0x300, 0x400, false, 1);
        assert_eq!(fe.observe(&r), None);
        assert_eq!(fe.btb().lookups(), 0);
    }

    #[test]
    fn stable_indirect_target_stops_resetting() {
        let mut fe = FrontEnd::new();
        let r = BranchRecord::unconditional(0x500, 0x9000, BranchKind::IndirectCall, 1);
        let first = fe.observe(&r);
        assert_eq!(first, Some(ResetReason::IndirectTarget), "cold indirect resets");
        let mut later_resets = 0;
        for _ in 0..50 {
            if fe.observe(&r).is_some() {
                later_resets += 1;
            }
        }
        assert!(later_resets <= 1, "monomorphic site should stabilise");
    }

    #[test]
    fn mismatched_return_resets() {
        let mut fe = FrontEnd::new();
        fe.observe(&call(0x100, 0x2000));
        assert_eq!(fe.observe(&ret(0x2040, 0xBAD)), Some(ResetReason::RasMismatch));
    }

    #[test]
    fn stats_sum_by_reason() {
        let mut fe = FrontEnd::new();
        fe.observe(&BranchRecord::conditional(0x300, 0x400, true, 1)); // BTB miss
        fe.observe(&ret(0x900, 0x111)); // RAS underflow
        let s = fe.stats();
        assert_eq!(s.btb_resets, 1);
        assert_eq!(s.ras_resets, 1);
        assert_eq!(s.total_resets(), 2);
        assert_eq!(s.branches, 2);
    }
}
