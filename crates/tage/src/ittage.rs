//! ITTAGE: an indirect-branch target predictor.
//!
//! Indirect calls/jumps (virtual dispatch, switch tables) have
//! data-dependent targets. ITTAGE applies TAGE's tagged geometric-history
//! idea to *targets*: a base table indexed by PC plus tagged tables
//! indexed by PC ⊕ folded global path history, each entry holding a full
//! target and a confidence counter ([Seznec & Michaud '06]). Mispredicted
//! indirect targets flush the front-end — the other pipeline-reset source
//! that squashes LLBP's prefetches (§VI, the PHPWiki pathology).

use bputil::counter::UnsignedCounter;
use bputil::hash::{fold_to_bits, mix64};
use bputil::history::{FoldedHistory, HistoryBuffer};
use bputil::rng::SplitMix64;

const NUM_TABLES: usize = 4;
const HISTORY_LENGTHS: [usize; NUM_TABLES] = [4, 10, 22, 44];
const INDEX_BITS: u32 = 9;
const TAG_BITS: u32 = 10;

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u32,
    target: u64,
    confidence: UnsignedCounter,
    useful: UnsignedCounter,
    valid: bool,
}

impl Entry {
    fn empty() -> Self {
        Self {
            tag: 0,
            target: 0,
            confidence: UnsignedCounter::new(2),
            useful: UnsignedCounter::new(1),
            valid: false,
        }
    }
}

/// Per-lookup state handed back at update time.
#[derive(Debug, Clone, Copy)]
pub struct IttageLookup {
    /// Predicted target, if any component had one.
    pub target: Option<u64>,
    indices: [u64; NUM_TABLES],
    tags: [u32; NUM_TABLES],
    base_index: usize,
    provider: Option<usize>,
}

/// The indirect-target predictor.
#[derive(Debug, Clone)]
pub struct Ittage {
    base: Vec<Entry>,
    tables: Vec<Vec<Entry>>,
    folded: Vec<FoldedHistory>,
    folded_tag: Vec<FoldedHistory>,
    /// Path history of indirect/unconditional branch PCs.
    path: HistoryBuffer,
    rng: SplitMix64,
    predictions: u64,
    mispredictions: u64,
}

impl Ittage {
    /// Creates an ITTAGE with the default geometry (a 512-entry base table
    /// plus four 512-entry tagged tables).
    #[must_use]
    pub fn new() -> Self {
        Self {
            base: vec![Entry::empty(); 1 << INDEX_BITS],
            tables: vec![vec![Entry::empty(); 1 << INDEX_BITS]; NUM_TABLES],
            folded: HISTORY_LENGTHS.iter().map(|&l| FoldedHistory::new(l, INDEX_BITS)).collect(),
            folded_tag: HISTORY_LENGTHS.iter().map(|&l| FoldedHistory::new(l, TAG_BITS)).collect(),
            path: HistoryBuffer::new(128),
            rng: SplitMix64::new(0x0017_7A6E),
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Target predictions made.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Target mispredictions.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Looks up the predicted target for the indirect branch at `pc`.
    #[must_use]
    pub fn lookup(&self, pc: u64) -> IttageLookup {
        let mut indices = [0u64; NUM_TABLES];
        let mut tags = [0u32; NUM_TABLES];
        let base_index = (mix64(pc >> 1) as usize) & (self.base.len() - 1);
        let mut provider = None;
        for t in (0..NUM_TABLES).rev() {
            indices[t] = fold_to_bits(
                mix64(pc ^ u64::from(self.folded[t].value()) ^ (t as u64) << 33),
                INDEX_BITS,
            );
            tags[t] = fold_to_bits(
                mix64(pc.rotate_left(13) ^ u64::from(self.folded_tag[t].value())),
                TAG_BITS,
            ) as u32;
        }
        for t in (0..NUM_TABLES).rev() {
            let e = &self.tables[t][indices[t] as usize];
            if e.valid && e.tag == tags[t] {
                provider = Some(t);
                break;
            }
        }
        let target = match provider {
            Some(t) => Some(self.tables[t][indices[t] as usize].target),
            None => self.base[base_index].valid.then(|| self.base[base_index].target),
        };
        IttageLookup { target, indices, tags, base_index, provider }
    }

    /// Trains with the resolved target; returns `true` when the prediction
    /// was correct.
    pub fn update(&mut self, lookup: &IttageLookup, actual: u64) -> bool {
        self.predictions += 1;
        let correct = lookup.target == Some(actual);
        if !correct {
            self.mispredictions += 1;
        }

        // Provider (or base) update: confident entries resist target swap.
        let entry = match lookup.provider {
            Some(t) => &mut self.tables[t][lookup.indices[t] as usize],
            None => &mut self.base[lookup.base_index],
        };
        if !entry.valid {
            entry.valid = true;
            entry.target = actual;
            entry.tag = lookup.provider.map_or(0, |t| lookup.tags[t]);
        } else if entry.target == actual {
            entry.confidence.increment();
            if lookup.provider.is_some() {
                entry.useful.increment();
            }
        } else if entry.confidence.is_zero() {
            entry.target = actual;
            entry.useful.reset();
        } else {
            entry.confidence.decrement();
        }

        // Allocate a longer-history entry on a misprediction.
        if !correct {
            let start = lookup.provider.map_or(0, |t| t + 1);
            let mut allocated = false;
            for t in start..NUM_TABLES {
                let e = &mut self.tables[t][lookup.indices[t] as usize];
                if !e.valid || e.useful.is_zero() {
                    *e = Entry {
                        tag: lookup.tags[t],
                        target: actual,
                        confidence: UnsignedCounter::new(2),
                        useful: UnsignedCounter::new(1),
                        valid: true,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated && self.rng.chance(1, 4) {
                for t in start..NUM_TABLES {
                    self.tables[t][lookup.indices[t] as usize].useful.decrement();
                }
            }
        }
        correct
    }

    /// Advances the path history; call for every control-flow-redirecting
    /// branch (unconditional, or taken conditional).
    pub fn update_history(&mut self, pc: u64) {
        let bit = (pc >> 2) & 1 == 1;
        for f in self.folded.iter_mut().chain(self.folded_tag.iter_mut()) {
            f.update_before_push(&self.path, bit);
        }
        self.path.push(bit);
    }
}

impl Default for Ittage {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomorphic_site_learns_quickly() {
        let mut it = Ittage::new();
        let mut wrong = 0;
        for i in 0..200 {
            let l = it.lookup(0x5000);
            if i > 4 && !it.update(&l, 0x9000) {
                wrong += 1;
            } else if i <= 4 {
                it.update(&l, 0x9000);
            }
            it.update_history(0x5000);
        }
        assert_eq!(wrong, 0, "a monomorphic indirect site must be perfect");
    }

    #[test]
    fn path_correlated_site_is_learned() {
        // Target alternates with the preceding path: reachable only via
        // history-indexed tables.
        let mut it = Ittage::new();
        let mut wrong_late = 0;
        for i in 0..4000 {
            let phase = (i / 2) % 2 == 0;
            // Two different path prefixes.
            let path_pc = if phase { 0x100 } else { 0x204 };
            it.update_history(path_pc);
            it.update_history(path_pc + 8);
            let l = it.lookup(0x7000);
            let actual = if phase { 0xA000 } else { 0xB000 };
            let correct = it.update(&l, actual);
            it.update_history(0x7000);
            if i > 3000 && !correct {
                wrong_late += 1;
            }
        }
        assert!(wrong_late < 100, "wrong_late={wrong_late}");
    }

    #[test]
    fn random_targets_stay_hard() {
        let mut it = Ittage::new();
        let mut rng = SplitMix64::new(3);
        for _ in 0..2000 {
            let l = it.lookup(0x8000);
            it.update(&l, 0x1000 + rng.below(16) * 64);
            it.update_history(0x8000);
        }
        assert!(it.misprediction_rate() > 0.5, "random targets cannot be predicted");
    }

    #[test]
    fn stats_accumulate() {
        let mut it = Ittage::new();
        let l = it.lookup(0x100);
        it.update(&l, 0x200);
        assert_eq!(it.predictions(), 1);
    }
}
