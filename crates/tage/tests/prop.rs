//! Randomized property tests for the TAGE-SC-L components, driven by the
//! in-tree `SplitMix64` PRNG (no external property-testing framework, so
//! the workspace builds with no network access).

use bputil::rng::SplitMix64;
use llbp_tage::tage::UpdateMode;
use llbp_tage::{Predictor, StorageKind, Tage, TageConfig, TageScl, TslConfig};
use llbp_trace::{BranchKind, BranchRecord};

fn small_tage_config(storage: StorageKind) -> TageConfig {
    TageConfig {
        history_lengths: vec![4, 8, 16, 32],
        tag_bits: vec![9, 9, 11, 11],
        index_bits: 6,
        bimodal_bits: 7,
        storage,
        ..TageConfig::cbp64k()
    }
}

fn arb_branch(rng: &mut SplitMix64) -> (u64, bool) {
    (0x1000 + rng.below(64) * 12, rng.chance(1, 2))
}

/// TAGE never panics and stays internally consistent under arbitrary
/// branch streams, in both storage modes.
#[test]
fn tage_survives_arbitrary_streams() {
    let mut rng = SplitMix64::new(0x7A6E);
    for case in 0..24 {
        let infinite = case % 2 == 0;
        let storage = if infinite { StorageKind::Infinite } else { StorageKind::Finite };
        let mut t = Tage::new(small_tage_config(storage));
        for _ in 0..1 + rng.below(800) {
            let (pc, taken) = arb_branch(&mut rng);
            let l = t.lookup(pc);
            // The reported prediction matches one of the components.
            assert!(l.pred == l.provider_pred || l.pred == l.alt_pred || l.pred == l.bim_pred);
            t.commit(&l, taken, UpdateMode::Full);
            t.update_history(&BranchRecord::conditional(pc, pc + 8, taken, 0));
        }
        if infinite {
            assert_eq!(t.alloc_failures(), 0);
        }
    }
}

/// A cancelled update never changes allocation counts.
#[test]
fn cancelled_updates_never_allocate() {
    let mut rng = SplitMix64::new(0xCA9C);
    for _ in 0..20 {
        let mut t = Tage::new(small_tage_config(StorageKind::Finite));
        for _ in 0..1 + rng.below(200) {
            let (pc, taken) = arb_branch(&mut rng);
            let l = t.lookup(pc);
            let before = t.allocations();
            t.commit(&l, taken, UpdateMode::Cancelled);
            assert_eq!(t.allocations(), before);
            t.update_history(&BranchRecord::conditional(pc, pc + 8, taken, 0));
        }
    }
}

/// The full TSL predictor's predict/train protocol never panics and
/// its provider attribution is always valid.
#[test]
fn tsl_protocol_is_robust() {
    let mut rng = SplitMix64::new(0x751);
    for _ in 0..10 {
        let mut cfg = TslConfig::cbp64k();
        cfg.tage = small_tage_config(StorageKind::Finite);
        let mut p = TageScl::new(cfg);
        for _ in 0..1 + rng.below(400) {
            let pc = 0x4000 + rng.below(48) * 8;
            let taken = rng.chance(1, 2);
            let kind = BranchKind::from_u8(rng.below(6) as u8).expect("in range");
            if kind == BranchKind::Conditional {
                let _ = p.predict(pc);
                let _ = p.last_provider();
                p.train(pc, taken);
                p.update_history(&BranchRecord::conditional(pc, pc + 8, taken, 1));
            } else {
                p.update_history(&BranchRecord::unconditional(pc, pc ^ 0x40, kind, 1));
            }
        }
    }
}

/// Determinism: identical streams give identical predictions.
#[test]
fn tage_is_deterministic() {
    let mut rng = SplitMix64::new(0xDE7E);
    for _ in 0..12 {
        let branches: Vec<(u64, bool)> =
            (0..1 + rng.below(300)).map(|_| arb_branch(&mut rng)).collect();
        let run = || -> Vec<bool> {
            let mut t = Tage::new(small_tage_config(StorageKind::Finite));
            branches
                .iter()
                .map(|&(pc, taken)| {
                    let l = t.lookup(pc);
                    t.commit(&l, taken, UpdateMode::Full);
                    t.update_history(&BranchRecord::conditional(pc, pc + 8, taken, 0));
                    l.pred
                })
                .collect()
        };
        assert_eq!(run(), run());
    }
}

/// The ITTAGE indirect predictor is robust and statistics stay
/// consistent under arbitrary target streams.
#[test]
fn ittage_statistics_consistent() {
    let mut rng = SplitMix64::new(0x177A);
    for _ in 0..20 {
        let n = 1 + rng.below(400);
        let mut it = llbp_tage::Ittage::new();
        for _ in 0..n {
            let pc = 0x9000 + rng.below(8) * 16;
            let l = it.lookup(pc);
            let _ = it.update(&l, 0xA000 + rng.below(6) * 64);
            it.update_history(pc);
        }
        assert_eq!(it.predictions(), n);
        assert!(it.mispredictions() <= it.predictions());
    }
}

/// The return-address stack never mispredicts on balanced call/return
/// sequences within its capacity.
#[test]
fn ras_perfect_on_balanced_sequences() {
    for depth in 1usize..30 {
        let mut ras = llbp_tage::ReturnAddressStack::new(32);
        let addrs: Vec<u64> = (0..depth as u64).map(|i| 0x100 + i * 4).collect();
        for &a in &addrs {
            ras.push(a);
        }
        for &a in addrs.iter().rev() {
            assert!(ras.pop_and_check(a));
        }
        assert_eq!(ras.mispredictions(), 0);
    }
}
