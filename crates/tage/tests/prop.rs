//! Property-based tests for the TAGE-SC-L components.

use llbp_tage::tage::UpdateMode;
use llbp_tage::{Predictor, StorageKind, Tage, TageConfig, TageScl, TslConfig};
use llbp_trace::{BranchKind, BranchRecord};
use proptest::prelude::*;

fn small_tage_config(storage: StorageKind) -> TageConfig {
    TageConfig {
        history_lengths: vec![4, 8, 16, 32],
        tag_bits: vec![9, 9, 11, 11],
        index_bits: 6,
        bimodal_bits: 7,
        storage,
        ..TageConfig::cbp64k()
    }
}

fn arb_branch() -> impl Strategy<Value = (u64, bool)> {
    (0u64..64, any::<bool>()).prop_map(|(i, taken)| (0x1000 + i * 12, taken))
}

proptest! {
    /// TAGE never panics and stays internally consistent under arbitrary
    /// branch streams, in both storage modes.
    #[test]
    fn tage_survives_arbitrary_streams(
        branches in proptest::collection::vec(arb_branch(), 1..800),
        infinite in any::<bool>(),
    ) {
        let storage = if infinite { StorageKind::Infinite } else { StorageKind::Finite };
        let mut t = Tage::new(small_tage_config(storage));
        for &(pc, taken) in &branches {
            let l = t.lookup(pc);
            // The reported prediction matches one of the components.
            prop_assert!(
                l.pred == l.provider_pred || l.pred == l.alt_pred || l.pred == l.bim_pred
            );
            t.commit(&l, taken, UpdateMode::Full);
            t.update_history(&BranchRecord::conditional(pc, pc + 8, taken, 0));
        }
        if infinite {
            prop_assert_eq!(t.alloc_failures(), 0);
        }
    }

    /// A cancelled update never changes allocation counts.
    #[test]
    fn cancelled_updates_never_allocate(
        branches in proptest::collection::vec(arb_branch(), 1..200),
    ) {
        let mut t = Tage::new(small_tage_config(StorageKind::Finite));
        for &(pc, taken) in &branches {
            let l = t.lookup(pc);
            let before = t.allocations();
            t.commit(&l, taken, UpdateMode::Cancelled);
            prop_assert_eq!(t.allocations(), before);
            t.update_history(&BranchRecord::conditional(pc, pc + 8, taken, 0));
        }
    }

    /// The full TSL predictor's predict/train protocol never panics and
    /// its provider attribution is always valid.
    #[test]
    fn tsl_protocol_is_robust(
        records in proptest::collection::vec(
            (0u64..48, any::<bool>(), 0u8..6),
            1..400,
        ),
    ) {
        let mut cfg = TslConfig::cbp64k();
        cfg.tage = small_tage_config(StorageKind::Finite);
        let mut p = TageScl::new(cfg);
        for &(i, taken, kind) in &records {
            let pc = 0x4000 + i * 8;
            let kind = BranchKind::from_u8(kind).expect("in range");
            if kind == BranchKind::Conditional {
                let _ = p.predict(pc);
                let _ = p.last_provider();
                p.train(pc, taken);
                p.update_history(&BranchRecord::conditional(pc, pc + 8, taken, 1));
            } else {
                p.update_history(&BranchRecord::unconditional(pc, pc ^ 0x40, kind, 1));
            }
        }
    }

    /// Determinism: identical streams give identical predictions.
    #[test]
    fn tage_is_deterministic(
        branches in proptest::collection::vec(arb_branch(), 1..300),
    ) {
        let run = || -> Vec<bool> {
            let mut t = Tage::new(small_tage_config(StorageKind::Finite));
            branches
                .iter()
                .map(|&(pc, taken)| {
                    let l = t.lookup(pc);
                    t.commit(&l, taken, UpdateMode::Full);
                    t.update_history(&BranchRecord::conditional(pc, pc + 8, taken, 0));
                    l.pred
                })
                .collect()
        };
        prop_assert_eq!(run(), run());
    }

    /// The ITTAGE indirect predictor is robust and statistics stay
    /// consistent under arbitrary target streams.
    #[test]
    fn ittage_statistics_consistent(
        events in proptest::collection::vec((0u64..8, 0u64..6), 1..400),
    ) {
        let mut it = llbp_tage::Ittage::new();
        for &(site, tgt) in &events {
            let pc = 0x9000 + site * 16;
            let l = it.lookup(pc);
            let _ = it.update(&l, 0xA000 + tgt * 64);
            it.update_history(pc);
        }
        prop_assert_eq!(it.predictions(), events.len() as u64);
        prop_assert!(it.mispredictions() <= it.predictions());
    }

    /// The return-address stack never mispredicts on balanced call/return
    /// sequences within its capacity.
    #[test]
    fn ras_perfect_on_balanced_sequences(depth in 1usize..30) {
        let mut ras = llbp_tage::ReturnAddressStack::new(32);
        let addrs: Vec<u64> = (0..depth as u64).map(|i| 0x100 + i * 4).collect();
        for &a in &addrs {
            ras.push(a);
        }
        for &a in addrs.iter().rev() {
            prop_assert!(ras.pop_and_check(a));
        }
        prop_assert_eq!(ras.mispredictions(), 0);
    }
}
