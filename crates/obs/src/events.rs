//! Span/mark event recording onto per-thread buffers.
//!
//! Each recording thread appends to its own shard, registered lazily on
//! first use and cached in a thread-local so the steady-state cost of an
//! event is one uncontended mutex lock and a `Vec::push`. Nothing here
//! runs on the hot simulation loop — spans are recorded at job
//! granularity by the sweep engine.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Whether an [`Event`] is a duration span or an instantaneous mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A closed interval with a duration (RAII span guards).
    Span,
    /// A point event (retry, watchdog kill, lock takeover, ...).
    Mark,
}

/// One recorded telemetry event. Timestamps are microseconds since the
/// owning [`crate::Telemetry`] handle was created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Static event name (e.g. `"simulation"`).
    pub name: &'static str,
    /// Span or mark.
    pub kind: EventKind,
    /// Sweep-cell index the event belongs to, or -1 when not tied to one.
    pub cell: i64,
    /// Start offset in microseconds from the telemetry epoch.
    pub start_us: u64,
    /// Duration in microseconds (0 for marks).
    pub dur_us: u64,
    /// Ordinal of the recording thread (assigned at first event).
    pub thread: u64,
}

/// Distinguishes shards cached by threads that have seen several
/// [`EventLog`] instances (tests create many short-lived handles).
static NEXT_LOG_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static SHARD_CACHE: RefCell<Vec<(u64, Arc<Shard>)>> = const { RefCell::new(Vec::new()) };
}

#[derive(Debug)]
struct Shard {
    thread: u64,
    events: Mutex<Vec<Event>>,
}

/// A set of per-thread event buffers with a global drain.
#[derive(Debug)]
pub(crate) struct EventLog {
    id: u64,
    shards: Mutex<Vec<Arc<Shard>>>,
}

impl EventLog {
    pub(crate) fn new() -> Self {
        Self { id: NEXT_LOG_ID.fetch_add(1, Ordering::Relaxed), shards: Mutex::new(Vec::new()) }
    }

    /// Appends `event` to the calling thread's shard, stamping
    /// [`Event::thread`] with the shard's ordinal.
    pub(crate) fn push(&self, mut event: Event) {
        SHARD_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            let shard = match cache.iter().find(|(id, _)| *id == self.id) {
                Some((_, shard)) => Arc::clone(shard),
                None => {
                    // Drop cached shards whose log is gone before the
                    // cache can grow without bound across many handles.
                    if cache.len() >= 32 {
                        cache.retain(|(_, shard)| Arc::strong_count(shard) > 1);
                    }
                    let shard = self.register();
                    cache.push((self.id, Arc::clone(&shard)));
                    shard
                }
            };
            event.thread = shard.thread;
            shard.events.lock().unwrap_or_else(PoisonError::into_inner).push(event);
        });
    }

    fn register(&self) -> Arc<Shard> {
        let mut shards = self.shards.lock().unwrap_or_else(PoisonError::into_inner);
        let shard = Arc::new(Shard { thread: shards.len() as u64, events: Mutex::new(Vec::new()) });
        shards.push(Arc::clone(&shard));
        shard
    }

    /// Removes and returns every buffered event, sorted by start time
    /// (ties broken by thread ordinal, then name) for deterministic
    /// exports. Threads that keep recording after a drain land in the
    /// next drain.
    pub(crate) fn drain(&self) -> Vec<Event> {
        let shards = self.shards.lock().unwrap_or_else(PoisonError::into_inner);
        let mut events = Vec::new();
        for shard in shards.iter() {
            events.append(&mut shard.events.lock().unwrap_or_else(PoisonError::into_inner));
        }
        events.sort_by(|a, b| (a.start_us, a.thread, a.name).cmp(&(b.start_us, b.thread, b.name)));
        events
    }
}
