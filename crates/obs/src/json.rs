//! A minimal recursive-descent JSON parser.
//!
//! The container has no serde, so `obs_tool` and the exporter tests need
//! a small std-only reader for the event files this crate writes (and for
//! anything Perfetto would accept). Covers the full JSON grammar except
//! that all numbers parse to `f64`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed
/// input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

/// Parses a telemetry event file in either format this crate writes:
/// a Chrome `trace_event` JSON array, or JSONL (one object per line).
///
/// # Errors
///
/// Returns a parse error message; non-object entries are rejected.
pub fn parse_event_stream(text: &str) -> Result<Vec<Value>, String> {
    let trimmed = text.trim_start();
    let values = if trimmed.starts_with('[') {
        match parse(trimmed)? {
            Value::Arr(items) => items,
            _ => unreachable!("'[' opens an array"),
        }
    } else {
        let mut items = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            items.push(parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
        items
    };
    for (i, value) in values.iter().enumerate() {
        if !matches!(value, Value::Obj(_)) {
            return Err(format!("event {i} is not a JSON object"));
        }
    }
    Ok(values)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8")?
                        .chars()
                        .next()
                        .map_or(1, char::len_utf8);
                    out.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap_or("\u{fffd}"));
                    self.pos += ch_len;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let slice = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        slice.parse::<f64>().map(Value::Num).map_err(|_| format!("invalid number at byte {start}"))
    }
}
