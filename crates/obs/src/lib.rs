//! Zero-cost telemetry for the LLBP reproduction: a metrics registry
//! (atomic counters, gauges, log2-bucketed histograms), span-based event
//! tracing onto per-thread buffers, and exporters (JSONL, Chrome
//! `trace_event` JSON for Perfetto, Prometheus text).
//!
//! The whole crate hangs off one [`Telemetry`] handle. A disabled handle
//! (the default) holds no allocation and every operation on it is a
//! null-pointer branch — cheap enough to thread through the sweep
//! engine unconditionally. The hot simulation loop never records spans;
//! it uses pre-resolved sampled [`Counter`]s, and full spans exist only
//! at job granularity.
//!
//! ```
//! use llbp_obs::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! tel.counter("jobs").inc();
//! {
//!     let _span = tel.span("simulation").with_cell(3);
//!     // ... work ...
//! }
//! let events = tel.drain_events();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].name, "simulation");
//! assert_eq!(tel.metrics().counters["jobs"], 1);
//! ```

mod events;
pub mod export;
pub mod json;
mod metrics;

pub use events::{Event, EventKind};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    HISTOGRAM_BUCKETS,
};

use events::EventLog;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Environment variable holding a [`TelemetrySettings`] spec
/// (`trace=<path>,metrics=<path>`, or `1`/`on` to enable collection
/// without file output).
pub const TELEMETRY_ENV: &str = "LLBP_TELEMETRY";

#[derive(Debug)]
struct Inner {
    metrics: MetricsRegistry,
    events: EventLog,
    epoch: Instant,
}

/// The telemetry handle threaded through the sweep engine. Cloning is
/// cheap and all clones share the same registry and event log.
///
/// [`Telemetry::default`] is disabled: no allocation, and every method
/// is a no-op returning empty handles/snapshots.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A handle that records nothing and allocates nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live handle with an empty registry and event log. The creation
    /// instant becomes the epoch for event timestamps.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                metrics: MetricsRegistry::default(),
                events: EventLog::new(),
                epoch: Instant::now(),
            })),
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves the counter named `name` ([`Counter::noop`] when
    /// disabled). Resolve once outside hot loops: the returned handle is
    /// a bare atomic.
    #[must_use]
    pub fn counter(&self, name: &'static str) -> Counter {
        self.inner.as_ref().map_or_else(Counter::noop, |inner| inner.metrics.counter(name))
    }

    /// Resolves the gauge named `name` ([`Gauge::noop`] when disabled).
    #[must_use]
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.inner.as_ref().map_or_else(Gauge::noop, |inner| inner.metrics.gauge(name))
    }

    /// Resolves the histogram named `name` ([`Histogram::noop`] when
    /// disabled).
    #[must_use]
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.inner.as_ref().map_or_else(Histogram::noop, |inner| inner.metrics.histogram(name))
    }

    /// Opens an RAII span: the event is recorded when the guard drops.
    /// Attach a sweep-cell index with [`SpanGuard::with_cell`]. On a
    /// disabled handle the guard is inert and records nothing.
    #[must_use = "the span is recorded when the guard drops"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            tel: self.clone(),
            name,
            cell: -1,
            start: self.inner.as_ref().map(|_| Instant::now()),
        }
    }

    /// Records a completed span from explicit instants (for intervals
    /// measured before a guard could exist, e.g. queue wait). Also feeds
    /// the duration into the histogram of the same name, so per-stage
    /// totals in the metrics snapshot match the event log exactly.
    pub fn record_span(&self, name: &'static str, start: Instant, end: Instant, cell: i64) {
        let Some(inner) = &self.inner else { return };
        let start_us = saturating_us(inner.epoch, start);
        let dur_us = end.saturating_duration_since(start).as_micros() as u64;
        inner.metrics.histogram(name).record(dur_us);
        inner.events.push(Event { name, kind: EventKind::Span, cell, start_us, dur_us, thread: 0 });
    }

    /// Records an instantaneous mark and bumps the counter of the same
    /// name (so mark tallies appear in both the event log and the
    /// metrics snapshot).
    pub fn mark(&self, name: &'static str, cell: i64) {
        let Some(inner) = &self.inner else { return };
        inner.metrics.counter(name).inc();
        inner.events.push(Event {
            name,
            kind: EventKind::Mark,
            cell,
            start_us: saturating_us(inner.epoch, Instant::now()),
            dur_us: 0,
            thread: 0,
        });
    }

    /// Removes and returns all buffered events sorted by start time.
    /// Empty (and allocation-free) on a disabled handle.
    #[must_use]
    pub fn drain_events(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| inner.events.drain())
    }

    /// Point-in-time snapshot of every registered metric. Empty on a
    /// disabled handle.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.as_ref().map_or_else(MetricsSnapshot::default, |inner| inner.metrics.snapshot())
    }
}

fn saturating_us(epoch: Instant, at: Instant) -> u64 {
    at.saturating_duration_since(epoch).as_micros() as u64
}

/// RAII guard returned by [`Telemetry::span`]; records a span event (and
/// the matching duration histogram sample) when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    tel: Telemetry,
    name: &'static str,
    cell: i64,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Tags the span with a sweep-cell index.
    #[must_use]
    pub fn with_cell(mut self, cell: i64) -> Self {
        self.cell = cell;
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.tel.record_span(self.name, start, Instant::now(), self.cell);
        }
    }
}

/// Parsed `LLBP_TELEMETRY` / CLI telemetry configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySettings {
    /// Whether to collect telemetry at all.
    pub enabled: bool,
    /// Where to write the Chrome trace-event JSON, if anywhere.
    pub trace_events: Option<PathBuf>,
    /// Where to write the Prometheus metrics snapshot, if anywhere.
    pub metrics_out: Option<PathBuf>,
}

impl TelemetrySettings {
    /// Parses the `LLBP_TELEMETRY` grammar: a comma-separated list of
    /// `trace=<path>` / `metrics=<path>` pairs, or a bare `1`/`on`/
    /// `true` (collect without writing files) or `0`/`off`/`false`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut settings = Self::default();
        let trimmed = spec.trim();
        if trimmed.is_empty() {
            return Ok(settings);
        }
        match trimmed {
            "1" | "on" | "true" => {
                settings.enabled = true;
                return Ok(settings);
            }
            "0" | "off" | "false" => return Ok(settings),
            _ => {}
        }
        for clause in trimmed.split(',') {
            let clause = clause.trim();
            let Some((key, value)) = clause.split_once('=') else {
                return Err(format!("telemetry clause `{clause}` is not key=value"));
            };
            if value.is_empty() {
                return Err(format!("telemetry clause `{clause}` has an empty path"));
            }
            match key.trim() {
                "trace" => settings.trace_events = Some(PathBuf::from(value)),
                "metrics" => settings.metrics_out = Some(PathBuf::from(value)),
                other => return Err(format!("unknown telemetry key `{other}`")),
            }
        }
        settings.enabled = true;
        Ok(settings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64, inlined so the tests stay std-only and seeded.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(HistogramSnapshot::bucket_index(0), 0);
        assert_eq!(HistogramSnapshot::bucket_index(1), 1);
        assert_eq!(HistogramSnapshot::bucket_index(2), 2);
        assert_eq!(HistogramSnapshot::bucket_index(3), 2);
        assert_eq!(HistogramSnapshot::bucket_index(4), 3);
        assert_eq!(HistogramSnapshot::bucket_index(u64::MAX), 64);
        // Every nonzero value lands in a bucket whose bound is >= the
        // value and < 2x the value (the log2 guarantee).
        let mut rng = Rng(0xbeef);
        for _ in 0..10_000 {
            let v = rng.next() >> (rng.next() % 64);
            if v == 0 {
                continue;
            }
            let bound = HistogramSnapshot::bucket_bound(HistogramSnapshot::bucket_index(v));
            assert!(bound >= v, "bound {bound} < value {v}");
            assert!(bound / 2 < v, "bound {bound} not within 2x of {v}");
        }
        // Bucket bounds are the last value of each bucket: bound+1 must
        // index into the next bucket.
        for i in 1..63 {
            let bound = HistogramSnapshot::bucket_bound(i);
            assert_eq!(HistogramSnapshot::bucket_index(bound), i);
            assert_eq!(HistogramSnapshot::bucket_index(bound + 1), i + 1);
        }
    }

    #[test]
    fn merge_is_associative_over_seeded_inputs() {
        let mut rng = Rng(42);
        let mut parts: Vec<HistogramSnapshot> = Vec::new();
        for _ in 0..8 {
            let mut h = HistogramSnapshot::default();
            for _ in 0..500 {
                h.record(rng.next() >> (rng.next() % 64));
            }
            parts.push(h);
        }
        // Left fold vs right fold vs pairwise tree — all identical.
        let mut left = HistogramSnapshot::default();
        for p in &parts {
            left.merge(p);
        }
        let mut right = HistogramSnapshot::default();
        for p in parts.iter().rev() {
            right.merge(p);
        }
        let mut tree = parts.clone();
        while tree.len() > 1 {
            let mut next = Vec::new();
            for pair in tree.chunks(2) {
                let mut merged = pair[0].clone();
                if let Some(b) = pair.get(1) {
                    merged.merge(b);
                }
                next.push(merged);
            }
            tree = next;
        }
        assert_eq!(left, right);
        assert_eq!(left, tree[0]);
        assert_eq!(left.count(), 8 * 500);
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = HistogramSnapshot::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max, 1000);
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        // Log2 buckets: the quantile is an upper bound within 2x.
        assert!((500..1000).contains(&p50), "p50 = {p50}");
        assert!((950..=1023).contains(&p95), "p95 = {p95}");
        assert_eq!(h.quantile(1.0), 1000); // clamped to max
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_histograms() {
        let a = Telemetry::enabled();
        a.counter("jobs").add(3);
        a.histogram("wall").record(8);
        let b = Telemetry::enabled();
        b.counter("jobs").add(4);
        b.counter("retries").inc();
        b.histogram("wall").record(100);
        let mut merged = a.metrics();
        merged.merge(&b.metrics());
        assert_eq!(merged.counters["jobs"], 7);
        assert_eq!(merged.counters["retries"], 1);
        assert_eq!(merged.histograms["wall"].count(), 2);
        assert_eq!(merged.histograms["wall"].sum, 108);
    }

    #[test]
    fn snapshot_text_roundtrips_and_merges_order_insensitively() {
        let a = Telemetry::enabled();
        a.counter("memo_hits").add(12);
        a.gauge("workers").set(4);
        a.histogram("cell_wall_us").record(0);
        a.histogram("cell_wall_us").record(900);
        a.histogram("cell_wall_us").record(u64::MAX);
        let snap = a.metrics();
        let back = MetricsSnapshot::from_text(&snap.to_text()).expect("roundtrip parses");
        assert_eq!(back, snap);

        // Shipping shards as text then merging in any order is the
        // distributed-campaign contract.
        let b = Telemetry::enabled();
        b.counter("memo_hits").add(5);
        b.histogram("cell_wall_us").record(17);
        let (ta, tb) = (snap.to_text(), b.metrics().to_text());
        let mut ab = MetricsSnapshot::from_text(&ta).unwrap();
        ab.merge(&MetricsSnapshot::from_text(&tb).unwrap());
        let mut ba = MetricsSnapshot::from_text(&tb).unwrap();
        ba.merge(&MetricsSnapshot::from_text(&ta).unwrap());
        assert_eq!(ab, ba);
        assert_eq!(ab.counters["memo_hits"], 17);
        assert_eq!(ab.histograms["cell_wall_us"].count(), 4);
    }

    #[test]
    fn snapshot_text_rejects_torn_and_malformed_lines() {
        assert!(MetricsSnapshot::from_text("").unwrap().is_empty());
        assert!(MetricsSnapshot::from_text("\n\n").unwrap().is_empty());
        for bad in [
            "counter jobs",         // missing value
            "counter jobs twelve",  // non-numeric
            "counter jobs 1 extra", // trailing tokens
            "gauge g",              // missing value
            "hist h 5",             // missing max
            "hist h 5 9 nocolon",   // malformed bucket
            "hist h 5 9 99:1",      // bucket index out of range
            "temperature room 20",  // unknown kind
        ] {
            assert!(MetricsSnapshot::from_text(bad).is_err(), "must reject `{bad}`");
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.counter("x").add(10);
        tel.gauge("g").set(5);
        tel.histogram("h").record(7);
        tel.mark("m", 1);
        {
            let _span = tel.span("s").with_cell(2);
        }
        assert_eq!(tel.counter("x").get(), 0);
        assert!(tel.drain_events().is_empty());
        assert!(tel.metrics().is_empty());
    }

    #[test]
    fn spans_and_marks_share_names_with_metrics() {
        let tel = Telemetry::enabled();
        {
            let _span = tel.span("simulation").with_cell(7);
        }
        tel.mark("retry", 7);
        let events = tel.drain_events();
        assert_eq!(events.len(), 2);
        let span = events.iter().find(|e| e.kind == EventKind::Span).unwrap();
        assert_eq!(span.name, "simulation");
        assert_eq!(span.cell, 7);
        let snap = tel.metrics();
        assert_eq!(snap.counters["retry"], 1);
        assert_eq!(snap.histograms["simulation"].count(), 1);
        // A second drain sees nothing new.
        assert!(tel.drain_events().is_empty());
    }

    #[test]
    fn settings_grammar() {
        assert_eq!(TelemetrySettings::parse("").unwrap(), TelemetrySettings::default());
        assert!(TelemetrySettings::parse("1").unwrap().enabled);
        assert!(TelemetrySettings::parse("on").unwrap().enabled);
        assert!(!TelemetrySettings::parse("off").unwrap().enabled);
        let s = TelemetrySettings::parse("trace=/tmp/a.json,metrics=/tmp/b.prom").unwrap();
        assert!(s.enabled);
        assert_eq!(s.trace_events.as_deref(), Some(std::path::Path::new("/tmp/a.json")));
        assert_eq!(s.metrics_out.as_deref(), Some(std::path::Path::new("/tmp/b.prom")));
        assert!(TelemetrySettings::parse("bogus").is_err());
        assert!(TelemetrySettings::parse("trace=").is_err());
        assert!(TelemetrySettings::parse("color=red").is_err());
    }
}
