//! Exporters: Chrome `trace_event` JSON, JSONL event logs, and
//! Prometheus text-format metric snapshots.
//!
//! All exporters render to a `String`; callers decide where the bytes
//! go. Output is deterministic for a given input (events are emitted in
//! the order given; metrics in name order), which the golden-file tests
//! rely on.

use crate::events::{Event, EventKind};
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn event_fields(event: &Event) -> String {
    let mut out = format!(
        "\"name\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
        escape(event.name),
        event.thread,
        event.start_us
    );
    match event.kind {
        EventKind::Span => {
            let _ = write!(out, ",\"ph\":\"X\",\"dur\":{}", event.dur_us);
        }
        EventKind::Mark => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
    }
    if event.cell >= 0 {
        let _ = write!(out, ",\"args\":{{\"cell\":{}}}", event.cell);
    }
    out
}

/// Renders events as a Chrome `trace_event` JSON array, loadable in
/// Perfetto or `chrome://tracing`. Spans use complete (`"ph":"X"`)
/// events; marks become thread-scoped instants (`"ph":"i"`).
#[must_use]
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("[\n");
    for (i, event) in events.iter().enumerate() {
        out.push('{');
        out.push_str(&event_fields(event));
        out.push('}');
        if i + 1 != events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders events as JSONL: one Chrome-compatible object per line,
/// suitable for appending and for line-oriented tooling.
#[must_use]
pub fn events_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push('{');
        out.push_str(&event_fields(event));
        out.push_str("}\n");
    }
    out
}

fn prometheus_histogram(out: &mut String, name: &str, hist: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE llbp_{name} histogram");
    let mut cumulative = 0u64;
    for (i, &n) in hist.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        let _ = writeln!(
            out,
            "llbp_{name}_bucket{{le=\"{}\"}} {cumulative}",
            HistogramSnapshot::bucket_bound(i)
        );
    }
    let _ = writeln!(out, "llbp_{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
    let _ = writeln!(out, "llbp_{name}_sum {}", hist.sum);
    let _ = writeln!(out, "llbp_{name}_count {}", hist.count());
}

/// Renders a metrics snapshot in the Prometheus text exposition format.
/// Metric names get an `llbp_` prefix; histograms emit cumulative
/// buckets at their populated log2 bounds plus `+Inf`.
#[must_use]
pub fn prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "# TYPE llbp_{name} counter");
        let _ = writeln!(out, "llbp_{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "# TYPE llbp_{name} gauge");
        let _ = writeln!(out, "llbp_{name} {value}");
    }
    for (name, hist) in &snapshot.histograms {
        prometheus_histogram(&mut out, name, hist);
    }
    out
}
