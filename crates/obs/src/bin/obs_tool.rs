//! `obs_tool` — summarize telemetry event logs written by the sweep
//! engine (`--trace-events` / `LLBP_TELEMETRY`).
//!
//! ```text
//! obs_tool summarize <events.json|events.jsonl> [--top N]
//! ```
//!
//! Accepts both exporter formats (Chrome trace-event array and JSONL)
//! and prints per-stage span totals, the slowest sweep cells by
//! simulation wall time, and mark tallies (retries, watchdog kills,
//! lock takeovers, stale demotions).

use llbp_obs::json::{parse_event_stream, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;

struct StageAgg {
    count: u64,
    total_us: u64,
    max_us: u64,
}

fn usage() -> ExitCode {
    eprintln!("usage: obs_tool summarize <events.json|events.jsonl> [--top N]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("summarize") {
        return usage();
    }
    let mut path = None;
    let mut top = 5usize;
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--top" => {
                let Some(n) = rest.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                top = n;
            }
            _ if path.is_none() => path = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("obs_tool: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let events = match parse_event_stream(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("obs_tool: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    summarize(&path, &events, top);
    ExitCode::SUCCESS
}

fn field_f64(event: &Value, key: &str) -> Option<f64> {
    event.get(key).and_then(Value::as_f64)
}

fn cell_of(event: &Value) -> Option<i64> {
    event
        .get("args")
        .and_then(|args| args.get("cell"))
        .or_else(|| event.get("cell"))
        .and_then(Value::as_f64)
        .map(|c| c as i64)
}

fn summarize(path: &str, events: &[Value], top: usize) {
    let mut stages: BTreeMap<String, StageAgg> = BTreeMap::new();
    let mut marks: BTreeMap<String, u64> = BTreeMap::new();
    let mut sim_cells: Vec<(i64, u64)> = Vec::new();
    let mut spans = 0u64;
    for event in events {
        let name = event.get("name").and_then(Value::as_str).unwrap_or("?").to_string();
        match event.get("ph").and_then(Value::as_str) {
            Some("X") => {
                spans += 1;
                let dur = field_f64(event, "dur").unwrap_or(0.0) as u64;
                let agg = stages.entry(name.clone()).or_insert(StageAgg {
                    count: 0,
                    total_us: 0,
                    max_us: 0,
                });
                agg.count += 1;
                agg.total_us += dur;
                agg.max_us = agg.max_us.max(dur);
                if name == "simulation" {
                    if let Some(cell) = cell_of(event) {
                        sim_cells.push((cell, dur));
                    }
                }
            }
            Some("i") => *marks.entry(name).or_insert(0) += 1,
            _ => {}
        }
    }

    println!("# telemetry summary: {path}");
    println!("events: {spans} spans, {} marks", events.len() as u64 - spans);
    println!();
    println!("| stage | count | total ms | mean ms | max ms |");
    println!("|-------|------:|---------:|--------:|-------:|");
    let mut ordered: Vec<_> = stages.iter().collect();
    ordered.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));
    for (name, agg) in ordered {
        println!(
            "| {name} | {} | {:.3} | {:.3} | {:.3} |",
            agg.count,
            agg.total_us as f64 / 1000.0,
            agg.total_us as f64 / agg.count.max(1) as f64 / 1000.0,
            agg.max_us as f64 / 1000.0,
        );
    }

    if !sim_cells.is_empty() {
        sim_cells.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        println!();
        println!("slowest cells by simulation wall:");
        println!("| cell | ms |");
        println!("|-----:|---:|");
        for (cell, dur) in sim_cells.iter().take(top) {
            println!("| {cell} | {:.3} |", *dur as f64 / 1000.0);
        }
    }

    if !marks.is_empty() {
        println!();
        println!("| event | count |");
        println!("|-------|------:|");
        for (name, count) in &marks {
            println!("| {name} | {count} |");
        }
    }
}
