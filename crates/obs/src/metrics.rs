//! Atomic metrics: named counters, gauges, and log2-bucketed histograms.
//!
//! All handles are cheap `Option<Arc<...>>` wrappers: a handle minted from
//! a disabled [`crate::Telemetry`] is `None` and every operation on it is
//! a branch on a null pointer — no allocation, no atomics, no locks. Live
//! handles touch only relaxed atomics, so they are safe to pre-resolve
//! once and then hammer from the hot simulation loop.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX` (bucket `i >= 1` covers `[2^(i-1), 2^i - 1]`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter. Cloning shares the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A counter that ignores every update (what a disabled
    /// [`crate::Telemetry`] hands out).
    #[must_use]
    pub fn noop() -> Self {
        Self(None)
    }

    fn live(cell: Arc<AtomicU64>) -> Self {
        Self(Some(cell))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op counter).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-write-wins gauge. Cloning shares the same cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A gauge that ignores every update.
    #[must_use]
    pub fn noop() -> Self {
        Self(None)
    }

    fn live(cell: Arc<AtomicU64>) -> Self {
        Self(Some(cell))
    }

    /// Overwrites the gauge value.
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op gauge).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Shared storage behind a [`Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[HistogramSnapshot::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A log2-bucketed histogram of `u64` samples. Cloning shares storage.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A histogram that ignores every sample.
    #[must_use]
    pub fn noop() -> Self {
        Self(None)
    }

    fn live(core: Arc<HistogramCore>) -> Self {
        Self(Some(core))
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    /// Plain-data copy of the current state (empty for a no-op handle).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.as_ref().map_or_else(HistogramSnapshot::default, |core| core.snapshot())
    }
}

/// Plain-data histogram state: buildable without any telemetry handle
/// (the sweep engine fills one per report even when telemetry is off),
/// mergeable, and queryable for quantiles.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; bucket `i >= 1` covers
    /// `[2^(i-1), 2^i - 1]`, bucket 0 holds exact zeros.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { buckets: [0; HISTOGRAM_BUCKETS], sum: 0, max: 0 }
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count())
            .field("sum", &self.sum)
            .field("max", &self.max)
            .finish()
    }
}

impl HistogramSnapshot {
    /// Bucket index holding `value`: 0 for zero, else `floor(log2) + 1`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `index` (`2^index - 1`, saturating).
    #[must_use]
    pub fn bucket_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Folds `other` into `self`. Merge is associative and commutative
    /// (bucket-wise and sum addition, max of maxes), so shards can be
    /// combined in any order.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        // Saturating unsigned addition is associative and commutative,
        // so shard merge order still cannot change the result.
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Upper bound on the `q`-quantile (`0.0 ..= 1.0`): the inclusive
    /// bound of the bucket containing the target sample, clamped to the
    /// recorded maximum. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }
}

/// Named registration for counters, gauges, and histograms. Handles for
/// the same name share storage; snapshots are point-in-time plain data.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<HistogramCore>>>,
}

impl MetricsRegistry {
    /// Returns the counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut map = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        Counter::live(Arc::clone(map.entry(name).or_default()))
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(PoisonError::into_inner);
        Gauge::live(Arc::clone(map.entry(name).or_default()))
    }

    /// Returns the histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let mut map = self.histograms.lock().unwrap_or_else(PoisonError::into_inner);
        Histogram::live(Arc::clone(
            map.entry(name).or_insert_with(|| Arc::new(HistogramCore::new())),
        ))
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        let gauges = self.gauges.lock().unwrap_or_else(PoisonError::into_inner);
        let histograms = self.histograms.lock().unwrap_or_else(PoisonError::into_inner);
        MetricsSnapshot {
            counters: counters
                .iter()
                .map(|(name, cell)| (name.to_string(), cell.load(Ordering::Relaxed)))
                .collect(),
            gauges: gauges
                .iter()
                .map(|(name, cell)| (name.to_string(), cell.load(Ordering::Relaxed)))
                .collect(),
            histograms: histograms
                .iter()
                .map(|(name, core)| (name.to_string(), core.snapshot()))
                .collect(),
        }
    }
}

/// Plain-data copy of a [`MetricsRegistry`] at one point in time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise. Associative and commutative, so per-process or
    /// per-shard snapshots can be combined in any order.
    pub fn merge(&mut self, other: &Self) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// True when nothing has been registered or recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the snapshot as plain text, one metric per line, for
    /// shipping per-worker snapshots between processes (a distributed
    /// campaign's coordinator reads them back with
    /// [`MetricsSnapshot::from_text`] and merges). Deterministic: metrics
    /// render in name order, histogram buckets in index order.
    ///
    /// ```text
    /// counter memo_hits 12
    /// gauge workers 4
    /// hist cell_wall_us 91844 31203 7:2 11:4
    /// ```
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {value}");
        }
        for (name, hist) in &self.histograms {
            let _ = write!(out, "hist {name} {} {}", hist.sum, hist.max);
            for (i, &n) in hist.buckets.iter().enumerate() {
                if n != 0 {
                    let _ = write!(out, " {i}:{n}");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parses text produced by [`MetricsSnapshot::to_text`]. Strict: any
    /// malformed line is an error (a torn snapshot must not silently
    /// merge as a smaller one), but blank lines are tolerated so files
    /// can be concatenated.
    ///
    /// # Errors
    ///
    /// A description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut snapshot = Self::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let bad = |what: &str| format!("line {}: {what}: `{line}`", lineno + 1);
            let mut parts = line.split_ascii_whitespace();
            let (kind, name) = (
                parts.next().ok_or_else(|| bad("empty entry"))?,
                parts.next().ok_or_else(|| bad("missing metric name"))?,
            );
            match kind {
                "counter" | "gauge" => {
                    let value: u64 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad value"))?;
                    if parts.next().is_some() {
                        return Err(bad("trailing tokens"));
                    }
                    let map = if kind == "counter" {
                        &mut snapshot.counters
                    } else {
                        &mut snapshot.gauges
                    };
                    map.insert(name.to_string(), value);
                }
                "hist" => {
                    let sum = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad histogram sum"))?;
                    let max = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad histogram max"))?;
                    let mut hist = HistogramSnapshot { sum, max, ..Default::default() };
                    for bucket in parts {
                        let (index, count) =
                            bucket.split_once(':').ok_or_else(|| bad("bad bucket"))?;
                        let index: usize = index.parse().map_err(|_| bad("bad bucket index"))?;
                        if index >= HISTOGRAM_BUCKETS {
                            return Err(bad("bucket index out of range"));
                        }
                        hist.buckets[index] = count.parse().map_err(|_| bad("bad bucket count"))?;
                    }
                    snapshot.histograms.insert(name.to_string(), hist);
                }
                _ => return Err(bad("unknown metric kind")),
            }
        }
        Ok(snapshot)
    }
}
