//! CLI tests for `obs_tool summarize` over both exporter formats.

use llbp_obs::export::{chrome_trace, events_jsonl};
use llbp_obs::{Event, EventKind};
use std::process::Command;

fn sample_events() -> Vec<Event> {
    vec![
        Event {
            name: "simulation",
            kind: EventKind::Span,
            cell: 3,
            start_us: 0,
            dur_us: 9000,
            thread: 0,
        },
        Event {
            name: "simulation",
            kind: EventKind::Span,
            cell: 5,
            start_us: 100,
            dur_us: 4000,
            thread: 1,
        },
        Event {
            name: "generation",
            kind: EventKind::Span,
            cell: 3,
            start_us: 50,
            dur_us: 2000,
            thread: 0,
        },
        Event {
            name: "watchdog_kill",
            kind: EventKind::Mark,
            cell: 5,
            start_us: 120,
            dur_us: 0,
            thread: 1,
        },
    ]
}

fn summarize(path: &std::path::Path) -> (String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_obs_tool"))
        .args(["summarize", path.to_str().unwrap()])
        .output()
        .expect("obs_tool runs");
    (String::from_utf8_lossy(&out.stdout).into_owned(), out.status.code().unwrap_or(-1))
}

#[test]
fn summarize_reads_both_formats() {
    let dir = std::env::temp_dir().join(format!("obs-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let chrome = dir.join("events.trace.json");
    let jsonl = dir.join("events.jsonl");
    std::fs::write(&chrome, chrome_trace(&sample_events())).unwrap();
    std::fs::write(&jsonl, events_jsonl(&sample_events())).unwrap();

    for path in [&chrome, &jsonl] {
        let (stdout, code) = summarize(path);
        assert_eq!(code, 0, "summarize failed for {}:\n{stdout}", path.display());
        assert!(stdout.contains("events: 3 spans, 1 marks"), "bad counts:\n{stdout}");
        // Per-stage totals: simulation 13ms over 2 spans, generation 2ms.
        assert!(stdout.contains("| simulation | 2 | 13.000 |"), "bad stage row:\n{stdout}");
        assert!(stdout.contains("| generation | 1 | 2.000 |"), "bad stage row:\n{stdout}");
        // Slowest-cell ranking: cell 3 (9ms) ahead of cell 5 (4ms).
        let pos3 = stdout.find("| 3 | 9.000 |").expect("cell 3 listed");
        let pos5 = stdout.find("| 5 | 4.000 |").expect("cell 5 listed");
        assert!(pos3 < pos5, "cells not sorted by wall:\n{stdout}");
        assert!(stdout.contains("| watchdog_kill | 1 |"), "mark tally missing:\n{stdout}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn summarize_rejects_garbage_with_exit_2() {
    let dir = std::env::temp_dir().join(format!("obs-cli-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "this is not json").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_obs_tool"))
        .args(["summarize", bad.to_str().unwrap()])
        .output()
        .expect("obs_tool runs");
    assert_eq!(out.status.code(), Some(2));
    let missing = Command::new(env!("CARGO_BIN_EXE_obs_tool"))
        .args(["summarize", dir.join("absent.json").to_str().unwrap()])
        .output()
        .expect("obs_tool runs");
    assert_eq!(missing.status.code(), Some(2));
    let usage = Command::new(env!("CARGO_BIN_EXE_obs_tool")).output().expect("obs_tool runs");
    assert_eq!(usage.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}
