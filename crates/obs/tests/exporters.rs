//! Exporter golden-file tests: the Chrome trace, JSONL, and Prometheus
//! renderings of a fixed input must match byte-for-byte, and the bundled
//! JSON parser must round-trip both event formats.

use llbp_obs::export::{chrome_trace, events_jsonl, prometheus};
use llbp_obs::json::{parse_event_stream, Value};
use llbp_obs::{Event, EventKind, HistogramSnapshot, MetricsSnapshot};

fn fixed_events() -> Vec<Event> {
    vec![
        Event {
            name: "queue_wait",
            kind: EventKind::Span,
            cell: 0,
            start_us: 10,
            dur_us: 5,
            thread: 0,
        },
        Event {
            name: "simulation",
            kind: EventKind::Span,
            cell: 1,
            start_us: 20,
            dur_us: 1000,
            thread: 1,
        },
        Event { name: "retry", kind: EventKind::Mark, cell: 1, start_us: 30, dur_us: 0, thread: 1 },
        Event {
            name: "write_back",
            kind: EventKind::Span,
            cell: -1,
            start_us: 2000,
            dur_us: 7,
            thread: 0,
        },
    ]
}

fn fixed_snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    snap.counters.insert("retry".into(), 1);
    snap.counters.insert("sweep_jobs".into(), 4);
    snap.gauges.insert("workers".into(), 2);
    let mut hist = HistogramSnapshot::default();
    hist.record(5);
    hist.record(1000);
    snap.histograms.insert("simulation".into(), hist);
    snap
}

#[test]
fn chrome_trace_matches_golden() {
    assert_eq!(chrome_trace(&fixed_events()), include_str!("golden/events.trace.json"));
}

#[test]
fn jsonl_matches_golden() {
    assert_eq!(events_jsonl(&fixed_events()), include_str!("golden/events.jsonl"));
}

#[test]
fn prometheus_matches_golden() {
    assert_eq!(prometheus(&fixed_snapshot()), include_str!("golden/metrics.prom"));
}

#[test]
fn parser_round_trips_both_event_formats() {
    let events = fixed_events();
    let from_chrome = parse_event_stream(&chrome_trace(&events)).expect("chrome parses");
    let from_jsonl = parse_event_stream(&events_jsonl(&events)).expect("jsonl parses");
    assert_eq!(from_chrome, from_jsonl);
    assert_eq!(from_chrome.len(), events.len());
    for (parsed, original) in from_chrome.iter().zip(events.iter()) {
        assert_eq!(parsed.get("name").and_then(Value::as_str), Some(original.name));
        assert_eq!(parsed.get("ts").and_then(Value::as_f64), Some(original.start_us as f64));
        let ph = parsed.get("ph").and_then(Value::as_str).unwrap();
        match original.kind {
            EventKind::Span => {
                assert_eq!(ph, "X");
                assert_eq!(parsed.get("dur").and_then(Value::as_f64), Some(original.dur_us as f64));
            }
            EventKind::Mark => assert_eq!(ph, "i"),
        }
        let cell = parsed
            .get("args")
            .and_then(|args| args.get("cell"))
            .and_then(Value::as_f64)
            .map(|c| c as i64);
        if original.cell >= 0 {
            assert_eq!(cell, Some(original.cell));
        } else {
            assert_eq!(cell, None, "negative cells are omitted from args");
        }
    }
}

#[test]
fn parser_rejects_garbage() {
    assert!(parse_event_stream("not json").is_err());
    assert!(parse_event_stream("[{\"a\":1},]").is_err());
    assert!(parse_event_stream("[1,2,3]").is_err(), "non-object events rejected");
}
