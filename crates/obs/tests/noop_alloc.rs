//! A disabled `Telemetry` handle must cost nothing: zero heap
//! allocations and zero recorded events across the whole API surface.
//! Uses a counting global allocator; this file holds exactly one test so
//! no sibling test thread can allocate concurrently.

use llbp_obs::Telemetry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_handle_performs_zero_allocations() {
    let tel = Telemetry::disabled();
    let counter = tel.counter("hot_records");
    let gauge = tel.gauge("depth");
    let histogram = tel.histogram("wall");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        counter.add(i);
        gauge.set(i);
        histogram.record(i);
        tel.mark("retry", i as i64);
        let span = tel.span("simulation").with_cell(i as i64);
        drop(span);
        let clone = tel.clone();
        drop(clone);
    }
    let events = tel.drain_events();
    let snapshot = tel.metrics();
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(after - before, 0, "disabled telemetry must not allocate");
    assert!(events.is_empty(), "disabled telemetry must record no events");
    assert!(snapshot.is_empty(), "disabled telemetry must register no metrics");
    assert_eq!(counter.get(), 0);
    assert_eq!(histogram.snapshot().count(), 0);
}
