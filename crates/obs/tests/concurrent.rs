//! Snapshot determinism under concurrent increments: once every writer
//! thread has joined, repeated snapshots are identical and totals are
//! exact (no lost updates, no torn histogram state).

use llbp_obs::{EventKind, Telemetry};

const THREADS: u64 = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn snapshots_are_deterministic_after_concurrent_updates() {
    let tel = Telemetry::enabled();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let tel = tel.clone();
            scope.spawn(move || {
                let counter = tel.counter("incs");
                let histogram = tel.histogram("vals");
                for i in 0..PER_THREAD {
                    counter.inc();
                    histogram.record(i % 1024);
                }
                tel.mark("worker_done", t as i64);
            });
        }
    });

    let first = tel.metrics();
    let second = tel.metrics();
    assert_eq!(first, second, "snapshots after quiescence must be identical");

    assert_eq!(first.counters["incs"], THREADS * PER_THREAD);
    assert_eq!(first.counters["worker_done"], THREADS);
    let hist = &first.histograms["vals"];
    assert_eq!(hist.count(), THREADS * PER_THREAD);
    // Sum of (i % 1024) over 0..10_000, times 8 threads.
    let per_thread_sum: u64 = (0..PER_THREAD).map(|i| i % 1024).sum();
    assert_eq!(hist.sum, THREADS * per_thread_sum);
    assert_eq!(hist.max, 1023);

    let events = tel.drain_events();
    assert_eq!(events.len(), THREADS as usize);
    assert!(events.iter().all(|e| e.kind == EventKind::Mark && e.name == "worker_done"));
    // Each mark came from a distinct recording thread.
    let mut threads: Vec<u64> = events.iter().map(|e| e.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    assert_eq!(threads.len(), THREADS as usize);
}
