//! Property-based tests for the LLBP components.

use llbp_core::{ContextHistoryKind, LlbpParams, LlbpPredictor, PatternSet, PrefetchQueue};
use llbp_core::rcr::RollingContextRegister;
use llbp_tage::Predictor;
use llbp_trace::{BranchKind, BranchRecord};
use proptest::prelude::*;

proptest! {
    /// Pattern sets keep their sorted-by-length invariant and capacity
    /// bound under arbitrary allocation/training interleavings.
    #[test]
    fn pattern_set_invariants(
        ops in proptest::collection::vec((0u8..16, 0u32..0x2000, any::<bool>()), 1..300),
        buckets in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let mut set = PatternSet::new(16, buckets, 16);
        for &(len_idx, tag, taken) in &ops {
            set.allocate(len_idx, tag, taken, 3);
            prop_assert!(set.is_sorted());
            prop_assert!(set.occupancy() <= set.capacity());
        }
    }

    /// A matched pattern's length index always owns the tag that matched:
    /// `find_longest` never returns a slot whose tag differs.
    #[test]
    fn find_longest_returns_true_matches(
        ops in proptest::collection::vec((0u8..16, 0u32..0x2000, any::<bool>()), 1..100),
        probe in proptest::collection::vec(0u32..0x2000, 16),
    ) {
        let mut set = PatternSet::new(16, 4, 16);
        for &(len_idx, tag, taken) in &ops {
            set.allocate(len_idx, tag, taken, 3);
        }
        if let Some(slot) = set.find_longest(&probe) {
            let p = set.pattern(slot).expect("matched slot is occupied");
            prop_assert_eq!(probe[usize::from(p.len_idx)], p.tag);
        }
    }

    /// The RCR's prefetch CID always becomes the current CID after exactly
    /// `D` observed pushes, for arbitrary geometries and PC streams.
    #[test]
    fn rcr_prefetch_contract(
        window in 1usize..12,
        distance in 0usize..6,
        pcs in proptest::collection::vec(any::<u64>(), 24..64),
    ) {
        let mut r = RollingContextRegister::new(
            window, distance, 14, ContextHistoryKind::Unconditional,
        );
        // Prime beyond the register depth.
        let (prime, rest) = pcs.split_at(window + distance);
        for &pc in prime {
            r.push(pc);
        }
        for chunk in rest.chunks(distance.max(1)) {
            if chunk.len() < distance.max(1) {
                break;
            }
            let upcoming = r.prefetch_cid();
            for &pc in chunk {
                r.push(pc);
            }
            if distance > 0 {
                prop_assert_eq!(r.current_cid(), upcoming);
            }
        }
    }

    /// The prefetch queue delivers everything exactly once, in order, and
    /// never before its ready time.
    #[test]
    fn prefetch_queue_delivery(
        issues in proptest::collection::vec((0u64..1000, 0u64..100, 0u64..20), 1..60),
    ) {
        let mut q = PrefetchQueue::new();
        let mut expected = std::collections::HashSet::new();
        let mut now = 0u64;
        let mut delivered = 0u64;
        for &(cid, gap, delay) in &issues {
            now += gap;
            q.issue(cid, now, delay);
            expected.insert(cid);
            for p in q.drain_ready(now) {
                prop_assert!(p.ready_at <= now);
                delivered += 1;
            }
        }
        delivered += q.drain_ready(u64::MAX).len() as u64;
        prop_assert_eq!(delivered, q.completed());
        prop_assert!(q.is_empty());
        // Coalescing means delivered <= issues, but every distinct CID in
        // flight at its time was eventually delivered or squashed (no
        // squash here).
        prop_assert!(delivered as usize <= issues.len());
    }

    /// The composed LLBP predictor survives arbitrary record streams with
    /// consistent statistics.
    #[test]
    fn llbp_predictor_robust(
        records in proptest::collection::vec(
            (0u64..64, any::<bool>(), 0u8..6, 0u32..8),
            1..300,
        ),
    ) {
        let mut p = LlbpPredictor::new(LlbpParams::default());
        for &(i, taken, kind, gap) in &records {
            let pc = 0x40_0000 + i * 8;
            let kind = BranchKind::from_u8(kind).expect("in range");
            if kind == BranchKind::Conditional {
                let _ = p.predict(pc);
                p.train(pc, taken);
                p.update_history(&BranchRecord::conditional(pc, pc + 8, taken, gap));
            } else {
                p.update_history(&BranchRecord::unconditional(pc, pc ^ 0x80, kind, gap));
            }
        }
        let s = p.stats();
        prop_assert!(s.breakdown_is_consistent());
        prop_assert!(s.pb_hits <= s.predictions);
        prop_assert!(s.cd_hits <= s.cd_lookups);
    }
}
