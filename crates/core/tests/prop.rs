//! Randomized property tests for the LLBP components, driven by the
//! in-tree `SplitMix64` PRNG (no external property-testing framework, so
//! the workspace builds with no network access).

use bputil::rng::SplitMix64;
use llbp_core::rcr::RollingContextRegister;
use llbp_core::{ContextHistoryKind, LlbpParams, LlbpPredictor, PatternSet, PrefetchQueue};
use llbp_tage::Predictor;
use llbp_trace::{BranchKind, BranchRecord};

/// Pattern sets keep their sorted-by-length invariant and capacity
/// bound under arbitrary allocation/training interleavings.
#[test]
fn pattern_set_invariants() {
    let mut rng = SplitMix64::new(0x9A7);
    for case in 0..30 {
        let buckets = [1usize, 2, 4][case % 3];
        let mut set = PatternSet::new(16, buckets, 16);
        for _ in 0..1 + rng.below(300) {
            let len_idx = rng.below(16) as u8;
            let tag = rng.below(0x2000) as u32;
            set.allocate(len_idx, tag, rng.chance(1, 2), 3);
            assert!(set.is_sorted());
            assert!(set.occupancy() <= set.capacity());
        }
    }
}

/// A matched pattern's length index always owns the tag that matched:
/// `find_longest` never returns a slot whose tag differs.
#[test]
fn find_longest_returns_true_matches() {
    let mut rng = SplitMix64::new(0xF19D);
    for _ in 0..40 {
        let mut set = PatternSet::new(16, 4, 16);
        for _ in 0..1 + rng.below(100) {
            set.allocate(rng.below(16) as u8, rng.below(0x2000) as u32, rng.chance(1, 2), 3);
        }
        let probe: Vec<u32> = (0..16).map(|_| rng.below(0x2000) as u32).collect();
        if let Some(slot) = set.find_longest(&probe) {
            let p = set.pattern(slot).expect("matched slot is occupied");
            assert_eq!(probe[usize::from(p.len_idx)], p.tag);
        }
    }
}

/// The RCR's prefetch CID always becomes the current CID after exactly
/// `D` observed pushes, for arbitrary geometries and PC streams.
#[test]
fn rcr_prefetch_contract() {
    let mut rng = SplitMix64::new(0x9C9);
    for _ in 0..40 {
        let window = 1 + rng.below(11) as usize;
        let distance = rng.below(6) as usize;
        let n = 24 + rng.below(40) as usize;
        let pcs: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let mut r =
            RollingContextRegister::new(window, distance, 14, ContextHistoryKind::Unconditional);
        // Prime beyond the register depth.
        let (prime, rest) = pcs.split_at((window + distance).min(pcs.len()));
        for &pc in prime {
            r.push(pc);
        }
        for chunk in rest.chunks(distance.max(1)) {
            if chunk.len() < distance.max(1) {
                break;
            }
            let upcoming = r.prefetch_cid();
            for &pc in chunk {
                r.push(pc);
            }
            if distance > 0 {
                assert_eq!(r.current_cid(), upcoming);
            }
        }
    }
}

/// The prefetch queue delivers everything exactly once, in order, and
/// never before its ready time.
#[test]
fn prefetch_queue_delivery() {
    let mut rng = SplitMix64::new(0x9F0);
    for _ in 0..40 {
        let issues: Vec<(u64, u64, u64)> = (0..1 + rng.below(60))
            .map(|_| (rng.below(1000), rng.below(100), rng.below(20)))
            .collect();
        let mut q = PrefetchQueue::new();
        let mut expected = std::collections::HashSet::new();
        let mut now = 0u64;
        let mut delivered = 0u64;
        for &(cid, gap, delay) in &issues {
            now += gap;
            q.issue(cid, now, delay);
            expected.insert(cid);
            for p in q.drain_ready(now) {
                assert!(p.ready_at <= now);
                delivered += 1;
            }
        }
        delivered += q.drain_ready(u64::MAX).len() as u64;
        assert_eq!(delivered, q.completed());
        assert!(q.is_empty());
        // Coalescing means delivered <= issues, but every distinct CID in
        // flight at its time was eventually delivered or squashed (no
        // squash here).
        assert!(delivered as usize <= issues.len());
    }
}

/// The composed LLBP predictor survives arbitrary record streams with
/// consistent statistics.
#[test]
fn llbp_predictor_robust() {
    let mut rng = SplitMix64::new(0x11B9);
    for _ in 0..10 {
        let mut p = LlbpPredictor::new(LlbpParams::default());
        for _ in 0..1 + rng.below(300) {
            let pc = 0x40_0000 + rng.below(64) * 8;
            let taken = rng.chance(1, 2);
            let kind = BranchKind::from_u8(rng.below(6) as u8).expect("in range");
            let gap = rng.below(8) as u32;
            if kind == BranchKind::Conditional {
                let _ = p.predict(pc);
                p.train(pc, taken);
                p.update_history(&BranchRecord::conditional(pc, pc + 8, taken, gap));
            } else {
                p.update_history(&BranchRecord::unconditional(pc, pc ^ 0x80, kind, gap));
            }
        }
        let s = p.stats();
        assert!(s.breakdown_is_consistent());
        assert!(s.pb_hits <= s.predictions);
        assert!(s.cd_hits <= s.cd_lookups);
    }
}
