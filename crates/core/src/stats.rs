//! LLBP runtime statistics: prediction breakdown (Fig. 15), transfer
//! bandwidth (Fig. 11) and structure access counts (Fig. 12).

/// Classification of one LLBP-matched prediction relative to the baseline
/// predictor, as in Fig. 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverrideKind {
    /// LLBP matched but its history was shorter than TAGE's: no override.
    NoOverride,
    /// LLBP overrode; LLBP correct, baseline would have been wrong.
    GoodOverride,
    /// LLBP overrode; LLBP wrong, baseline would have been correct.
    BadOverride,
    /// LLBP overrode but both agreed and were correct (redundant).
    BothCorrect,
    /// LLBP overrode but both agreed and were wrong.
    BothWrong,
}

/// Aggregated LLBP statistics for one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LlbpStats {
    /// Conditional predictions made (by the composed predictor).
    pub predictions: u64,
    /// Predictions where LLBP matched a pattern in the PB.
    pub llbp_matches: u64,
    /// Breakdown counters, indexable via [`LlbpStats::count`].
    pub no_override: u64,
    /// LLBP overrode and fixed a baseline misprediction.
    pub good_override: u64,
    /// LLBP overrode and broke a correct baseline prediction.
    pub bad_override: u64,
    /// Redundant override, both correct.
    pub both_correct: u64,
    /// Override with both wrong.
    pub both_wrong: u64,
    /// Pattern sets read from LLBP storage into the PB.
    pub storage_reads: u64,
    /// Dirty pattern sets written back from the PB to LLBP storage.
    pub storage_writes: u64,
    /// Context-directory lookups (one per observed context branch).
    pub cd_lookups: u64,
    /// CD lookups that found the context resident.
    pub cd_hits: u64,
    /// PB lookups that found the current context's set (per prediction
    /// with a tracked context).
    pub pb_hits: u64,
    /// Predictions whose context set existed but had not arrived in the
    /// PB yet (late prefetch) — the LLBP-vs-0Lat gap.
    pub late_prefetches: u64,
    /// Pipeline resets observed (mispredictions incl. indirect targets).
    pub pipeline_resets: u64,
    /// New pattern sets created (contexts first tracked).
    pub contexts_created: u64,
    /// Patterns allocated into sets.
    pub pattern_allocs: u64,
    /// Total instructions observed (for per-instruction rates).
    pub instructions: u64,
    /// Total cycles (instructions / fetch width).
    pub cycles: u64,
}

impl LlbpStats {
    /// Records one classified LLBP match.
    pub fn record_override(&mut self, kind: OverrideKind) {
        self.llbp_matches += 1;
        match kind {
            OverrideKind::NoOverride => self.no_override += 1,
            OverrideKind::GoodOverride => self.good_override += 1,
            OverrideKind::BadOverride => self.bad_override += 1,
            OverrideKind::BothCorrect => self.both_correct += 1,
            OverrideKind::BothWrong => self.both_wrong += 1,
        }
    }

    /// Count for one breakdown class.
    #[must_use]
    pub fn count(&self, kind: OverrideKind) -> u64 {
        match kind {
            OverrideKind::NoOverride => self.no_override,
            OverrideKind::GoodOverride => self.good_override,
            OverrideKind::BadOverride => self.bad_override,
            OverrideKind::BothCorrect => self.both_correct,
            OverrideKind::BothWrong => self.both_wrong,
        }
    }

    /// Overrides of any kind (LLBP supplied the final direction).
    #[must_use]
    pub fn overrides(&self) -> u64 {
        self.good_override + self.bad_override + self.both_correct + self.both_wrong
    }

    /// Fraction of conditional predictions where LLBP matched.
    #[must_use]
    pub fn match_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.llbp_matches as f64 / self.predictions as f64
        }
    }

    /// Read traffic in bits/instruction given the per-set transfer size.
    #[must_use]
    pub fn read_bits_per_inst(&self, set_bits: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.storage_reads * set_bits) as f64 / self.instructions as f64
        }
    }

    /// Write traffic in bits/instruction given the per-set transfer size.
    #[must_use]
    pub fn write_bits_per_inst(&self, set_bits: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.storage_writes * set_bits) as f64 / self.instructions as f64
        }
    }

    /// Sanity check: breakdown classes sum to the match count.
    #[must_use]
    pub fn breakdown_is_consistent(&self) -> bool {
        self.no_override + self.overrides() == self.llbp_matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums() {
        let mut s = LlbpStats::default();
        s.record_override(OverrideKind::NoOverride);
        s.record_override(OverrideKind::GoodOverride);
        s.record_override(OverrideKind::BothCorrect);
        assert_eq!(s.llbp_matches, 3);
        assert_eq!(s.overrides(), 2);
        assert!(s.breakdown_is_consistent());
        assert_eq!(s.count(OverrideKind::GoodOverride), 1);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = LlbpStats::default();
        assert_eq!(s.match_rate(), 0.0);
        assert_eq!(s.read_bits_per_inst(288), 0.0);
    }

    #[test]
    fn bandwidth_math() {
        let s = LlbpStats {
            storage_reads: 10,
            storage_writes: 2,
            instructions: 288,
            ..Default::default()
        };
        assert!((s.read_bits_per_inst(288) - 10.0).abs() < 1e-12);
        assert!((s.write_bits_per_inst(288) - 2.0).abs() < 1e-12);
    }
}
