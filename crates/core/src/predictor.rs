//! The composed LLBP + TAGE-SC-L predictor (§V).
//!
//! Data flow per predicted branch:
//!
//! 1. The backing TAGE-SC-L performs its normal lookup.
//! 2. In parallel, the pattern buffer (PB) is probed with the current
//!    context ID; a resident pattern set is matched against the 16
//!    per-length tag hashes and the longest match wins.
//! 3. A 6-bit length comparison arbitrates: LLBP overrides the baseline
//!    when its matching history is at least as long as TAGE's provider.
//! 4. At resolution, only the providing side trains (TAGE cancels its
//!    update when LLBP provided); a misprediction by the provider
//!    allocates a longer-history pattern into the context's set.
//!
//! Prefetching: every observed context branch advances the RCR, looks the
//! *upcoming* context up in the context directory, and — on a hit — pulls
//! its pattern set into the PB with the configured delay. Pipeline resets
//! (own mispredictions and indirect-branch target changes) squash
//! in-flight prefetches.

use crate::params::{CancelPolicy, LlbpParams};
use crate::pattern::PatternSet;
use crate::prefetch::PrefetchQueue;
use crate::rcr::RollingContextRegister;
use crate::stats::{LlbpStats, OverrideKind};
use bputil::history::FoldedHistory;
use bputil::table::SetAssoc;
use llbp_tage::tage::UpdateMode;
use llbp_tage::{FrontEnd, PredictionInfo, Predictor, ProviderKind, TageScl, TslLookup};
use llbp_trace::{BranchKind, BranchRecord};

/// A pattern set resident in the pattern buffer.
#[derive(Debug, Clone)]
struct PbEntry {
    set: PatternSet,
    dirty: bool,
}

/// LLBP's view of one prediction, stashed between `predict` and `train`.
#[derive(Debug, Clone)]
struct Pending {
    pc: u64,
    tsl: TslLookup,
    /// Slot + length + direction of the longest LLBP match, if any.
    llbp: Option<LlbpMatch>,
    /// Final direction returned to the front-end.
    final_pred: bool,
    /// Whether LLBP overrode the baseline.
    overrode: bool,
    /// Current context ID at prediction time.
    cid: u64,
    /// Per-length tags computed at prediction time (needed to allocate
    /// with the same history the prediction saw).
    tags: Vec<u32>,
}

#[derive(Debug, Clone, Copy)]
struct LlbpMatch {
    slot: usize,
    pred: bool,
    weak: bool,
    hist_len: usize,
}

/// A snapshot of the composed predictor's speculative history state
/// (§V-E2 rollback support).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlbpCheckpoint {
    tsl: llbp_tage::TslCheckpoint,
    rcr: crate::rcr::RcrCheckpoint,
    folded_tag0: Vec<u32>,
    folded_tag1: Vec<u32>,
}

/// The Last-Level Branch Predictor backing a TAGE-SC-L baseline.
#[derive(Debug)]
pub struct LlbpPredictor {
    params: LlbpParams,
    tsl: TageScl,
    rcr: RollingContextRegister,
    folded_tag0: Vec<FoldedHistory>,
    folded_tag1: Vec<FoldedHistory>,
    /// Unified context directory + bulk pattern-set storage.
    storage: SetAssoc<PatternSet>,
    /// The in-core pattern buffer.
    pb: SetAssoc<PbEntry>,
    prefetches: PrefetchQueue,
    /// Front-end target predictors (BTB/RAS/ITTAGE): their late redirects
    /// are the non-direction pipeline resets that squash prefetches.
    frontend: FrontEnd,
    instructions: u64,
    stats: LlbpStats,
    pending: Option<Pending>,
    /// Runtime power gate (§V): `false` turns the LLBP side off.
    llbp_enabled: bool,
}

impl LlbpPredictor {
    /// Builds the composed predictor from validated parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`LlbpParams::validate`].
    #[must_use]
    pub fn new(params: LlbpParams) -> Self {
        params.validate().unwrap_or_else(|e| panic!("invalid LLBP params: {e}"));
        let tsl = TageScl::new(params.tsl.clone());
        let rcr = RollingContextRegister::new(
            params.window,
            params.prefetch_distance,
            params.cid_bits,
            params.history_kind,
        );
        let folded_tag0 = params
            .history_lengths
            .iter()
            .map(|&l| FoldedHistory::new(l, params.tag_bits))
            .collect();
        let folded_tag1 = params
            .history_lengths
            .iter()
            .map(|&l| FoldedHistory::new(l, (params.tag_bits - 1).max(1)))
            .collect();
        let storage = SetAssoc::new(params.cd_index_bits, params.cd_ways);
        let pb = SetAssoc::new(params.pb_index_bits, params.pb_ways);
        Self {
            tsl,
            rcr,
            folded_tag0,
            folded_tag1,
            storage,
            pb,
            prefetches: PrefetchQueue::new(),
            frontend: FrontEnd::new(),
            instructions: 0,
            stats: LlbpStats::default(),
            pending: None,
            llbp_enabled: true,
            params,
        }
    }

    /// The parameters this instance was built from.
    #[must_use]
    pub fn params(&self) -> &LlbpParams {
        &self.params
    }

    /// The backing TAGE-SC-L (for probes).
    #[must_use]
    pub fn baseline(&self) -> &TageScl {
        &self.tsl
    }

    /// Aggregated LLBP statistics.
    #[must_use]
    pub fn stats(&self) -> &LlbpStats {
        &self.stats
    }

    /// The front-end target predictors (for probes).
    #[must_use]
    pub fn frontend(&self) -> &FrontEnd {
        &self.frontend
    }

    /// Enables or disables the LLBP side at runtime (§V: "when the
    /// accuracy of TAGE is sufficiently high, LLBP can be disabled to
    /// save power"). While disabled, predictions come solely from the
    /// baseline, and no prefetches, CD lookups or pattern transfers
    /// occur; histories keep advancing so re-enabling is seamless.
    pub fn set_llbp_enabled(&mut self, enabled: bool) {
        self.llbp_enabled = enabled;
        if !enabled {
            self.prefetches.squash();
        }
    }

    /// Whether the LLBP side is currently active.
    #[must_use]
    pub fn llbp_enabled(&self) -> bool {
        self.llbp_enabled
    }

    /// Captures all speculative history state: the baseline's checkpoint
    /// plus the RCR and LLBP's folded pattern histories (§V-E2: "Rolling
    /// back the RCR can be done in the same way as for the folded
    /// history registers in TAGE").
    #[must_use]
    pub fn checkpoint(&self) -> LlbpCheckpoint {
        LlbpCheckpoint {
            tsl: self.tsl.checkpoint(),
            rcr: self.rcr.checkpoint(),
            folded_tag0: self.folded_tag0.iter().map(FoldedHistory::value).collect(),
            folded_tag1: self.folded_tag1.iter().map(FoldedHistory::value).collect(),
        }
    }

    /// Restores a checkpoint taken by [`LlbpPredictor::checkpoint`],
    /// rolling back every speculative history update made since (pattern
    /// sets train at commit and are unaffected). In-flight prefetches are
    /// squashed, as the hardware does on the triggering misprediction.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint came from a different configuration.
    pub fn restore(&mut self, checkpoint: &LlbpCheckpoint) {
        assert_eq!(checkpoint.folded_tag0.len(), self.folded_tag0.len(), "config mismatch");
        self.tsl.restore(&checkpoint.tsl);
        self.rcr.restore(&checkpoint.rcr);
        for (f, &v) in self.folded_tag0.iter_mut().zip(&checkpoint.folded_tag0) {
            f.restore(v);
        }
        for (f, &v) in self.folded_tag1.iter_mut().zip(&checkpoint.folded_tag1) {
            f.restore(v);
        }
        self.prefetches.squash();
    }

    /// Current cycle under the fetch-width clock model.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.instructions / self.params.fetch_width.max(1)
    }

    fn storage_key(&self, cid: u64) -> (u64, u64) {
        (cid & ((1 << self.params.cd_index_bits) - 1), cid >> self.params.cd_index_bits)
    }

    fn pb_key(&self, cid: u64) -> (u64, u64) {
        (cid & ((1u64 << self.params.pb_index_bits) - 1), cid >> self.params.pb_index_bits)
    }

    fn empty_set(&self) -> PatternSet {
        PatternSet::new(
            self.params.patterns_per_set,
            self.params.num_buckets,
            self.params.history_lengths.len(),
        )
    }

    /// Per-length pattern tags for `pc` under the current history.
    fn pattern_tags(&self, pc: u64) -> Vec<u32> {
        (0..self.params.history_lengths.len())
            .map(|i| {
                bputil::hash::tage_tag(
                    pc ^ (i as u64).rotate_left(7),
                    self.folded_tag0[i].value(),
                    self.folded_tag1[i].value(),
                    self.params.tag_bits,
                )
            })
            .collect()
    }

    /// Moves completed prefetches from storage into the PB.
    fn process_arrivals(&mut self) {
        let now = self.cycle();
        for p in self.prefetches.drain_ready(now) {
            self.fill_pb_from_storage(p.cid);
        }
    }

    /// Copies the pattern set for `cid` from storage into the PB (a
    /// 288-bit read), if present and not already resident.
    fn fill_pb_from_storage(&mut self, cid: u64) -> bool {
        let (pi, pt) = self.pb_key(cid);
        if self.pb.peek(pi, pt).is_some() {
            return true;
        }
        let (si, st) = self.storage_key(cid);
        let Some(set) = self.storage.peek(si, st).cloned() else {
            return false;
        };
        self.stats.storage_reads += 1;
        self.insert_pb(cid, PbEntry { set, dirty: false });
        true
    }

    /// Inserts into the PB, writing back any dirty victim.
    fn insert_pb(&mut self, cid: u64, entry: PbEntry) {
        let (pi, pt) = self.pb_key(cid);
        if let Some((victim_tag, victim)) = self.pb.insert_lru(pi, pt, entry) {
            if victim.dirty {
                let victim_cid = (victim_tag << self.params.pb_index_bits) | pi;
                self.write_back(victim_cid, victim.set);
            }
        }
    }

    /// Writes a dirty pattern set back to storage (a 288-bit write). If
    /// the context directory entry was replaced in the meantime, the set
    /// is dropped — that context has been evicted from LLBP.
    fn write_back(&mut self, cid: u64, set: PatternSet) {
        let (si, st) = self.storage_key(cid);
        if let Some(stored) = self.storage.get_mut(si, st) {
            *stored = set;
            self.stats.storage_writes += 1;
        }
    }

    /// §V-D step 1: ensure the current context has a pattern set resident
    /// in the PB, creating CD + storage entries if the context is new.
    /// Returns `false` only when the set exists in storage but cannot be
    /// fetched under the latency model (never happens at train time — the
    /// hardware keeps providing sets pinned in the PB; our in-order model
    /// fetches on demand and charges the read).
    fn ensure_context_in_pb(&mut self, cid: u64) {
        let (pi, pt) = self.pb_key(cid);
        if self.pb.peek(pi, pt).is_some() {
            return;
        }
        if self.fill_pb_from_storage(cid) {
            return;
        }
        // New context: create the CD/storage entry (confidence-based
        // replacement by default, §V-D) and an empty set in the PB.
        self.stats.contexts_created += 1;
        let (si, st) = self.storage_key(cid);
        let threshold = self.params.confidence_threshold;
        let empty = self.empty_set();
        match self.params.cd_replacement {
            crate::params::CdReplacement::Confidence => {
                self.storage.insert_with(si, st, empty, |ways| {
                    ways.iter()
                        .enumerate()
                        .min_by_key(|(_, (_, set))| set.confident_count(threshold))
                        .map(|(i, _)| i)
                        .unwrap_or(0)
                });
            }
            crate::params::CdReplacement::Lru => {
                self.storage.insert_lru(si, st, empty);
            }
        }
        self.insert_pb(cid, PbEntry { set: self.empty_set(), dirty: true });
    }

    /// Allocates a pattern with the first LLBP history length strictly
    /// longer than `base_len` (§V-D steps 2–4). No-op when the provider
    /// already used the longest history.
    fn allocate_pattern(&mut self, cid: u64, tags: &[u32], base_len: usize, taken: bool) {
        let Some(len_idx) = self.params.history_lengths.iter().position(|&l| l > base_len) else {
            return;
        };
        self.ensure_context_in_pb(cid);
        let (pi, pt) = self.pb_key(cid);
        let counter_bits = self.params.counter_bits;
        if let Some(entry) = self.pb.get_mut(pi, pt) {
            entry.set.allocate(len_idx as u8, tags[len_idx], taken, counter_bits);
            entry.dirty = true;
            self.stats.pattern_allocs += 1;
        }
    }

    /// A pipeline reset: squash in-flight prefetches, then restart
    /// prefetching from the recovered front-end state — the current and
    /// upcoming contexts are re-requested immediately (§VI: "all in-flight
    /// prefetches get squashed before LLBP restarts prefetching").
    fn pipeline_reset(&mut self) {
        self.stats.pipeline_resets += 1;
        self.prefetches.squash();
        let now = self.cycle();
        for cid in [self.rcr.current_cid(), self.rcr.prefetch_cid()] {
            let (pi, pt) = self.pb_key(cid);
            if self.pb.peek(pi, pt).is_some() {
                continue;
            }
            let (si, st) = self.storage_key(cid);
            if self.storage.peek(si, st).is_some() {
                self.prefetches.issue(cid, now, self.params.prefetch_delay);
            }
        }
    }
}

impl Predictor for LlbpPredictor {
    fn predict(&mut self, pc: u64) -> bool {
        self.process_arrivals();
        let tage = self.tsl.lookup_tage(pc);
        let cid = self.rcr.current_cid();
        let tags = self.pattern_tags(pc);
        self.stats.predictions += 1;

        let (pi, pt) = self.pb_key(cid);
        let mut resident = self.llbp_enabled && self.pb.get(pi, pt).is_some();
        if resident {
            self.stats.pb_hits += 1;
        }
        if !resident && self.llbp_enabled {
            // The set may exist in LLBP storage but not have arrived yet.
            let (si, st) = self.storage_key(cid);
            if self.storage.peek(si, st).is_some() {
                if self.params.prefetch_delay == 0 {
                    // LLBP-0Lat: storage is reachable within the cycle.
                    resident = self.fill_pb_from_storage(cid);
                } else {
                    self.stats.late_prefetches += 1;
                    // Demand-request the set for later predictions in this
                    // context.
                    let now = self.cycle();
                    self.prefetches.issue(cid, now, self.params.prefetch_delay);
                }
            }
        }

        let llbp = if resident {
            let (pi, pt) = self.pb_key(cid);
            self.pb.peek(pi, pt).and_then(|entry| {
                entry.set.find_longest(&tags).map(|slot| {
                    let p = entry.set.pattern(slot).expect("slot was a match");
                    LlbpMatch {
                        slot,
                        pred: p.ctr.taken(),
                        weak: p.ctr.is_weak(),
                        hist_len: self.params.history_lengths[usize::from(p.len_idx)],
                    }
                })
            })
        } else {
            None
        };

        // Length arbitration (§V-B): LLBP wins ties and longer histories,
        // replacing TAGE's direction *before* the statistical corrector
        // and loop predictor apply (footnote 2) — so the correctors also
        // catch LLBP's statistical noise. With the (ablation)
        // weak-override gate, a just-allocated pattern defers to a
        // baseline backed by a tagged TAGE match.
        let weak_blocked =
            |m: &LlbpMatch| self.params.weak_override_gate && m.weak && tage.provider.is_some();
        let inject = match &llbp {
            Some(m) if m.hist_len >= tage.provider_hist_len && !weak_blocked(m) => Some(m.pred),
            _ => None,
        };
        let overrode = inject.is_some();
        let tsl = self.tsl.finish_lookup(pc, tage, inject);
        let final_pred = tsl.pred;

        self.pending = Some(Pending { pc, tsl, llbp, final_pred, overrode, cid, tags });
        final_pred
    }

    fn train(&mut self, pc: u64, taken: bool) {
        let pending = self.pending.take().expect("train() without a matching predict()");
        debug_assert_eq!(pending.pc, pc, "train() PC does not match predict()");

        // Fig. 15 classification: compare the produced direction against
        // what the baseline (no LLBP injection) would have predicted.
        if pending.llbp.is_some() {
            let final_pred = pending.final_pred;
            let baseline = pending.tsl.baseline_pred;
            let kind = if !pending.overrode {
                OverrideKind::NoOverride
            } else if final_pred == baseline {
                if final_pred == taken {
                    OverrideKind::BothCorrect
                } else {
                    OverrideKind::BothWrong
                }
            } else if final_pred == taken {
                OverrideKind::GoodOverride
            } else {
                OverrideKind::BadOverride
            };
            self.stats.record_override(kind);
        }

        // Train the providing side (§V-D). The baseline's update is
        // cancelled only when LLBP actually *changed* the direction: on
        // redundant overrides (both agree — the majority, Fig. 15) the
        // baseline saw the same outcome it predicted and keeps training,
        // which prevents its state from decaying under LLBP's shadow.
        if pending.overrode {
            let m = pending.llbp.as_ref().expect("override implies a match");
            let (pi, pt) = self.pb_key(pending.cid);
            if let Some(entry) = self.pb.get_mut(pi, pt) {
                if let Some(p) = entry.set.pattern_mut(m.slot) {
                    p.ctr.update(taken);
                    entry.dirty = true;
                }
            }
            let mode = match self.params.cancel_policy {
                CancelPolicy::Always => UpdateMode::Cancelled,
                CancelPolicy::OnDisagree if m.pred != pending.tsl.tage.pred => {
                    UpdateMode::Cancelled
                }
                _ => UpdateMode::Full,
            };
            self.tsl.commit(&pending.tsl, taken, mode);
        } else {
            self.tsl.commit(&pending.tsl, taken, UpdateMode::Full);
        }

        // Allocation on a provider misprediction: a new pattern with the
        // next-longer history, in this context's set.
        let (provider_pred, base_len) = if pending.overrode {
            let m = pending.llbp.as_ref().expect("override implies a match");
            (m.pred, m.hist_len)
        } else {
            (pending.tsl.pred, pending.tsl.tage.provider_hist_len)
        };
        if provider_pred != taken && self.llbp_enabled {
            self.allocate_pattern(pending.cid, &pending.tags, base_len, taken);
        }

        // A wrong final prediction resets the pipeline.
        if pending.final_pred != taken {
            self.pipeline_reset();
        }
    }

    fn update_history(&mut self, record: &BranchRecord) {
        self.advance_history(record, false);
    }

    fn update_history_fast(&mut self, record: &BranchRecord) {
        self.advance_history(record, true);
    }

    fn last_provider(&self) -> ProviderKind {
        // `finish_lookup` already attributes injected predictions to LLBP
        // (or to the SC/loop predictor when they corrected it).
        self.pending.as_ref().map_or(ProviderKind::Bimodal, |p| p.tsl.provider)
    }

    fn last_prediction_info(&self, pred: bool) -> PredictionInfo {
        let Some(p) = self.pending.as_ref() else {
            return PredictionInfo::from_provider(pred, ProviderKind::Bimodal);
        };
        let mut info = p.tsl.prediction_info();
        if let Some(m) = &p.llbp {
            info.llbp_hit = true;
            info.llbp_pred = m.pred;
            info.llbp_weak = m.weak;
            info.llbp_hist_len = m.hist_len.min(u16::MAX as usize) as u16;
        }
        info.llbp_override = p.overrode;
        info
    }

    fn label(&self) -> &str {
        &self.params.label
    }

    fn storage_bits(&self) -> u64 {
        self.params.storage_bits()
            + self.params.cd_bits()
            + self.params.pb_bits()
            + self.params.tsl.storage_bits()
    }
}

impl LlbpPredictor {
    /// The shared body of [`Predictor::update_history`] /
    /// [`Predictor::update_history_fast`]: identical except that the fast
    /// variant advances every folded register branch-free
    /// ([`FoldedHistory::update_with_out_bit`], one outgoing-bit read per
    /// history length) and delegates to the backing TAGE-SC-L's fast path.
    fn advance_history(&mut self, record: &BranchRecord, fast: bool) {
        self.instructions += record.instructions();
        self.stats.instructions = self.instructions;
        self.stats.cycles = self.cycle();
        self.process_arrivals();

        // Late front-end redirects (BTB misses on taken branches, RAS
        // mismatches, indirect-target mispredictions) flush the front-end
        // and squash LLBP's prefetches (§VI; the PHPWiki pathology,
        // §VII-A, is indirect-target driven).
        if self.frontend.observe(record).is_some() {
            self.pipeline_reset();
        }

        // LLBP's folded pattern histories advance with the same bit the
        // backing TAGE pushes, and must fold *before* the GHR push.
        let bit = if record.kind() == BranchKind::Conditional {
            record.taken()
        } else {
            ((record.pc() >> 2) ^ (record.target() >> 3)) & 1 == 1
        };
        if fast {
            // `folded_tag0[i]` and `folded_tag1[i]` fold the same
            // `history_lengths[i]` window — one outgoing bit serves both.
            for i in 0..self.folded_tag0.len() {
                let out = self.tsl.ghr().bit(self.folded_tag0[i].original_len() - 1);
                self.folded_tag0[i].update_with_out_bit(out, bit);
                self.folded_tag1[i].update_with_out_bit(out, bit);
            }
            self.tsl.update_history_fast(record);
        } else {
            for f in self.folded_tag0.iter_mut().chain(self.folded_tag1.iter_mut()) {
                f.update_before_push(self.tsl.ghr(), bit);
            }
            self.tsl.update_history(record);
        }

        // Context tracking + prefetch issue. The RCR always advances (so
        // re-enabling a power-gated LLBP is seamless); directory lookups
        // and prefetches only happen while enabled.
        if self.rcr.observes(record) {
            self.rcr.push(record.pc());
            if !self.llbp_enabled {
                return;
            }
            let upcoming = self.rcr.prefetch_cid();
            self.stats.cd_lookups += 1;
            let (si, st) = self.storage_key(upcoming);
            if self.storage.peek(si, st).is_some() {
                self.stats.cd_hits += 1;
                let (pi, pt) = self.pb_key(upcoming);
                if self.pb.peek(pi, pt).is_none() {
                    let now = self.cycle();
                    self.prefetches.issue(upcoming, now, self.params.prefetch_delay);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llbp_trace::{Trace, Workload, WorkloadSpec};

    fn run(p: &mut dyn Predictor, trace: &Trace, skip: usize) -> (u64, u64) {
        let mut mispredicts = 0u64;
        let mut conds = 0u64;
        for (i, r) in trace.iter().enumerate() {
            if r.kind() == BranchKind::Conditional {
                let pred = p.predict(r.pc());
                p.train(r.pc(), r.taken());
                if i >= skip {
                    conds += 1;
                    mispredicts += u64::from(pred != r.taken());
                }
            }
            p.update_history(r);
        }
        (mispredicts, conds)
    }

    #[test]
    fn llbp_beats_baseline_on_context_heavy_workload() {
        let trace = WorkloadSpec::named(Workload::NodeApp).with_branches(300_000).generate();
        let skip = trace.len() / 3;
        let mut base = TageScl::new(llbp_tage::TslConfig::cbp64k());
        let (base_mis, _) = run(&mut base, &trace, skip);
        let mut llbp = LlbpPredictor::new(LlbpParams::default());
        let (llbp_mis, _) = run(&mut llbp, &trace, skip);
        assert!(
            llbp_mis < base_mis,
            "LLBP ({llbp_mis}) should beat 64K TSL ({base_mis}) on NodeApp"
        );
    }

    #[test]
    fn zero_latency_is_at_least_as_good() {
        let trace = WorkloadSpec::named(Workload::Merced).with_branches(200_000).generate();
        let skip = trace.len() / 3;
        let mut real = LlbpPredictor::new(LlbpParams::default());
        let (real_mis, _) = run(&mut real, &trace, skip);
        let mut ideal = LlbpPredictor::new(LlbpParams::zero_latency());
        let (ideal_mis, _) = run(&mut ideal, &trace, skip);
        // Allow a small tolerance: different prefetch timing perturbs
        // replacement decisions.
        assert!(
            (ideal_mis as f64) <= (real_mis as f64) * 1.05,
            "0Lat ({ideal_mis}) should not lose to real LLBP ({real_mis})"
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let trace = WorkloadSpec::named(Workload::Tpcc).with_branches(100_000).generate();
        let mut p = LlbpPredictor::new(LlbpParams::default());
        let _ = run(&mut p, &trace, 0);
        let s = p.stats();
        assert!(s.breakdown_is_consistent());
        assert!(s.predictions > 0);
        assert!(s.llbp_matches <= s.predictions);
        assert!(s.cd_hits <= s.cd_lookups);
        assert!(s.storage_reads > 0, "pattern sets must move");
        assert!(s.contexts_created > 0);
    }

    #[test]
    fn llbp_provides_for_a_minority_of_predictions() {
        // §VII-G: LLBP provides for ~15% of dynamic conditional branches.
        let trace = WorkloadSpec::named(Workload::Tomcat).with_branches(150_000).generate();
        let mut p = LlbpPredictor::new(LlbpParams::default());
        let _ = run(&mut p, &trace, 0);
        let rate = p.stats().match_rate();
        assert!(rate < 0.7, "match rate {rate:.2} implausibly high");
        assert!(rate > 0.005, "match rate {rate:.3} implausibly low");
    }

    #[test]
    fn train_without_predict_panics() {
        let mut p = LlbpPredictor::new(LlbpParams::default());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.train(0x100, true);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn indirect_target_changes_reset_the_pipeline() {
        let mut p = LlbpPredictor::new(LlbpParams::default());
        let r1 = BranchRecord::unconditional(0x100, 0x2000, BranchKind::IndirectCall, 3);
        let r2 = BranchRecord::unconditional(0x100, 0x3000, BranchKind::IndirectCall, 3);
        // A cold indirect site mispredicts (reset #1); once trained, the
        // stable target stops resetting; a target change resets again.
        p.update_history(&r1);
        assert_eq!(p.stats().pipeline_resets, 1);
        p.update_history(&r1);
        p.update_history(&r1);
        let stable = p.stats().pipeline_resets;
        p.update_history(&r1);
        assert_eq!(p.stats().pipeline_resets, stable, "stable target must not reset");
        p.update_history(&r2);
        assert!(p.stats().pipeline_resets > stable, "target change must reset");
    }

    #[test]
    fn power_gated_llbp_behaves_like_the_baseline() {
        let trace = WorkloadSpec::named(Workload::Kafka).with_branches(60_000).generate();
        let mut gated = LlbpPredictor::new(LlbpParams::default());
        gated.set_llbp_enabled(false);
        let (gated_mis, _) = run(&mut gated, &trace, 0);
        let mut base = TageScl::new(llbp_tage::TslConfig::cbp64k());
        let (base_mis, _) = run(&mut base, &trace, 0);
        assert_eq!(gated_mis, base_mis, "disabled LLBP must match the bare baseline");
        assert_eq!(gated.stats().llbp_matches, 0);
        assert_eq!(gated.stats().storage_reads, 0);
        assert_eq!(gated.stats().cd_lookups, 0);
    }

    #[test]
    fn reenabling_llbp_resumes_operation() {
        let trace = WorkloadSpec::named(Workload::Kafka).with_branches(40_000).generate();
        let mut p = LlbpPredictor::new(LlbpParams::default());
        p.set_llbp_enabled(false);
        let half = trace.len() / 2;
        for (i, r) in trace.iter().enumerate() {
            if i == half {
                p.set_llbp_enabled(true);
            }
            if r.kind() == BranchKind::Conditional {
                let _ = p.predict(r.pc());
                p.train(r.pc(), r.taken());
            }
            p.update_history(r);
        }
        assert!(p.llbp_enabled());
        assert!(p.stats().cd_lookups > 0, "LLBP must resume after re-enable");
        assert!(p.stats().contexts_created > 0);
    }

    #[test]
    fn storage_accounting_is_about_half_a_mebibyte() {
        let p = LlbpPredictor::new(LlbpParams::default());
        let kib = (p.storage_bits() - p.params().tsl.storage_bits()) as f64 / 8192.0;
        assert!((500.0..530.0).contains(&kib), "LLBP-side storage is {kib:.1} KiB");
    }
}
