//! Pattern sets: the unit of storage and transfer in LLBP.
//!
//! A pattern is `(tag, prediction counter, history length)`; a pattern set
//! is the full collection of patterns for one program context — 16
//! patterns grouped into 4 *buckets* of 4, each bucket restricted to a
//! contiguous range of history lengths (§V-D). Patterns are kept sorted by
//! history length within their bucket, and buckets cover ascending length
//! ranges, so "select the longest matching pattern" is a single
//! right-to-left scan, mirroring TAGE's multiplexer cascade.

use bputil::counter::SatCounter;

/// One LLBP pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern {
    /// Partial tag (hash of PC and folded history of this length).
    pub tag: u32,
    /// Index into the global LLBP history-length list.
    pub len_idx: u8,
    /// Signed prediction counter; sign = direction.
    pub ctr: SatCounter,
}

/// The pattern set of one program context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSet {
    slots: Vec<Option<Pattern>>,
    num_buckets: usize,
    /// History lengths per bucket (global length list size / buckets).
    lengths_per_bucket: usize,
}

impl PatternSet {
    /// Creates an empty set of `slots` patterns in `num_buckets` buckets,
    /// for a global length list of `num_lengths` entries.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `num_lengths` is not a multiple of
    /// `num_buckets`, or any argument is zero.
    #[must_use]
    pub fn new(slots: usize, num_buckets: usize, num_lengths: usize) -> Self {
        assert!(slots > 0 && num_buckets > 0 && num_lengths > 0);
        assert_eq!(slots % num_buckets, 0, "slots must divide into buckets");
        assert_eq!(num_lengths % num_buckets, 0, "lengths must divide into buckets");
        Self {
            slots: vec![None; slots],
            num_buckets,
            lengths_per_bucket: num_lengths / num_buckets,
        }
    }

    /// Number of pattern slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// The bucket that owns history-length index `len_idx`.
    #[must_use]
    pub fn bucket_of(&self, len_idx: u8) -> usize {
        (usize::from(len_idx) / self.lengths_per_bucket).min(self.num_buckets - 1)
    }

    fn bucket_range(&self, bucket: usize) -> std::ops::Range<usize> {
        let per = self.slots.len() / self.num_buckets;
        bucket * per..(bucket + 1) * per
    }

    /// Finds the longest matching pattern given the per-length tags
    /// computed from the current history. Returns the slot index.
    ///
    /// `tags[i]` must be the tag hash for history length `i` of the global
    /// list.
    #[must_use]
    pub fn find_longest(&self, tags: &[u32]) -> Option<usize> {
        // Slots are sorted ascending by length (buckets ascending, sorted
        // within), so the right-most match has the longest history.
        self.slots.iter().enumerate().rev().find_map(|(i, slot)| {
            let p = slot.as_ref()?;
            (tags.get(usize::from(p.len_idx)) == Some(&p.tag)).then_some(i)
        })
    }

    /// Shared access to the pattern in `slot`.
    #[must_use]
    pub fn pattern(&self, slot: usize) -> Option<&Pattern> {
        self.slots.get(slot)?.as_ref()
    }

    /// Exclusive access to the pattern in `slot`.
    pub fn pattern_mut(&mut self, slot: usize) -> Option<&mut Pattern> {
        self.slots.get_mut(slot)?.as_mut()
    }

    /// Allocates a pattern for history-length index `len_idx` (§V-D steps
    /// 2–4): victimise the least-confident pattern in the owning bucket
    /// (empty slots first, ties to the lower-order slot), write the new
    /// pattern with a weak counter in the resolved direction, and restore
    /// the bucket's sorted-by-length order.
    pub fn allocate(&mut self, len_idx: u8, tag: u32, taken: bool, counter_bits: u32) {
        let bucket = self.bucket_of(len_idx);
        let range = self.bucket_range(bucket);

        // If the same (length, tag) already exists, just refresh it.
        if let Some(existing) = self.slots[range.clone()]
            .iter_mut()
            .flatten()
            .find(|p| p.len_idx == len_idx && p.tag == tag)
        {
            existing.ctr = SatCounter::weak(counter_bits, taken);
            return;
        }

        let victim = self.slots[range.clone()]
            .iter()
            .position(Option::is_none)
            .map(|off| range.start + off)
            .unwrap_or_else(|| {
                // Least-confident pattern; ties resolve to the left-most
                // (lower-order) slot because `min_by_key` keeps the first.
                self.slots[range.clone()]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, p)| p.as_ref().map_or(0, |p| p.ctr.confidence()))
                    .map(|(off, _)| range.start + off)
                    .expect("bucket is non-empty")
            });

        self.slots[victim] =
            Some(Pattern { tag, len_idx, ctr: SatCounter::weak(counter_bits, taken) });

        // Step 4: restore sorted order within the bucket (empties first).
        self.slots[range].sort_by_key(|p| p.as_ref().map_or(-1, |p| i16::from(p.len_idx)));
    }

    /// Number of high-confidence patterns, saturated at a 2-bit count —
    /// the CD replacement metadata (§V-D step 1).
    #[must_use]
    pub fn confident_count(&self, threshold: u32) -> u16 {
        (self.slots.iter().flatten().filter(|p| p.ctr.is_confident(threshold)).count() as u16)
            .min(3)
    }

    /// Iterates over occupied patterns.
    pub fn iter(&self) -> impl Iterator<Item = &Pattern> {
        self.slots.iter().flatten()
    }

    /// `true` when the sorted-by-length invariant holds in every bucket.
    /// Exposed for tests and debug assertions.
    #[must_use]
    pub fn is_sorted(&self) -> bool {
        (0..self.num_buckets).all(|b| {
            let r = self.bucket_range(b);
            self.slots[r].windows(2).all(|w| match (&w[0], &w[1]) {
                (Some(a), Some(b)) => a.len_idx <= b.len_idx,
                (Some(_), None) => false, // empties sort first
                _ => true,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> PatternSet {
        PatternSet::new(16, 4, 16)
    }

    #[test]
    fn bucket_assignment_matches_paper_layout() {
        let s = set();
        // Lengths 0..3 -> bucket 0, 4..7 -> bucket 1, etc.
        assert_eq!(s.bucket_of(0), 0);
        assert_eq!(s.bucket_of(3), 0);
        assert_eq!(s.bucket_of(4), 1);
        assert_eq!(s.bucket_of(15), 3);
    }

    #[test]
    fn allocate_and_find() {
        let mut s = set();
        s.allocate(5, 0xABC, true, 3);
        let mut tags = vec![0u32; 16];
        tags[5] = 0xABC;
        let slot = s.find_longest(&tags).expect("pattern must match");
        let p = s.pattern(slot).unwrap();
        assert_eq!(p.len_idx, 5);
        assert!(p.ctr.taken());
    }

    #[test]
    fn longest_match_wins() {
        let mut s = set();
        s.allocate(2, 0x111, true, 3);
        s.allocate(14, 0x222, false, 3);
        let mut tags = vec![0u32; 16];
        tags[2] = 0x111;
        tags[14] = 0x222;
        let slot = s.find_longest(&tags).unwrap();
        assert_eq!(s.pattern(slot).unwrap().len_idx, 14, "longer history takes precedence");
    }

    #[test]
    fn sorted_invariant_held_under_random_allocations() {
        let mut s = set();
        let mut rng = bputil::rng::SplitMix64::new(1);
        for _ in 0..200 {
            let len_idx = rng.below(16) as u8;
            s.allocate(len_idx, rng.next_u64() as u32 & 0x1FFF, rng.chance(1, 2), 3);
            assert!(s.is_sorted(), "sorted invariant violated");
        }
        assert!(s.occupancy() <= 16);
    }

    #[test]
    fn victim_is_least_confident_in_bucket() {
        let mut s = set();
        // Fill bucket 0 (lengths 0..3).
        for len in 0..4u8 {
            s.allocate(len, 0x100 + u32::from(len), true, 3);
        }
        // Strengthen all but the length-2 pattern.
        let mut tags = [0u32; 16];
        for len in 0..4u8 {
            tags[usize::from(len)] = 0x100 + u32::from(len);
        }
        for _ in 0..5 {
            for len in [0u8, 1, 3] {
                let slot =
                    (0..16).find(|&i| s.pattern(i).is_some_and(|p| p.len_idx == len)).unwrap();
                s.pattern_mut(slot).unwrap().ctr.update(true);
            }
        }
        // A new allocation in bucket 0 must evict the weak length-2 one.
        s.allocate(1, 0x999, false, 3);
        assert!(
            !s.iter().any(|p| p.len_idx == 2),
            "least-confident pattern should have been evicted"
        );
        assert!(s.iter().any(|p| p.tag == 0x999));
    }

    #[test]
    fn allocation_is_confined_to_its_bucket() {
        let mut s = set();
        // Fill bucket 3 with confident patterns.
        for len in 12..16u8 {
            s.allocate(len, u32::from(len), true, 3);
        }
        for _ in 0..6 {
            for i in 0..16 {
                if let Some(p) = s.pattern_mut(i) {
                    p.ctr.update(true);
                }
            }
        }
        // Allocating a short-history pattern must not touch bucket 3.
        s.allocate(0, 0x777, true, 3);
        assert_eq!(s.iter().filter(|p| p.len_idx >= 12).count(), 4);
        assert!(s.iter().any(|p| p.tag == 0x777));
    }

    #[test]
    fn confident_count_saturates_at_three() {
        let mut s = set();
        for len in 0..8u8 {
            s.allocate(len, u32::from(len), true, 3);
        }
        for _ in 0..6 {
            for i in 0..16 {
                if let Some(p) = s.pattern_mut(i) {
                    p.ctr.update(true);
                }
            }
        }
        assert_eq!(s.confident_count(2), 3, "2-bit replacement metadata saturates");
    }

    #[test]
    fn same_length_and_tag_refreshes_instead_of_duplicating() {
        let mut s = set();
        s.allocate(4, 0xAAA, true, 3);
        s.allocate(4, 0xAAA, false, 3);
        assert_eq!(s.iter().filter(|p| p.tag == 0xAAA).count(), 1);
        assert!(!s.iter().find(|p| p.tag == 0xAAA).unwrap().ctr.taken());
    }

    #[test]
    fn unbucketed_mode_uses_whole_set() {
        let mut s = PatternSet::new(8, 1, 16);
        for len in [0u8, 15, 7, 3, 9, 12, 1, 14] {
            s.allocate(len, u32::from(len) + 1, true, 3);
        }
        assert_eq!(s.occupancy(), 8);
        assert!(s.is_sorted());
        // One more allocation evicts the (weak) left-most.
        s.allocate(5, 0x5555, true, 3);
        assert_eq!(s.occupancy(), 8);
    }
}
