//! The Last-Level Branch Predictor (LLBP) — the paper's contribution.
//!
//! LLBP backs an unmodified TAGE-SC-L with a large, slow pattern-set store
//! organised around *program contexts*: hashes of the most recent
//! unconditional branches (function-call chains). Each context owns a
//! small **pattern set** (16 patterns in 4 history-length buckets); a
//! **context directory** (CD) locates sets; a 64-entry **pattern buffer**
//! (PB) caches the sets for current and upcoming contexts; and a
//! storage-free prefetcher — the **rolling context register** (RCR) —
//! hides the access latency by fetching the set for a context `D`
//! unconditional branches before it becomes current (§V).
//!
//! # Example
//!
//! ```
//! use llbp_core::{LlbpParams, LlbpPredictor};
//! use llbp_tage::Predictor;
//! use llbp_trace::{BranchKind, Workload, WorkloadSpec};
//!
//! let mut p = LlbpPredictor::new(LlbpParams::default());
//! let trace = WorkloadSpec::named(Workload::NodeApp).with_branches(5_000).generate();
//! for r in &trace {
//!     if r.kind() == BranchKind::Conditional {
//!         let pred = p.predict(r.pc());
//!         let _ = pred;
//!         p.train(r.pc(), r.taken());
//!     }
//!     p.update_history(r);
//! }
//! assert!(p.stats().predictions > 0);
//! ```

pub mod params;
pub mod pattern;
pub mod predictor;
pub mod prefetch;
pub mod rcr;
pub mod stats;

pub use params::{CancelPolicy, CdReplacement, ContextHistoryKind, LlbpParams};
pub use pattern::{Pattern, PatternSet};
pub use predictor::{LlbpCheckpoint, LlbpPredictor};
pub use prefetch::PrefetchQueue;
pub use rcr::RollingContextRegister;
pub use stats::{LlbpStats, OverrideKind};
