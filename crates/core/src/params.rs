//! LLBP configuration (§VI of the paper, plus the Fig. 13/14 study knobs).

/// Victim selection for pattern sets in the context directory.
///
/// The paper found plain LRU "a poor policy choice" and instead keeps the
/// sets with many high-confidence patterns (§V-D step 1); both are
/// provided so the claim can be reproduced as an ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CdReplacement {
    /// Evict the set with the fewest high-confidence patterns (paper).
    #[default]
    Confidence,
    /// Evict the least-recently-used set (the ablation baseline).
    Lru,
}

/// When the baseline's update is cancelled under an LLBP override (§V-D:
/// "only when LLBP overrides TAGE will the PB update the providing
/// pattern while TAGE will cancel its update").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CancelPolicy {
    /// Never cancel: the baseline dual-trains under every override. In
    /// our evaluation this avoids baseline decay on workloads where LLBP
    /// provides little, without measurably costing the strong workloads.
    #[default]
    Never,
    /// Cancel only when LLBP changed the direction.
    OnDisagree,
    /// Cancel on every override — the paper's literal wording.
    Always,
}

/// Which branches feed the rolling context register (Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ContextHistoryKind {
    /// All unconditional branches — the paper's choice (best at D = 4).
    #[default]
    Unconditional,
    /// Calls and returns only — too coarse (§VII-E).
    CallReturn,
    /// Every branch including conditionals — too noisy (§VII-E).
    All,
}

/// LLBP configuration. [`LlbpParams::default`] reproduces the paper's
/// evaluated design (§VI): 14K pattern sets of 16 patterns (4 buckets × 4),
/// 13-bit pattern tags, 3-bit counters, CD 7-way with 2-bit confidence
/// replacement, 64-entry 4-way PB, `W = 8`, `D = 4`, 6-cycle prefetch
/// delay.
#[derive(Debug, Clone, PartialEq)]
pub struct LlbpParams {
    /// The 16 pattern history lengths, ascending, grouped into buckets of
    /// `patterns_per_set / num_buckets`. Must be a subset of the backing
    /// TAGE's lengths so history-length arbitration is meaningful.
    pub history_lengths: Vec<usize>,
    /// Patterns per pattern set (16 in the paper).
    pub patterns_per_set: usize,
    /// Number of history-length buckets per set (4 in the paper);
    /// set to 1 to disable bucketing (the Fig. 14 study mode).
    pub num_buckets: usize,
    /// Pattern tag width in bits (13).
    pub tag_bits: u32,
    /// Pattern prediction counter width in bits (3).
    pub counter_bits: u32,
    /// log2 sets of the context directory / backing storage.
    pub cd_index_bits: u32,
    /// Context directory associativity (7). Use
    /// [`LlbpParams::study_full_assoc`] for the Fig. 14 fully-associative
    /// variant.
    pub cd_ways: usize,
    /// Context ID width in bits (14; 31 in the Fig. 14 study).
    pub cid_bits: u32,
    /// log2 sets of the pattern buffer (4 → 16 sets × 4 ways = 64).
    pub pb_index_bits: u32,
    /// Pattern buffer associativity (4).
    pub pb_ways: usize,
    /// Context window: unconditional branches hashed into a CID (W = 8).
    pub window: usize,
    /// Prefetch distance: most recent branches excluded from the current
    /// CID (D = 4).
    pub prefetch_distance: usize,
    /// Cycles between issuing a prefetch and the pattern set being usable
    /// (6 = CD + LLBP array + logic, Table III). 0 models `LLBP-0Lat`.
    pub prefetch_delay: u64,
    /// Fetch width used to convert instruction counts into cycles.
    pub fetch_width: u64,
    /// Which branches form the context (Fig. 13).
    pub history_kind: ContextHistoryKind,
    /// Confidence (distance from the weak counter states) at or above
    /// which a pattern counts as high-confidence for CD replacement.
    pub confidence_threshold: u32,
    /// Pattern-set victim selection policy in the context directory.
    pub cd_replacement: CdReplacement,
    /// Baseline update cancellation policy under LLBP overrides.
    pub cancel_policy: CancelPolicy,
    /// When `true`, a weak (just-allocated) LLBP pattern does not override
    /// a baseline prediction backed by a tagged TAGE match — the same
    /// new-entry caution TAGE itself applies via `use_alt_on_na`.
    /// Off by default (the paper's arbitration is unconditional, §V-B);
    /// measured as an ablation, gating blocks more good overrides than
    /// bad ones.
    pub weak_override_gate: bool,
    /// Backing TAGE-SC-L configuration.
    pub tsl: llbp_tage::TslConfig,
    /// Label used in reports.
    pub label: String,
}

impl Default for LlbpParams {
    fn default() -> Self {
        Self {
            history_lengths: vec![
                12, 26, 54, 54, 78, 78, 112, 112, 161, 161, 232, 336, 482, 695, 1444, 3000,
            ],
            patterns_per_set: 16,
            num_buckets: 4,
            tag_bits: 13,
            counter_bits: 3,
            cd_index_bits: 11,
            cd_ways: 7,
            cid_bits: 14,
            pb_index_bits: 4,
            pb_ways: 4,
            window: 8,
            prefetch_distance: 4,
            prefetch_delay: 6,
            fetch_width: 6,
            history_kind: ContextHistoryKind::Unconditional,
            confidence_threshold: 2,
            cd_replacement: CdReplacement::Confidence,
            cancel_policy: CancelPolicy::Never,
            weak_override_gate: false,
            tsl: llbp_tage::TslConfig::cbp64k(),
            label: "LLBP".into(),
        }
    }
}

impl LlbpParams {
    /// The paper's `LLBP-0Lat` upper-bound configuration: no prefetch
    /// delay, so late prefetches never cost predictions.
    #[must_use]
    pub fn zero_latency() -> Self {
        Self { prefetch_delay: 0, label: "LLBP-0Lat".into(), ..Self::default() }
    }

    /// The same design with a different pattern-buffer capacity (used by
    /// the Fig. 11/12 PB sweeps). Associativity stays 4-way.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two of at least 4.
    #[must_use]
    pub fn with_pb_entries(mut self, entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries >= 4,
            "PB entries must be a power of two >= 4"
        );
        self.pb_ways = 4;
        self.pb_index_bits = (entries / 4).trailing_zeros();
        self.label = format!("{} (PB {entries})", self.label);
        self
    }

    /// The Fig. 14 study variant: a highly-associative (64-way) context
    /// index with wide (31-bit) context tags, no bucketing, zero latency —
    /// isolating pattern-set sizing from associativity and prefetch
    /// effects. (The paper uses full associativity; 64 ways is a
    /// simulation-speed compromise that removes essentially all conflict
    /// bias at these sizes.)
    ///
    /// # Panics
    ///
    /// Panics unless `contexts` is a power of two of at least 64.
    #[must_use]
    pub fn study_full_assoc(contexts: usize, set_size: usize) -> Self {
        assert!(
            contexts.is_power_of_two() && contexts >= 64,
            "study contexts must be a power of two >= 64"
        );
        Self {
            patterns_per_set: set_size,
            num_buckets: 1,
            cd_index_bits: (contexts / 64).trailing_zeros(),
            cd_ways: 64,
            cid_bits: 31,
            pb_index_bits: 0,
            pb_ways: 64,
            prefetch_delay: 0,
            label: format!("LLBP-study-{contexts}x{set_size}"),
            ..Self::default()
        }
    }

    /// Patterns per bucket.
    ///
    /// # Panics
    ///
    /// Panics if `patterns_per_set` is not a multiple of `num_buckets`.
    #[must_use]
    pub fn bucket_size(&self) -> usize {
        assert_eq!(
            self.patterns_per_set % self.num_buckets,
            0,
            "patterns_per_set must be a multiple of num_buckets"
        );
        self.patterns_per_set / self.num_buckets
    }

    /// Total pattern-set capacity (CD sets × ways).
    #[must_use]
    pub fn num_contexts(&self) -> usize {
        (1usize << self.cd_index_bits) * self.cd_ways
    }

    /// Bits per pattern (tag + counter + length field).
    #[must_use]
    pub fn pattern_bits(&self) -> u64 {
        u64::from(self.tag_bits + self.counter_bits) + 2
    }

    /// Bits per pattern set (288 for the default 16 × 18-bit patterns).
    #[must_use]
    pub fn pattern_set_bits(&self) -> u64 {
        self.pattern_bits() * self.patterns_per_set as u64
    }

    /// Bulk LLBP storage in bits (pattern sets only).
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        self.num_contexts() as u64 * self.pattern_set_bits()
    }

    /// Context-directory metadata bits (valid + tag + 2-bit replacement
    /// counter per entry).
    #[must_use]
    pub fn cd_bits(&self) -> u64 {
        let tag_bits = u64::from(self.cid_bits.saturating_sub(self.cd_index_bits));
        self.num_contexts() as u64 * (1 + tag_bits + 2)
    }

    /// Pattern buffer storage bits.
    #[must_use]
    pub fn pb_bits(&self) -> u64 {
        let entries = (1u64 << self.pb_index_bits) * self.pb_ways as u64;
        entries * (self.pattern_set_bits() + u64::from(self.cid_bits) + 2)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.history_lengths.is_empty() {
            return Err("LLBP needs at least one history length".into());
        }
        if self.history_lengths.windows(2).any(|w| w[0] > w[1]) {
            return Err("LLBP history lengths must be ascending".into());
        }
        if self.num_buckets == 0 || !self.patterns_per_set.is_multiple_of(self.num_buckets) {
            return Err("patterns_per_set must be a positive multiple of num_buckets".into());
        }
        if self.history_lengths.len() != self.patterns_per_set && self.num_buckets > 1 {
            return Err(format!(
                "bucketed mode needs one history length per pattern slot \
                 ({} lengths vs {} patterns)",
                self.history_lengths.len(),
                self.patterns_per_set
            ));
        }
        if self.window == 0 {
            return Err("context window must be non-zero".into());
        }
        if !(1..=32).contains(&self.tag_bits) {
            return Err(format!("tag_bits out of range: {}", self.tag_bits));
        }
        // Every LLBP length must exist in the backing TAGE so the
        // history-length arbitration compares like with like.
        for &l in &self.history_lengths {
            if !self.tsl.tage.history_lengths.contains(&l) {
                return Err(format!("LLBP length {l} is not a TAGE history length"));
            }
        }
        self.tsl.validate()
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_numbers() {
        let p = LlbpParams::default();
        p.validate().unwrap();
        assert_eq!(p.pattern_bits(), 18, "3-bit ctr + 13-bit tag + 2-bit length");
        assert_eq!(p.pattern_set_bits(), 288);
        assert_eq!(p.num_contexts(), 14_336, "≈14K pattern sets");
        // Paper: 504 KiB LLBP storage, 8.75 KiB CD, 2.25 KiB PB.
        let llbp_kib = p.storage_bits() as f64 / 8192.0;
        assert!((490.0..520.0).contains(&llbp_kib), "LLBP storage {llbp_kib:.1} KiB");
        let cd_kib = p.cd_bits() as f64 / 8192.0;
        assert!((8.0..12.0).contains(&cd_kib), "CD {cd_kib:.2} KiB");
        let pb_kib = p.pb_bits() as f64 / 8192.0;
        assert!((2.0..3.0).contains(&pb_kib), "PB {pb_kib:.2} KiB");
    }

    #[test]
    fn zero_latency_differs_only_in_delay() {
        let a = LlbpParams::default();
        let b = LlbpParams::zero_latency();
        assert_eq!(b.prefetch_delay, 0);
        assert_eq!(a.history_lengths, b.history_lengths);
    }

    #[test]
    fn study_variant_disables_bucketing() {
        let p = LlbpParams::study_full_assoc(16_384, 8);
        assert_eq!(p.num_buckets, 1);
        assert_eq!(p.num_contexts(), 16_384);
        assert_eq!(p.cd_ways, 64);
        p.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn study_variant_rejects_odd_sizes() {
        let _ = LlbpParams::study_full_assoc(10_000, 16);
    }

    #[test]
    fn validate_rejects_alien_lengths() {
        let mut p = LlbpParams::default();
        p.history_lengths[0] = 13; // not a TAGE length
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_buckets() {
        let mut p = LlbpParams::default();
        p.num_buckets = 3; // 16 % 3 != 0
        assert!(p.validate().is_err());
    }
}
