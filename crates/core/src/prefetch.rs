//! The pattern-set prefetch queue.
//!
//! The RCR announces the upcoming context `D` unconditional branches
//! early; the prefetcher then has `prefetch_delay` cycles to pull the
//! pattern set out of LLBP storage into the pattern buffer. In-flight
//! prefetches are squashed on pipeline resets (§VI: "After a misprediction
//! all in-flight prefetches get squashed before LLBP restarts
//! prefetching").

use std::collections::VecDeque;

/// An in-flight pattern-set prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prefetch {
    /// The context whose pattern set is being fetched.
    pub cid: u64,
    /// Cycle at which the set becomes usable in the PB.
    pub ready_at: u64,
}

/// A FIFO of in-flight prefetches with squash support.
#[derive(Debug, Clone, Default)]
pub struct PrefetchQueue {
    inflight: VecDeque<Prefetch>,
    issued: u64,
    squashed: u64,
    completed: u64,
}

impl PrefetchQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues a prefetch for `cid`, usable `delay` cycles from `now`.
    /// Duplicate in-flight CIDs are coalesced.
    pub fn issue(&mut self, cid: u64, now: u64, delay: u64) {
        if self.inflight.iter().any(|p| p.cid == cid) {
            return;
        }
        self.issued += 1;
        self.inflight.push_back(Prefetch { cid, ready_at: now + delay });
    }

    /// Pops every prefetch that has completed by `now`.
    pub fn drain_ready(&mut self, now: u64) -> Vec<Prefetch> {
        let mut out = Vec::new();
        while let Some(front) = self.inflight.front() {
            if front.ready_at <= now {
                out.push(*front);
                self.inflight.pop_front();
            } else {
                break;
            }
        }
        self.completed += out.len() as u64;
        out
    }

    /// Squashes all in-flight prefetches (pipeline reset).
    pub fn squash(&mut self) {
        self.squashed += self.inflight.len() as u64;
        self.inflight.clear();
    }

    /// In-flight prefetch count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// `true` when nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Prefetches issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Prefetches squashed so far.
    #[must_use]
    pub fn squashed(&self) -> u64 {
        self.squashed
    }

    /// Prefetches completed so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_completes_after_delay() {
        let mut q = PrefetchQueue::new();
        q.issue(42, 100, 6);
        assert!(q.drain_ready(105).is_empty(), "not ready yet");
        let done = q.drain_ready(106);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].cid, 42);
        assert!(q.is_empty());
    }

    #[test]
    fn duplicates_coalesce() {
        let mut q = PrefetchQueue::new();
        q.issue(7, 0, 6);
        q.issue(7, 2, 6);
        assert_eq!(q.len(), 1);
        assert_eq!(q.issued(), 1);
    }

    #[test]
    fn squash_clears_in_flight() {
        let mut q = PrefetchQueue::new();
        q.issue(1, 0, 6);
        q.issue(2, 1, 6);
        q.squash();
        assert!(q.is_empty());
        assert_eq!(q.squashed(), 2);
        assert!(q.drain_ready(1000).is_empty());
    }

    #[test]
    fn fifo_ordering_preserved() {
        let mut q = PrefetchQueue::new();
        q.issue(1, 0, 3);
        q.issue(2, 1, 3);
        q.issue(3, 2, 3);
        let done = q.drain_ready(4);
        assert_eq!(done.iter().map(|p| p.cid).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn zero_delay_is_immediately_ready() {
        let mut q = PrefetchQueue::new();
        q.issue(9, 50, 0);
        assert_eq!(q.drain_ready(50).len(), 1);
    }
}
