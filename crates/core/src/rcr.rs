//! The Rolling Context Register (RCR).
//!
//! A shift register of the most recently executed unconditional-branch PCs
//! (§V-A). Two context IDs are derived from it (Fig. 8):
//!
//! * the **current context ID (CCID)**, hashed over the window `W` while
//!   *excluding* the `D` most recent branches, indexes the pattern buffer
//!   for predictions;
//! * the **prefetch CID**, hashed over the most recent `W` branches, is
//!   the context that will become current after `D` more unconditional
//!   branches — looking it up in the context directory `D` branches early
//!   is what hides the LLBP access latency.
//!
//! The hash shifts each PC by twice its position before XOR-ing (§V-E3) so
//! repeated addresses (tight loops) do not cancel out.

use bputil::hash::fold_to_bits;
use llbp_trace::BranchRecord;

use crate::params::ContextHistoryKind;

/// A checkpoint of the RCR, for misprediction rollback (§V-E2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RcrCheckpoint {
    pcs: Vec<u64>,
}

/// The rolling context register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollingContextRegister {
    /// Most recent PC first.
    pcs: Vec<u64>,
    window: usize,
    distance: usize,
    cid_bits: u32,
    kind: ContextHistoryKind,
}

impl RollingContextRegister {
    /// Creates an RCR hashing `window` branches, excluding the `distance`
    /// most recent from the current CID, folding to `cid_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `cid_bits` is not in `1..=63`.
    #[must_use]
    pub fn new(window: usize, distance: usize, cid_bits: u32, kind: ContextHistoryKind) -> Self {
        assert!(window > 0, "window must be non-zero");
        assert!((1..=63).contains(&cid_bits), "cid_bits out of range");
        Self { pcs: vec![0; window + distance], window, distance, cid_bits, kind }
    }

    /// Whether `record` participates in the context history under this
    /// register's [`ContextHistoryKind`].
    #[must_use]
    pub fn observes(&self, record: &BranchRecord) -> bool {
        match self.kind {
            ContextHistoryKind::Unconditional => record.kind().is_unconditional(),
            ContextHistoryKind::CallReturn => record.kind().is_call_or_return(),
            ContextHistoryKind::All => record.kind().is_unconditional() || record.taken(),
        }
    }

    /// Shifts a new branch PC into the register. Call only for records
    /// where [`RollingContextRegister::observes`] is `true`.
    pub fn push(&mut self, pc: u64) {
        self.pcs.rotate_right(1);
        self.pcs[0] = pc;
    }

    fn hash_range(&self, start: usize) -> u64 {
        let mut acc = 0u64;
        for (pos, &pc) in self.pcs[start..start + self.window].iter().enumerate() {
            acc ^= (pc >> 1) << (2 * pos as u64 % 48);
        }
        fold_to_bits(acc, self.cid_bits)
    }

    /// The current context ID (excludes the `D` most recent branches).
    #[must_use]
    pub fn current_cid(&self) -> u64 {
        self.hash_range(self.distance)
    }

    /// The prefetch context ID (includes the most recent branches): the
    /// CID that will become current after `D` more observed branches.
    #[must_use]
    pub fn prefetch_cid(&self) -> u64 {
        self.hash_range(0)
    }

    /// Captures the register content for later rollback.
    #[must_use]
    pub fn checkpoint(&self) -> RcrCheckpoint {
        RcrCheckpoint { pcs: self.pcs.clone() }
    }

    /// Restores a previously captured checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint came from a differently-sized register.
    pub fn restore(&mut self, checkpoint: &RcrCheckpoint) {
        assert_eq!(checkpoint.pcs.len(), self.pcs.len(), "checkpoint size mismatch");
        self.pcs.copy_from_slice(&checkpoint.pcs);
    }

    /// The configured window `W`.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// The configured prefetch distance `D`.
    #[must_use]
    pub fn distance(&self) -> usize {
        self.distance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llbp_trace::BranchKind;

    fn rcr() -> RollingContextRegister {
        RollingContextRegister::new(4, 2, 14, ContextHistoryKind::Unconditional)
    }

    #[test]
    fn prefetch_cid_becomes_current_after_d_pushes() {
        let mut r = rcr();
        for pc in [0x10u64, 0x20, 0x30, 0x40, 0x50, 0x60] {
            r.push(pc);
        }
        let upcoming = r.prefetch_cid();
        r.push(0x70);
        r.push(0x80);
        assert_eq!(r.current_cid(), upcoming, "prefetch CID must become the CCID after D pushes");
    }

    #[test]
    fn repeated_pcs_do_not_cancel() {
        let mut r = rcr();
        // Without position shifting, XOR of an even number of identical
        // PCs would collapse to zero.
        for _ in 0..4 {
            r.push(0xABCD);
        }
        assert_ne!(r.prefetch_cid(), 0);
    }

    #[test]
    fn cid_stays_within_width() {
        let mut r = rcr();
        for i in 0..100u64 {
            r.push(0x4000_0000 + i * 4);
            assert!(r.current_cid() < (1 << 14));
            assert!(r.prefetch_cid() < (1 << 14));
        }
    }

    #[test]
    fn checkpoint_restores_exactly() {
        let mut r = rcr();
        for pc in [1u64, 2, 3, 4, 5] {
            r.push(pc);
        }
        let cp = r.checkpoint();
        let cid = r.current_cid();
        r.push(99);
        r.push(98);
        assert_ne!(r.current_cid(), cid);
        r.restore(&cp);
        assert_eq!(r.current_cid(), cid);
    }

    #[test]
    fn observes_respects_history_kind() {
        use llbp_trace::BranchRecord;
        let uncond = RollingContextRegister::new(4, 0, 14, ContextHistoryKind::Unconditional);
        let callret = RollingContextRegister::new(4, 0, 14, ContextHistoryKind::CallReturn);
        let all = RollingContextRegister::new(4, 0, 14, ContextHistoryKind::All);

        let jump = BranchRecord::unconditional(0x10, 0x20, BranchKind::DirectJump, 0);
        let call = BranchRecord::unconditional(0x10, 0x20, BranchKind::DirectCall, 0);
        let cond_taken = BranchRecord::conditional(0x10, 0x20, true, 0);
        let cond_nt = BranchRecord::conditional(0x10, 0x20, false, 0);

        assert!(uncond.observes(&jump) && uncond.observes(&call));
        assert!(!uncond.observes(&cond_taken));
        assert!(!callret.observes(&jump) && callret.observes(&call));
        assert!(all.observes(&jump) && all.observes(&cond_taken));
        assert!(!all.observes(&cond_nt), "not-taken conditionals do not redirect control flow");
    }

    #[test]
    fn different_windows_give_different_cids() {
        let mut a = RollingContextRegister::new(2, 0, 14, ContextHistoryKind::Unconditional);
        let mut b = RollingContextRegister::new(6, 0, 14, ContextHistoryKind::Unconditional);
        for pc in [0x100u64, 0x200, 0x300, 0x400, 0x500, 0x600] {
            a.push(pc);
            b.push(pc);
        }
        assert_ne!(a.prefetch_cid(), b.prefetch_cid());
    }
}
