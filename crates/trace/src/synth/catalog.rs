//! Named workload presets mirroring Table I of the paper.
//!
//! Each preset differentiates the generated program along the axes that
//! drive the paper's per-workload differences: static working-set size,
//! amount of context-dependent branch behaviour (LLBP's opportunity),
//! irreducible noise (the MPKI floor), long-range global correlation
//! (capacity pressure on TAGE), and indirect-call entropy (pipeline resets
//! that defeat LLBP's prefetcher — PHPWiki's pathology in §VII-A).
//!
//! The absolute values are calibrated against our simulator, not the
//! authors' machines; what matters is that the *relative* behaviour across
//! workloads matches the paper (see `EXPERIMENTS.md`).

/// Tunable parameters of the synthetic program generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Total number of functions (8 KiB code region each).
    pub functions: usize,
    /// Trailing "shared library" functions holding context-dependent
    /// branches; reached from many call chains.
    pub shared_functions: usize,
    /// Number of distinct request entry points (Zipf-weighted).
    pub request_types: usize,
    /// Maximum forward distance of a non-shared call target.
    pub call_span: usize,
    /// Minimum conditional branches per function body.
    pub conds_min: usize,
    /// Maximum conditional branches per function body.
    pub conds_max: usize,
    /// Minimum call sites per function body.
    pub calls_min: usize,
    /// Maximum call sites per function body.
    pub calls_max: usize,
    /// Mean non-branch instructions between branches.
    pub mean_block_insts: u32,
    /// Per-function probability (‰) of wrapping the body tail in a loop.
    pub loop_permille: u32,
    /// Probability (‰) that a call site targets the shared library tier.
    pub shared_call_permille: u32,
    /// Probability (‰) that a call site is an indirect call.
    pub icall_permille: u32,
    /// Probability that an indirect call picks a uniformly random target
    /// (vs. the context-determined one).
    pub icall_entropy: f64,
    /// Expected number of call sites actually *executed* per function
    /// invocation. Keeping this near 1 bounds the per-request call tree
    /// (branching factor ≈ 1) so requests stay server-request-sized
    /// instead of exploding exponentially.
    pub call_fanout: f64,
    /// Fraction of conditionals that are purely random noise.
    pub noise_fraction: f64,
    /// Fraction of conditionals correlated with long global history.
    pub hard_global_fraction: f64,
    /// Fraction of *shared-tier* conditionals that are context-dependent.
    pub context_fraction: f64,
    /// History bits consulted by context-dependent branch truth tables (max).
    pub ctx_max_len: u32,
    /// PRNG seed for both program construction and execution.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self {
            functions: 1500,
            shared_functions: 200,
            request_types: 24,
            call_span: 48,
            conds_min: 2,
            conds_max: 6,
            calls_min: 1,
            calls_max: 3,
            mean_block_insts: 6,
            loop_permille: 180,
            shared_call_permille: 120,
            icall_permille: 40,
            icall_entropy: 0.1,
            call_fanout: 1.05,
            noise_fraction: 0.03,
            hard_global_fraction: 0.05,
            context_fraction: 0.45,
            ctx_max_len: 3,
            seed: 0xBA5E,
        }
    }
}

/// The 14 evaluated workloads (Table I): two hand-built web services, seven
/// Java suite workloads, four Google production traces, plus their
/// synthetic stand-ins here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// NodeJS online-shop web server.
    NodeApp,
    /// PHP wiki (MediaWiki on PHP-FPM) — indirect-call heavy.
    PhpWiki,
    /// BenchBase TPC-C.
    Tpcc,
    /// BenchBase Twitter.
    Twitter,
    /// BenchBase Wikipedia.
    Wikipedia,
    /// DaCapo Kafka.
    Kafka,
    /// DaCapo Spring.
    Spring,
    /// DaCapo Tomcat — the §II-D working-set case study.
    Tomcat,
    /// Renaissance finagle-chirper.
    Chirper,
    /// Renaissance finagle-http.
    Http,
    /// Google production trace "Charlie".
    Charlie,
    /// Google production trace "Delta".
    Delta,
    /// Google production trace "Merced".
    Merced,
    /// Google production trace "Whiskey".
    Whiskey,
}

impl Workload {
    /// All workloads in the paper's presentation order.
    pub const ALL: [Workload; 14] = [
        Workload::NodeApp,
        Workload::PhpWiki,
        Workload::Tpcc,
        Workload::Twitter,
        Workload::Wikipedia,
        Workload::Kafka,
        Workload::Spring,
        Workload::Tomcat,
        Workload::Chirper,
        Workload::Http,
        Workload::Charlie,
        Workload::Delta,
        Workload::Merced,
        Workload::Whiskey,
    ];

    /// The ten server workloads used in the hardware study (Fig. 1) — all
    /// except the four Google traces.
    pub const SERVER: [Workload; 10] = [
        Workload::NodeApp,
        Workload::PhpWiki,
        Workload::Tpcc,
        Workload::Twitter,
        Workload::Wikipedia,
        Workload::Kafka,
        Workload::Spring,
        Workload::Tomcat,
        Workload::Chirper,
        Workload::Http,
    ];

    /// Description matching Table I.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Workload::NodeApp => "NodeJS online shop webserver",
            Workload::PhpWiki => "PHP wiki web server",
            Workload::Tpcc | Workload::Twitter | Workload::Wikipedia => "Java BenchBase suite",
            Workload::Kafka | Workload::Spring | Workload::Tomcat => "Java DaCapo benchmark suite",
            Workload::Chirper | Workload::Http => "Java Renaissance suite",
            Workload::Charlie | Workload::Delta | Workload::Merced | Workload::Whiskey => {
                "Google traces"
            }
        }
    }

    /// The generator preset for this workload.
    ///
    /// Seeds are arbitrary mnemonic constants; their exact values are part
    /// of the reproducible trace definition and must not be "tidied".
    #[must_use]
    #[allow(clippy::unusual_byte_groupings, clippy::mixed_case_hex_literals)]
    pub fn params(self) -> WorkloadParams {
        let base = WorkloadParams::default();
        match self {
            // High context-dependence, low noise: LLBP's best case
            // (−25.9 % MPKI in the paper).
            Workload::NodeApp => WorkloadParams {
                functions: 900,
                shared_functions: 180,
                request_types: 16,
                context_fraction: 0.65,
                noise_fraction: 0.015,
                hard_global_fraction: 0.03,
                ctx_max_len: 3,
                seed: 0x0DE0_A991,
                ..base
            },
            // Indirect-call heavy with high target entropy: pipeline resets
            // blunt LLBP's prefetching (§VII-A).
            Workload::PhpWiki => WorkloadParams {
                functions: 1100,
                shared_functions: 160,
                request_types: 20,
                icall_permille: 260,
                icall_entropy: 0.5,
                context_fraction: 0.5,
                noise_fraction: 0.03,
                seed: 0x9493_11C1,
                ..base
            },
            Workload::Tpcc => WorkloadParams {
                functions: 2200,
                shared_functions: 260,
                request_types: 5,
                context_fraction: 0.4,
                noise_fraction: 0.05,
                hard_global_fraction: 0.07,
                seed: 0x79CC,
                ..base
            },
            Workload::Twitter => WorkloadParams {
                functions: 1800,
                shared_functions: 220,
                request_types: 12,
                context_fraction: 0.38,
                noise_fraction: 0.04,
                seed: 0x7017_7e4,
                ..base
            },
            Workload::Wikipedia => WorkloadParams {
                functions: 2600,
                shared_functions: 300,
                request_types: 18,
                context_fraction: 0.42,
                noise_fraction: 0.045,
                hard_global_fraction: 0.06,
                seed: 0x91c1,
                ..base
            },
            Workload::Kafka => WorkloadParams {
                functions: 1600,
                shared_functions: 200,
                request_types: 8,
                context_fraction: 0.3,
                noise_fraction: 0.025,
                hard_global_fraction: 0.08,
                seed: 0xCAF_CA,
                ..base
            },
            Workload::Spring => WorkloadParams {
                functions: 3200,
                shared_functions: 380,
                request_types: 28,
                context_fraction: 0.4,
                noise_fraction: 0.04,
                seed: 0x5991_19,
                ..base
            },
            // The §II-D case study: ≈20K static branches.
            Workload::Tomcat => WorkloadParams {
                functions: 3800,
                shared_functions: 420,
                request_types: 32,
                conds_min: 2,
                conds_max: 7,
                context_fraction: 0.45,
                noise_fraction: 0.045,
                hard_global_fraction: 0.06,
                seed: 0x70C_CA75,
                ..base
            },
            Workload::Chirper => WorkloadParams {
                functions: 1200,
                shared_functions: 150,
                request_types: 10,
                context_fraction: 0.25,
                noise_fraction: 0.02,
                hard_global_fraction: 0.03,
                seed: 0xC419_9e4,
                ..base
            },
            Workload::Http => WorkloadParams {
                functions: 1000,
                shared_functions: 130,
                request_types: 8,
                context_fraction: 0.22,
                noise_fraction: 0.018,
                hard_global_fraction: 0.03,
                seed: 0x4779,
                ..base
            },
            // Google traces: larger, flatter working sets.
            Workload::Charlie => WorkloadParams {
                functions: 4200,
                shared_functions: 450,
                request_types: 40,
                context_fraction: 0.35,
                noise_fraction: 0.05,
                hard_global_fraction: 0.07,
                seed: 0xC4A4_11e,
                ..base
            },
            Workload::Delta => WorkloadParams {
                functions: 3600,
                shared_functions: 400,
                request_types: 36,
                context_fraction: 0.3,
                noise_fraction: 0.055,
                hard_global_fraction: 0.08,
                seed: 0xDE17A,
                ..base
            },
            // Second-best LLBP workload in the paper (−13.8 %).
            Workload::Merced => WorkloadParams {
                functions: 2800,
                shared_functions: 420,
                request_types: 30,
                context_fraction: 0.55,
                noise_fraction: 0.03,
                hard_global_fraction: 0.05,
                ctx_max_len: 3,
                seed: 0x3E4C_ED,
                ..base
            },
            Workload::Whiskey => WorkloadParams {
                functions: 3000,
                shared_functions: 350,
                request_types: 26,
                context_fraction: 0.33,
                noise_fraction: 0.05,
                hard_global_fraction: 0.06,
                seed: 0x3415_0E44,
                ..base
            },
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Workload::NodeApp => "NodeApp",
            Workload::PhpWiki => "PHPWiki",
            Workload::Tpcc => "TPCC",
            Workload::Twitter => "Twitter",
            Workload::Wikipedia => "Wikipedia",
            Workload::Kafka => "Kafka",
            Workload::Spring => "Spring",
            Workload::Tomcat => "Tomcat",
            Workload::Chirper => "Chirper",
            Workload::Http => "HTTP",
            Workload::Charlie => "Charlie",
            Workload::Delta => "Delta",
            Workload::Merced => "Merced",
            Workload::Whiskey => "Whiskey",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for Workload {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Workload::ALL
            .into_iter()
            .find(|w| w.to_string().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown workload: {s}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_fourteen_distinct() {
        let mut names: Vec<String> = Workload::ALL.iter().map(ToString::to_string).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn params_are_valid() {
        for w in Workload::ALL {
            let p = w.params();
            assert!(p.functions > p.shared_functions, "{w}");
            assert!(p.request_types >= 1, "{w}");
            assert!(p.conds_max >= p.conds_min, "{w}");
            assert!(p.calls_max >= p.calls_min, "{w}");
            assert!((0.0..=1.0).contains(&p.context_fraction), "{w}");
            assert!((0.0..=1.0).contains(&p.noise_fraction), "{w}");
        }
    }

    #[test]
    fn from_str_roundtrips() {
        for w in Workload::ALL {
            let parsed: Workload = w.to_string().parse().unwrap();
            assert_eq!(parsed, w);
        }
        assert!("nope".parse::<Workload>().is_err());
    }

    #[test]
    fn server_subset_excludes_google_traces() {
        assert_eq!(Workload::SERVER.len(), 10);
        assert!(!Workload::SERVER.contains(&Workload::Charlie));
    }
}
