//! Branch outcome behaviours for the synthetic program model.
//!
//! Every conditional branch in a generated program is assigned one
//! [`Behavior`] that determines its outcome stream. To be *learnable by a
//! global-history predictor* (and thus faithful to the paper's setting),
//! the non-trivial behaviours are deterministic functions of the **recent
//! global outcome history** — optionally conditioned on the **calling
//! context**:
//!
//! * [`Behavior::PathTable`] branches implement a per-branch truth table
//!   over the last `k` conditional outcomes: a short global history
//!   predicts them perfectly, so any TAGE captures them cheaply.
//! * [`Behavior::ContextTable`] branches implement a *per-(branch,
//!   context)* truth table over the last `k` outcomes. Globally the branch
//!   needs (contexts × 2^k) patterns — it must encode the calling context
//!   through very long histories, exactly the §IV "complex branch"
//!   structure — while *within* one context at most `2^k` (typically
//!   fewer) patterns suffice. This is the locality LLBP exploits.
//! * [`Behavior::GlobalParity`] stresses long-but-context-free history.
//! * [`Behavior::Biased`] and [`Behavior::Random`] bound the easy and
//!   irreducible ends of the spectrum.

use bputil::hash::mix64;
use bputil::rng::SplitMix64;

/// The outcome model of one static conditional branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Behavior {
    /// Taken with fixed probability `p_taken` (error-check / fast-path
    /// branches). `p_taken` near 0 or 1 makes the branch trivially easy.
    Biased {
        /// Probability of being taken, in `[0, 1]`.
        p_taken: f64,
    },
    /// A fixed per-branch truth table over the last `k` global conditional
    /// outcomes. Perfectly predictable from a short global history.
    PathTable {
        /// History bits consulted (`1..=6`).
        k: u32,
    },
    /// Outcome equals the parity of the last `lookback` conditional
    /// outcomes — easy for TAGE when `lookback` is small, capacity-hungry
    /// when it is long.
    GlobalParity {
        /// How far back the parity window reaches (`1..=64`).
        lookback: u32,
    },
    /// The LLBP-relevant class: a *per-(branch, calling-context)* truth
    /// table over the last `k` outcomes. Needs long histories (to encode
    /// the context) globally, but only a handful of short patterns within
    /// any one context.
    ContextTable {
        /// History bits consulted per context (`1..=6`).
        k: u32,
    },
    /// Purely random with probability `p_taken` — irreducible noise that
    /// bounds every predictor away from zero MPKI.
    Random {
        /// Probability of being taken, in `[0, 1]`.
        p_taken: f64,
    },
}

impl Behavior {
    /// `true` for the context-dependent class (used by analysis tooling to
    /// find the "complex branches").
    #[must_use]
    pub fn is_context_dependent(&self) -> bool {
        matches!(self, Behavior::ContextTable { .. })
    }
}

/// Mutable evaluation state shared by all branches of one program run.
#[derive(Debug, Default)]
pub struct BehaviorState {
    /// Last 64 conditional outcomes, bit 0 = most recent.
    global_outcomes: u64,
    /// Distinct (branch, context) pairs touched (analysis probe).
    context_pairs: std::collections::HashSet<(u64, u64)>,
}

impl BehaviorState {
    /// Creates fresh state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates `behavior` for the branch at `pc` under calling context
    /// signature `ctx_sig` and records the outcome in the global outcome
    /// history.
    pub fn evaluate(
        &mut self,
        behavior: Behavior,
        pc: u64,
        ctx_sig: u64,
        rng: &mut SplitMix64,
    ) -> bool {
        let outcome = match behavior {
            Behavior::Biased { p_taken } | Behavior::Random { p_taken } => {
                probability_hit(rng, p_taken)
            }
            Behavior::PathTable { k } => {
                let idx = self.global_outcomes & mask64(k.clamp(1, 6));
                (biased_table(mix64(pc)) >> idx) & 1 == 1
            }
            Behavior::GlobalParity { lookback } => {
                let window = self.global_outcomes & mask64(lookback.clamp(1, 64));
                window.count_ones() % 2 == 1
            }
            Behavior::ContextTable { k } => {
                self.context_pairs.insert((pc, ctx_sig));
                let idx = self.global_outcomes & mask64(k.clamp(1, 6));
                // A context-specific 64-bit truth table, derived
                // deterministically so the same context always replays the
                // same function of recent history.
                let table = biased_table(mix64(pc ^ ctx_sig.rotate_left(17)));
                (table >> idx) & 1 == 1
            }
        };
        self.global_outcomes = (self.global_outcomes << 1) | u64::from(outcome);
        outcome
    }

    /// Number of distinct (branch, context) pairs touched so far — a proxy
    /// for how many context-local pattern sets exist.
    #[must_use]
    pub fn context_pairs(&self) -> usize {
        self.context_pairs.len()
    }
}

/// Skews a raw 64-bit truth table towards one direction, like real
/// correlated branches (which are rarely 50/50): ANDing (or ORing) two
/// independent mixes yields ≈25% (or ≈75%) taken entries, direction chosen
/// per table.
fn biased_table(seed: u64) -> u64 {
    let a = mix64(seed ^ 0xA5A5_A5A5_A5A5_A5A5);
    let b = mix64(seed ^ 0x3C3C_3C3C_3C3C_3C3C);
    if seed & 1 == 0 {
        a & b
    } else {
        a | b
    }
}

fn probability_hit(rng: &mut SplitMix64, p: f64) -> bool {
    debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    let threshold = (p.clamp(0.0, 1.0) * f64::from(u32::MAX)) as u64;
    rng.next_u64() >> 32 < threshold
}

fn mask64(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::new(99)
    }

    #[test]
    fn biased_full_probabilities_are_constant() {
        let mut st = BehaviorState::new();
        let mut r = rng();
        for _ in 0..100 {
            assert!(st.evaluate(Behavior::Biased { p_taken: 1.0 }, 1, 0, &mut r));
            assert!(!st.evaluate(Behavior::Biased { p_taken: 0.0 }, 2, 0, &mut r));
        }
    }

    #[test]
    fn random_half_is_roughly_half() {
        let mut st = BehaviorState::new();
        let mut r = rng();
        let taken = (0..10_000)
            .filter(|_| st.evaluate(Behavior::Random { p_taken: 0.5 }, 3, 0, &mut r))
            .count();
        assert!((4_000..6_000).contains(&taken), "taken={taken}");
    }

    #[test]
    fn path_table_is_a_function_of_recent_history() {
        // Two runs that replay the same outcome prefix must agree on the
        // PathTable branch's outcome.
        let drive = |seed: u64| -> Vec<bool> {
            let mut st = BehaviorState::new();
            let mut r = SplitMix64::new(seed);
            let mut outs = Vec::new();
            for i in 0..64 {
                // Deterministic filler outcomes via a biased branch.
                let filler = i % 3 == 0;
                st.evaluate(
                    Behavior::Biased { p_taken: if filler { 1.0 } else { 0.0 } },
                    9,
                    0,
                    &mut r,
                );
                outs.push(st.evaluate(Behavior::PathTable { k: 3 }, 7, 0, &mut r));
            }
            outs
        };
        assert_eq!(drive(1), drive(2), "PathTable must not depend on the RNG");
    }

    #[test]
    fn global_parity_tracks_recent_outcomes() {
        let mut st = BehaviorState::new();
        let mut r = rng();
        st.evaluate(Behavior::Biased { p_taken: 1.0 }, 1, 0, &mut r);
        // Parity of the last 1 outcome = that outcome = taken.
        assert!(st.evaluate(Behavior::GlobalParity { lookback: 1 }, 2, 0, &mut r));
    }

    #[test]
    fn context_table_differs_across_contexts() {
        // For a fixed history, different contexts must (somewhere) choose
        // different outcomes.
        let outcome_for = |ctx: u64| -> bool {
            let mut st = BehaviorState::new();
            let mut r = rng();
            st.evaluate(Behavior::ContextTable { k: 2 }, 0x1234, ctx, &mut r)
        };
        let base = outcome_for(0);
        assert!((1..64).any(|c| outcome_for(c) != base));
    }

    #[test]
    fn context_table_is_stable_within_a_context() {
        // Same context + same history prefix ⇒ same outcome.
        let drive = || -> Vec<bool> {
            let mut st = BehaviorState::new();
            let mut r = rng();
            (0..32).map(|_| st.evaluate(Behavior::ContextTable { k: 3 }, 5, 42, &mut r)).collect()
        };
        assert_eq!(drive(), drive());
    }

    #[test]
    fn context_pairs_grow_with_contexts() {
        let mut st = BehaviorState::new();
        let mut r = rng();
        for ctx in 0..10 {
            st.evaluate(Behavior::ContextTable { k: 2 }, 1, ctx, &mut r);
        }
        assert_eq!(st.context_pairs(), 10);
    }
}
