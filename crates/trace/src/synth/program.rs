//! The synthetic program skeleton and its trace-emitting interpreter.
//!
//! A [`Program`] is a DAG of functions (callees always have a higher index
//! than their callers, so execution terminates). The first
//! `request_types` functions are *entry points* — each generated "request"
//! dispatches to one of them with a Zipf-like popularity skew, imitating a
//! server handling a stream of heterogeneous requests. The trailing
//! `shared_functions` form a "library" tier reached from many distinct
//! call chains; their context-dependent branches are the complex branches
//! of §II-D / §IV.

use super::behavior::{Behavior, BehaviorState};
use super::catalog::WorkloadParams;
use super::{NoSink, ProgressSink, GEN_POLL_INTERVAL};
use crate::record::{BranchKind, BranchRecord, Trace};
use bputil::hash::mix64;
use bputil::rng::SplitMix64;

/// Address of the first function; functions are packed contiguously (as a
/// real binary's text section is), 64-byte aligned.
const CODE_BASE: u64 = 0x0040_0000;
const FUNC_ALIGN: u64 = 64;
/// Hard bound on dynamic call depth (defence against degenerate layouts).
const MAX_DEPTH: usize = 192;

/// One statement of a function body.
#[derive(Debug, Clone, PartialEq)]
enum Stmt {
    /// A conditional branch with an assigned outcome behaviour.
    Cond { pc: u64, target: u64, behavior: Behavior },
    /// A direct call to `callee`.
    Call { pc: u64, callee: usize },
    /// An indirect call choosing between several callees; `entropy` is the
    /// probability of picking uniformly at random instead of the
    /// context-determined target.
    IndirectCall { pc: u64, callees: Vec<usize>, entropy: f64 },
    /// A counted loop: run `body`, then a backwards conditional branch at
    /// `backedge_pc` that is taken while iterations remain.
    Loop { backedge_pc: u64, target: u64, body: Vec<Stmt>, trips: TripCount },
}

/// How a loop's iteration count is chosen per visit.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TripCount {
    /// Always the same count — the loop predictor's bread and butter.
    Fixed(u32),
    /// Uniform in `[min, max]`, drawn from the run's PRNG.
    Uniform { min: u32, max: u32 },
    /// Determined by the calling context (predictable given the context).
    Context { min: u32, max: u32 },
}

/// A generated function: a body of statements in an 8 KiB code region.
#[derive(Debug, Clone, PartialEq)]
struct Function {
    base_pc: u64,
    stmts: Vec<Stmt>,
    /// PC of the return instruction.
    ret_pc: u64,
    /// First address past the function (for contiguous packing).
    end_pc: u64,
    /// Static call sites in the body (including inside loops); used to
    /// scale the per-site execution probability so the *expected* number
    /// of executed calls per invocation is `params.call_fanout`.
    static_calls: usize,
}

fn count_calls(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Call { .. } | Stmt::IndirectCall { .. } => 1,
            Stmt::Loop { body, .. } => count_calls(body),
            Stmt::Cond { .. } => 0,
        })
        .sum()
}

/// A complete synthetic program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    functions: Vec<Function>,
    params: WorkloadParams,
    /// Cumulative Zipf weights over entry functions.
    entry_cdf: Vec<f64>,
}

impl Program {
    /// Number of functions in the program.
    #[must_use]
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Total number of static conditional branch sites (including loop
    /// back-edges).
    #[must_use]
    pub fn static_conditionals(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Cond { .. } => 1,
                    Stmt::Loop { body, .. } => 1 + count(body),
                    _ => 0,
                })
                .sum()
        }
        self.functions.iter().map(|f| count(&f.stmts)).sum()
    }

    /// Maps every static conditional branch PC to its behaviour (loop
    /// back-edges map to `None`). Useful for analysis tooling that wants
    /// to attribute mispredictions to behaviour classes.
    #[must_use]
    pub fn behavior_map(&self) -> std::collections::HashMap<u64, Option<Behavior>> {
        fn walk(stmts: &[Stmt], out: &mut std::collections::HashMap<u64, Option<Behavior>>) {
            for s in stmts {
                match s {
                    Stmt::Cond { pc, behavior, .. } => {
                        out.insert(*pc, Some(*behavior));
                    }
                    Stmt::Loop { backedge_pc, body, .. } => {
                        out.insert(*backedge_pc, None);
                        walk(body, out);
                    }
                    _ => {}
                }
            }
        }
        let mut out = std::collections::HashMap::new();
        for f in &self.functions {
            walk(&f.stmts, &mut out);
        }
        out
    }

    /// Interprets the program, emitting `branches` records.
    #[must_use]
    pub fn execute(&self, name: &str, branches: usize) -> Trace {
        self.execute_with_sink(name, branches, &NoSink).expect("NoSink never aborts")
    }

    /// [`Program::execute`] with a cancellation hook: `sink` is polled
    /// once up front and then every [`GEN_POLL_INTERVAL`] emitted
    /// records. Returns `None` when the sink aborts, never a truncated
    /// trace.
    #[must_use]
    pub fn execute_with_sink(
        &self,
        name: &str,
        branches: usize,
        sink: &dyn ProgressSink,
    ) -> Option<Trace> {
        // XOR a constant so the execution RNG stream differs from the
        // build-time RNG stream even for seed 0.
        let mut run = Run {
            program: self,
            rng: SplitMix64::new(self.params.seed ^ 0x5ca1_ab1e),
            state: BehaviorState::new(),
            trace: Trace::new(name),
            limit: branches,
            fuel: 0,
            call_stack: Vec::with_capacity(MAX_DEPTH + 1),
            sink,
            emitted: 0,
            aborted: false,
        };
        // The up-front poll catches a deadline that expired before
        // generation even started (e.g. an injected pre-generation delay).
        run.aborted = !sink.on_progress(0);
        while !run.done() {
            let entry = run.pick_entry();
            run.fuel = 150 + run.rng.below(2350);
            run.call_stack.clear();
            run.call_stack.push(mix64(0xE117_u64 ^ entry as u64));
            // Requests "return" to a fixed dispatcher address.
            run.call_function(entry, CODE_BASE - 0x100, 0);
        }
        if run.aborted {
            return None;
        }
        sink.on_complete(run.emitted);
        // Trim any overshoot from the last request so callers get exactly
        // what they asked for.
        let mut records = run.trace.records().to_vec();
        records.truncate(branches);
        Some(Trace::from_records(name, records))
    }
}

/// Per-invocation call-site execution control (see [`Run::take_call`]).
struct CallCtl {
    /// Running index of call sites encountered during this invocation.
    next_site: u64,
    /// The site index (mod static sites) guaranteed to execute.
    forced_site: u64,
    /// Whether the forced site has executed yet.
    forced_done: bool,
}

/// How many trailing call-chain frames define a branch's behavioural
/// context. Keeping this *windowed* (rather than hashing the entire chain)
/// mirrors real code, where behaviour localises to the recent callers —
/// the property LLBP's finite context window exploits (§IV).
const CONTEXT_FRAMES: usize = 3;

/// Interpreter state for one trace generation run.
struct Run<'p> {
    program: &'p Program,
    rng: SplitMix64,
    state: BehaviorState,
    trace: Trace,
    limit: usize,
    /// Remaining record budget for the current request. Bounds request
    /// size so a single deep loop-nest cannot monopolise the trace and the
    /// request mix stays server-like.
    fuel: u64,
    /// Call-site PCs of the live call chain (innermost last).
    call_stack: Vec<u64>,
    /// Cancellation hook, polled every [`GEN_POLL_INTERVAL`] emits.
    sink: &'p dyn ProgressSink,
    /// Records emitted so far (unlike `trace.len()`, never capped), the
    /// poll-point counter.
    emitted: usize,
    /// Set once the sink aborts; [`Run::done`] then unwinds the
    /// interpreter at the next statement boundary.
    aborted: bool,
}

impl Run<'_> {
    fn pick_entry(&mut self) -> usize {
        let cdf = &self.program.entry_cdf;
        let total = *cdf.last().expect("at least one entry function");
        let x = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * total;
        cdf.iter().position(|&c| x < c).unwrap_or(cdf.len() - 1)
    }

    fn gap(&mut self) -> u32 {
        let mean = self.program.params.mean_block_insts.max(1);
        self.rng.below(u64::from(2 * mean) + 1) as u32
    }

    fn emit(&mut self, record: BranchRecord) {
        self.fuel = self.fuel.saturating_sub(1);
        if self.trace.len() < self.limit + 64 {
            self.trace.push(record);
        }
        self.emitted += 1;
        if self.emitted.is_multiple_of(GEN_POLL_INTERVAL) && !self.sink.on_progress(self.emitted) {
            self.aborted = true;
        }
    }

    fn done(&self) -> bool {
        self.aborted || self.trace.len() >= self.limit
    }

    /// Decides whether a call site in function `fidx` is executed this
    /// visit. One uniformly chosen call site per invocation always
    /// executes (keeping call chains — and thus context diversity and
    /// call-graph coverage — alive); additional sites execute with a
    /// probability targeting `call_fanout` expected calls per invocation.
    fn take_call(&mut self, fidx: usize, ctl: &mut CallCtl) -> bool {
        let site = ctl.next_site;
        ctl.next_site += 1;
        if self.fuel == 0 {
            return false;
        }
        let statics = self.program.functions[fidx].static_calls.max(1) as u64;
        if !ctl.forced_done && site % statics == ctl.forced_site {
            ctl.forced_done = true;
            return true;
        }
        let extra = (self.program.params.call_fanout - 1.0).max(0.0);
        let p = (extra / statics as f64).clamp(0.0, 1.0);
        let roll = (self.rng.next_u64() >> 40) as f64 / (1u64 << 24) as f64;
        roll < p
    }

    /// The behavioural context signature: a positional fold of the last
    /// [`CONTEXT_FRAMES`] call-chain entries.
    fn ctx_sig(&self) -> u64 {
        self.call_stack
            .iter()
            .rev()
            .take(CONTEXT_FRAMES)
            .enumerate()
            .fold(0u64, |acc, (i, &pc)| acc ^ mix64(pc).rotate_left(7 * i as u32))
    }

    fn call_function(&mut self, idx: usize, ret_to: u64, depth: usize) {
        let f = &self.program.functions[idx];
        let statics = f.static_calls.max(1) as u64;
        // Control flow in real code is highly repetitive: most invocations
        // take the function's hot path. 90% of invocations execute the
        // function's (fixed) hot call site; the rest pick uniformly, which
        // keeps the whole static call graph covered over time.
        let hot_site = bputil::hash::mix64(f.base_pc) % statics;
        let forced_site = if self.rng.chance(9, 10) { hot_site } else { self.rng.below(statics) };
        let mut ctl = CallCtl { next_site: 0, forced_site, forced_done: false };
        self.run_stmts(&f.stmts, depth, idx, &mut ctl);
        // Function return: control transfers back to the instruction after
        // the call site (so a return-address stack predicts it).
        let gap = self.gap();
        self.emit(BranchRecord::unconditional(f.ret_pc, ret_to, BranchKind::Return, gap));
    }

    fn run_stmts(&mut self, stmts: &[Stmt], depth: usize, fidx: usize, ctl: &mut CallCtl) {
        for stmt in stmts {
            if self.done() {
                return;
            }
            match stmt {
                Stmt::Cond { pc, target, behavior } => {
                    let ctx = self.ctx_sig();
                    let taken = self.state.evaluate(*behavior, *pc, ctx, &mut self.rng);
                    let gap = self.gap();
                    self.emit(BranchRecord::conditional(*pc, *target, taken, gap));
                }
                Stmt::Call { pc, callee } => {
                    if depth >= MAX_DEPTH || !self.take_call(fidx, ctl) {
                        continue;
                    }
                    let target = self.program.functions[*callee].base_pc;
                    let gap = self.gap();
                    self.emit(BranchRecord::unconditional(
                        *pc,
                        target,
                        BranchKind::DirectCall,
                        gap,
                    ));
                    self.call_stack.push(*pc);
                    self.call_function(*callee, *pc + 4, depth + 1);
                    self.call_stack.pop();
                }
                Stmt::IndirectCall { pc, callees, entropy } => {
                    if depth >= MAX_DEPTH || callees.is_empty() || !self.take_call(fidx, ctl) {
                        continue;
                    }
                    let roll = (self.rng.next_u64() >> 40) as f64 / (1u64 << 24) as f64;
                    let random_pick = roll < *entropy;
                    let which = if random_pick {
                        self.rng.below(callees.len() as u64) as usize
                    } else {
                        (mix64(self.ctx_sig() ^ *pc) % callees.len() as u64) as usize
                    };
                    let callee = callees[which];
                    let target = self.program.functions[callee].base_pc;
                    let gap = self.gap();
                    self.emit(BranchRecord::unconditional(
                        *pc,
                        target,
                        BranchKind::IndirectCall,
                        gap,
                    ));
                    // The callee's context differs per selected target.
                    // Distinguish the selected target in the chain context.
                    self.call_stack.push(*pc ^ (callee as u64) << 3);
                    self.call_function(callee, *pc + 4, depth + 1);
                    self.call_stack.pop();
                }
                Stmt::Loop { backedge_pc, target, body, trips } => {
                    let n = match *trips {
                        TripCount::Fixed(n) => n,
                        TripCount::Uniform { min, max } => {
                            min + self.rng.below(u64::from(max - min) + 1) as u32
                        }
                        TripCount::Context { min, max } => {
                            min + (mix64(self.ctx_sig() ^ *backedge_pc) % u64::from(max - min + 1))
                                as u32
                        }
                    }
                    .max(1);
                    for iter in 0..n {
                        if self.done() {
                            return;
                        }
                        if self.fuel == 0 && iter > 0 {
                            break;
                        }
                        self.run_stmts(body, depth, fidx, ctl);
                        let taken = iter + 1 < n; // back-edge taken while looping
                        let gap = self.gap();
                        self.emit(BranchRecord::conditional(*backedge_pc, *target, taken, gap));
                    }
                }
            }
        }
    }
}

/// Builds a [`Program`] from workload parameters. Construction is
/// deterministic in `params.seed`.
#[derive(Debug)]
pub struct ProgramBuilder {
    params: WorkloadParams,
    rng: SplitMix64,
}

impl ProgramBuilder {
    /// Creates a builder for the given parameters.
    #[must_use]
    pub fn new(params: WorkloadParams) -> Self {
        let rng = SplitMix64::new(params.seed);
        Self { params, rng }
    }

    /// Generates the program skeleton.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are degenerate (no functions, no entry
    /// points, or more shared functions than functions).
    #[must_use]
    pub fn build(mut self) -> Program {
        let p = self.params.clone();
        assert!(p.functions >= 4, "need at least 4 functions");
        assert!(p.request_types >= 1, "need at least one request type");
        assert!(p.shared_functions < p.functions, "shared tier larger than program");

        let n = p.functions;
        let shared_start = n - p.shared_functions.max(1);
        let mut functions = Vec::with_capacity(n);
        let mut cursor = CODE_BASE;
        for idx in 0..n {
            let f = self.build_function(idx, n, shared_start, cursor);
            cursor = (f.end_pc + FUNC_ALIGN) & !(FUNC_ALIGN - 1);
            functions.push(f);
        }

        // Zipf-ish popularity over entry functions: weight 1/sqrt(rank+1),
        // a mild skew so no single handler dominates the trace.
        let entries = p.request_types.min(shared_start.max(1));
        let mut acc = 0.0;
        let entry_cdf = (0..entries)
            .map(|i| {
                acc += 1.0 / (i as f64 + 1.0).sqrt();
                acc
            })
            .collect();

        Program { functions, params: p, entry_cdf }
    }

    fn build_function(
        &mut self,
        idx: usize,
        n: usize,
        shared_start: usize,
        base_pc: u64,
    ) -> Function {
        let p = self.params.clone();
        let mut pc = base_pc;
        let mut next_pc = |step: u64| {
            let cur = pc;
            pc += 4 * step;
            cur
        };

        let in_shared = idx >= shared_start;
        let conds = p.conds_min + (self.rng.below((p.conds_max - p.conds_min + 1) as u64) as usize);
        let calls = if idx + 1 >= n {
            0
        } else {
            p.calls_min + (self.rng.below((p.calls_max - p.calls_min + 1) as u64) as usize)
        };

        // Interleave conditionals and calls; optionally wrap a suffix of
        // the body in a loop.
        let mut stmts: Vec<Stmt> = Vec::new();
        for _ in 0..conds {
            let bpc = next_pc(2);
            let behavior = self.pick_behavior(in_shared);
            let target = bpc + 4 * (2 + self.rng.below(12));
            stmts.push(Stmt::Cond { pc: bpc, target, behavior });
        }
        for _ in 0..calls {
            let cpc = next_pc(2);
            let lo = idx + 1;
            // Calls target either the next tier (locality) or the shared
            // library at the end.
            let call_shared = self.rng.chance((p.shared_call_permille) as u64, 1000);
            // Callees always have a strictly greater index than the caller
            // so the call graph stays a DAG and every request terminates.
            let callee = if call_shared || lo >= shared_start {
                let lo2 = lo.max(shared_start);
                lo2 + self.rng.below((n - lo2) as u64) as usize
            } else {
                let hi = (lo + p.call_span).min(shared_start);
                lo + self.rng.below((hi - lo) as u64) as usize
            };
            let indirect = self.rng.chance((p.icall_permille) as u64, 1000);
            if indirect {
                // 2-6 possible targets drawn near the chosen callee.
                let fan = 2 + self.rng.below(5) as usize;
                let mut callees = Vec::with_capacity(fan);
                for k in 0..fan {
                    let c = (callee + k) % n;
                    if c > idx {
                        callees.push(c);
                    }
                }
                if callees.is_empty() {
                    callees.push(callee.max(idx + 1).min(n - 1));
                }
                stmts.push(Stmt::IndirectCall { pc: cpc, callees, entropy: p.icall_entropy });
            } else {
                stmts.push(Stmt::Call { pc: cpc, callee });
            }
        }
        // Shuffle statement order (Fisher-Yates) so calls and branches
        // interleave differently per function.
        for i in (1..stmts.len()).rev() {
            let j = self.rng.below(i as u64 + 1) as usize;
            stmts.swap(i, j);
        }

        // Optionally wrap the tail of the body in a loop.
        if self.rng.chance((p.loop_permille) as u64, 1000) && !stmts.is_empty() {
            let split = stmts.len() - 1 - self.rng.below(stmts.len() as u64) as usize;
            let body: Vec<Stmt> = stmts.split_off(split);
            let backedge_pc = next_pc(2);
            let trips = match self.rng.below(8) {
                0 => TripCount::Uniform {
                    min: 1 + self.rng.below(2) as u32,
                    max: 3 + self.rng.below(6) as u32,
                },
                1 | 2 => TripCount::Context {
                    min: 1 + self.rng.below(2) as u32,
                    max: 3 + self.rng.below(6) as u32,
                },
                _ => TripCount::Fixed(2 + self.rng.below(8) as u32),
            };
            stmts.push(Stmt::Loop { backedge_pc, target: base_pc, body, trips });
        }

        let ret_pc = next_pc(1);
        let static_calls = count_calls(&stmts);
        Function { base_pc, stmts, ret_pc, end_pc: pc, static_calls }
    }

    fn pick_behavior(&mut self, in_shared: bool) -> Behavior {
        let p = &self.params;
        let roll = self.rng.below(1000) as f64 / 1000.0;
        if in_shared && roll < p.context_fraction {
            let k = 1 + self.rng.below(u64::from(p.ctx_max_len.clamp(1, 3))) as u32;
            return Behavior::ContextTable { k };
        }
        let roll = self.rng.below(1000) as f64 / 1000.0;
        if roll < p.noise_fraction {
            let p_taken = 0.2 + (self.rng.below(600) as f64) / 1000.0;
            return Behavior::Random { p_taken };
        }
        if roll < p.noise_fraction + p.hard_global_fraction {
            // Long-but-learnable correlation: needs ≈2^lookback patterns,
            // feasible only with generous capacity (the Inf TAGE headroom).
            let lookback = 8 + self.rng.below(3) as u32;
            return Behavior::GlobalParity { lookback };
        }
        match self.rng.below(5) {
            0 | 1 => {
                // Strongly biased either way.
                let toward_taken = self.rng.chance(1, 2);
                let eps = (self.rng.below(20) as f64) / 1000.0;
                Behavior::Biased { p_taken: if toward_taken { 1.0 - eps } else { eps } }
            }
            2 | 3 => Behavior::PathTable { k: 1 + self.rng.below(3) as u32 },
            _ => Behavior::GlobalParity { lookback: 2 + self.rng.below(2) as u32 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::catalog::Workload;

    fn small_params() -> WorkloadParams {
        let mut p = Workload::NodeApp.params();
        p.functions = 32;
        p.shared_functions = 8;
        p.request_types = 4;
        p
    }

    #[test]
    fn builder_is_deterministic() {
        let a = ProgramBuilder::new(small_params()).build();
        let b = ProgramBuilder::new(small_params()).build();
        assert_eq!(a, b);
    }

    #[test]
    fn execute_emits_exact_count() {
        let prog = ProgramBuilder::new(small_params()).build();
        let t = prog.execute("x", 1234);
        assert_eq!(t.len(), 1234);
    }

    #[test]
    fn trace_contains_calls_and_returns() {
        let prog = ProgramBuilder::new(small_params()).build();
        let t = prog.execute("x", 5000);
        let stats = t.stats();
        assert!(stats.count(BranchKind::DirectCall) > 0);
        assert!(stats.count(BranchKind::Return) > 0);
        assert!(stats.conditional > 0);
    }

    #[test]
    fn static_conditionals_counted() {
        let prog = ProgramBuilder::new(small_params()).build();
        assert!(prog.static_conditionals() > 32, "each function has branches");
    }

    #[test]
    fn pcs_are_packed_above_code_base() {
        let prog = ProgramBuilder::new(small_params()).build();
        let t = prog.execute("x", 2000);
        for r in &t {
            assert!(r.pc() >= CODE_BASE);
            // 32 small functions pack into well under 64 KiB.
            assert!(r.pc() < CODE_BASE + 0x1_0000);
        }
    }
}
