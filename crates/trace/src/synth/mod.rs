//! Synthetic server-workload generation.
//!
//! The paper's evaluation uses gem5-collected server traces and Google
//! production traces, neither of which is publicly reproducible here. This
//! module substitutes a *program-model generator*: it builds a random but
//! deterministic program skeleton (functions, call graph, loops, branch
//! behaviours) and interprets it to emit a branch trace.
//!
//! The generator is tuned to reproduce the trace properties the paper's
//! analysis rests on:
//!
//! * **Large static working sets** — thousands to >20K distinct branch PCs
//!   (§II-D).
//! * **≈3.9 conditional branches per unconditional branch** (§IV-2).
//! * **A skewed misprediction profile** — most branches are easy (biased,
//!   loops, short local patterns) while a small set of *complex branches*
//!   in shared leaf functions have outcomes that depend on the **calling
//!   context**: reached through many distinct call chains, they need
//!   hundreds of TAGE patterns globally but only a handful per context —
//!   precisely the structure LLBP exploits (§IV).
//! * **Irreducible noise** — some branches are random, bounding every
//!   predictor away from zero MPKI.
//!
//! Each of the paper's 14 workloads maps to a [`WorkloadParams`] preset
//! (see [`Workload::params`]); presets differ in working-set size, context depth, noise
//! level and indirect-call rate so that per-workload results are
//! differentiated the same way the paper's are.

mod behavior;
mod catalog;
mod program;

pub use behavior::{Behavior, BehaviorState};
pub use catalog::{Workload, WorkloadParams};
pub use program::{Program, ProgramBuilder};

use crate::record::Trace;

/// How often the generator polls its [`ProgressSink`]: once before the
/// first record and then every this-many emitted records. Chosen so that
/// even the slowest workloads poll several hundred times per second,
/// making a watchdog-cancelled generation terminate promptly, while the
/// poll itself stays invisible in generation throughput.
pub const GEN_POLL_INTERVAL: usize = 4096;

/// Observer of trace-generation progress — the cancellation hook that
/// lets a watchdog interrupt a cell stuck *generating* its trace, not
/// just one stuck simulating.
///
/// The interpreter calls [`ProgressSink::on_progress`] every
/// [`GEN_POLL_INTERVAL`] emitted records (and once with `0` before the
/// first). Returning `false` aborts the generation:
/// [`WorkloadSpec::generate_with_sink`] then returns `None` instead of a
/// truncated trace, so an aborted generation can never be mistaken for a
/// complete one.
///
/// No `Sync` bound: a sink is only ever polled from the thread running
/// the generation, so implementations may use interior mutability
/// (`Cell`) freely.
pub trait ProgressSink {
    /// Called at each poll point with the number of records emitted so
    /// far; return `false` to abort the generation.
    fn on_progress(&self, emitted: usize) -> bool;

    /// Called exactly once when a generation finishes successfully, with
    /// the total records emitted (before any overshoot trim). Never
    /// called for aborted generations. Default: no-op — this exists so
    /// observers (e.g. telemetry record counters) can account finished
    /// work without a second poll path.
    fn on_complete(&self, _emitted: usize) {}
}

/// The sink that never aborts (plain [`WorkloadSpec::generate`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSink;

impl ProgressSink for NoSink {
    fn on_progress(&self, _emitted: usize) -> bool {
        true
    }
}

/// A specification of a synthetic workload trace: which workload preset,
/// how many branch records, and an optional seed override.
///
/// # Example
///
/// ```
/// use llbp_trace::synth::{Workload, WorkloadSpec};
///
/// let trace = WorkloadSpec::named(Workload::Kafka)
///     .with_branches(2_000)
///     .with_seed(7)
///     .generate();
/// assert_eq!(trace.len(), 2_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    params: WorkloadParams,
    branches: usize,
    name: String,
}

impl WorkloadSpec {
    /// Default number of branch records generated when unspecified.
    pub const DEFAULT_BRANCHES: usize = 1_000_000;

    /// Creates a spec for one of the paper's named workloads.
    #[must_use]
    pub fn named(workload: Workload) -> Self {
        Self {
            params: workload.params(),
            branches: Self::DEFAULT_BRANCHES,
            name: workload.to_string(),
        }
    }

    /// Creates a spec from custom parameters.
    #[must_use]
    pub fn custom(name: impl Into<String>, params: WorkloadParams) -> Self {
        Self { params, branches: Self::DEFAULT_BRANCHES, name: name.into() }
    }

    /// Sets the number of branch records to generate.
    #[must_use]
    pub fn with_branches(mut self, branches: usize) -> Self {
        self.branches = branches;
        self
    }

    /// Overrides the preset's PRNG seed (for sensitivity studies).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// The effective parameters.
    #[must_use]
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// The workload name used for the generated trace.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of branch records this spec generates (what
    /// [`WorkloadSpec::with_branches`] set, else the preset default).
    /// Wire codecs use it to reconstruct a spec field-exactly — the
    /// fingerprint hashes the spec's debug form, so a lossy roundtrip
    /// would fork cell identities.
    #[must_use]
    pub fn branches(&self) -> usize {
        self.branches
    }

    /// Builds the program skeleton without executing it (for analysis
    /// tooling that inspects behaviour classes or structure).
    #[must_use]
    pub fn build_program(&self) -> Program {
        ProgramBuilder::new(self.params.clone()).build()
    }

    /// Builds the program skeleton and interprets it until the requested
    /// number of branch records has been emitted.
    #[must_use]
    pub fn generate(&self) -> Trace {
        self.build_program().execute(&self.name, self.branches)
    }

    /// [`WorkloadSpec::generate`] with a cancellation hook: `sink` is
    /// polled every [`GEN_POLL_INTERVAL`] emitted records, and `None` is
    /// returned when it aborts the generation.
    #[must_use]
    pub fn generate_with_sink(&self, sink: &dyn ProgressSink) -> Option<Trace> {
        self.build_program().execute_with_sink(&self.name, self.branches, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadSpec::named(Workload::Tpcc).with_branches(3_000).generate();
        let b = WorkloadSpec::named(Workload::Tpcc).with_branches(3_000).generate();
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn seed_changes_the_trace() {
        let a = WorkloadSpec::named(Workload::Tpcc).with_branches(3_000).with_seed(1).generate();
        let b = WorkloadSpec::named(Workload::Tpcc).with_branches(3_000).with_seed(2).generate();
        assert_ne!(a.records(), b.records());
    }

    #[test]
    fn cond_uncond_ratio_near_paper_value() {
        // §IV-2 reports ≈3.89 conditional branches per unconditional branch.
        let t = WorkloadSpec::named(Workload::Tomcat).with_branches(100_000).generate();
        let ratio = t.stats().cond_per_uncond().unwrap();
        assert!((2.0..7.0).contains(&ratio), "ratio {ratio} far from paper's 3.89");
    }

    #[test]
    fn working_set_scales_with_params() {
        let small = WorkloadSpec::named(Workload::NodeApp).with_branches(60_000).generate();
        let large = WorkloadSpec::named(Workload::Tomcat).with_branches(60_000).generate();
        assert!(
            large.stats().static_conditional > small.stats().static_conditional,
            "Tomcat should have a larger working set than NodeApp"
        );
    }

    #[test]
    fn all_workloads_generate() {
        for w in Workload::ALL {
            let t = WorkloadSpec::named(w).with_branches(500).generate();
            assert_eq!(t.len(), 500, "workload {w}");
            assert!(t.instructions() > 500);
        }
    }

    #[test]
    fn sinked_generation_matches_plain_generation() {
        // The poll points must be pure observation: a never-aborting sink
        // produces the identical trace.
        let spec = WorkloadSpec::named(Workload::Kafka).with_branches(10_000);
        let plain = spec.generate();
        let sinked = spec.generate_with_sink(&NoSink).expect("NoSink never aborts");
        assert_eq!(plain.records(), sinked.records());
    }

    #[test]
    fn aborting_sink_stops_generation_early() {
        use std::cell::Cell;

        /// Aborts after a fixed number of polls, counting them.
        struct AbortAfter {
            polls: Cell<usize>,
            limit: usize,
        }
        impl ProgressSink for AbortAfter {
            fn on_progress(&self, _emitted: usize) -> bool {
                let seen = self.polls.get() + 1;
                self.polls.set(seen);
                seen <= self.limit
            }
        }

        // Abort immediately: the very first poll (before any record).
        let spec = WorkloadSpec::named(Workload::Http).with_branches(1_000_000);
        let sink = AbortAfter { polls: Cell::new(0), limit: 0 };
        assert!(spec.generate_with_sink(&sink).is_none());
        assert_eq!(sink.polls.get(), 1, "aborted before generating anything");

        // Abort after a few poll intervals: far fewer than the requested
        // million records were generated before the interpreter stopped.
        let sink = AbortAfter { polls: Cell::new(0), limit: 3 };
        assert!(spec.generate_with_sink(&sink).is_none());
        let polls = sink.polls.get();
        assert!(polls >= 4, "generation must keep polling until aborted (saw {polls})");
        assert!(
            polls < 1_000_000 / GEN_POLL_INTERVAL / 2,
            "abort must stop generation promptly (saw {polls} polls)"
        );
    }
}
