//! Branch trace records.
//!
//! A trace is a sequence of *retired branch instructions* in program order,
//! each annotated with the number of non-branch instructions preceding it
//! (so simulators can reconstruct instruction counts and fetch traffic
//! without storing every instruction, the same trick ChampSim traces use).

/// The control-flow class of a branch instruction.
///
/// LLBP builds its context IDs from *unconditional* branches (direct and
/// indirect jumps, calls, and returns), and the Fig. 13 sensitivity study
/// compares against call/return-only and all-branch histories, so the trace
/// must distinguish these classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchKind {
    /// A conditional direct branch — the only kind the direction predictors
    /// under study predict.
    Conditional,
    /// An unconditional direct jump.
    DirectJump,
    /// An unconditional indirect jump (target from a register).
    IndirectJump,
    /// A direct call.
    DirectCall,
    /// An indirect call (e.g. virtual dispatch) — PHPWiki's pipeline-reset
    /// pathology in §VII-A comes from mispredicted indirect calls.
    IndirectCall,
    /// A function return.
    Return,
}

impl BranchKind {
    /// `true` for every kind except [`BranchKind::Conditional`].
    #[must_use]
    pub fn is_unconditional(self) -> bool {
        !matches!(self, BranchKind::Conditional)
    }

    /// `true` for calls and returns (the Fig. 13 `Call/Ret` history type).
    #[must_use]
    pub fn is_call_or_return(self) -> bool {
        matches!(self, BranchKind::DirectCall | BranchKind::IndirectCall | BranchKind::Return)
    }

    /// Compact numeric encoding used by the binary trace format.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            BranchKind::Conditional => 0,
            BranchKind::DirectJump => 1,
            BranchKind::IndirectJump => 2,
            BranchKind::DirectCall => 3,
            BranchKind::IndirectCall => 4,
            BranchKind::Return => 5,
        }
    }

    /// Decodes the binary encoding; `None` for out-of-range values.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => BranchKind::Conditional,
            1 => BranchKind::DirectJump,
            2 => BranchKind::IndirectJump,
            3 => BranchKind::DirectCall,
            4 => BranchKind::IndirectCall,
            5 => BranchKind::Return,
            _ => return None,
        })
    }

    /// All kinds, in encoding order.
    pub const ALL: [BranchKind; 6] = [
        BranchKind::Conditional,
        BranchKind::DirectJump,
        BranchKind::IndirectJump,
        BranchKind::DirectCall,
        BranchKind::IndirectCall,
        BranchKind::Return,
    ];
}

impl std::fmt::Display for BranchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BranchKind::Conditional => "cond",
            BranchKind::DirectJump => "jump",
            BranchKind::IndirectJump => "ijump",
            BranchKind::DirectCall => "call",
            BranchKind::IndirectCall => "icall",
            BranchKind::Return => "ret",
        };
        f.write_str(s)
    }
}

/// One retired branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchRecord {
    /// Address of the branch instruction.
    pub pc: u64,
    /// Address control transfers to when taken.
    pub target: u64,
    /// Control-flow class.
    pub kind: BranchKind,
    /// Resolved direction. Always `true` for unconditional kinds.
    pub taken: bool,
    /// Number of non-branch instructions retired since the previous branch
    /// (used for MPKI and fetch-bandwidth accounting).
    pub non_branch_insts: u32,
}

impl BranchRecord {
    /// Convenience constructor for a conditional branch.
    #[must_use]
    pub fn conditional(pc: u64, target: u64, taken: bool, non_branch_insts: u32) -> Self {
        Self { pc, target, kind: BranchKind::Conditional, taken, non_branch_insts }
    }

    /// Convenience constructor for an unconditional branch of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`BranchKind::Conditional`].
    #[must_use]
    pub fn unconditional(pc: u64, target: u64, kind: BranchKind, non_branch_insts: u32) -> Self {
        assert!(kind.is_unconditional(), "use `conditional` for conditional branches");
        Self { pc, target, kind, taken: true, non_branch_insts }
    }

    /// Instructions this record accounts for (the branch itself plus the
    /// preceding non-branch instructions).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        u64::from(self.non_branch_insts) + 1
    }
}

/// An in-memory branch trace.
///
/// # Example
///
/// ```
/// use llbp_trace::record::{BranchKind, BranchRecord, Trace};
///
/// let mut t = Trace::new("demo");
/// t.push(BranchRecord::conditional(0x1000, 0x1040, true, 3));
/// t.push(BranchRecord::unconditional(0x1044, 0x2000, BranchKind::DirectCall, 2));
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.instructions(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    name: String,
    records: Vec<BranchRecord>,
    instructions: u64,
}

impl Trace {
    /// Creates an empty trace with a human-readable name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), records: Vec::new(), instructions: 0 }
    }

    /// Creates a trace from pre-built records.
    #[must_use]
    pub fn from_records(name: impl Into<String>, records: Vec<BranchRecord>) -> Self {
        let instructions = records.iter().map(BranchRecord::instructions).sum();
        Self { name: name.into(), records, instructions }
    }

    /// The trace name (workload identifier).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one record.
    pub fn push(&mut self, record: BranchRecord) {
        self.instructions += record.instructions();
        self.records.push(record);
    }

    /// Number of branch records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total retired instructions represented (branches + non-branches).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The records in program order.
    #[must_use]
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Iterates over the records in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, BranchRecord> {
        self.records.iter()
    }

    /// Computes summary statistics (kind mix, static working set, …).
    #[must_use]
    pub fn stats(&self) -> crate::stats::TraceStats {
        crate::stats::TraceStats::from_trace(self)
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a BranchRecord;
    type IntoIter = std::slice::Iter<'a, BranchRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl Extend<BranchRecord> for Trace {
    fn extend<T: IntoIterator<Item = BranchRecord>>(&mut self, iter: T) {
        for r in iter {
            self.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_u8() {
        for kind in BranchKind::ALL {
            assert_eq!(BranchKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(BranchKind::from_u8(99), None);
    }

    #[test]
    fn kind_classification() {
        assert!(!BranchKind::Conditional.is_unconditional());
        assert!(BranchKind::Return.is_unconditional());
        assert!(BranchKind::Return.is_call_or_return());
        assert!(!BranchKind::DirectJump.is_call_or_return());
        assert!(BranchKind::IndirectCall.is_call_or_return());
    }

    #[test]
    fn trace_counts_instructions() {
        let mut t = Trace::new("t");
        t.push(BranchRecord::conditional(0, 4, false, 9));
        t.push(BranchRecord::conditional(8, 12, true, 0));
        assert_eq!(t.instructions(), 11);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn from_records_matches_push() {
        let records = vec![
            BranchRecord::conditional(0, 4, false, 2),
            BranchRecord::unconditional(8, 100, BranchKind::Return, 1),
        ];
        let a = Trace::from_records("a", records.clone());
        let mut b = Trace::new("b");
        b.extend(records);
        assert_eq!(a.instructions(), b.instructions());
        assert_eq!(a.records(), b.records());
    }

    #[test]
    #[should_panic(expected = "use `conditional`")]
    fn unconditional_ctor_rejects_conditional() {
        let _ = BranchRecord::unconditional(0, 4, BranchKind::Conditional, 0);
    }
}
