//! Branch trace records.
//!
//! A trace is a sequence of *retired branch instructions* in program order,
//! each annotated with the number of non-branch instructions preceding it
//! (so simulators can reconstruct instruction counts and fetch traffic
//! without storing every instruction, the same trick ChampSim traces use).

/// The control-flow class of a branch instruction.
///
/// LLBP builds its context IDs from *unconditional* branches (direct and
/// indirect jumps, calls, and returns), and the Fig. 13 sensitivity study
/// compares against call/return-only and all-branch histories, so the trace
/// must distinguish these classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchKind {
    /// A conditional direct branch — the only kind the direction predictors
    /// under study predict.
    Conditional,
    /// An unconditional direct jump.
    DirectJump,
    /// An unconditional indirect jump (target from a register).
    IndirectJump,
    /// A direct call.
    DirectCall,
    /// An indirect call (e.g. virtual dispatch) — PHPWiki's pipeline-reset
    /// pathology in §VII-A comes from mispredicted indirect calls.
    IndirectCall,
    /// A function return.
    Return,
}

impl BranchKind {
    /// `true` for every kind except [`BranchKind::Conditional`].
    #[must_use]
    pub fn is_unconditional(self) -> bool {
        !matches!(self, BranchKind::Conditional)
    }

    /// `true` for calls and returns (the Fig. 13 `Call/Ret` history type).
    #[must_use]
    pub fn is_call_or_return(self) -> bool {
        matches!(self, BranchKind::DirectCall | BranchKind::IndirectCall | BranchKind::Return)
    }

    /// Compact numeric encoding used by the binary trace format.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            BranchKind::Conditional => 0,
            BranchKind::DirectJump => 1,
            BranchKind::IndirectJump => 2,
            BranchKind::DirectCall => 3,
            BranchKind::IndirectCall => 4,
            BranchKind::Return => 5,
        }
    }

    /// Decodes the binary encoding; `None` for out-of-range values.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => BranchKind::Conditional,
            1 => BranchKind::DirectJump,
            2 => BranchKind::IndirectJump,
            3 => BranchKind::DirectCall,
            4 => BranchKind::IndirectCall,
            5 => BranchKind::Return,
            _ => return None,
        })
    }

    /// All kinds, in encoding order.
    pub const ALL: [BranchKind; 6] = [
        BranchKind::Conditional,
        BranchKind::DirectJump,
        BranchKind::IndirectJump,
        BranchKind::DirectCall,
        BranchKind::IndirectCall,
        BranchKind::Return,
    ];
}

impl std::fmt::Display for BranchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BranchKind::Conditional => "cond",
            BranchKind::DirectJump => "jump",
            BranchKind::IndirectJump => "ijump",
            BranchKind::DirectCall => "call",
            BranchKind::IndirectCall => "icall",
            BranchKind::Return => "ret",
        };
        f.write_str(s)
    }
}

/// One retired branch, packed into a compact 20-byte layout.
///
/// Simulation sweeps hold millions of records per workload and stream
/// them once per (predictor × workload) grid cell, so record size directly
/// bounds trace-cache footprint and memory bandwidth. Splitting the two
/// addresses into `u32` halves drops the struct's alignment to 4, which
/// removes the 4 bytes of padding the naive `{u64, u64, u8, bool, u32}`
/// layout pays (24 → 20 bytes, −17% per trace).
///
/// Fields are accessed through methods ([`BranchRecord::pc`],
/// [`BranchRecord::taken`], …); construction goes through
/// [`BranchRecord::new`], [`BranchRecord::conditional`] or
/// [`BranchRecord::unconditional`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct BranchRecord {
    pc_lo: u32,
    pc_hi: u32,
    target_lo: u32,
    target_hi: u32,
    /// Bits 0..3: [`BranchKind`] encoding; bit 3: taken; bits 4..32:
    /// non-branch instruction count.
    meta: u32,
}

impl BranchRecord {
    /// Largest representable non-branch-instruction gap (28 bits). The
    /// synthetic generators emit single-digit means, and even ChampSim
    /// traces stay orders of magnitude below this.
    pub const MAX_NON_BRANCH_INSTS: u32 = (1 << 28) - 1;

    /// Creates a record from its logical fields.
    ///
    /// # Panics
    ///
    /// Panics if `non_branch_insts` exceeds
    /// [`BranchRecord::MAX_NON_BRANCH_INSTS`].
    #[must_use]
    pub fn new(pc: u64, target: u64, kind: BranchKind, taken: bool, non_branch_insts: u32) -> Self {
        assert!(
            non_branch_insts <= Self::MAX_NON_BRANCH_INSTS,
            "non_branch_insts {non_branch_insts} exceeds the 28-bit record field"
        );
        Self {
            pc_lo: pc as u32,
            pc_hi: (pc >> 32) as u32,
            target_lo: target as u32,
            target_hi: (target >> 32) as u32,
            meta: u32::from(kind.as_u8()) | (u32::from(taken) << 3) | (non_branch_insts << 4),
        }
    }

    /// Convenience constructor for a conditional branch.
    #[must_use]
    pub fn conditional(pc: u64, target: u64, taken: bool, non_branch_insts: u32) -> Self {
        Self::new(pc, target, BranchKind::Conditional, taken, non_branch_insts)
    }

    /// Convenience constructor for an unconditional branch of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`BranchKind::Conditional`].
    #[must_use]
    pub fn unconditional(pc: u64, target: u64, kind: BranchKind, non_branch_insts: u32) -> Self {
        assert!(kind.is_unconditional(), "use `conditional` for conditional branches");
        Self::new(pc, target, kind, true, non_branch_insts)
    }

    /// Address of the branch instruction.
    #[inline]
    #[must_use]
    pub fn pc(&self) -> u64 {
        u64::from(self.pc_lo) | (u64::from(self.pc_hi) << 32)
    }

    /// Address control transfers to when taken.
    #[inline]
    #[must_use]
    pub fn target(&self) -> u64 {
        u64::from(self.target_lo) | (u64::from(self.target_hi) << 32)
    }

    /// Control-flow class.
    #[inline]
    #[must_use]
    pub fn kind(&self) -> BranchKind {
        BranchKind::from_u8((self.meta & 0x7) as u8).expect("constructors validate the kind bits")
    }

    /// Resolved direction. Always `true` for unconditional kinds.
    #[inline]
    #[must_use]
    pub fn taken(&self) -> bool {
        self.meta & 0x8 != 0
    }

    /// Number of non-branch instructions retired since the previous branch
    /// (used for MPKI and fetch-bandwidth accounting).
    #[inline]
    #[must_use]
    pub fn non_branch_insts(&self) -> u32 {
        self.meta >> 4
    }

    /// Instructions this record accounts for (the branch itself plus the
    /// preceding non-branch instructions).
    #[inline]
    #[must_use]
    pub fn instructions(&self) -> u64 {
        u64::from(self.non_branch_insts()) + 1
    }

    /// The packed metadata word: bits 0..3 hold the [`BranchKind`]
    /// encoding, bit 3 the direction, bits 4..32 the non-branch
    /// instruction count. This is the word [`TraceSoa`] stores per record,
    /// so batch simulation loops can decode kind/direction/instructions
    /// from one dense `u32` stream.
    #[inline]
    #[must_use]
    pub fn packed_meta(&self) -> u32 {
        self.meta
    }
}

/// A structure-of-arrays view of a trace: parallel `pc` / `meta` columns.
///
/// The batch simulation backend streams every record once per grid cell,
/// touching only the branch address and the packed metadata word in its
/// hot decode (the `target` halves matter only for the unconditional
/// subset that reaches `update_history`). Splitting those two columns out
/// of the 20-byte array-of-structs layout means the decode loop reads 12
/// dense bytes per record instead of striding through 20, and the meta
/// column on its own (instruction accounting, kind tests) vectorizes.
///
/// Built once per trace on first use and cached inside [`Trace`] (see
/// [`Trace::soa`]), so a sweep that runs many predictors over one shared
/// trace pays the build cost once.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSoa {
    pcs: Vec<u64>,
    metas: Vec<u32>,
}

impl TraceSoa {
    /// Builds the column view from record storage.
    #[must_use]
    pub fn from_records(records: &[BranchRecord]) -> Self {
        Self {
            pcs: records.iter().map(BranchRecord::pc).collect(),
            metas: records.iter().map(BranchRecord::packed_meta).collect(),
        }
    }

    /// Number of records in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// `true` when the view holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// The branch-address column, parallel to [`TraceSoa::metas`].
    #[must_use]
    pub fn pcs(&self) -> &[u64] {
        &self.pcs
    }

    /// The packed-metadata column ([`BranchRecord::packed_meta`] per
    /// record), parallel to [`TraceSoa::pcs`].
    #[must_use]
    pub fn metas(&self) -> &[u32] {
        &self.metas
    }

    /// Heap bytes held by the two columns.
    #[must_use]
    pub fn memory_footprint(&self) -> usize {
        self.pcs.capacity() * std::mem::size_of::<u64>()
            + self.metas.capacity() * std::mem::size_of::<u32>()
    }
}

impl std::fmt::Debug for BranchRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BranchRecord")
            .field("pc", &format_args!("{:#x}", self.pc()))
            .field("target", &format_args!("{:#x}", self.target()))
            .field("kind", &self.kind())
            .field("taken", &self.taken())
            .field("non_branch_insts", &self.non_branch_insts())
            .finish()
    }
}

/// An in-memory branch trace.
///
/// # Example
///
/// ```
/// use llbp_trace::record::{BranchKind, BranchRecord, Trace};
///
/// let mut t = Trace::new("demo");
/// t.push(BranchRecord::conditional(0x1000, 0x1040, true, 3));
/// t.push(BranchRecord::unconditional(0x1044, 0x2000, BranchKind::DirectCall, 2));
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.instructions(), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    name: String,
    records: Vec<BranchRecord>,
    instructions: u64,
    /// Lazily built column view, shared by reference so every simulation
    /// of this trace reuses one build (see [`Trace::soa`]). Not part of
    /// the trace's identity: equality and serialization ignore it.
    soa: std::sync::OnceLock<std::sync::Arc<TraceSoa>>,
}

/// Equality is over the logical trace (name + records); the lazily built
/// SoA cache is derived data and excluded.
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.instructions == other.instructions
            && self.records == other.records
    }
}

impl Eq for Trace {}

impl Trace {
    /// Creates an empty trace with a human-readable name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            records: Vec::new(),
            instructions: 0,
            soa: std::sync::OnceLock::new(),
        }
    }

    /// Creates a trace from pre-built records.
    #[must_use]
    pub fn from_records(name: impl Into<String>, records: Vec<BranchRecord>) -> Self {
        let instructions = records.iter().map(BranchRecord::instructions).sum();
        Self { name: name.into(), records, instructions, soa: std::sync::OnceLock::new() }
    }

    /// The trace name (workload identifier).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one record, invalidating any cached column view.
    pub fn push(&mut self, record: BranchRecord) {
        self.instructions += record.instructions();
        self.records.push(record);
        self.soa = std::sync::OnceLock::new();
    }

    /// Number of branch records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total retired instructions represented (branches + non-branches).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The records in program order.
    #[must_use]
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Iterates over the records in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, BranchRecord> {
        self.records.iter()
    }

    /// Computes summary statistics (kind mix, static working set, …).
    #[must_use]
    pub fn stats(&self) -> crate::stats::TraceStats {
        crate::stats::TraceStats::from_trace(self)
    }

    /// The structure-of-arrays view of this trace, built on first use and
    /// cached so that every grid cell simulating this trace shares one
    /// build. Mutating the trace ([`Trace::push`]) invalidates the cache.
    #[must_use]
    pub fn soa(&self) -> std::sync::Arc<TraceSoa> {
        std::sync::Arc::clone(
            self.soa.get_or_init(|| std::sync::Arc::new(TraceSoa::from_records(&self.records))),
        )
    }

    /// Heap bytes held by this trace (record storage, the name buffer,
    /// and the SoA column cache when it has been built).
    ///
    /// The sweep engine's trace cache uses this to report how much memory
    /// sharing a trace across grid cells saves versus regenerating it.
    #[must_use]
    pub fn memory_footprint(&self) -> usize {
        self.records.capacity() * std::mem::size_of::<BranchRecord>()
            + self.name.capacity()
            + self.soa.get().map_or(0, |soa| soa.memory_footprint())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a BranchRecord;
    type IntoIter = std::slice::Iter<'a, BranchRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl Extend<BranchRecord> for Trace {
    fn extend<T: IntoIterator<Item = BranchRecord>>(&mut self, iter: T) {
        for r in iter {
            self.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_u8() {
        for kind in BranchKind::ALL {
            assert_eq!(BranchKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(BranchKind::from_u8(99), None);
    }

    #[test]
    fn kind_classification() {
        assert!(!BranchKind::Conditional.is_unconditional());
        assert!(BranchKind::Return.is_unconditional());
        assert!(BranchKind::Return.is_call_or_return());
        assert!(!BranchKind::DirectJump.is_call_or_return());
        assert!(BranchKind::IndirectCall.is_call_or_return());
    }

    #[test]
    fn trace_counts_instructions() {
        let mut t = Trace::new("t");
        t.push(BranchRecord::conditional(0, 4, false, 9));
        t.push(BranchRecord::conditional(8, 12, true, 0));
        assert_eq!(t.instructions(), 11);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn from_records_matches_push() {
        let records = vec![
            BranchRecord::conditional(0, 4, false, 2),
            BranchRecord::unconditional(8, 100, BranchKind::Return, 1),
        ];
        let a = Trace::from_records("a", records.clone());
        let mut b = Trace::new("b");
        b.extend(records);
        assert_eq!(a.instructions(), b.instructions());
        assert_eq!(a.records(), b.records());
    }

    #[test]
    #[should_panic(expected = "use `conditional`")]
    fn unconditional_ctor_rejects_conditional() {
        let _ = BranchRecord::unconditional(0, 4, BranchKind::Conditional, 0);
    }

    #[test]
    fn record_layout_is_compact() {
        // The packed layout is load-bearing for trace-cache footprint:
        // 5 × u32, alignment 4, no padding. A regression to the naive
        // layout (24 bytes) should fail loudly here.
        assert_eq!(std::mem::size_of::<BranchRecord>(), 20);
        assert_eq!(std::mem::align_of::<BranchRecord>(), 4);
    }

    #[test]
    fn record_fields_roundtrip() {
        let r = BranchRecord::new(
            0xdead_beef_1234_5678,
            0xcafe_f00d_8765_4321,
            BranchKind::IndirectCall,
            true,
            BranchRecord::MAX_NON_BRANCH_INSTS,
        );
        assert_eq!(r.pc(), 0xdead_beef_1234_5678);
        assert_eq!(r.target(), 0xcafe_f00d_8765_4321);
        assert_eq!(r.kind(), BranchKind::IndirectCall);
        assert!(r.taken());
        assert_eq!(r.non_branch_insts(), BranchRecord::MAX_NON_BRANCH_INSTS);
    }

    #[test]
    #[should_panic(expected = "28-bit record field")]
    fn oversized_gap_rejected() {
        let _ = BranchRecord::conditional(0, 4, true, BranchRecord::MAX_NON_BRANCH_INSTS + 1);
    }

    #[test]
    fn soa_columns_mirror_records() {
        let mut t = Trace::new("soa");
        t.push(BranchRecord::conditional(0x1000, 0x1040, true, 3));
        t.push(BranchRecord::unconditional(0x2000, 0x3000, BranchKind::Return, 7));
        let soa = t.soa();
        assert_eq!(soa.len(), t.len());
        for (i, r) in t.iter().enumerate() {
            assert_eq!(soa.pcs()[i], r.pc());
            assert_eq!(soa.metas()[i], r.packed_meta());
            // The packed word decodes to the same logical fields.
            let meta = soa.metas()[i];
            assert_eq!(BranchKind::from_u8((meta & 0x7) as u8), Some(r.kind()));
            assert_eq!(meta & 0x8 != 0, r.taken());
            assert_eq!(u64::from(meta >> 4) + 1, r.instructions());
        }
    }

    #[test]
    fn soa_cache_is_shared_and_invalidated_by_push() {
        let mut t = Trace::new("cache");
        t.push(BranchRecord::conditional(0, 4, true, 1));
        let a = t.soa();
        let b = t.soa();
        assert!(std::sync::Arc::ptr_eq(&a, &b), "repeated soa() calls must share one build");
        t.push(BranchRecord::conditional(8, 12, false, 1));
        let c = t.soa();
        assert_eq!(c.len(), 2, "push must invalidate the cached view");
        // Equality ignores the cache: a clone without a built view
        // compares equal to the original with one.
        let fresh = Trace::from_records(
            "cache",
            vec![
                BranchRecord::conditional(0, 4, true, 1),
                BranchRecord::conditional(8, 12, false, 1),
            ],
        );
        assert_eq!(t, fresh);
    }

    #[test]
    fn memory_footprint_tracks_capacity() {
        let mut t = Trace::new("footprint");
        let before = t.memory_footprint();
        for i in 0..1000 {
            t.push(BranchRecord::conditional(i * 4, i * 4 + 8, true, 1));
        }
        let after = t.memory_footprint();
        assert!(after >= before + 1000 * std::mem::size_of::<BranchRecord>());
    }
}
