//! Branch trace records.
//!
//! A trace is a sequence of *retired branch instructions* in program order,
//! each annotated with the number of non-branch instructions preceding it
//! (so simulators can reconstruct instruction counts and fetch traffic
//! without storing every instruction, the same trick ChampSim traces use).

/// The control-flow class of a branch instruction.
///
/// LLBP builds its context IDs from *unconditional* branches (direct and
/// indirect jumps, calls, and returns), and the Fig. 13 sensitivity study
/// compares against call/return-only and all-branch histories, so the trace
/// must distinguish these classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchKind {
    /// A conditional direct branch — the only kind the direction predictors
    /// under study predict.
    Conditional,
    /// An unconditional direct jump.
    DirectJump,
    /// An unconditional indirect jump (target from a register).
    IndirectJump,
    /// A direct call.
    DirectCall,
    /// An indirect call (e.g. virtual dispatch) — PHPWiki's pipeline-reset
    /// pathology in §VII-A comes from mispredicted indirect calls.
    IndirectCall,
    /// A function return.
    Return,
}

impl BranchKind {
    /// `true` for every kind except [`BranchKind::Conditional`].
    #[must_use]
    pub fn is_unconditional(self) -> bool {
        !matches!(self, BranchKind::Conditional)
    }

    /// `true` for calls and returns (the Fig. 13 `Call/Ret` history type).
    #[must_use]
    pub fn is_call_or_return(self) -> bool {
        matches!(self, BranchKind::DirectCall | BranchKind::IndirectCall | BranchKind::Return)
    }

    /// Compact numeric encoding used by the binary trace format.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            BranchKind::Conditional => 0,
            BranchKind::DirectJump => 1,
            BranchKind::IndirectJump => 2,
            BranchKind::DirectCall => 3,
            BranchKind::IndirectCall => 4,
            BranchKind::Return => 5,
        }
    }

    /// Decodes the binary encoding; `None` for out-of-range values.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => BranchKind::Conditional,
            1 => BranchKind::DirectJump,
            2 => BranchKind::IndirectJump,
            3 => BranchKind::DirectCall,
            4 => BranchKind::IndirectCall,
            5 => BranchKind::Return,
            _ => return None,
        })
    }

    /// All kinds, in encoding order.
    pub const ALL: [BranchKind; 6] = [
        BranchKind::Conditional,
        BranchKind::DirectJump,
        BranchKind::IndirectJump,
        BranchKind::DirectCall,
        BranchKind::IndirectCall,
        BranchKind::Return,
    ];
}

impl std::fmt::Display for BranchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BranchKind::Conditional => "cond",
            BranchKind::DirectJump => "jump",
            BranchKind::IndirectJump => "ijump",
            BranchKind::DirectCall => "call",
            BranchKind::IndirectCall => "icall",
            BranchKind::Return => "ret",
        };
        f.write_str(s)
    }
}

/// One retired branch, packed into a compact 20-byte layout.
///
/// Simulation sweeps hold millions of records per workload and stream
/// them once per (predictor × workload) grid cell, so record size directly
/// bounds trace-cache footprint and memory bandwidth. Splitting the two
/// addresses into `u32` halves drops the struct's alignment to 4, which
/// removes the 4 bytes of padding the naive `{u64, u64, u8, bool, u32}`
/// layout pays (24 → 20 bytes, −17% per trace).
///
/// Fields are accessed through methods ([`BranchRecord::pc`],
/// [`BranchRecord::taken`], …); construction goes through
/// [`BranchRecord::new`], [`BranchRecord::conditional`] or
/// [`BranchRecord::unconditional`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct BranchRecord {
    pc_lo: u32,
    pc_hi: u32,
    target_lo: u32,
    target_hi: u32,
    /// Bits 0..3: [`BranchKind`] encoding; bit 3: taken; bits 4..32:
    /// non-branch instruction count.
    meta: u32,
}

impl BranchRecord {
    /// Largest representable non-branch-instruction gap (28 bits). The
    /// synthetic generators emit single-digit means, and even ChampSim
    /// traces stay orders of magnitude below this.
    pub const MAX_NON_BRANCH_INSTS: u32 = (1 << 28) - 1;

    /// Creates a record from its logical fields.
    ///
    /// # Panics
    ///
    /// Panics if `non_branch_insts` exceeds
    /// [`BranchRecord::MAX_NON_BRANCH_INSTS`].
    #[must_use]
    pub fn new(pc: u64, target: u64, kind: BranchKind, taken: bool, non_branch_insts: u32) -> Self {
        assert!(
            non_branch_insts <= Self::MAX_NON_BRANCH_INSTS,
            "non_branch_insts {non_branch_insts} exceeds the 28-bit record field"
        );
        Self {
            pc_lo: pc as u32,
            pc_hi: (pc >> 32) as u32,
            target_lo: target as u32,
            target_hi: (target >> 32) as u32,
            meta: u32::from(kind.as_u8()) | (u32::from(taken) << 3) | (non_branch_insts << 4),
        }
    }

    /// Convenience constructor for a conditional branch.
    #[must_use]
    pub fn conditional(pc: u64, target: u64, taken: bool, non_branch_insts: u32) -> Self {
        Self::new(pc, target, BranchKind::Conditional, taken, non_branch_insts)
    }

    /// Convenience constructor for an unconditional branch of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`BranchKind::Conditional`].
    #[must_use]
    pub fn unconditional(pc: u64, target: u64, kind: BranchKind, non_branch_insts: u32) -> Self {
        assert!(kind.is_unconditional(), "use `conditional` for conditional branches");
        Self::new(pc, target, kind, true, non_branch_insts)
    }

    /// Address of the branch instruction.
    #[inline]
    #[must_use]
    pub fn pc(&self) -> u64 {
        u64::from(self.pc_lo) | (u64::from(self.pc_hi) << 32)
    }

    /// Address control transfers to when taken.
    #[inline]
    #[must_use]
    pub fn target(&self) -> u64 {
        u64::from(self.target_lo) | (u64::from(self.target_hi) << 32)
    }

    /// Control-flow class.
    #[inline]
    #[must_use]
    pub fn kind(&self) -> BranchKind {
        BranchKind::from_u8((self.meta & 0x7) as u8).expect("constructors validate the kind bits")
    }

    /// Resolved direction. Always `true` for unconditional kinds.
    #[inline]
    #[must_use]
    pub fn taken(&self) -> bool {
        self.meta & 0x8 != 0
    }

    /// Number of non-branch instructions retired since the previous branch
    /// (used for MPKI and fetch-bandwidth accounting).
    #[inline]
    #[must_use]
    pub fn non_branch_insts(&self) -> u32 {
        self.meta >> 4
    }

    /// Instructions this record accounts for (the branch itself plus the
    /// preceding non-branch instructions).
    #[inline]
    #[must_use]
    pub fn instructions(&self) -> u64 {
        u64::from(self.non_branch_insts()) + 1
    }
}

impl std::fmt::Debug for BranchRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BranchRecord")
            .field("pc", &format_args!("{:#x}", self.pc()))
            .field("target", &format_args!("{:#x}", self.target()))
            .field("kind", &self.kind())
            .field("taken", &self.taken())
            .field("non_branch_insts", &self.non_branch_insts())
            .finish()
    }
}

/// An in-memory branch trace.
///
/// # Example
///
/// ```
/// use llbp_trace::record::{BranchKind, BranchRecord, Trace};
///
/// let mut t = Trace::new("demo");
/// t.push(BranchRecord::conditional(0x1000, 0x1040, true, 3));
/// t.push(BranchRecord::unconditional(0x1044, 0x2000, BranchKind::DirectCall, 2));
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.instructions(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    name: String,
    records: Vec<BranchRecord>,
    instructions: u64,
}

impl Trace {
    /// Creates an empty trace with a human-readable name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), records: Vec::new(), instructions: 0 }
    }

    /// Creates a trace from pre-built records.
    #[must_use]
    pub fn from_records(name: impl Into<String>, records: Vec<BranchRecord>) -> Self {
        let instructions = records.iter().map(BranchRecord::instructions).sum();
        Self { name: name.into(), records, instructions }
    }

    /// The trace name (workload identifier).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one record.
    pub fn push(&mut self, record: BranchRecord) {
        self.instructions += record.instructions();
        self.records.push(record);
    }

    /// Number of branch records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total retired instructions represented (branches + non-branches).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The records in program order.
    #[must_use]
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Iterates over the records in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, BranchRecord> {
        self.records.iter()
    }

    /// Computes summary statistics (kind mix, static working set, …).
    #[must_use]
    pub fn stats(&self) -> crate::stats::TraceStats {
        crate::stats::TraceStats::from_trace(self)
    }

    /// Heap bytes held by this trace (record storage plus the name buffer).
    ///
    /// The sweep engine's trace cache uses this to report how much memory
    /// sharing a trace across grid cells saves versus regenerating it.
    #[must_use]
    pub fn memory_footprint(&self) -> usize {
        self.records.capacity() * std::mem::size_of::<BranchRecord>() + self.name.capacity()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a BranchRecord;
    type IntoIter = std::slice::Iter<'a, BranchRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl Extend<BranchRecord> for Trace {
    fn extend<T: IntoIterator<Item = BranchRecord>>(&mut self, iter: T) {
        for r in iter {
            self.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_u8() {
        for kind in BranchKind::ALL {
            assert_eq!(BranchKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(BranchKind::from_u8(99), None);
    }

    #[test]
    fn kind_classification() {
        assert!(!BranchKind::Conditional.is_unconditional());
        assert!(BranchKind::Return.is_unconditional());
        assert!(BranchKind::Return.is_call_or_return());
        assert!(!BranchKind::DirectJump.is_call_or_return());
        assert!(BranchKind::IndirectCall.is_call_or_return());
    }

    #[test]
    fn trace_counts_instructions() {
        let mut t = Trace::new("t");
        t.push(BranchRecord::conditional(0, 4, false, 9));
        t.push(BranchRecord::conditional(8, 12, true, 0));
        assert_eq!(t.instructions(), 11);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn from_records_matches_push() {
        let records = vec![
            BranchRecord::conditional(0, 4, false, 2),
            BranchRecord::unconditional(8, 100, BranchKind::Return, 1),
        ];
        let a = Trace::from_records("a", records.clone());
        let mut b = Trace::new("b");
        b.extend(records);
        assert_eq!(a.instructions(), b.instructions());
        assert_eq!(a.records(), b.records());
    }

    #[test]
    #[should_panic(expected = "use `conditional`")]
    fn unconditional_ctor_rejects_conditional() {
        let _ = BranchRecord::unconditional(0, 4, BranchKind::Conditional, 0);
    }

    #[test]
    fn record_layout_is_compact() {
        // The packed layout is load-bearing for trace-cache footprint:
        // 5 × u32, alignment 4, no padding. A regression to the naive
        // layout (24 bytes) should fail loudly here.
        assert_eq!(std::mem::size_of::<BranchRecord>(), 20);
        assert_eq!(std::mem::align_of::<BranchRecord>(), 4);
    }

    #[test]
    fn record_fields_roundtrip() {
        let r = BranchRecord::new(
            0xdead_beef_1234_5678,
            0xcafe_f00d_8765_4321,
            BranchKind::IndirectCall,
            true,
            BranchRecord::MAX_NON_BRANCH_INSTS,
        );
        assert_eq!(r.pc(), 0xdead_beef_1234_5678);
        assert_eq!(r.target(), 0xcafe_f00d_8765_4321);
        assert_eq!(r.kind(), BranchKind::IndirectCall);
        assert!(r.taken());
        assert_eq!(r.non_branch_insts(), BranchRecord::MAX_NON_BRANCH_INSTS);
    }

    #[test]
    #[should_panic(expected = "28-bit record field")]
    fn oversized_gap_rejected() {
        let _ = BranchRecord::conditional(0, 4, true, BranchRecord::MAX_NON_BRANCH_INSTS + 1);
    }

    #[test]
    fn memory_footprint_tracks_capacity() {
        let mut t = Trace::new("footprint");
        let before = t.memory_footprint();
        for i in 0..1000 {
            t.push(BranchRecord::conditional(i * 4, i * 4 + 8, true, 1));
        }
        let after = t.memory_footprint();
        assert!(after >= before + 1000 * std::mem::size_of::<BranchRecord>());
    }
}
