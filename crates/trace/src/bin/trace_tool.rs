//! `trace_tool` — generate, inspect and convert branch traces.
//!
//! ```text
//! trace_tool gen  <workload> <branches> <out.llbt>   generate a synthetic trace
//! trace_tool info <file.llbt>                        print summary statistics
//! trace_tool head <file.llbt> [count]                print the first records
//! trace_tool csv  <file.llbt> <out.csv>              export as CSV
//! trace_tool characterize <file.llbt>                per-branch entropy/working-set report
//! trace_tool characterize all|<workload> [branches]  same, over synthetic workloads
//! ```

use llbp_trace::{
    read_trace, write_trace, BranchKind, Characterization, Trace, Workload, WorkloadSpec,
};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("head") => cmd_head(&args[1..]),
        Some("csv") => cmd_csv(&args[1..]),
        Some("characterize") => cmd_characterize(&args[1..]),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> String {
    "usage: trace_tool gen <workload> <branches> <out.llbt>\n\
            \x20      trace_tool info <file.llbt>\n\
            \x20      trace_tool head <file.llbt> [count]\n\
            \x20      trace_tool csv <file.llbt> <out.csv>\n\
            \x20      trace_tool characterize <file.llbt>\n\
            \x20      trace_tool characterize all|<workload> [branches]"
        .into()
}

fn load(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    read_trace(BufReader::new(file)).map_err(|e| format!("read {path}: {e}"))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let [workload, branches, out] = args else {
        return Err(usage());
    };
    let workload: Workload = workload.parse()?;
    let branches: usize = branches.parse().map_err(|e| format!("bad count: {e}"))?;
    let trace = WorkloadSpec::named(workload).with_branches(branches).generate();
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    write_trace(BufWriter::new(file), &trace).map_err(|e| e.to_string())?;
    println!("wrote {} records ({} instructions) to {out}", trace.len(), trace.instructions());
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err(usage());
    };
    let trace = load(path)?;
    let s = trace.stats();
    println!("name:                {}", trace.name());
    println!("records:             {}", trace.len());
    println!("instructions:        {}", trace.instructions());
    println!("conditional:         {} ({} static)", s.conditional, s.static_conditional);
    println!("unconditional:       {} ({} static)", s.unconditional, s.static_unconditional);
    for kind in BranchKind::ALL {
        println!("  {:6}             {}", kind.to_string(), s.count(kind));
    }
    if let Some(r) = s.cond_per_uncond() {
        println!("cond:uncond ratio:   {r:.2}");
    }
    if let Some(t) = s.taken_rate() {
        println!("taken rate:          {t:.3}");
    }
    Ok(())
}

fn cmd_head(args: &[String]) -> Result<(), String> {
    let (path, count) = match args {
        [path] => (path, 20usize),
        [path, n] => (path, n.parse().map_err(|e| format!("bad count: {e}"))?),
        _ => return Err(usage()),
    };
    let trace = load(path)?;
    println!("{:>4}  {:18} {:18} {:6} {:5} {:>5}", "#", "pc", "target", "kind", "taken", "gap");
    for (i, r) in trace.iter().take(count).enumerate() {
        println!(
            "{:>4}  {:#018x} {:#018x} {:6} {:5} {:>5}",
            i,
            r.pc(),
            r.target(),
            r.kind().to_string(),
            r.taken(),
            r.non_branch_insts()
        );
    }
    Ok(())
}

fn cmd_csv(args: &[String]) -> Result<(), String> {
    let [path, out] = args else {
        return Err(usage());
    };
    let trace = load(path)?;
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    let mut w = BufWriter::new(file);
    writeln!(w, "pc,target,kind,taken,non_branch_insts").map_err(|e| e.to_string())?;
    for r in &trace {
        writeln!(
            w,
            "{:#x},{:#x},{},{},{}",
            r.pc(),
            r.target(),
            r.kind(),
            u8::from(r.taken()),
            r.non_branch_insts()
        )
        .map_err(|e| e.to_string())?;
    }
    println!("wrote {} rows to {out}", trace.len());
    Ok(())
}

/// Default trace length for `characterize` over synthetic workloads.
const CHARACTERIZE_BRANCHES: usize = 150_000;

fn cmd_characterize(args: &[String]) -> Result<(), String> {
    let (target, branches) = match args {
        [target] => (target.as_str(), CHARACTERIZE_BRANCHES),
        [target, n] => (target.as_str(), n.parse().map_err(|e| format!("bad count: {e}"))?),
        _ => return Err(usage()),
    };
    if target == "all" {
        characterize_workloads(&Workload::ALL, branches);
        return Ok(());
    }
    if let Ok(workload) = target.parse::<Workload>() {
        characterize_workloads(&[workload], branches);
        return Ok(());
    }
    // Not a workload name: treat it as a trace file.
    let trace = load(target)?;
    characterize_one(&trace);
    Ok(())
}

/// The per-workload characterization table (EXPERIMENTS.md §trace
/// characterization is pasted from this output).
fn characterize_workloads(workloads: &[Workload], branches: usize) {
    println!("| workload | cond branches | static | ws 90% | ws 99% | entropy | wild | taken |");
    println!("|---|---|---|---|---|---|---|---|");
    for &w in workloads {
        let trace = WorkloadSpec::named(w).with_branches(branches).generate();
        let c = Characterization::from_trace(&trace);
        let taken: u64 = c.branches.iter().map(|b| b.taken).sum();
        println!(
            "| {} | {} | {} | {} | {} | {:.3} | {} | {:.3} |",
            w,
            c.conditional,
            c.branches.len(),
            c.working_set(0.90),
            c.working_set(0.99),
            c.weighted_entropy(),
            c.wild_branches(),
            if c.conditional == 0 { 0.0 } else { taken as f64 / c.conditional as f64 },
        );
    }
}

fn characterize_one(trace: &Trace) {
    let c = Characterization::from_trace(trace);
    println!("name:              {}", trace.name());
    println!("cond branches:     {}", c.conditional);
    println!("static cond:       {}", c.branches.len());
    println!("working set 90%:   {}", c.working_set(0.90));
    println!("working set 99%:   {}", c.working_set(0.99));
    println!("weighted entropy:  {:.3} bits", c.weighted_entropy());
    println!("wild branches:     {}", c.wild_branches());
    println!();
    println!("{:>4}  {:18} {:>10} {:>7} {:>8}", "#", "pc", "execs", "taken", "entropy");
    for (i, b) in c.branches.iter().take(20).enumerate() {
        println!(
            "{:>4}  {:#018x} {:>10} {:>7.3} {:>8.3}",
            i,
            b.pc,
            b.executions,
            b.taken_rate(),
            b.entropy()
        );
    }
}
