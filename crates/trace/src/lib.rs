//! Branch traces: record types, binary IO, statistics, and synthetic
//! server-workload generation.
//!
//! The LLBP paper evaluates on instruction traces collected with gem5 from
//! server applications plus Google production traces. Neither is available
//! here, so this crate provides a *synthetic workload generator*
//! ([`synth`]) that reproduces the statistical structure those traces
//! exhibit — large static branch working sets, context-dependent
//! hard-to-predict branches reached through many distinct call chains, and
//! an ≈3.9:1 conditional-to-unconditional branch ratio — so the predictors
//! under study exercise the same code paths. See `DESIGN.md` §3 for the
//! substitution rationale.
//!
//! # Example
//!
//! ```
//! use llbp_trace::{Workload, WorkloadSpec};
//!
//! let trace = WorkloadSpec::named(Workload::Tomcat)
//!     .with_branches(5_000)
//!     .generate();
//! assert_eq!(trace.len(), 5_000);
//! let stats = trace.stats();
//! assert!(stats.conditional > 0 && stats.unconditional > 0);
//! ```

pub mod fingerprint;
pub mod io;
pub mod record;
pub mod stats;
pub mod synth;

pub use fingerprint::{Fingerprint, StableHasher};
pub use io::{read_trace, write_trace, TraceIoError};
pub use record::{BranchKind, BranchRecord, Trace, TraceSoa};
pub use stats::{BranchCharacter, Characterization, TraceStats};
pub use synth::{NoSink, ProgressSink, Workload, WorkloadParams, WorkloadSpec, GEN_POLL_INTERVAL};
