//! Trace summary statistics and per-branch characterization.

use crate::record::{BranchKind, Trace};
use bputil::hash::{FastHashMap, FastHashSet};

/// Summary statistics of a branch trace, mirroring the characterisation
/// numbers the paper reports in §IV-2 (e.g. the ≈3.89 conditional branches
/// per unconditional branch).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceStats {
    /// Dynamic conditional branch count.
    pub conditional: u64,
    /// Dynamic unconditional branch count (all kinds).
    pub unconditional: u64,
    /// Dynamic count per kind, in [`BranchKind::ALL`] order.
    pub per_kind: [u64; 6],
    /// Taken conditional branches.
    pub conditional_taken: u64,
    /// Total instructions (branches plus non-branches).
    pub instructions: u64,
    /// Number of distinct conditional branch PCs (the static working set).
    pub static_conditional: usize,
    /// Number of distinct unconditional branch PCs.
    pub static_unconditional: usize,
}

impl TraceStats {
    /// Computes statistics over `trace`.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        let mut s = TraceStats { instructions: trace.instructions(), ..Default::default() };
        let mut cond_pcs: FastHashSet<u64> = FastHashSet::default();
        let mut uncond_pcs: FastHashSet<u64> = FastHashSet::default();
        for r in trace {
            s.per_kind[r.kind().as_u8() as usize] += 1;
            if r.kind() == BranchKind::Conditional {
                s.conditional += 1;
                s.conditional_taken += u64::from(r.taken());
                cond_pcs.insert(r.pc());
            } else {
                s.unconditional += 1;
                uncond_pcs.insert(r.pc());
            }
        }
        s.static_conditional = cond_pcs.len();
        s.static_unconditional = uncond_pcs.len();
        s
    }

    /// Dynamic conditional-to-unconditional ratio (`None` when the trace
    /// has no unconditional branches).
    #[must_use]
    pub fn cond_per_uncond(&self) -> Option<f64> {
        if self.unconditional == 0 {
            None
        } else {
            Some(self.conditional as f64 / self.unconditional as f64)
        }
    }

    /// Fraction of conditional branches that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> Option<f64> {
        if self.conditional == 0 {
            None
        } else {
            Some(self.conditional_taken as f64 / self.conditional as f64)
        }
    }

    /// Dynamic count for one branch kind.
    #[must_use]
    pub fn count(&self, kind: BranchKind) -> u64 {
        self.per_kind[kind.as_u8() as usize]
    }
}

/// One static conditional branch's dynamic behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchCharacter {
    /// The branch's program counter.
    pub pc: u64,
    /// Dynamic executions.
    pub executions: u64,
    /// Taken executions.
    pub taken: u64,
}

impl BranchCharacter {
    /// Fraction of executions that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.taken as f64 / self.executions as f64
        }
    }

    /// The branch's direction entropy in bits:
    /// `H(p) = -p·log2(p) - (1-p)·log2(1-p)` for taken rate `p`.
    /// 0 for a monotone branch, 1 for a coin flip — the paper's "wild"
    /// branches (the ones a larger predictor actually helps) sit near 1.
    #[must_use]
    pub fn entropy(&self) -> f64 {
        let p = self.taken_rate();
        if p <= 0.0 || p >= 1.0 {
            return 0.0;
        }
        -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
    }
}

/// Entropy threshold above which [`Characterization::wild_branches`]
/// counts a branch as wild (taken rate roughly within 30–70%).
pub const WILD_ENTROPY: f64 = 0.88;

/// Per-branch characterization of a trace's conditional branches, the
/// working-set / predictability analysis behind `trace_tool
/// characterize`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Characterization {
    /// Static conditional branches, hottest first (ties toward lower pc,
    /// so reports are deterministic).
    pub branches: Vec<BranchCharacter>,
    /// Dynamic conditional executions across all branches.
    pub conditional: u64,
}

impl Characterization {
    /// Characterizes `trace`'s conditional branches.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        let mut map: FastHashMap<u64, (u64, u64)> = FastHashMap::default();
        let mut conditional = 0u64;
        for r in trace {
            if r.kind() != BranchKind::Conditional {
                continue;
            }
            conditional += 1;
            let entry = map.entry(r.pc()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += u64::from(r.taken());
        }
        let mut branches: Vec<BranchCharacter> = map
            .into_iter()
            .map(|(pc, (executions, taken))| BranchCharacter { pc, executions, taken })
            .collect();
        branches.sort_unstable_by(|a, b| b.executions.cmp(&a.executions).then(a.pc.cmp(&b.pc)));
        Self { branches, conditional }
    }

    /// Mean direction entropy weighted by execution count — the expected
    /// unpredictability of the *next* conditional branch, in bits.
    #[must_use]
    pub fn weighted_entropy(&self) -> f64 {
        if self.conditional == 0 {
            return 0.0;
        }
        self.branches.iter().map(|b| b.entropy() * b.executions as f64).sum::<f64>()
            / self.conditional as f64
    }

    /// Static branches whose entropy exceeds [`WILD_ENTROPY`].
    #[must_use]
    pub fn wild_branches(&self) -> usize {
        self.branches.iter().filter(|b| b.entropy() > WILD_ENTROPY).count()
    }

    /// How many of the hottest static branches cover `fraction` of the
    /// dynamic executions — the conditional working set the paper's §III
    /// argues exceeds on-chip capacity for data-center workloads.
    #[must_use]
    pub fn working_set(&self, fraction: f64) -> usize {
        let goal = (self.conditional as f64 * fraction).ceil() as u64;
        let mut covered = 0u64;
        for (i, b) in self.branches.iter().enumerate() {
            covered += b.executions;
            if covered >= goal {
                return i + 1;
            }
        }
        self.branches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchRecord;

    #[test]
    fn stats_count_kinds_and_statics() {
        let mut t = Trace::new("t");
        t.push(BranchRecord::conditional(0x10, 0x20, true, 1));
        t.push(BranchRecord::conditional(0x10, 0x20, false, 1));
        t.push(BranchRecord::conditional(0x30, 0x40, true, 1));
        t.push(BranchRecord::unconditional(0x50, 0x60, BranchKind::Return, 2));
        let s = t.stats();
        assert_eq!(s.conditional, 3);
        assert_eq!(s.unconditional, 1);
        assert_eq!(s.static_conditional, 2);
        assert_eq!(s.static_unconditional, 1);
        assert_eq!(s.conditional_taken, 2);
        assert_eq!(s.count(BranchKind::Return), 1);
        assert_eq!(s.cond_per_uncond(), Some(3.0));
        assert!((s.taken_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_stats() {
        let s = Trace::new("e").stats();
        assert_eq!(s.cond_per_uncond(), None);
        assert_eq!(s.taken_rate(), None);
        assert_eq!(s.instructions, 0);
    }

    #[test]
    fn characterization_ranks_and_measures_branches() {
        let mut t = Trace::new("c");
        // 0x10: 4 executions, alternating — a coin flip (entropy 1).
        for i in 0..4 {
            t.push(BranchRecord::conditional(0x10, 0x20, i % 2 == 0, 1));
        }
        // 0x30: 2 executions, always taken — perfectly predictable.
        for _ in 0..2 {
            t.push(BranchRecord::conditional(0x30, 0x40, true, 1));
        }
        // Non-conditional records are ignored.
        t.push(BranchRecord::unconditional(0x50, 0x60, BranchKind::Return, 2));
        let c = Characterization::from_trace(&t);
        assert_eq!(c.conditional, 6);
        assert_eq!(c.branches.len(), 2);
        assert_eq!(c.branches[0].pc, 0x10, "hottest first");
        assert!((c.branches[0].entropy() - 1.0).abs() < 1e-12);
        assert_eq!(c.branches[1].entropy(), 0.0);
        assert!((c.weighted_entropy() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(c.wild_branches(), 1);
        // 0x10 alone covers 4/6 ≈ 67%; 90% needs both branches.
        assert_eq!(c.working_set(0.5), 1);
        assert_eq!(c.working_set(0.9), 2);
    }

    #[test]
    fn characterization_of_empty_trace_is_empty() {
        let c = Characterization::from_trace(&Trace::new("e"));
        assert_eq!(c.conditional, 0);
        assert_eq!(c.weighted_entropy(), 0.0);
        assert_eq!(c.working_set(0.9), 0);
    }
}
