//! Trace summary statistics.

use crate::record::{BranchKind, Trace};
use bputil::hash::FastHashSet;

/// Summary statistics of a branch trace, mirroring the characterisation
/// numbers the paper reports in §IV-2 (e.g. the ≈3.89 conditional branches
/// per unconditional branch).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceStats {
    /// Dynamic conditional branch count.
    pub conditional: u64,
    /// Dynamic unconditional branch count (all kinds).
    pub unconditional: u64,
    /// Dynamic count per kind, in [`BranchKind::ALL`] order.
    pub per_kind: [u64; 6],
    /// Taken conditional branches.
    pub conditional_taken: u64,
    /// Total instructions (branches plus non-branches).
    pub instructions: u64,
    /// Number of distinct conditional branch PCs (the static working set).
    pub static_conditional: usize,
    /// Number of distinct unconditional branch PCs.
    pub static_unconditional: usize,
}

impl TraceStats {
    /// Computes statistics over `trace`.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        let mut s = TraceStats { instructions: trace.instructions(), ..Default::default() };
        let mut cond_pcs: FastHashSet<u64> = FastHashSet::default();
        let mut uncond_pcs: FastHashSet<u64> = FastHashSet::default();
        for r in trace {
            s.per_kind[r.kind().as_u8() as usize] += 1;
            if r.kind() == BranchKind::Conditional {
                s.conditional += 1;
                s.conditional_taken += u64::from(r.taken());
                cond_pcs.insert(r.pc());
            } else {
                s.unconditional += 1;
                uncond_pcs.insert(r.pc());
            }
        }
        s.static_conditional = cond_pcs.len();
        s.static_unconditional = uncond_pcs.len();
        s
    }

    /// Dynamic conditional-to-unconditional ratio (`None` when the trace
    /// has no unconditional branches).
    #[must_use]
    pub fn cond_per_uncond(&self) -> Option<f64> {
        if self.unconditional == 0 {
            None
        } else {
            Some(self.conditional as f64 / self.unconditional as f64)
        }
    }

    /// Fraction of conditional branches that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> Option<f64> {
        if self.conditional == 0 {
            None
        } else {
            Some(self.conditional_taken as f64 / self.conditional as f64)
        }
    }

    /// Dynamic count for one branch kind.
    #[must_use]
    pub fn count(&self, kind: BranchKind) -> u64 {
        self.per_kind[kind.as_u8() as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchRecord;

    #[test]
    fn stats_count_kinds_and_statics() {
        let mut t = Trace::new("t");
        t.push(BranchRecord::conditional(0x10, 0x20, true, 1));
        t.push(BranchRecord::conditional(0x10, 0x20, false, 1));
        t.push(BranchRecord::conditional(0x30, 0x40, true, 1));
        t.push(BranchRecord::unconditional(0x50, 0x60, BranchKind::Return, 2));
        let s = t.stats();
        assert_eq!(s.conditional, 3);
        assert_eq!(s.unconditional, 1);
        assert_eq!(s.static_conditional, 2);
        assert_eq!(s.static_unconditional, 1);
        assert_eq!(s.conditional_taken, 2);
        assert_eq!(s.count(BranchKind::Return), 1);
        assert_eq!(s.cond_per_uncond(), Some(3.0));
        assert!((s.taken_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_stats() {
        let s = Trace::new("e").stats();
        assert_eq!(s.cond_per_uncond(), None);
        assert_eq!(s.taken_rate(), None);
        assert_eq!(s.instructions, 0);
    }
}
