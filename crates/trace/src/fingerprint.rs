//! Stable content fingerprints for cache addressing.
//!
//! The persistent memoization layer (`llbp-sim`'s `memo` module) keys
//! traces and simulation results by a fingerprint of everything that
//! influences their content: the workload spec, the predictor
//! configuration, the simulation parameters, and a format-version salt.
//! Fingerprints must be *stable across processes and runs* — Rust's
//! `std::hash::Hasher` machinery is explicitly allowed to vary between
//! releases and seeds per-process, so this module implements a fixed
//! 128-bit FNV-1a over the fed bytes instead.
//!
//! # Example
//!
//! ```
//! use llbp_trace::fingerprint::StableHasher;
//!
//! let mut h = StableHasher::new();
//! h.write_str("predictor=64K TSL");
//! h.write_u64(42);
//! let fp = h.finish();
//! assert_eq!(fp.to_string().len(), 32); // 128 bits as hex
//! ```

/// A 128-bit content fingerprint, displayed as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl Fingerprint {
    /// Parses the exact 32-hex-digit form produced by `Display`.
    ///
    /// Strictness is the point: persistent journals address cells by
    /// fingerprint, and a line torn mid-write must parse as *malformed*
    /// rather than as a shorter-but-valid fingerprint. Anything other
    /// than exactly 32 hex digits is rejected.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Self)
    }
}

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A deterministic, platform-independent 128-bit FNV-1a hasher.
///
/// Unlike [`std::hash::Hasher`] implementations, the digest depends only
/// on the exact byte sequence fed in — never on process, architecture or
/// library version — so it is safe to use for on-disk cache keys.
#[derive(Debug, Clone, Copy)]
pub struct StableHasher(u128);

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Creates a hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        StableHasher(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a string, length-prefixed so that adjacent fields cannot
    /// alias (`"ab" + "c"` hashes differently from `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Feeds a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest of everything fed so far.
    #[must_use]
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.0)
    }
}

/// Fingerprints a single string with a one-shot hasher.
#[must_use]
pub fn fingerprint_str(s: &str) -> Fingerprint {
    let mut h = StableHasher::new();
    h.write_str(s);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector_is_stable() {
        // Pin the digest of a fixed input so accidental algorithm changes
        // (which would silently invalidate every on-disk cache) fail CI.
        let fp = fingerprint_str("llbp");
        assert_eq!(fp.to_string(), format!("{:032x}", fp.0));
        let again = fingerprint_str("llbp");
        assert_eq!(fp, again);
        // FNV-1a of the length prefix + "llbp" — computed once, frozen.
        assert_eq!(fp, Fingerprint(0x7ca8_7d9c_5034_002f_e20a_3cfd_28eb_6e43));
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn display_is_32_hex_chars() {
        assert_eq!(Fingerprint(0).to_string(), "0".repeat(32));
        assert_eq!(Fingerprint(u128::MAX).to_string(), "f".repeat(32));
    }

    #[test]
    fn from_hex_roundtrips_display() {
        for fp in [Fingerprint(0), Fingerprint(0xabcd_1234), Fingerprint(u128::MAX)] {
            assert_eq!(Fingerprint::from_hex(&fp.to_string()), Some(fp));
        }
    }

    #[test]
    fn from_hex_rejects_torn_or_padded_forms() {
        let full = Fingerprint(0x42).to_string();
        assert!(Fingerprint::from_hex(&full[..31]).is_none(), "truncated");
        assert!(Fingerprint::from_hex(&format!("{full}0")).is_none(), "over-long");
        assert!(Fingerprint::from_hex("").is_none());
        assert!(Fingerprint::from_hex(&"g".repeat(32)).is_none(), "non-hex");
        assert!(Fingerprint::from_hex(&format!("+{}", &full[..31])).is_none(), "signed");
    }
}
