//! A compact binary trace format with integrity checks.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   [u8; 4] = b"LLBT"
//! version u16     = 1
//! name    u16 length + UTF-8 bytes
//! count   u64     number of records
//! records count × { pc u64, target u64, kind u8, taken u8, insts u32 }
//! crc     u64     simple rolling checksum over the record bytes
//! ```
//!
//! The format favours simplicity over density; traces used by the
//! experiment harness are generated on the fly, so file IO is a
//! convenience for caching and for interoperating with external tools.

use crate::record::{BranchKind, BranchRecord, Trace};
use std::io::{Read, Write};

/// Magic bytes identifying a trace file.
pub const MAGIC: [u8; 4] = *b"LLBT";
/// Current format version.
pub const VERSION: u16 = 1;

/// Errors produced while reading or writing trace files.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The file does not start with the `LLBT` magic.
    BadMagic([u8; 4]),
    /// The file uses an unsupported format version.
    UnsupportedVersion(u16),
    /// A record carries an invalid branch-kind byte.
    InvalidKind(u8),
    /// A record flags a conditional field inconsistently (e.g. an
    /// unconditional branch marked not-taken).
    InconsistentRecord { index: u64 },
    /// The trailing checksum does not match the record payload.
    ChecksumMismatch { expected: u64, found: u64 },
    /// The embedded name is not valid UTF-8.
    BadName(std::string::FromUtf8Error),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace io failure: {e}"),
            TraceIoError::BadMagic(m) => write!(f, "bad trace magic {m:02x?}"),
            TraceIoError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::InvalidKind(k) => write!(f, "invalid branch kind byte {k}"),
            TraceIoError::InconsistentRecord { index } => {
                write!(f, "inconsistent record at index {index}")
            }
            TraceIoError::ChecksumMismatch { expected, found } => {
                write!(f, "checksum mismatch: expected {expected:#x}, found {found:#x}")
            }
            TraceIoError::BadName(e) => write!(f, "trace name is not utf-8: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::BadName(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Rolling checksum over record payload bytes (FNV-1a, 64-bit).
#[derive(Debug, Clone, Copy)]
struct Checksum(u64);

impl Checksum {
    fn new() -> Self {
        Checksum(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn value(self) -> u64 {
        self.0
    }
}

/// Serialises `trace` to `writer`. A buffered writer can be passed by
/// mutable reference (`&mut w` implements [`Write`]).
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on any underlying write failure.
pub fn write_trace<W: Write>(mut writer: W, trace: &Trace) -> Result<(), TraceIoError> {
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    let name = trace.name().as_bytes();
    let name_len = u16::try_from(name.len().min(u16::MAX as usize)).expect("clamped");
    writer.write_all(&name_len.to_le_bytes())?;
    writer.write_all(&name[..name_len as usize])?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut crc = Checksum::new();
    for r in trace {
        let mut buf = [0u8; 22];
        buf[0..8].copy_from_slice(&r.pc().to_le_bytes());
        buf[8..16].copy_from_slice(&r.target().to_le_bytes());
        buf[16] = r.kind().as_u8();
        buf[17] = u8::from(r.taken());
        buf[18..22].copy_from_slice(&r.non_branch_insts().to_le_bytes());
        crc.update(&buf);
        writer.write_all(&buf)?;
    }
    writer.write_all(&crc.value().to_le_bytes())?;
    Ok(())
}

/// Deserialises a trace from `reader`. A buffered reader can be passed by
/// mutable reference (`&mut r` implements [`Read`]).
///
/// # Errors
///
/// Returns a [`TraceIoError`] describing the first malformation found:
/// wrong magic, unsupported version, invalid kind bytes, inconsistent
/// records, or a checksum mismatch.
pub fn read_trace<R: Read>(mut reader: R) -> Result<Trace, TraceIoError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(TraceIoError::BadMagic(magic));
    }
    let version = read_u16(&mut reader)?;
    if version != VERSION {
        return Err(TraceIoError::UnsupportedVersion(version));
    }
    let name_len = read_u16(&mut reader)? as usize;
    let mut name_bytes = vec![0u8; name_len];
    reader.read_exact(&mut name_bytes)?;
    let name = String::from_utf8(name_bytes).map_err(TraceIoError::BadName)?;
    let count = read_u64(&mut reader)?;
    let mut records = Vec::with_capacity(usize::try_from(count).unwrap_or(0).min(1 << 28));
    let mut crc = Checksum::new();
    for index in 0..count {
        let mut buf = [0u8; 22];
        reader.read_exact(&mut buf)?;
        crc.update(&buf);
        let pc = u64::from_le_bytes(buf[0..8].try_into().expect("slice length"));
        let target = u64::from_le_bytes(buf[8..16].try_into().expect("slice length"));
        let kind = BranchKind::from_u8(buf[16]).ok_or(TraceIoError::InvalidKind(buf[16]))?;
        let taken = match buf[17] {
            0 => false,
            1 => true,
            _ => return Err(TraceIoError::InconsistentRecord { index }),
        };
        if kind.is_unconditional() && !taken {
            return Err(TraceIoError::InconsistentRecord { index });
        }
        let non_branch_insts = u32::from_le_bytes(buf[18..22].try_into().expect("slice length"));
        if non_branch_insts > BranchRecord::MAX_NON_BRANCH_INSTS {
            return Err(TraceIoError::InconsistentRecord { index });
        }
        records.push(BranchRecord::new(pc, target, kind, taken, non_branch_insts));
    }
    let expected = read_u64(&mut reader)?;
    if expected != crc.value() {
        return Err(TraceIoError::ChecksumMismatch { expected, found: crc.value() });
    }
    Ok(Trace::from_records(name, records))
}

fn read_u16<R: Read>(reader: &mut R) -> Result<u16, TraceIoError> {
    let mut b = [0u8; 2];
    reader.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u64<R: Read>(reader: &mut R) -> Result<u64, TraceIoError> {
    let mut b = [0u8; 8];
    reader.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BranchKind, BranchRecord, Trace};

    fn sample_trace() -> Trace {
        let mut t = Trace::new("sample");
        t.push(BranchRecord::conditional(0x1000, 0x1100, true, 4));
        t.push(BranchRecord::unconditional(0x1104, 0x2000, BranchKind::DirectCall, 2));
        t.push(BranchRecord::conditional(0x2004, 0x2010, false, 7));
        t.push(BranchRecord::unconditional(0x2008, 0x1108, BranchKind::Return, 0));
        t
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.name(), "sample");
        assert_eq!(back.records(), t.records());
        assert_eq!(back.instructions(), t.instructions());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new("empty");
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_trace(buf.as_slice()), Err(TraceIoError::BadMagic(_))));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        // Flip a bit inside the first record's PC.
        let header = 4 + 2 + 2 + "sample".len() + 8;
        buf[header] ^= 0x01;
        assert!(matches!(read_trace(buf.as_slice()), Err(TraceIoError::ChecksumMismatch { .. })));
    }

    #[test]
    fn invalid_kind_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        let header = 4 + 2 + 2 + "sample".len() + 8;
        buf[header + 16] = 77; // kind byte of record 0
        assert!(matches!(read_trace(buf.as_slice()), Err(TraceIoError::InvalidKind(77))));
    }

    #[test]
    fn truncated_file_is_io_error() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(matches!(read_trace(buf.as_slice()), Err(TraceIoError::Io(_))));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        buf[4] = 0xFF;
        assert!(matches!(read_trace(buf.as_slice()), Err(TraceIoError::UnsupportedVersion(_))));
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceIoError::ChecksumMismatch { expected: 1, found: 2 };
        assert!(e.to_string().contains("checksum"));
        let e = TraceIoError::BadMagic(*b"ABCD");
        assert!(e.to_string().contains("magic"));
    }
}
