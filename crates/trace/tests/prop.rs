//! Randomized property tests for trace records and IO, driven by the
//! in-tree `SplitMix64` PRNG (no external property-testing framework, so
//! the workspace builds with no network access).

use bputil::rng::SplitMix64;
use llbp_trace::record::{BranchKind, BranchRecord, Trace};
use llbp_trace::{read_trace, write_trace, TraceIoError};

fn arb_record(rng: &mut SplitMix64) -> BranchRecord {
    let pc = rng.next_u64();
    let target = rng.next_u64();
    let kind = BranchKind::from_u8(rng.below(6) as u8).expect("in range");
    // Unconditional branches are always taken by construction.
    let taken = rng.chance(1, 2) || kind.is_unconditional();
    let insts = (rng.next_u64() % 1000) as u32;
    BranchRecord::new(pc, target, kind, taken, insts)
}

fn arb_records(rng: &mut SplitMix64, max: u64) -> Vec<BranchRecord> {
    (0..rng.below(max)).map(|_| arb_record(rng)).collect()
}

/// Serialising and deserialising preserves every field and the name.
#[test]
fn trace_io_roundtrip() {
    let mut rng = SplitMix64::new(0x10);
    let names = ["", "a", "workload-x", "Some Name_09"];
    for case in 0..60 {
        let name = names[case % names.len()];
        let trace = Trace::from_records(name, arb_records(&mut rng, 200));
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.name(), name);
        assert_eq!(back.records(), trace.records());
        assert_eq!(back.instructions(), trace.instructions());
    }
}

/// Any single-byte corruption of the record payload is detected (either a
/// structured error or a checksum mismatch) — silent acceptance of a
/// modified payload is a bug. The name region is not covered by the
/// record checksum, so corruption is injected past the header only.
#[test]
fn corruption_is_detected() {
    let mut rng = SplitMix64::new(0x11);
    for _ in 0..120 {
        let mut records = arb_records(&mut rng, 50);
        if records.is_empty() {
            records.push(arb_record(&mut rng));
        }
        let trace = Trace::from_records("x", records);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        // Only corrupt bytes in the record payload (after the 17-byte
        // header: magic 4 + version 2 + name len 2 + name 1 + count 8).
        let payload_start = 4 + 2 + 2 + 1 + 8;
        let payload_end = buf.len() - 8; // exclude the trailing checksum
        assert!(payload_end > payload_start);
        let pos = payload_start + (rng.next_u64() as usize) % (payload_end - payload_start);
        buf[pos] ^= 1 << rng.below(8);
        match read_trace(buf.as_slice()) {
            Err(_) => {} // detected — good
            Ok(back) => {
                // A single bit flip cannot produce an identical payload.
                assert_ne!(back.records(), trace.records());
                panic!("corruption silently accepted");
            }
        }
    }
}

/// Instruction accounting: total instructions equal the sum of
/// per-record contributions.
#[test]
fn instruction_accounting() {
    let mut rng = SplitMix64::new(0x12);
    for _ in 0..60 {
        let records = arb_records(&mut rng, 100);
        let expected: u64 = records.iter().map(|r| u64::from(r.non_branch_insts()) + 1).sum();
        let trace = Trace::from_records("t", records);
        assert_eq!(trace.instructions(), expected);
    }
}

/// Truncating a valid file at *any* byte boundary is detected: the reader
/// returns an error (an IO error for short reads, or a structured error
/// when the truncation point lands after a self-consistent prefix) and
/// never panics or silently returns a shorter trace.
#[test]
fn truncation_at_every_prefix_is_detected() {
    let mut rng = SplitMix64::new(0x13);
    let trace = Trace::from_records("trunc", arb_records(&mut rng, 30));
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).unwrap();
    for len in 0..buf.len() {
        assert!(
            read_trace(&buf[..len]).is_err(),
            "truncation to {len}/{} bytes was silently accepted",
            buf.len()
        );
    }
}

/// Corrupting any byte of the trailing checksum itself is reported as a
/// checksum mismatch (the payload is intact; the trailer is wrong).
#[test]
fn checksum_trailer_corruption_is_detected() {
    let mut rng = SplitMix64::new(0x14);
    for _ in 0..40 {
        let mut records = arb_records(&mut rng, 40);
        if records.is_empty() {
            records.push(arb_record(&mut rng));
        }
        let trace = Trace::from_records("crc", records);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let pos = buf.len() - 8 + (rng.next_u64() as usize) % 8;
        buf[pos] ^= 1 << rng.below(8);
        assert!(matches!(read_trace(buf.as_slice()), Err(TraceIoError::ChecksumMismatch { .. })));
    }
}

/// Every corruption of the magic bytes is rejected as `BadMagic` before
/// anything else is parsed.
#[test]
fn any_bad_magic_is_rejected() {
    let mut rng = SplitMix64::new(0x15);
    let trace = Trace::from_records("magic", arb_records(&mut rng, 10));
    let mut pristine = Vec::new();
    write_trace(&mut pristine, &trace).unwrap();
    for byte in 0..4 {
        let mut buf = pristine.clone();
        buf[byte] ^= 1 << rng.below(8);
        assert!(matches!(read_trace(buf.as_slice()), Err(TraceIoError::BadMagic(_))));
    }
}

#[test]
fn reading_garbage_never_panics() {
    // A few deterministic garbage inputs exercising each failure path.
    let inputs: Vec<Vec<u8>> = vec![
        vec![],
        vec![0x4C],
        b"LLBT".to_vec(),
        b"LLBTxxxxxxxxxxxxxxxxxxxxxxxx".to_vec(),
        vec![0xFF; 100],
    ];
    for input in inputs {
        let result = read_trace(input.as_slice());
        assert!(matches!(
            result,
            Err(TraceIoError::Io(_))
                | Err(TraceIoError::BadMagic(_))
                | Err(TraceIoError::UnsupportedVersion(_))
        ));
    }
}
