//! Property-based tests for trace records and IO.

use llbp_trace::record::{BranchKind, BranchRecord, Trace};
use llbp_trace::{read_trace, write_trace, TraceIoError};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (any::<u64>(), any::<u64>(), 0u8..=5, any::<bool>(), any::<u32>()).prop_map(
        |(pc, target, kind, taken, insts)| {
            let kind = BranchKind::from_u8(kind).expect("in range");
            // Unconditional branches are always taken by construction.
            let taken = taken || kind.is_unconditional();
            BranchRecord { pc, target, kind, taken, non_branch_insts: insts % 1000 }
        },
    )
}

proptest! {
    /// Serialising and deserialising preserves every field and the name.
    #[test]
    fn trace_io_roundtrip(
        name in "[a-zA-Z0-9_ -]{0,40}",
        records in proptest::collection::vec(arb_record(), 0..200),
    ) {
        let trace = Trace::from_records(name.clone(), records);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(back.name(), name.as_str());
        prop_assert_eq!(back.records(), trace.records());
        prop_assert_eq!(back.instructions(), trace.instructions());
    }

    /// Any single-byte corruption of the payload is detected (either a
    /// structured error or a checksum mismatch) — silent acceptance of a
    /// modified payload is a bug unless the flip hits the name region
    /// (not covered by the record checksum).
    #[test]
    fn corruption_is_detected(
        records in proptest::collection::vec(arb_record(), 1..50),
        flip_pos_seed in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let trace = Trace::from_records("x", records);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        // Only corrupt bytes in the record payload (after the 17-byte
        // header: magic 4 + version 2 + name len 2 + name 1 + count 8).
        let payload_start = 4 + 2 + 2 + 1 + 8;
        let payload_end = buf.len() - 8; // exclude the trailing checksum
        prop_assume!(payload_end > payload_start);
        let pos = payload_start + flip_pos_seed % (payload_end - payload_start);
        buf[pos] ^= 1 << flip_bit;
        let result = read_trace(buf.as_slice());
        match result {
            Err(_) => {} // detected — good
            Ok(back) => {
                // The only acceptable Ok is if the flip produced an
                // identical payload, which a single bit flip cannot.
                prop_assert_ne!(back.records(), trace.records());
                prop_assert!(false, "corruption silently accepted");
            }
        }
    }

    /// Instruction accounting: total instructions equal the sum of
    /// per-record contributions.
    #[test]
    fn instruction_accounting(records in proptest::collection::vec(arb_record(), 0..100)) {
        let expected: u64 = records.iter().map(|r| u64::from(r.non_branch_insts) + 1).sum();
        let trace = Trace::from_records("t", records);
        prop_assert_eq!(trace.instructions(), expected);
    }
}

#[test]
fn reading_garbage_never_panics() {
    // A few deterministic garbage inputs exercising each failure path.
    let inputs: Vec<Vec<u8>> = vec![
        vec![],
        vec![0x4C],
        b"LLBT".to_vec(),
        b"LLBTxxxxxxxxxxxxxxxxxxxxxxxx".to_vec(),
        vec![0xFF; 100],
    ];
    for input in inputs {
        let result = read_trace(input.as_slice());
        assert!(matches!(
            result,
            Err(TraceIoError::Io(_))
                | Err(TraceIoError::BadMagic(_))
                | Err(TraceIoError::UnsupportedVersion(_))
        ));
    }
}
