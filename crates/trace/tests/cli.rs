//! End-to-end tests of the `trace_tool` binary.

use std::path::PathBuf;
use std::process::Command;

fn tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trace_tool"))
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("llbp_trace_tool_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn gen_info_head_csv_pipeline() {
    let llbt = temp_path("a.llbt");
    let csv = temp_path("a.csv");

    let out =
        tool().args(["gen", "HTTP", "2000", llbt.to_str().unwrap()]).output().expect("run gen");
    assert!(out.status.success(), "gen failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote 2000 records"));

    let out = tool().args(["info", llbt.to_str().unwrap()]).output().expect("run info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("records:             2000"));
    assert!(text.contains("cond:uncond ratio:"));

    let out = tool().args(["head", llbt.to_str().unwrap(), "5"]).output().expect("run head");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 6, "header + 5 rows");

    let out = tool()
        .args(["csv", llbt.to_str().unwrap(), csv.to_str().unwrap()])
        .output()
        .expect("run csv");
    assert!(out.status.success());
    let body = std::fs::read_to_string(&csv).expect("csv written");
    assert!(body.starts_with("pc,target,kind,taken,non_branch_insts\n"));
    assert_eq!(body.lines().count(), 2001);

    let _ = std::fs::remove_file(llbt);
    let _ = std::fs::remove_file(csv);
}

#[test]
fn unknown_workload_fails_cleanly() {
    let out = tool().args(["gen", "NotAWorkload", "10", "/tmp/x.llbt"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}

#[test]
fn truncated_trace_fails_with_one_line_diagnostic() {
    let llbt = temp_path("trunc.llbt");
    let out =
        tool().args(["gen", "HTTP", "500", llbt.to_str().unwrap()]).output().expect("run gen");
    assert!(out.status.success(), "gen failed: {}", String::from_utf8_lossy(&out.stderr));

    // Chop the file mid-record, as a killed writer or full disk would.
    let bytes = std::fs::read(&llbt).expect("trace bytes");
    std::fs::write(&llbt, &bytes[..bytes.len() / 2]).expect("truncate");

    for cmd in ["info", "head", "csv"] {
        let mut args = vec![cmd, llbt.to_str().unwrap()];
        let csv = temp_path("trunc.csv");
        if cmd == "csv" {
            args.push(csv.to_str().unwrap());
        }
        let out = tool().args(&args).output().expect("run on truncated file");
        assert!(!out.status.success(), "{cmd} must fail on a truncated trace");
        let stderr = String::from_utf8_lossy(&out.stderr).to_string();
        assert_eq!(stderr.lines().count(), 1, "{cmd} stderr: {stderr}");
        assert!(stderr.starts_with("error: read "), "{cmd} stderr: {stderr}");
        assert!(!stderr.contains("panicked"), "{cmd} must not panic: {stderr}");
        let _ = std::fs::remove_file(csv);
    }
    let _ = std::fs::remove_file(llbt);
}

#[test]
fn missing_file_fails_cleanly() {
    let out = tool().args(["info", "/definitely/not/here.llbt"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn no_args_prints_usage() {
    let out = tool().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
