use llbp_trace::{Workload, WorkloadSpec};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    for w in Workload::ALL {
        let t = WorkloadSpec::named(w).with_branches(n).generate();
        let s = t.stats();
        println!(
            "{w:10} ratio={:.2} static_cond={} taken={:.2} uncond%={:.1}",
            s.cond_per_uncond().unwrap_or(0.0),
            s.static_conditional,
            s.taken_rate().unwrap_or(0.0),
            100.0 * s.unconditional as f64 / (s.conditional + s.unconditional) as f64
        );
    }
}
