//! Provenance parity: recording must be observational.
//!
//! The contract DESIGN.md §13 pins: a sweep with provenance recording
//! enabled produces *exactly* the results (and therefore exactly the
//! figure bytes) of a sweep without it, and a disabled recorder leaves
//! the engine's behaviour untouched. These tests drive real figure
//! grids — fig02's scaling predictors and fig09's LLBP designs — through
//! both configurations and compare at the byte level.

use llbp_bench::figures::{fig02_render, fig02_spec};
use llbp_bench::Opts;
use llbp_core::LlbpParams;
use llbp_sim::engine::SweepSpec;
use llbp_sim::{MemoStore, PredictorKind, ProvConfig, SweepEngine, SweepReport};
use std::sync::Arc;

fn quick_opts() -> Opts {
    Opts::parse(
        ["--branches", "4000", "--workloads", "Tomcat,HTTP,Kafka"].iter().map(ToString::to_string),
    )
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("llbp-prov-parity-{tag}-{}", std::process::id()))
}

/// Runs `spec` twice — plain, and with a store + live recorder — and
/// asserts every cell's result is identical.
fn assert_prov_parity(spec: &SweepSpec, tag: &str) -> (SweepReport, SweepReport) {
    let plain = SweepEngine::with_workers(2).run(spec);
    let dir = scratch_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(MemoStore::open(&dir).expect("scratch store"));
    let recorded = SweepEngine::with_workers(2)
        .with_store(store)
        .with_prov(ProvConfig { sample: 4, ring: 4096 })
        .run(spec);
    assert!(plain.is_complete() && recorded.is_complete());
    assert_eq!(plain.jobs.len(), recorded.jobs.len());
    for (a, b) in plain.jobs.iter().zip(recorded.jobs.iter()) {
        assert_eq!(a.result, b.result, "cell ({}, {})", a.job.workload, a.job.predictor);
    }
    let _ = std::fs::remove_dir_all(dir);
    (plain, recorded)
}

#[test]
fn fig02_bytes_are_identical_with_prov_recording() {
    let opts = quick_opts();
    let spec = fig02_spec(&opts);
    let (plain, recorded) = assert_prov_parity(&spec, "fig02");
    let off = fig02_render(|w, p| plain.get(w, p), &opts);
    let on = fig02_render(|w, p| recorded.get(w, p), &opts);
    assert_eq!(off, on, "figure bytes must not depend on the recorder");
    assert!(recorded.prov.is_some());
    assert!(plain.prov.is_none());
}

#[test]
fn fig09_llbp_cells_are_identical_with_prov_recording() {
    // Fig09's grid exercises the composite LLBP predictor, whose
    // provenance path (fused predict+train with override attribution)
    // is the one most at risk of perturbing results.
    let opts = quick_opts();
    let spec = SweepSpec::new(
        vec![
            PredictorKind::Tsl64K,
            PredictorKind::Llbp(LlbpParams::default()),
            PredictorKind::Llbp(LlbpParams::zero_latency()),
        ],
        llbp_bench::workload_specs(&opts),
        llbp_bench::sim_config(&opts),
    );
    let (_, recorded) = assert_prov_parity(&spec, "fig09");
    let summary = recorded.prov.expect("summary");
    assert_eq!(summary.streams, 9, "one stream per cell");
    assert!(summary.mispredicts > 0);
}

#[test]
fn every_backend_yields_the_same_stream() {
    // Backends are parity-pinned for results; with a recorder attached
    // they must also be parity-pinned for the *stream* — same events in
    // the ring, same profiles — since reports built from either must
    // agree.
    use llbp_sim::{BackendKind, CancelToken, ProvRecorder, SimConfig};
    let trace = llbp_trace::WorkloadSpec::named(llbp_trace::Workload::Tomcat)
        .with_branches(6_000)
        .generate();
    let run = |backend: BackendKind, kind: PredictorKind| {
        let mut recorder = ProvRecorder::enabled(ProvConfig { sample: 2, ring: 8192 });
        let cfg = SimConfig::default().with_backend(backend);
        let result = cfg
            .run_recorded(
                kind,
                &trace,
                &CancelToken::none(),
                &llbp_sim::obs::Counter::noop(),
                &mut recorder,
            )
            .expect("no cancel token");
        (result, recorder.finish("l", "w").expect("enabled"))
    };
    for kind in [
        PredictorKind::Tsl64K,
        PredictorKind::Llbp(LlbpParams::default()),
        PredictorKind::Gshare { index_bits: 12, history_bits: 8 },
    ] {
        let (ref_result, ref_stream) = run(BackendKind::Reference, kind.clone());
        for backend in [BackendKind::Specialized, BackendKind::Batch] {
            let (result, stream) = run(backend, kind.clone());
            assert_eq!(result, ref_result, "{kind:?} on {backend:?}");
            assert_eq!(stream, ref_stream, "{kind:?} stream on {backend:?}");
        }
    }
}

#[test]
fn table01_bytes_are_unaffected_by_prov_artifacts() {
    // Table I never runs a predictor — its stdout is a pure function of
    // the workload traces. Rendering it from a cache root that a
    // prov-recording sweep has already populated (streams and all) must
    // produce exactly the bytes a storeless render does.
    use llbp_bench::figures::table01_render;
    use llbp_sim::TraceCache;
    let opts = quick_opts();
    let specs = llbp_bench::workload_specs(&opts);
    let plain: Vec<_> = {
        let cache = TraceCache::new();
        specs.iter().map(|s| cache.get_or_generate(s).stats()).collect()
    };
    let dir = scratch_dir("table01");
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(MemoStore::open(&dir).expect("scratch store"));
    let populate = SweepEngine::with_workers(2)
        .with_store(Arc::clone(&store))
        .with_prov(ProvConfig::default())
        .run(&fig02_spec(&opts));
    assert!(populate.is_complete());
    let recorded: Vec<_> = {
        let cache = TraceCache::with_store(store, false);
        specs.iter().map(|s| cache.get_or_generate(s).stats()).collect()
    };
    assert_eq!(
        table01_render(&opts.workloads, &plain),
        table01_render(&opts.workloads, &recorded),
        "table01 bytes must not depend on prov artifacts in the cache"
    );
    let _ = std::fs::remove_dir_all(dir);
}
