//! Shared harness utilities for the experiment binaries.
//!
//! Every `fig*`/`table*` binary regenerates one table or figure of the
//! paper. All of them accept:
//!
//! * `--quick` — a much shorter trace, for CI smoke runs;
//! * `--branches N` — explicit trace length in branch records;
//! * `--workloads a,b,c` — restrict to a subset of workload names;
//! * `--cold` — bypass the persistent cache (re-simulate everything,
//!   refreshing the stored entries);
//! * `--resume` — skip grid cells the campaign journal records as
//!   completed (picking an interrupted campaign back up);
//! * `--verify-resume` — as `--resume`, but re-hash each journaled-ok
//!   memo cell against its recorded digest first, demoting silently
//!   corrupted cells back to misses;
//! * `--strict` — exit nonzero if any grid cell ultimately failed;
//! * `--backend auto|reference|specialized|batch` — which execution
//!   backend runs the hot loop (default: the `LLBP_BACKEND` environment
//!   variable, then `auto` = fastest). Backends are parity-pinned, so
//!   this changes throughput only, never the figures.
//!
//! Results print as markdown tables so they can be pasted straight into
//! `EXPERIMENTS.md`. Traces and per-cell simulation results are memoized
//! under `target/llbp-cache/` (override with `LLBP_CACHE_DIR`), so a
//! re-run of any figure — or a figure sharing grid cells with a previous
//! one — skips generation and simulation for everything already stored.
//! `LLBP_STORE=tcp://host:port` points the memo store at a shared
//! `llbp_store` server instead of the local directory; `llbp_coord`
//! shards a campaign across worker processes against it (DESIGN.md §11).

pub mod figures;

use llbp_obs::{Telemetry, TelemetrySettings};
use llbp_sim::{
    BackendKind, FaultInjector, MemoStore, SimConfig, SweepEngine, SweepReport, TraceCache,
};
use llbp_trace::{Trace, Workload, WorkloadSpec};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// Default branch records per workload for full experiment runs.
pub const FULL_BRANCHES: usize = 1_000_000;
/// Branch records per workload under `--quick`.
pub const QUICK_BRANCHES: usize = 150_000;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Opts {
    /// Branch records per generated trace.
    pub branches: usize,
    /// The workloads to run.
    pub workloads: Vec<Workload>,
    /// Whether `--quick` was requested.
    pub quick: bool,
    /// Whether `--cold` was requested (ignore persisted cache entries).
    pub cold: bool,
    /// Whether `--resume` was requested (trust the campaign journal and
    /// skip cells it records as completed).
    pub resume: bool,
    /// Whether `--verify-resume` was requested (resume, but re-hash each
    /// journaled-ok memo cell against its recorded digest first, re-running
    /// any that fail verification). Implies `resume`.
    pub verify_resume: bool,
    /// Whether `--strict` was requested (exit nonzero if any grid cell
    /// ultimately failed).
    pub strict: bool,
    /// Where to write the Chrome trace-event JSON (`--trace-events`).
    /// Setting it enables telemetry collection.
    pub trace_events: Option<String>,
    /// Where to write the Prometheus metrics snapshot (`--metrics-out`).
    /// Setting it enables telemetry collection.
    pub metrics_out: Option<String>,
    /// Execution backend for the simulation hot loop (`--backend`,
    /// falling back to `LLBP_BACKEND`, then `auto`). Parity-pinned: a
    /// pure throughput choice that never changes figure output.
    pub backend: BackendKind,
    /// Route sweeps to a resident `llbp-serve` daemon
    /// (`--server tcp://host:port`) instead of simulating in-process.
    /// Stdout is byte-identical either way — the daemon streams back
    /// the exact cells a local run would compute (DESIGN.md §12).
    pub server: Option<String>,
    /// Whether `--prov` was requested: record per-branch prediction
    /// provenance for every simulated cell, persist the streams next to
    /// the memo cells (for `prov_tool`), and append a `"prov"` section
    /// to the throughput record. Off by default; off leaves every output
    /// byte identical to a build without the subsystem (DESIGN.md §13).
    pub prov: bool,
}

impl Opts {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments (these are
    /// developer-facing binaries).
    #[must_use]
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = Self {
            branches: FULL_BRANCHES,
            workloads: Workload::ALL.to_vec(),
            quick: false,
            cold: false,
            resume: false,
            verify_resume: false,
            strict: false,
            trace_events: None,
            metrics_out: None,
            backend: BackendKind::from_env().unwrap_or_else(|msg| usage(&msg)),
            server: None,
            prov: false,
        };
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => {
                    opts.quick = true;
                    opts.branches = QUICK_BRANCHES;
                }
                "--cold" => opts.cold = true,
                "--resume" => opts.resume = true,
                "--verify-resume" => {
                    opts.resume = true;
                    opts.verify_resume = true;
                }
                "--strict" => opts.strict = true,
                "--branches" => {
                    let v = iter.next().unwrap_or_else(|| usage("missing value for --branches"));
                    opts.branches =
                        v.parse().unwrap_or_else(|_| usage(&format!("bad --branches: {v}")));
                }
                "--workloads" => {
                    let v = iter.next().unwrap_or_else(|| usage("missing value for --workloads"));
                    opts.workloads = v
                        .split(',')
                        .map(|s| s.trim().parse::<Workload>().unwrap_or_else(|e| usage(&e)))
                        .collect();
                }
                "--trace-events" => {
                    let v =
                        iter.next().unwrap_or_else(|| usage("missing value for --trace-events"));
                    opts.trace_events = Some(v);
                }
                "--metrics-out" => {
                    let v = iter.next().unwrap_or_else(|| usage("missing value for --metrics-out"));
                    opts.metrics_out = Some(v);
                }
                "--backend" => {
                    let v = iter.next().unwrap_or_else(|| usage("missing value for --backend"));
                    opts.backend = v.parse::<BackendKind>().unwrap_or_else(|e| usage(&e));
                }
                "--server" => {
                    let v = iter.next().unwrap_or_else(|| usage("missing value for --server"));
                    opts.server = Some(v);
                }
                "--prov" => opts.prov = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument: {other}")),
            }
        }
        if opts.prov && opts.server.is_some() {
            // The serve protocol streams result cells only; provenance
            // streams stay on the daemon's disk where prov_tool can't
            // see them from here. Refuse rather than silently record
            // nothing.
            usage("--prov cannot be combined with --server (run the sweep locally to record)");
        }
        opts
    }

    /// Generates the trace for one workload at the configured length.
    #[must_use]
    pub fn trace(&self, workload: Workload) -> Trace {
        WorkloadSpec::named(workload).with_branches(self.branches).generate()
    }
}

/// The default [`SimConfig`] for these options: everything standard except
/// the execution backend, which honors `--backend` / `LLBP_BACKEND`.
/// Binaries that need probes layer them on with functional update:
/// `SimConfig { track_per_branch: true, ..sim_config(&opts) }`.
#[must_use]
pub fn sim_config(opts: &Opts) -> SimConfig {
    SimConfig::default().with_backend(opts.backend)
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--quick] [--cold] [--resume] [--verify-resume] [--strict] [--branches N] \
         [--workloads A,B,C] [--trace-events PATH] [--metrics-out PATH] \
         [--backend auto|reference|specialized|batch] [--server tcp://HOST:PORT] [--prov]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// The process-wide fault injector parsed from `LLBP_FAULT_SPEC`, shared
/// by the engine (panic/slow rules) and the memo store (IO rules). A
/// malformed spec is a configuration error and exits with status 2 —
/// silently running fault-free would invalidate a resilience campaign.
pub fn fault_injector() -> Option<Arc<FaultInjector>> {
    static INJECTOR: OnceLock<Option<Arc<FaultInjector>>> = OnceLock::new();
    INJECTOR
        .get_or_init(|| match FaultInjector::from_env() {
            Ok(injector) => injector.map(Arc::new),
            Err(err) => {
                eprintln!("error: {err}");
                std::process::exit(err.exit_code());
            }
        })
        .clone()
}

/// Resolves the telemetry configuration: `LLBP_TELEMETRY` first, then the
/// CLI flags layered on top (a flag both sets its path and force-enables
/// collection). A malformed env spec exits with status 2, like a bad
/// fault spec: silently dropping telemetry would invalidate an observed
/// campaign.
fn telemetry_settings(opts: &Opts) -> TelemetrySettings {
    let mut settings = match std::env::var(llbp_obs::TELEMETRY_ENV) {
        Ok(spec) => TelemetrySettings::parse(&spec).unwrap_or_else(|msg| {
            eprintln!("error: bad {}: {msg}", llbp_obs::TELEMETRY_ENV);
            std::process::exit(2);
        }),
        Err(_) => TelemetrySettings::default(),
    };
    if let Some(path) = &opts.trace_events {
        settings.trace_events = Some(PathBuf::from(path));
        settings.enabled = true;
    }
    if let Some(path) = &opts.metrics_out {
        settings.metrics_out = Some(PathBuf::from(path));
        settings.enabled = true;
    }
    settings
}

fn telemetry_state(opts: &Opts) -> &'static (Telemetry, TelemetrySettings) {
    static STATE: OnceLock<(Telemetry, TelemetrySettings)> = OnceLock::new();
    STATE.get_or_init(|| {
        let settings = telemetry_settings(opts);
        let tel = if settings.enabled { Telemetry::enabled() } else { Telemetry::disabled() };
        (tel, settings)
    })
}

/// The process-wide telemetry handle, enabled iff `--trace-events` /
/// `--metrics-out` / `LLBP_TELEMETRY` asked for collection. Disabled it
/// is free: every recording call is a null branch.
#[must_use]
pub fn telemetry(opts: &Opts) -> Telemetry {
    telemetry_state(opts).0.clone()
}

/// Writes the trace-event and metrics files the resolved settings ask
/// for. Called by [`emit`]; binaries that never sweep can call it
/// directly. Export failures warn rather than abort — losing a telemetry
/// artifact must not turn a completed campaign red — but drained events
/// are gone either way, so a second call exports only newer events.
pub fn export_telemetry(opts: &Opts) {
    let (tel, settings) = telemetry_state(opts);
    if !tel.is_enabled() {
        return;
    }
    if let Some(path) = &settings.trace_events {
        let events = tel.drain_events();
        if let Err(e) = std::fs::write(path, llbp_obs::export::chrome_trace(&events)) {
            eprintln!("warning: cannot write trace events to {}: {e}", path.display());
        }
    }
    if let Some(path) = &settings.metrics_out {
        if let Err(e) = std::fs::write(path, llbp_obs::export::prometheus(&tel.metrics())) {
            eprintln!("warning: cannot write metrics to {}: {e}", path.display());
        }
    }
}

/// Opens the shared persistent memo store: rooted at `LLBP_CACHE_DIR`
/// (defaulting to `target/llbp-cache/`), served through the backend
/// `LLBP_STORE` selects (`local`, or `tcp://host:port` for a shared
/// `llbp-store` server). Returns `None` — and the binaries degrade to
/// uncached operation — if the local directory cannot be created. A
/// *malformed* `LLBP_STORE` spec exits with status 2 instead: silently
/// running local when the user asked for a shared store would fork the
/// campaign's results.
#[must_use]
pub fn memo_store(opts: &Opts) -> Option<Arc<MemoStore>> {
    let mut store = match MemoStore::open_default() {
        Ok(store) => store,
        Err(err @ llbp_sim::SimError::Config { .. }) => {
            eprintln!("error: {err}");
            std::process::exit(err.exit_code());
        }
        Err(_) => return None,
    };
    if let Some(faults) = fault_injector() {
        store.attach_faults(faults);
    }
    store.attach_telemetry(telemetry(opts));
    Some(Arc::new(store))
}

/// The `--server` route the first [`engine`] call latched, if any. A
/// process global (like the injector and telemetry) because the sweep
/// entry points take only `(engine, spec)` and must not change
/// signature for every experiment binary to gain the flag.
fn server_route() -> &'static OnceLock<Option<String>> {
    static ROUTE: OnceLock<Option<String>> = OnceLock::new();
    &ROUTE
}

/// A [`SweepEngine`] wired to the persistent store and the
/// `LLBP_FAULT_SPEC` injector, honoring `--cold` and `--resume`.
/// Also latches the `--server` route for [`run_sweep`].
#[must_use]
pub fn engine(opts: &Opts) -> SweepEngine {
    let _ = server_route().set(opts.server.clone());
    let mut engine = SweepEngine::new().with_telemetry(telemetry(opts));
    if let Some(store) = memo_store(opts) {
        engine = engine.with_store(store);
    }
    if let Some(faults) = fault_injector() {
        engine = engine.with_faults(faults);
    }
    if opts.prov {
        let cfg = llbp_sim::engine::prov_config_from_env().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        });
        engine = engine.with_prov(cfg);
    }
    engine.cold(opts.cold).resume(opts.resume).verify_resume(opts.verify_resume)
}

/// Runs the sweep through the fallible engine entry point, mapping
/// campaign-level contention (another live process holds this grid's
/// journal lock) to a clean diagnostic and exit status 3 — distinct from
/// both argument errors (2) and `--strict` incomplete-grid failures (1),
/// so campaign scripts can retry contended runs specifically.
#[must_use]
pub fn run_sweep(engine: &SweepEngine, spec: &llbp_sim::SweepSpec) -> SweepReport {
    if let Some(addr) = server_route().get().and_then(|route| route.as_deref()) {
        return llbp_sim::serve::client::run_remote_with(addr, spec, fault_injector())
            .unwrap_or_else(|e| campaign_exit(&e));
    }
    engine.try_run(spec).unwrap_or_else(|e| campaign_exit(&e))
}

/// [`run_sweep`] against a caller-provided trace cache (for binaries that
/// reuse the sweep's traces afterwards).
#[must_use]
pub fn run_sweep_with_cache(
    engine: &SweepEngine,
    spec: &llbp_sim::SweepSpec,
    cache: &TraceCache,
) -> SweepReport {
    if let Some(addr) = server_route().get().and_then(|route| route.as_deref()) {
        // The daemon owns its own trace cache; the caller's stays cold
        // and any post-sweep trace reuse regenerates locally.
        return llbp_sim::serve::client::run_remote_with(addr, spec, fault_injector())
            .unwrap_or_else(|e| campaign_exit(&e));
    }
    engine.try_run_with_cache(spec, cache).unwrap_or_else(|e| campaign_exit(&e))
}

/// Maps a campaign-fatal error to its diagnostic and distinct exit
/// status: config errors exit 2, journal contention 3, network failures
/// 4, a lost work lease 5, everything else 1 — so campaign scripts can
/// react to each class specifically (e.g. retry contended runs).
fn campaign_exit(e: &llbp_sim::SimError) -> ! {
    eprintln!("error: {e}");
    if matches!(e, llbp_sim::SimError::CacheContention { .. }) {
        eprintln!("hint: another campaign holds this grid's journal lock; retry when it finishes");
    }
    std::process::exit(e.exit_code());
}

/// Standard epilogue for every sweep binary: archives the throughput
/// record on stderr, reports any ultimately-failed cells, and — under
/// `--strict` — exits nonzero so campaign scripts notice incomplete
/// grids. Call it after printing the figure's tables.
pub fn emit(report: &SweepReport, label: &str, opts: &Opts) {
    eprintln!("{}", report.throughput_json(label));
    for err in &report.failed {
        eprintln!("warning: {err}");
    }
    export_telemetry(opts);
    if opts.strict && !report.is_complete() {
        eprintln!(
            "error: {} of {} cells failed; rerun with --resume to retry only the gaps",
            report.failed.len(),
            report.jobs.len()
        );
        std::process::exit(1);
    }
}

/// A [`TraceCache`] wired to the persistent store, honoring `--cold`.
/// For binaries that analyse traces directly instead of sweeping.
#[must_use]
pub fn trace_cache(opts: &Opts) -> TraceCache {
    match memo_store(opts) {
        Some(store) => TraceCache::with_store(store, opts.cold).with_telemetry(telemetry(opts)),
        None => TraceCache::new(),
    }
}

/// Runs `f` for every workload on the sweep engine's bounded worker pool
/// and returns the results in workload order. The closure receives the
/// workload and its trace (served from the persistent trace store when
/// warm).
///
/// Fan-out is capped at the available core count (it used to be one
/// thread per workload, which oversubscribes small machines and keeps
/// every workload's predictor state resident simultaneously).
pub fn parallel_over_workloads<T, F>(opts: &Opts, f: F) -> Vec<(Workload, T)>
where
    T: Send,
    F: Fn(Workload, &Trace) -> T + Sync,
{
    let workloads = opts.workloads.clone();
    let cache = trace_cache(opts);
    let results =
        llbp_sim::engine::run_indexed(llbp_sim::engine::default_workers(), workloads.len(), |i| {
            let trace = cache
                .get_or_generate(&WorkloadSpec::named(workloads[i]).with_branches(opts.branches));
            f(workloads[i], &trace)
        });
    workloads.into_iter().zip(results).collect()
}

/// The workload grid of an [`Opts`] as [`WorkloadSpec`]s, for sweeps that
/// go through the engine (`SweepSpec`) rather than the closure helper.
#[must_use]
pub fn workload_specs(opts: &Opts) -> Vec<WorkloadSpec> {
    opts.workloads.iter().map(|&w| WorkloadSpec::named(w).with_branches(opts.branches)).collect()
}

/// Geometric-mean helper over positive percentage reductions expressed as
/// ratios; falls back to the arithmetic mean when any value is
/// non-positive (reductions can legitimately be negative).
#[must_use]
pub fn mean_reduction(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let o = Opts::parse(Vec::<String>::new());
        assert_eq!(o.branches, FULL_BRANCHES);
        assert_eq!(o.workloads.len(), 14);
        assert!(!o.quick);
    }

    #[test]
    fn parse_quick_and_filters() {
        let o =
            Opts::parse(["--quick", "--workloads", "Tomcat,HTTP"].iter().map(ToString::to_string));
        assert!(o.quick);
        assert_eq!(o.branches, QUICK_BRANCHES);
        assert_eq!(o.workloads, vec![Workload::Tomcat, Workload::Http]);
    }

    #[test]
    fn verify_resume_implies_resume() {
        let o = Opts::parse(["--verify-resume"].iter().map(ToString::to_string));
        assert!(o.resume && o.verify_resume);
        let o = Opts::parse(["--resume"].iter().map(ToString::to_string));
        assert!(o.resume && !o.verify_resume);
    }

    #[test]
    fn parse_explicit_branches() {
        let o = Opts::parse(["--branches", "1234"].iter().map(ToString::to_string));
        assert_eq!(o.branches, 1234);
    }

    #[test]
    fn parse_telemetry_flags() {
        let o = Opts::parse(
            ["--trace-events", "/tmp/t.json", "--metrics-out", "/tmp/m.prom"]
                .iter()
                .map(ToString::to_string),
        );
        assert_eq!(o.trace_events.as_deref(), Some("/tmp/t.json"));
        assert_eq!(o.metrics_out.as_deref(), Some("/tmp/m.prom"));
        let o = Opts::parse(Vec::<String>::new());
        assert_eq!(o.trace_events, None);
        assert_eq!(o.metrics_out, None);
    }

    #[test]
    fn telemetry_flags_force_enable_settings() {
        let mut o = Opts::parse(Vec::<String>::new());
        o.trace_events = Some("t.json".into());
        let s = telemetry_settings(&o);
        assert!(s.enabled);
        assert_eq!(s.trace_events.as_deref(), Some(std::path::Path::new("t.json")));
        assert_eq!(s.metrics_out, None);
    }

    #[test]
    fn parse_backend_flag() {
        let o = Opts::parse(["--backend", "specialized"].iter().map(ToString::to_string));
        assert_eq!(o.backend, BackendKind::Specialized);
        assert_eq!(sim_config(&o).backend, BackendKind::Specialized);
        // Without the flag (and with the env untouched) the default is auto.
        if std::env::var(llbp_sim::BACKEND_ENV).is_err() {
            let o = Opts::parse(Vec::<String>::new());
            assert_eq!(o.backend, BackendKind::Auto);
        }
    }

    #[test]
    fn parse_server_flag() {
        let o = Opts::parse(["--server", "tcp://127.0.0.1:9"].iter().map(ToString::to_string));
        assert_eq!(o.server.as_deref(), Some("tcp://127.0.0.1:9"));
        let o = Opts::parse(Vec::<String>::new());
        assert_eq!(o.server, None);
    }

    #[test]
    fn parse_prov_flag() {
        let o = Opts::parse(["--prov"].iter().map(ToString::to_string));
        assert!(o.prov);
        let o = Opts::parse(Vec::<String>::new());
        assert!(!o.prov);
    }

    #[test]
    fn mean_reduction_averages() {
        assert!((mean_reduction(&[10.0, 20.0]) - 15.0).abs() < 1e-12);
        assert_eq!(mean_reduction(&[]), 0.0);
    }
}
