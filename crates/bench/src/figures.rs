//! Figure definitions shared between the single-process experiment
//! binaries and the distributed coordinator.
//!
//! The chaos-parity contract — a distributed campaign's merged report is
//! byte-identical to the single-process figure — is enforced by
//! construction: `fig02_mpki_limits` and `llbp-coord` call the same
//! [`fig02_render`] over the same grid, differing only in where the
//! cell results came from.

use crate::{mean_reduction, sim_config, workload_specs, Opts};
use llbp_sim::engine::SweepSpec;
use llbp_sim::report::{f1, f2, Table};
use llbp_sim::{PredictorKind, SimResult};

/// Figure 2's predictor axis, in column order.
#[must_use]
pub fn fig02_predictors() -> Vec<PredictorKind> {
    vec![PredictorKind::Tsl64K, PredictorKind::InfTage, PredictorKind::InfTsl]
}

/// Figure 2's sweep grid for the given options.
#[must_use]
pub fn fig02_spec(opts: &Opts) -> SweepSpec {
    SweepSpec::new(fig02_predictors(), workload_specs(opts), sim_config(opts))
}

/// Renders Figure 2's full stdout — header, paper-values line, and the
/// MPKI/reduction table — from a cell accessor `get(workload, predictor)`
/// over the fig02 grid. Returns the exact bytes the binary prints.
#[must_use]
pub fn fig02_render<'a, F>(get: F, opts: &Opts) -> String
where
    F: Fn(usize, usize) -> &'a SimResult,
{
    let mut table = Table::new([
        "workload",
        "64K TSL MPKI",
        "Inf TAGE MPKI",
        "Inf TSL MPKI",
        "Inf TAGE red.",
        "Inf TSL red.",
    ]);
    let mut base_mpkis = Vec::new();
    let mut tage_reds = Vec::new();
    let mut tsl_reds = Vec::new();
    for (i, w) in opts.workloads.iter().enumerate() {
        let (base, inf_tage, inf_tsl) = (get(i, 0), get(i, 1), get(i, 2));
        let red_tage = inf_tage.mpki_reduction_vs(base);
        let red_tsl = inf_tsl.mpki_reduction_vs(base);
        base_mpkis.push(base.mpki());
        tage_reds.push(red_tage);
        tsl_reds.push(red_tsl);
        table.row([
            w.to_string(),
            f2(base.mpki()),
            f2(inf_tage.mpki()),
            f2(inf_tsl.mpki()),
            format!("{}%", f1(red_tage)),
            format!("{}%", f1(red_tsl)),
        ]);
    }
    table.row([
        "Mean".to_string(),
        f2(mean_reduction(&base_mpkis)),
        String::new(),
        String::new(),
        format!("{}%", f1(mean_reduction(&tage_reds))),
        format!("{}%", f1(mean_reduction(&tsl_reds))),
    ]);

    format!(
        "# Figure 2 — MPKI for 64K TSL, Inf TAGE, Inf TSL\n\
         (paper: 64K TSL avg 2.91 MPKI; Inf TAGE −31.9% avg; Inf TSL −36.5% avg; \
         Inf TAGE captures ~87% of Inf TSL)\n\n{}\n",
        table.to_markdown()
    )
}

/// Renders Table I's full stdout — header plus the measured workload
/// characteristics — from per-workload trace statistics in `workloads`
/// order. Returns the exact bytes the binary prints.
#[must_use]
pub fn table01_render(
    workloads: &[llbp_trace::Workload],
    rows: &[llbp_trace::TraceStats],
) -> String {
    let mut table = Table::new([
        "application",
        "description",
        "static cond. branches",
        "cond:uncond",
        "taken rate",
    ]);
    for (w, s) in workloads.iter().zip(rows) {
        table.row([
            w.to_string(),
            w.description().to_string(),
            s.static_conditional.to_string(),
            f2(s.cond_per_uncond().unwrap_or(0.0)),
            f2(s.taken_rate().unwrap_or(0.0)),
        ]);
    }
    format!(
        "# Table I — workloads (synthetic stand-ins; see DESIGN.md §3)\n\n{}\n",
        table.to_markdown()
    )
}
