//! Figure 11: LLBP ↔ pattern-buffer transfer bandwidth vs PB size,
//! compared with L1-I miss traffic.
//!
//! Paper values: 16-entry PB reads 9.9 bits/inst + 2.2 writes (≈20% of
//! reads); 64 entries −18.9% combined; 256 entries < 8 bits/inst total;
//! the 64-entry PB read traffic is ~41% below L1I↔L2 traffic.

use llbp_bench::{emit, engine, sim_config, trace_cache, workload_specs, Opts};
use llbp_core::LlbpParams;
use llbp_sim::engine::SweepSpec;
use llbp_sim::report::{f1, Table};
use llbp_sim::{L1iCache, PredictorKind};

const PB_SIZES: [usize; 3] = [16, 64, 256];

fn main() {
    let opts = Opts::from_args();
    let set_bits = LlbpParams::default().pattern_set_bits();

    let spec = SweepSpec::new(
        PB_SIZES
            .iter()
            .map(|&pb| PredictorKind::Llbp(LlbpParams::default().with_pb_entries(pb)))
            .collect(),
        workload_specs(&opts),
        sim_config(&opts),
    );
    let cache = trace_cache(&opts);
    let report = llbp_bench::run_sweep_with_cache(&engine(&opts), &spec, &cache);

    let n = opts.workloads.len().max(1) as f64;
    let mut avg_read = [0.0f64; 3];
    let mut avg_write = [0.0f64; 3];
    let mut avg_l1i = 0.0;
    for (i, _w) in opts.workloads.iter().enumerate() {
        for j in 0..PB_SIZES.len() {
            let s = &report.get(i, j).llbp.as_ref().expect("LLBP cell stats").llbp;
            avg_read[j] += s.read_bits_per_inst(set_bits) / n;
            avg_write[j] += s.write_bits_per_inst(set_bits) / n;
        }
        let trace = cache.get_or_generate(&spec.workloads[i]);
        avg_l1i += L1iCache::traffic_per_instruction(&trace) / n;
    }

    println!("# Figure 11 — transfer bandwidth (bits per instruction, mean over workloads)");
    println!(
        "(paper: 16-entry PB 9.9 read + 2.2 write; 64-entry −18.9% combined; \
         256-entry < 8 total; 64-entry reads ≈41% below L1I miss traffic)\n"
    );
    let mut table = Table::new(["config", "read b/inst", "write b/inst", "total b/inst"]);
    for (i, &pb) in PB_SIZES.iter().enumerate() {
        table.row([
            format!("{pb}-entry PB"),
            f1(avg_read[i]),
            f1(avg_write[i]),
            f1(avg_read[i] + avg_write[i]),
        ]);
    }
    table.row(["L1I misses".to_string(), f1(avg_l1i), String::new(), f1(avg_l1i)]);
    println!("{}", table.to_markdown());
    emit(&report, "fig11", &opts);
}
