//! Figure 2: branch MPKI of 64K TSL vs Inf TAGE vs Inf TSL across all 14
//! workloads.
//!
//! Paper values: 64K TSL 0.29–6.4 MPKI (avg 2.91); Inf TAGE reduces
//! mispredictions by 14–54% (avg 31.9%); Inf TSL by 36.5% on average.

use llbp_bench::{emit, engine, mean_reduction, sim_config, workload_specs, Opts};
use llbp_sim::engine::SweepSpec;
use llbp_sim::report::{f1, f2, Table};
use llbp_sim::PredictorKind;

fn main() {
    let opts = Opts::from_args();

    let spec = SweepSpec::new(
        vec![PredictorKind::Tsl64K, PredictorKind::InfTage, PredictorKind::InfTsl],
        workload_specs(&opts),
        sim_config(&opts),
    );
    let report = llbp_bench::run_sweep(&engine(&opts), &spec);

    let mut table = Table::new([
        "workload",
        "64K TSL MPKI",
        "Inf TAGE MPKI",
        "Inf TSL MPKI",
        "Inf TAGE red.",
        "Inf TSL red.",
    ]);
    let mut base_mpkis = Vec::new();
    let mut tage_reds = Vec::new();
    let mut tsl_reds = Vec::new();
    for (i, w) in opts.workloads.iter().enumerate() {
        let (base, inf_tage, inf_tsl) = (report.get(i, 0), report.get(i, 1), report.get(i, 2));
        let red_tage = inf_tage.mpki_reduction_vs(base);
        let red_tsl = inf_tsl.mpki_reduction_vs(base);
        base_mpkis.push(base.mpki());
        tage_reds.push(red_tage);
        tsl_reds.push(red_tsl);
        table.row([
            w.to_string(),
            f2(base.mpki()),
            f2(inf_tage.mpki()),
            f2(inf_tsl.mpki()),
            format!("{}%", f1(red_tage)),
            format!("{}%", f1(red_tsl)),
        ]);
    }
    table.row([
        "Mean".to_string(),
        f2(mean_reduction(&base_mpkis)),
        String::new(),
        String::new(),
        format!("{}%", f1(mean_reduction(&tage_reds))),
        format!("{}%", f1(mean_reduction(&tsl_reds))),
    ]);

    println!("# Figure 2 — MPKI for 64K TSL, Inf TAGE, Inf TSL");
    println!(
        "(paper: 64K TSL avg 2.91 MPKI; Inf TAGE −31.9% avg; Inf TSL −36.5% avg; \
         Inf TAGE captures ~87% of Inf TSL)\n"
    );
    println!("{}", table.to_markdown());
    emit(&report, "fig02", &opts);
}
