//! Figure 2: branch MPKI of 64K TSL vs Inf TAGE vs Inf TSL across all 14
//! workloads.
//!
//! Paper values: 64K TSL 0.29–6.4 MPKI (avg 2.91); Inf TAGE reduces
//! mispredictions by 14–54% (avg 31.9%); Inf TSL by 36.5% on average.
//!
//! The table rendering lives in [`llbp_bench::figures`] and is shared
//! with `llbp-coord`, whose distributed runs must reproduce this
//! binary's stdout byte-for-byte.

use llbp_bench::figures::{fig02_render, fig02_spec};
use llbp_bench::{emit, engine, Opts};

fn main() {
    let opts = Opts::from_args();
    let spec = fig02_spec(&opts);
    let report = llbp_bench::run_sweep(&engine(&opts), &spec);
    print!("{}", fig02_render(|w, p| report.get(w, p), &opts));
    emit(&report, "fig02", &opts);
}
