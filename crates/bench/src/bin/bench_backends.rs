//! Micro-harness comparing the execution backends on one workload.
//!
//! Runs the same predictor over the same trace once per backend tier and
//! reports wall time and branches/sec (best of three runs, so one-off
//! scheduler noise does not flip a comparison). Results are additionally
//! cross-checked for parity — a divergence aborts, because a fast wrong
//! backend is worse than useless.
//!
//! The markdown table feeds `results/sweep_throughput.md`; a JSON record
//! per backend goes to stderr for archival, mirroring `emit`.

use llbp_bench::Opts;
use llbp_sim::report::{f2, Table};
use llbp_sim::{BackendKind, PredictorKind, SimConfig};
use llbp_trace::{Workload, WorkloadSpec};
use std::time::Instant;

const RUNS: usize = 3;

fn main() {
    let mut opts = Opts::from_args();
    if opts.workloads.len() == Workload::ALL.len() {
        // Default to the paper's case-study workload.
        opts.workloads = vec![Workload::Tomcat];
    }
    let workload = opts.workloads[0];
    let trace = WorkloadSpec::named(workload).with_branches(opts.branches).generate();
    let kind = PredictorKind::Tsl64K;

    println!(
        "# Backend micro-benchmark — {} on {workload} ({} branch records, best of {RUNS})",
        kind.label(),
        trace.len()
    );
    println!("(auto resolves to `{}` on this build)\n", BackendKind::Auto.resolve());

    let mut table = Table::new(["backend", "wall_s", "branches_per_sec", "vs reference"]);
    let mut reference: Option<(f64, llbp_sim::SimResult)> = None;
    for backend in BackendKind::CONCRETE {
        let cfg = SimConfig::default().with_backend(backend);
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..RUNS {
            let start = Instant::now();
            let r = cfg.run(kind.clone(), &trace);
            best = best.min(start.elapsed().as_secs_f64());
            result = Some(r);
        }
        let result = result.expect("RUNS > 0");
        let bps = trace.len() as f64 / best;
        let speedup = match &reference {
            None => {
                reference = Some((best, result.clone()));
                "1.00x".to_string()
            }
            Some((ref_wall, ref_result)) => {
                assert_eq!(
                    &result, ref_result,
                    "backend `{backend}` diverged from reference — do not trust its timing"
                );
                format!("{}x", f2(ref_wall / best))
            }
        };
        table.row([
            backend.label().to_string(),
            format!("{best:.3}"),
            format!("{bps:.0}"),
            speedup,
        ]);
        eprintln!(
            "{{\"event\":\"backend_bench\",\"workload\":\"{workload}\",\"predictor\":\"{}\",\
             \"backend\":\"{}\",\"branches\":{},\"wall_s\":{best:.3},\"branches_per_sec\":{bps:.0}}}",
            kind.label(),
            backend.label(),
            trace.len()
        );
    }
    println!("{}", table.to_markdown());
    llbp_bench::export_telemetry(&opts);
}
