//! Figure 9: branch MPKI reduction over the 64K TSL baseline for LLBP,
//! LLBP-0Lat and the (impractical) 512K TSL.
//!
//! Paper values: LLBP −0.5…−25.9% (avg −8.9%); LLBP-0Lat avg −9.9% (LLBP
//! reaches ~90% of the no-latency ideal); 512K TSL −12.5…−45.9%
//! (avg −27.3%).

use llbp_bench::{emit, engine, mean_reduction, sim_config, workload_specs, Opts};
use llbp_core::LlbpParams;
use llbp_sim::engine::SweepSpec;
use llbp_sim::report::{f1, f2, Table};
use llbp_sim::PredictorKind;

fn main() {
    let opts = Opts::from_args();

    let spec = SweepSpec::new(
        vec![
            PredictorKind::Tsl64K,
            PredictorKind::Llbp(LlbpParams::default()),
            PredictorKind::Llbp(LlbpParams::zero_latency()),
            PredictorKind::TslScaled(8),
        ],
        workload_specs(&opts),
        sim_config(&opts),
    );
    let report = llbp_bench::run_sweep(&engine(&opts), &spec);

    let mut table =
        Table::new(["workload", "64K TSL MPKI", "LLBP red.", "LLBP-0Lat red.", "512K TSL red."]);
    let (mut r_llbp, mut r_0lat, mut r_big) = (Vec::new(), Vec::new(), Vec::new());
    for (i, w) in opts.workloads.iter().enumerate() {
        let (base, llbp, zerolat, big) =
            (report.get(i, 0), report.get(i, 1), report.get(i, 2), report.get(i, 3));
        let a = llbp.mpki_reduction_vs(base);
        let b = zerolat.mpki_reduction_vs(base);
        let c = big.mpki_reduction_vs(base);
        r_llbp.push(a);
        r_0lat.push(b);
        r_big.push(c);
        table.row([
            w.to_string(),
            f2(base.mpki()),
            format!("{}%", f1(a)),
            format!("{}%", f1(b)),
            format!("{}%", f1(c)),
        ]);
    }
    table.row([
        "Mean".to_string(),
        String::new(),
        format!("{}%", f1(mean_reduction(&r_llbp))),
        format!("{}%", f1(mean_reduction(&r_0lat))),
        format!("{}%", f1(mean_reduction(&r_big))),
    ]);

    println!("# Figure 9 — MPKI reduction over 64K TSL");
    println!("(paper: LLBP avg −8.9%; LLBP-0Lat avg −9.9%; 512K TSL avg −27.3%)\n");
    println!("{}", table.to_markdown());
    emit(&report, "fig09", &opts);
}
