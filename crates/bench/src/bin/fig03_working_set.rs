//! Figure 3: the branch working set of a Tomcat-like workload.
//!
//! (a) Cumulative mispredictions over static branches (sorted by 64K TSL
//!     misprediction count) for TSL capacities 64K…1M and Inf TSL.
//!     Paper: 0.8% of branches cause ~40% of mispredictions; capacity
//!     doublings shave only 4–7% each.
//! (b) Useful patterns per static branch under Inf TSL. Paper: average
//!     14.1, the most-mispredicted branches have 100–9500.

use llbp_bench::{emit, engine, sim_config, trace_cache, Opts};
use llbp_sim::engine::SweepSpec;
use llbp_sim::patterns::{rank_by_mispredictions, useful_patterns_per_branch};
use llbp_sim::report::{f1, f2, Table};
use llbp_sim::{PredictorKind, SimConfig};
use llbp_trace::{Workload, WorkloadSpec};

fn main() {
    let mut opts = Opts::from_args();
    if opts.workloads.len() == Workload::ALL.len() {
        // Default to the paper's case study.
        opts.workloads = vec![Workload::Tomcat];
    }
    let workload = opts.workloads[0];
    let cache = trace_cache(&opts);
    let wspec = WorkloadSpec::named(workload).with_branches(opts.branches);
    let trace = cache.get_or_generate(&wspec);

    // --- (a) cumulative mispredictions by capacity -----------------------
    let cfg = SimConfig { track_per_branch: true, ..sim_config(&opts) };
    let ranked = rank_by_mispredictions(&trace);
    let total_statics = ranked.len().max(1);
    let top_n = (total_statics as f64 * 0.008).ceil() as usize; // top 0.8%

    let configs: Vec<(String, PredictorKind)> = vec![
        ("64K TSL".into(), PredictorKind::Tsl64K),
        ("128K TSL".into(), PredictorKind::TslScaled(2)),
        ("256K TSL".into(), PredictorKind::TslScaled(4)),
        ("512K TSL".into(), PredictorKind::TslScaled(8)),
        ("1M TSL".into(), PredictorKind::TslScaled(16)),
        ("Inf TSL".into(), PredictorKind::InfTsl),
    ];
    let spec =
        SweepSpec::new(configs.iter().map(|(_, kind)| kind.clone()).collect(), vec![wspec], cfg);
    let report = llbp_bench::run_sweep_with_cache(&engine(&opts), &spec, &cache);

    println!("# Figure 3 — working set of {workload} ({total_statics} static branches)");
    println!("(paper: top 0.8% of branches ≈ 40% of mispredictions; doublings add −4…−7% each)\n");

    let mut table_a = Table::new(["config", "mispredicts", "vs 64K", "top-0.8% share"]);
    let mut base_mis = None;
    let top_set: std::collections::HashSet<u64> =
        ranked.iter().take(top_n).map(|&(pc, _)| pc).collect();
    for (i, (label, _)) in configs.iter().enumerate() {
        let r = report.get(0, i);
        let per_branch = r.per_branch_mispredicts.as_ref().expect("tracking enabled");
        let top_share: u64 =
            per_branch.iter().filter(|(pc, _)| top_set.contains(pc)).map(|(_, &m)| m).sum();
        let base = *base_mis.get_or_insert(r.mispredictions);
        table_a.row([
            label.clone(),
            r.mispredictions.to_string(),
            format!("{}%", f1(100.0 * (1.0 - r.mispredictions as f64 / base as f64))),
            format!("{}%", f1(100.0 * top_share as f64 / r.mispredictions.max(1) as f64)),
        ]);
    }
    println!("## (a) mispredictions vs capacity\n");
    println!("{}", table_a.to_markdown());

    // --- (b) useful patterns per branch under infinite capacity ----------
    let tracker = useful_patterns_per_branch(&trace);
    let hist = tracker.histogram();
    let mut top_patterns: Vec<u64> =
        ranked.iter().take(100).map(|&(pc, _)| tracker.patterns_for(pc) as u64).collect();
    top_patterns.sort_unstable();

    let mut table_b = Table::new(["metric", "value"]);
    table_b.row(["branches with useful patterns".to_string(), hist.count().to_string()]);
    table_b.row(["avg patterns/branch".to_string(), f2(hist.mean().unwrap_or(0.0))]);
    table_b.row([
        "p50 / p95 / max".to_string(),
        format!(
            "{} / {} / {}",
            hist.percentile(50.0).unwrap_or(0),
            hist.percentile(95.0).unwrap_or(0),
            hist.max().unwrap_or(0)
        ),
    ]);
    table_b.row([
        "top-100 mispredicted: median / max patterns".to_string(),
        format!(
            "{} / {}",
            top_patterns.get(top_patterns.len() / 2).copied().unwrap_or(0),
            top_patterns.last().copied().unwrap_or(0)
        ),
    ]);
    println!("## (b) useful patterns per branch (Inf TAGE)");
    println!("(paper: avg 14.1; top-100 branches have >100, up to ~9500)\n");
    println!("{}", table_b.to_markdown());
    emit(&report, "fig03", &opts);
}
