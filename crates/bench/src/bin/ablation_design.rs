//! Ablation study of LLBP's design choices (beyond the paper's explicit
//! sensitivity figures): pattern-set bucketing (§V-D), context-ID width,
//! CD replacement policy (the paper's "LRU is a poor policy choice"
//! claim), and prefetch-on-reset recovery.
//!
//! Each row is the mean MPKI reduction over the selected workloads versus
//! the 64K TSL baseline.

use llbp_bench::{emit, engine, mean_reduction, sim_config, workload_specs, Opts};
use llbp_core::{CdReplacement, LlbpParams};
use llbp_sim::engine::SweepSpec;
use llbp_sim::report::{f1, Table};
use llbp_sim::PredictorKind;

#[allow(clippy::field_reassign_with_default)]
fn variants() -> Vec<LlbpParams> {
    let mut v = Vec::new();
    v.push(LlbpParams::default());

    let mut nobkt = LlbpParams::default();
    nobkt.num_buckets = 1;
    nobkt.label = "no bucketing".into();
    v.push(nobkt);

    let mut cid31 = LlbpParams::default();
    cid31.cid_bits = 31;
    cid31.label = "31-bit CID".into();
    v.push(cid31);

    let mut lru = LlbpParams::default();
    lru.cd_replacement = CdReplacement::Lru;
    lru.label = "LRU CD replacement".into();
    v.push(lru);

    let mut nobkt_cid = LlbpParams::default();
    nobkt_cid.num_buckets = 1;
    nobkt_cid.cid_bits = 31;
    nobkt_cid.label = "no bucketing + 31-bit CID".into();
    v.push(nobkt_cid);

    let mut gated = LlbpParams::default();
    gated.weak_override_gate = true;
    gated.label = "weak-override gate".into();
    v.push(gated);

    v.push(LlbpParams::default().with_pb_entries(16));
    v.push(LlbpParams::default().with_pb_entries(256));
    v
}

fn main() {
    let opts = Opts::from_args();
    let variants = variants();

    let mut predictors = vec![PredictorKind::Tsl64K];
    predictors.extend(variants.iter().map(|p| PredictorKind::Llbp(p.clone())));
    let spec = SweepSpec::new(predictors, workload_specs(&opts), sim_config(&opts));
    let report = llbp_bench::run_sweep(&engine(&opts), &spec);

    println!("# Ablation — LLBP design choices (mean MPKI reduction vs 64K TSL)");
    println!(
        "(paper claims: bucketing costs little [§V-D]; LRU set replacement is poor [§V-D]; \
         64-entry PB is the sweet spot [§VII-C/D])\n"
    );
    let mut table = Table::new(["variant", "mean MPKI reduction"]);
    for (i, p) in variants.iter().enumerate() {
        let vals: Vec<f64> = (0..opts.workloads.len())
            .map(|w| report.get(w, 1 + i).mpki_reduction_vs(report.get(w, 0)))
            .collect();
        table.row([p.label.clone(), format!("{}%", f1(mean_reduction(&vals)))]);
    }
    println!("{}", table.to_markdown());
    emit(&report, "ablation", &opts);
}
