//! Figure 1: fraction of execution cycles wasted on conditional-branch
//! mispredictions, for the ten server workloads under the 64K TSL
//! baseline.
//!
//! Paper values (Sapphire Rapids hardware, Top-Down): 3.6–20% of cycles,
//! 9.2% on average. Here the timing model substitutes for hardware
//! counters (DESIGN.md §3).

use llbp_bench::{emit, engine, mean_reduction, sim_config, workload_specs, Opts};
use llbp_sim::engine::SweepSpec;
use llbp_sim::report::{pct, Table};
use llbp_sim::{PredictorKind, TimingModel};
use llbp_trace::Workload;

fn main() {
    let mut opts = Opts::from_args();
    // Fig. 1 covers only the server workloads (no Google traces).
    opts.workloads.retain(|w| Workload::SERVER.contains(w));

    let timing = TimingModel::default();

    let spec =
        SweepSpec::new(vec![PredictorKind::Tsl64K], workload_specs(&opts), sim_config(&opts));
    let report = llbp_bench::run_sweep(&engine(&opts), &spec);

    let mut table = Table::new(["workload", "wasted cycles"]);
    let mut fractions = Vec::new();
    for (i, w) in opts.workloads.iter().enumerate() {
        let r = report.get(i, 0);
        let wasted = timing.wasted_fraction(r.instructions, r.mispredictions);
        fractions.push(wasted);
        table.row([w.to_string(), pct(wasted)]);
    }
    table.row(["GMean/Mean".to_string(), pct(mean_reduction(&fractions))]);

    println!("# Figure 1 — execution cycles wasted on conditional mispredictions");
    println!("(paper: 3.6–20%, avg 9.2%, measured on Sapphire Rapids hardware)\n");
    println!("{}", table.to_markdown());
    emit(&report, "fig01", &opts);
}
