//! Figure 1: fraction of execution cycles wasted on conditional-branch
//! mispredictions, for the ten server workloads under the 64K TSL
//! baseline.
//!
//! Paper values (Sapphire Rapids hardware, Top-Down): 3.6–20% of cycles,
//! 9.2% on average. Here the timing model substitutes for hardware
//! counters (DESIGN.md §3).

use llbp_bench::{mean_reduction, Opts};
use llbp_sim::report::{pct, Table};
use llbp_sim::{PredictorKind, SimConfig, TimingModel};
use llbp_trace::Workload;

fn main() {
    let mut opts = Opts::from_args();
    // Fig. 1 covers only the server workloads (no Google traces).
    opts.workloads.retain(|w| Workload::SERVER.contains(w));

    let cfg = SimConfig::default();
    let timing = TimingModel::default();

    let rows = llbp_bench::parallel_over_workloads(&opts, |_w, trace| {
        let r = cfg.run(PredictorKind::Tsl64K, trace);
        timing.wasted_fraction(r.instructions, r.mispredictions)
    });

    let mut table = Table::new(["workload", "wasted cycles"]);
    let mut fractions = Vec::new();
    for (w, wasted) in &rows {
        fractions.push(*wasted);
        table.row([w.to_string(), pct(*wasted)]);
    }
    table.row(["GMean/Mean".to_string(), pct(mean_reduction(&fractions))]);

    println!("# Figure 1 — execution cycles wasted on conditional mispredictions");
    println!("(paper: 3.6–20%, avg 9.2%, measured on Sapphire Rapids hardware)\n");
    println!("{}", table.to_markdown());
}
