//! Table I: the evaluated workloads, plus the measured characteristics of
//! their synthetic stand-ins (working set, branch mix — §IV-2 cites a
//! 3.89 conditional-to-unconditional ratio).

use llbp_bench::figures::table01_render;
use llbp_bench::{trace_cache, workload_specs, Opts};
use llbp_sim::engine::{default_workers, run_indexed};
use std::time::Instant;

fn main() {
    let opts = Opts::from_args();

    // No predictor grid here, so this drives the engine's building blocks
    // directly: the bounded pool over the workload list, with traces going
    // through the shared (persistent) cache.
    let specs = workload_specs(&opts);
    let cache = trace_cache(&opts);
    let started = Instant::now();
    let rows =
        run_indexed(default_workers(), specs.len(), |i| cache.get_or_generate(&specs[i]).stats());
    let wall = started.elapsed();

    print!("{}", table01_render(&opts.workloads, &rows));
    eprintln!(
        "{{\"event\":\"sweep_throughput\",\"label\":\"table01\",\"jobs\":{},\"workers\":{},\
         \"wall_s\":{:.3},\"cache_misses\":{},\"trace_disk_hits\":{},\"trace_mib\":{:.1}}}",
        specs.len(),
        default_workers().min(specs.len().max(1)),
        wall.as_secs_f64(),
        cache.misses(),
        cache.disk_hits(),
        cache.memory_footprint() as f64 / (1024.0 * 1024.0),
    );
}
