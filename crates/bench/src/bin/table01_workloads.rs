//! Table I: the evaluated workloads, plus the measured characteristics of
//! their synthetic stand-ins (working set, branch mix — §IV-2 cites a
//! 3.89 conditional-to-unconditional ratio).

use llbp_bench::{parallel_over_workloads, Opts};
use llbp_sim::report::{f2, Table};

fn main() {
    let opts = Opts::from_args();

    let rows = parallel_over_workloads(&opts, |_w, trace| trace.stats());

    println!("# Table I — workloads (synthetic stand-ins; see DESIGN.md §3)\n");
    let mut table = Table::new([
        "application",
        "description",
        "static cond. branches",
        "cond:uncond",
        "taken rate",
    ]);
    for (w, s) in &rows {
        table.row([
            w.to_string(),
            w.description().to_string(),
            s.static_conditional.to_string(),
            f2(s.cond_per_uncond().unwrap_or(0.0)),
            f2(s.taken_rate().unwrap_or(0.0)),
        ]);
    }
    println!("{}", table.to_markdown());
}
