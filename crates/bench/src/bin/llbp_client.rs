//! `llbp-client` — thin command-line client for `llbp-serve`.
//!
//! The experiment binaries already route whole sweeps through the
//! daemon (`--server`); this tool covers the operational verbs scripts
//! need around them:
//!
//! ```text
//! llbp_client --server tcp://HOST:PORT submit [fig02 options...]
//! llbp_client --server tcp://HOST:PORT poll TICKET
//! llbp_client --server tcp://HOST:PORT metrics
//! llbp_client --server tcp://HOST:PORT shutdown
//! ```
//!
//! `submit` submits Figure 2's grid (honoring the standard experiment
//! flags) *without waiting*, printing the campaign ticket — fire, then
//! `poll` later, from this or any other machine. `poll` prints the
//! daemon's status text verbatim (`key value` lines). `metrics` scrapes
//! the live Prometheus rendering to stdout. `shutdown` asks the daemon
//! to stop accepting connections and exits once acknowledged.

use llbp_bench::figures::fig02_spec;
use llbp_bench::Opts;
use llbp_sim::serve::client::ServeClient;
use llbp_trace::fingerprint::Fingerprint;

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: llbp_client --server tcp://HOST:PORT \
         (submit [fig02 options...] | poll TICKET | metrics | shutdown)"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

fn fail(e: &llbp_sim::SimError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(e.exit_code());
}

fn main() {
    let mut server: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--server" => {
                server = Some(args.next().unwrap_or_else(|| usage("--server needs an address")));
            }
            "--help" | "-h" => usage(""),
            _ => {
                rest.push(arg);
                rest.extend(args.by_ref());
            }
        }
    }
    let server = server.unwrap_or_else(|| usage("--server is required"));
    let mut client = ServeClient::connect(&server).unwrap_or_else(|e| fail(&e));
    let Some((verb, verb_args)) = rest.split_first() else { usage("missing command") };
    match verb.as_str() {
        "submit" => {
            let opts = Opts::parse(verb_args.iter().cloned());
            let spec = fig02_spec(&opts);
            let ticket = client.submit(&spec).unwrap_or_else(|e| fail(&e));
            println!("{ticket}");
        }
        "poll" => {
            let [ticket] = verb_args else { usage("poll needs exactly one TICKET") };
            let ticket = u128::from_str_radix(ticket.trim_start_matches("0x"), 16)
                .unwrap_or_else(|e| usage(&format!("bad ticket `{ticket}`: {e}")));
            let status = client.poll(Fingerprint(ticket)).unwrap_or_else(|e| fail(&e));
            print!("{}", status.to_text());
            std::process::exit(i32::from(status.error.is_some()));
        }
        "metrics" => {
            print!("{}", client.metrics().unwrap_or_else(|e| fail(&e)));
        }
        "shutdown" => {
            client.shutdown_daemon().unwrap_or_else(|e| fail(&e));
            eprintln!("llbp-client: daemon acknowledged shutdown");
        }
        other => usage(&format!("unknown command `{other}`")),
    }
}
