//! Figure 5: sensitivity of patterns-per-context to the context window
//! depth `W` — the paper's central evidence for context locality.
//!
//! Paper values (top-128 most-mispredicted branches, Inf TAGE):
//! `W=0` p50 298 / p95 2384 → `W=2` p50 3 / p95 121 → `W=32` p50 1 / p95 9.

use llbp_bench::Opts;
use llbp_sim::patterns::{rank_by_mispredictions, useful_patterns_per_context};
use llbp_sim::report::Table;
use llbp_trace::Workload;

const WINDOWS: [usize; 6] = [0, 2, 4, 8, 16, 32];
const FOCUS_TOP: usize = 128;

fn main() {
    let mut opts = Opts::from_args();
    if opts.workloads.len() == Workload::ALL.len() {
        // Aggregating all 14 workloads is expensive; default to a
        // representative trio spanning the context-dependence range.
        opts.workloads = vec![Workload::NodeApp, Workload::Tomcat, Workload::Merced];
    }

    println!("# Figure 5 — useful patterns per context vs window depth W");
    println!("(paper: W=0 p50 298 / p95 2384; W=2 p50 3 / p95 121; W=32 p50 1 / p95 9)\n");

    for w in &opts.workloads {
        let trace = opts.trace(*w);
        let ranked = rank_by_mispredictions(&trace);
        let focus: Vec<u64> = ranked.iter().take(FOCUS_TOP).map(|&(pc, _)| pc).collect();

        let mut table = Table::new(["W", "contexts", "p50", "p95", "max"]);
        for &window in &WINDOWS {
            let hist = useful_patterns_per_context(&trace, window, &focus);
            table.row([
                window.to_string(),
                hist.count().to_string(),
                hist.percentile(50.0).unwrap_or(0).to_string(),
                hist.percentile(95.0).unwrap_or(0).to_string(),
                hist.max().unwrap_or(0).to_string(),
            ]);
        }
        println!("## {w} (top {FOCUS_TOP} mispredicted branches)\n");
        println!("{}", table.to_markdown());
    }
}
