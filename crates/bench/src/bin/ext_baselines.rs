//! Extension experiment: historical baselines vs TAGE-SC-L vs LLBP.
//!
//! Not a paper figure — context for the headline numbers: three decades
//! of direction predictors (gshare → two-level local → hashed perceptron
//! → TAGE-SC-L → TAGE-SC-L + LLBP) on the same workloads, with storage
//! budgets for scale.

use llbp_bench::{parallel_over_workloads, Opts};
use llbp_core::LlbpParams;
use llbp_sim::report::{f2, Table};
use llbp_sim::{PredictorKind, SimConfig};
use llbp_tage::classic::{Gshare, HashedPerceptron, TwoLevelLocal};

fn main() {
    let opts = Opts::from_args();
    let cfg = SimConfig::default();

    let rows = parallel_over_workloads(&opts, |_w, trace| {
        // Budgets loosely matched to 64 KiB-class designs.
        let mut gshare = Gshare::new(18, 16); // 64 KiB
        let mut twolevel = TwoLevelLocal::new(15, 14); // ≈64 KiB
        let mut perceptron = HashedPerceptron::new(8, 13, 6); // 64 KiB
        let g = cfg.run_predictor(&mut gshare, trace).mpki();
        let t = cfg.run_predictor(&mut twolevel, trace).mpki();
        let p = cfg.run_predictor(&mut perceptron, trace).mpki();
        let tsl = cfg.run(PredictorKind::Tsl64K, trace).mpki();
        let llbp = cfg.run(PredictorKind::Llbp(LlbpParams::default()), trace).mpki();
        (g, t, p, tsl, llbp)
    });

    println!("# Extension — predictor generations (MPKI)");
    println!("(equal ≈64 KiB budgets; LLBP adds its 517 KiB second level)\n");
    let mut table =
        Table::new(["workload", "gshare", "2level", "perceptron", "64K TSL", "+LLBP"]);
    let mut sums = [0.0f64; 5];
    for (w, (g, t, p, tsl, llbp)) in &rows {
        for (s, v) in sums.iter_mut().zip([g, t, p, tsl, llbp]) {
            *s += *v / rows.len() as f64;
        }
        table.row([w.to_string(), f2(*g), f2(*t), f2(*p), f2(*tsl), f2(*llbp)]);
    }
    table.row([
        "Mean".to_string(),
        f2(sums[0]),
        f2(sums[1]),
        f2(sums[2]),
        f2(sums[3]),
        f2(sums[4]),
    ]);
    println!("{}", table.to_markdown());
}
