//! Extension experiment: historical baselines vs TAGE-SC-L vs LLBP.
//!
//! Not a paper figure — context for the headline numbers: three decades
//! of direction predictors (gshare → two-level local → hashed perceptron
//! → TAGE-SC-L → TAGE-SC-L + LLBP) on the same workloads, with storage
//! budgets for scale.

use llbp_bench::{emit, engine, sim_config, workload_specs, Opts};
use llbp_core::LlbpParams;
use llbp_sim::engine::SweepSpec;
use llbp_sim::report::{f2, Table};
use llbp_sim::PredictorKind;

fn main() {
    let opts = Opts::from_args();

    // Budgets loosely matched to 64 KiB-class designs.
    let spec = SweepSpec::new(
        vec![
            PredictorKind::Gshare { index_bits: 18, history_bits: 16 }, // 64 KiB
            PredictorKind::TwoLevelLocal { bht_bits: 15, local_bits: 14 }, // ≈64 KiB
            PredictorKind::HashedPerceptron { tables: 8, index_bits: 13, segment_bits: 6 }, // 64 KiB
            PredictorKind::Tsl64K,
            PredictorKind::Llbp(LlbpParams::default()),
        ],
        workload_specs(&opts),
        sim_config(&opts),
    );
    let report = llbp_bench::run_sweep(&engine(&opts), &spec);

    let rows: Vec<_> = opts
        .workloads
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            (
                w,
                (
                    report.get(i, 0).mpki(),
                    report.get(i, 1).mpki(),
                    report.get(i, 2).mpki(),
                    report.get(i, 3).mpki(),
                    report.get(i, 4).mpki(),
                ),
            )
        })
        .collect();

    println!("# Extension — predictor generations (MPKI)");
    println!("(equal ≈64 KiB budgets; LLBP adds its 517 KiB second level)\n");
    let mut table = Table::new(["workload", "gshare", "2level", "perceptron", "64K TSL", "+LLBP"]);
    let mut sums = [0.0f64; 5];
    for (w, (g, t, p, tsl, llbp)) in &rows {
        for (s, v) in sums.iter_mut().zip([g, t, p, tsl, llbp]) {
            *s += *v / rows.len() as f64;
        }
        table.row([w.to_string(), f2(*g), f2(*t), f2(*p), f2(*tsl), f2(*llbp)]);
    }
    table.row([
        "Mean".to_string(),
        f2(sums[0]),
        f2(sums[1]),
        f2(sums[2]),
        f2(sums[3]),
        f2(sums[4]),
    ]);
    println!("{}", table.to_markdown());
    emit(&report, "ext_baselines", &opts);
}
