//! Figure 13: sensitivity of the MPKI reduction to the context-history
//! type (Uncond / Call-Ret / All) and the prefetch distance `D`.
//!
//! Paper: with D = 0 every history type sits at 3.5–4.8% (prefetches are
//! always late); Uncond peaks at −8.9% around D = 4; Call/Ret is too
//! coarse; All degrades as D grows (conditional noise).

use llbp_bench::{emit, engine, mean_reduction, sim_config, workload_specs, Opts};
use llbp_core::{ContextHistoryKind, LlbpParams};
use llbp_sim::engine::SweepSpec;
use llbp_sim::report::{f1, Table};
use llbp_sim::PredictorKind;

const DISTANCES: [usize; 6] = [0, 2, 4, 6, 8, 12];
const KINDS: [(ContextHistoryKind, &str); 3] = [
    (ContextHistoryKind::Unconditional, "Uncond"),
    (ContextHistoryKind::CallReturn, "Call/Ret"),
    (ContextHistoryKind::All, "All"),
];

fn main() {
    let opts = Opts::from_args();

    // Predictor 0 is the baseline; then kind-major × distance-minor.
    let mut predictors = vec![PredictorKind::Tsl64K];
    for (kind, _) in KINDS {
        for &d in &DISTANCES {
            let params = LlbpParams {
                history_kind: kind,
                prefetch_distance: d,
                label: format!("LLBP-{kind:?}-D{d}"),
                ..LlbpParams::default()
            };
            predictors.push(PredictorKind::Llbp(params));
        }
    }
    let spec = SweepSpec::new(predictors, workload_specs(&opts), sim_config(&opts));
    let report = llbp_bench::run_sweep(&engine(&opts), &spec);

    println!("# Figure 13 — CID history type × prefetch distance D (mean MPKI reduction)");
    println!(
        "(paper: all types ≈3.5–4.8% at D=0; Uncond best ≈8.9% at D=4; All degrades with D)\n"
    );
    let mut table = Table::new(
        std::iter::once("history".to_string()).chain(DISTANCES.iter().map(|d| format!("D={d}"))),
    );
    for (k, (_, name)) in KINDS.iter().enumerate() {
        let mut cells = vec![(*name).to_string()];
        for (di, _) in DISTANCES.iter().enumerate() {
            let vals: Vec<f64> = (0..opts.workloads.len())
                .map(|w| {
                    let base = report.get(w, 0);
                    report.get(w, 1 + k * DISTANCES.len() + di).mpki_reduction_vs(base)
                })
                .collect();
            cells.push(format!("{}%", f1(mean_reduction(&vals))));
        }
        table.row(cells);
    }
    println!("{}", table.to_markdown());
    emit(&report, "fig13", &opts);
}
