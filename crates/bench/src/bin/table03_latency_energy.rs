//! Table III: access latency and energy of the LLBP structures relative
//! to 64K TSL, from the calibrated analytic model (substituting for
//! CACTI 7.0 at 22 nm — DESIGN.md §3).
//!
//! Paper anchors: 512KiB TSL 2.55× latency / 4 cycles / 4.58× energy;
//! LLBP 2.68× / 4 / 4.44×; CD 0.8× / 1 / 0.3×; PB 0.62× / 1 / 0.25×.

use llbp_core::LlbpParams;
use llbp_sim::report::{f2, Table};
use llbp_sim::EnergyModel;

fn main() {
    let model = EnergyModel::default();
    let params = LlbpParams::default();

    println!("# Table III — relative access latency & energy (4 GHz)\n");
    let mut table = Table::new([
        "component",
        "rel. latency",
        "cycles",
        "rel. energy",
        "paper (lat/cyc/energy)",
    ]);
    let paper: [(&str, &str); 5] = [
        ("64KiB TSL", "1.00 / 2 / 1.00"),
        ("512KiB TSL", "2.55 / 4 / 4.58"),
        ("LLBP", "2.68 / 4 / 4.44"),
        ("CD", "0.80 / 1 / 0.30"),
        ("PB (64 entries)", "0.62 / 1 / 0.25"),
    ];
    for (row, (_, paper_vals)) in model.table3(&params).iter().zip(paper) {
        table.row([
            row.name.clone(),
            f2(row.relative_latency),
            row.cycles.to_string(),
            f2(row.relative_energy),
            paper_vals.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "\nPrefetch delay used by the simulator: CD ({} cycle) + LLBP ({} cycles) + 1 logic = {} cycles",
        model.cycles(params.cd_bits() as f64),
        model.cycles(params.storage_bits() as f64),
        model.cycles(params.cd_bits() as f64) + model.cycles(params.storage_bits() as f64) + 1
    );
}
