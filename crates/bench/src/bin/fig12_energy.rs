//! Figure 12: dynamic energy of the LLBP designs relative to 64K TSL,
//! from per-access energies (Table III model) × measured access counts.
//!
//! Paper values: all LLBP structures combined ≈51–57% of 64K TSL's
//! energy; the 64-entry PB is the optimum; total LLBP ≈1.53× the
//! baseline vs 4.58× for a 512K TSL.

use llbp_bench::{emit, engine, sim_config, workload_specs, Opts};
use llbp_core::LlbpParams;
use llbp_sim::energy::TSL64K_BITS;
use llbp_sim::engine::SweepSpec;
use llbp_sim::report::{f2, Table};
use llbp_sim::{EnergyModel, PredictorKind};

const PB_SIZES: [usize; 3] = [16, 64, 256];

fn main() {
    let opts = Opts::from_args();
    let model = EnergyModel::default();

    let spec = SweepSpec::new(
        PB_SIZES
            .iter()
            .map(|&pb| PredictorKind::Llbp(LlbpParams::default().with_pb_entries(pb)))
            .collect(),
        workload_specs(&opts),
        sim_config(&opts),
    );
    let report = llbp_bench::run_sweep(&engine(&opts), &spec);

    println!("# Figure 12 — relative dynamic energy (baseline 64K TSL = 1.0)");
    println!(
        "(paper: LLBP structures ≈0.51–0.57; LLBP total ≈1.53×; 512K TAGE ≈4.58×; \
         64-entry PB optimal)\n"
    );
    let mut table = Table::new(["config", "TSL", "PB", "CD", "LLBP", "total", "LLBP structures"]);
    for (i, &pb) in PB_SIZES.iter().enumerate() {
        let params = LlbpParams::default().with_pb_entries(pb);
        let n = opts.workloads.len().max(1) as f64;
        let (mut pb_e, mut cd_e, mut llbp_e) = (0.0, 0.0, 0.0);
        for (w, _) in opts.workloads.iter().enumerate() {
            let stats = &report.get(w, i).llbp.as_ref().expect("LLBP cell stats").llbp;
            let e = model.fig12(stats, &params, pb);
            pb_e += e.pb / n;
            cd_e += e.cd / n;
            llbp_e += e.llbp / n;
        }
        table.row([
            format!("{pb}-entry PB"),
            f2(1.0),
            f2(pb_e),
            f2(cd_e),
            f2(llbp_e),
            f2(1.0 + pb_e + cd_e + llbp_e),
            f2(pb_e + cd_e + llbp_e),
        ]);
    }
    let big = EnergyModel::default().relative_energy(8.0 * TSL64K_BITS);
    table.row([
        "512KiB TAGE".to_string(),
        f2(big),
        String::new(),
        String::new(),
        String::new(),
        f2(big),
        String::new(),
    ]);
    println!("{}", table.to_markdown());
    emit(&report, "fig12", &opts);
}
