//! Figure 10: speedup over the 64K TSL baseline for LLBP, LLBP-0Lat,
//! 512K TSL and a perfect conditional branch predictor.
//!
//! Paper values: LLBP avg +0.63%, LLBP-0Lat +0.71%, 512K TSL +1.26%,
//! perfect BP +3.6% (the paper notes ChampSim's core model understates
//! the perfect-BP headroom; our analytic model is similarly soft on
//! absolutes — the ordering is the reproducible part).

use llbp_bench::{emit, engine, mean_reduction, sim_config, workload_specs, Opts};
use llbp_core::LlbpParams;
use llbp_sim::engine::SweepSpec;
use llbp_sim::report::{f2, Table};
use llbp_sim::{PredictorKind, TimingModel};

fn main() {
    let opts = Opts::from_args();
    let timing = TimingModel::default();

    let spec = SweepSpec::new(
        vec![
            PredictorKind::Tsl64K,
            PredictorKind::Llbp(LlbpParams::default()),
            PredictorKind::Llbp(LlbpParams::zero_latency()),
            PredictorKind::TslScaled(8),
        ],
        workload_specs(&opts),
        sim_config(&opts),
    );
    let report = llbp_bench::run_sweep(&engine(&opts), &spec);

    let rows: Vec<_> = opts
        .workloads
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let (base, llbp, zerolat, big) =
                (report.get(i, 0), report.get(i, 1), report.get(i, 2), report.get(i, 3));
            let insts = base.instructions;
            (
                w,
                (
                    timing.speedup(insts, base.mispredictions, llbp.mispredictions),
                    timing.speedup(insts, base.mispredictions, zerolat.mispredictions),
                    timing.speedup(insts, base.mispredictions, big.mispredictions),
                    timing.speedup(insts, base.mispredictions, 0),
                ),
            )
        })
        .collect();

    let mut table = Table::new(["workload", "LLBP", "LLBP-0Lat", "512K TSL", "Perfect BP"]);
    let (mut s1, mut s2, mut s3, mut s4) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for (w, (llbp, zerolat, big, perfect)) in &rows {
        s1.push(*llbp);
        s2.push(*zerolat);
        s3.push(*big);
        s4.push(*perfect);
        table.row([w.to_string(), f2(*llbp), f2(*zerolat), f2(*big), f2(*perfect)]);
    }
    table.row([
        "Mean".to_string(),
        f2(mean_reduction(&s1)),
        f2(mean_reduction(&s2)),
        f2(mean_reduction(&s3)),
        f2(mean_reduction(&s4)),
    ]);

    println!("# Figure 10 — speedup over 64K TSL (timing model)");
    println!("(paper: LLBP +0.63%, LLBP-0Lat +0.71%, 512K TSL +1.26%, perfect +3.6% on average)\n");
    println!("{}", table.to_markdown());
    emit(&report, "fig10", &opts);
}
