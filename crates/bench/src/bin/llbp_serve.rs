//! `llbp-serve` — the resident campaign daemon (DESIGN.md §12).
//!
//! Accepts sweep submissions over the length-prefixed TCP protocol,
//! runs them in-process on the `llbp-coord` shard machinery, dedups
//! cells across concurrent campaigns, and streams results back as they
//! publish. Any experiment binary routes through it with
//! `--server tcp://host:port` and prints byte-identical output to a
//! local run; `llbp_client` speaks the protocol directly (submit, poll,
//! metrics scrape, shutdown).
//!
//! ```text
//! llbp_serve [--addr HOST:PORT] [--root DIR] [--print-addr]
//! ```
//!
//! `--addr` defaults to `127.0.0.1:0` (ephemeral; combine with
//! `--print-addr`, which writes the bound address to stdout as its own
//! line so scripts can capture it). `--root` defaults to the
//! `LLBP_CACHE_DIR`/`target/llbp-cache` resolution every binary uses —
//! point it at the same root as a previous incarnation and interrupted
//! campaigns resume from their journals and published cells.
//!
//! Knobs: `LLBP_SERVE_WORKERS` (threads per campaign),
//! `LLBP_SERVE_MAX_PASSES` (reconcile budget), `LLBP_FAULT_SPEC`
//! (fault injection, including `crash:merge` and the `net:*` family).

use llbp_bench::fault_injector;
use llbp_sim::memo::{CACHE_DIR_ENV, DEFAULT_CACHE_DIR};
use llbp_sim::serve::ServeDaemon;
use llbp_sim::MemoStore;
use std::sync::Arc;

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: llbp_serve [--addr HOST:PORT] [--root DIR] [--print-addr]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut root: Option<String> = None;
    let mut print_addr = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage("--addr needs HOST:PORT")),
            "--root" => root = Some(args.next().unwrap_or_else(|| usage("--root needs DIR"))),
            "--print-addr" => print_addr = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = root.or_else(|| std::env::var(CACHE_DIR_ENV).ok()).filter(|r| !r.trim().is_empty());
    let root = std::path::PathBuf::from(root.unwrap_or_else(|| DEFAULT_CACHE_DIR.to_string()));

    let faults = fault_injector();
    let mut store = match MemoStore::open(&root) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("error: cannot open cache root {}: {e}", root.display());
            std::process::exit(1);
        }
    };
    if let Some(faults) = faults.clone() {
        store.attach_faults(faults);
    }

    let daemon = match ServeDaemon::bind(&addr, Arc::new(store), faults) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("error: cannot serve {addr}: {e}");
            std::process::exit(4);
        }
    };
    let bound = daemon.local_addr();
    if print_addr {
        // Scripts parse this line; keep it bare.
        println!("{bound}");
        use std::io::Write;
        let _ = std::io::stdout().flush();
    }
    eprintln!("llbp-serve: serving campaigns from {} at {bound}", root.display());
    daemon.run();
    eprintln!("llbp-serve: shut down cleanly");
}
