//! `llbp-coord` — distributed campaign coordinator.
//!
//! Shards Figure 2's sweep grid across worker *processes* using
//! lease-based work claims, then merges the per-worker journals and
//! metric snapshots into one campaign report whose stdout is
//! byte-identical to a single-process `fig02_mpki_limits` run of the
//! same grid (the tier-1 chaos smoke diffs exactly that).
//!
//! ```text
//! llbp_coord [--workers N] [fig02 options...]
//! ```
//!
//! All non-coordinator options (`--quick`, `--workloads`, `--strict`,
//! `--metrics-out`, ...) are the standard experiment flags and are
//! forwarded verbatim to each worker. Workers are this same binary
//! re-spawned with `LLBP_COORD_WORKER=<id>`; they claim cells, publish
//! results through the configured store (`LLBP_STORE`), and append to
//! their own shard journal. Crashed workers (including kills staged via
//! `LLBP_WORKER_ABORT=<worker>:<nth-claim>`) are recovered by the
//! coordinator's reconcile pass, which steals their stale leases and
//! re-runs whatever they had not published.

use llbp_bench::figures::{fig02_render, fig02_spec};
use llbp_bench::{fault_injector, memo_store, telemetry, Opts};
use llbp_obs::MetricsSnapshot;
use llbp_sim::coord::{
    finish_campaign, grid_fingerprints, run_shard, worker_metrics_path, ShardConfig,
};
use llbp_sim::journal::{campaign_fingerprint, CellOutcome};
use llbp_sim::{MemoStore, SimResult};
use std::process::{Command, Stdio};
use std::sync::Arc;

/// Set on spawned workers: their worker id. Its presence selects worker
/// mode, so the coordinator and its workers can be one binary.
const WORKER_ID_ENV: &str = "LLBP_COORD_WORKER";

/// Reconcile passes before the coordinator gives up on cells held by
/// live foreign processes.
const MAX_RECONCILE_PASSES: u32 = 5;

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: llbp_coord [--workers N] [fig02 options...]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

fn main() {
    let mut workers = 2u32;
    let mut forwarded: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let v = args.next().unwrap_or_else(|| usage("--workers needs a count"));
                workers = v.parse().unwrap_or_else(|_| usage(&format!("bad --workers: {v}")));
                if workers == 0 {
                    usage("--workers must be >= 1");
                }
            }
            "--help" | "-h" => usage(""),
            other => forwarded.push(other.to_string()),
        }
    }
    let opts = Opts::parse(forwarded.iter().cloned());
    let store = memo_store(&opts).unwrap_or_else(|| {
        eprintln!("error: distributed campaigns need a memo store (cache root unavailable)");
        std::process::exit(1);
    });

    match std::env::var(WORKER_ID_ENV).ok().and_then(|v| v.parse::<u32>().ok()) {
        Some(id) => worker_main(id, &opts, &store),
        None => coordinator_main(workers, &forwarded, &opts, &store),
    }
}

/// Worker mode: one shard pass over the grid, then (if telemetry is on)
/// a metrics snapshot file for the coordinator to merge.
fn worker_main(id: u32, opts: &Opts, store: &Arc<MemoStore>) -> ! {
    let spec = fig02_spec(opts);
    let cfg = shard_config(id);
    match run_shard(&spec, store, fault_injector().as_ref(), &cfg) {
        Ok(summary) => {
            eprintln!(
                "llbp-coord: worker {id} done: claimed {} (completed {}, memo {}, \
                 failed {}, lost {}), skipped {}, takeovers {}",
                summary.claimed,
                summary.completed,
                summary.memo_served,
                summary.failed,
                summary.lost,
                summary.skipped,
                summary.takeovers,
            );
            let snapshot = telemetry(opts).metrics();
            if !snapshot.is_empty() {
                let campaign = campaign_fingerprint(&grid_fingerprints(&spec, store));
                let path = worker_metrics_path(store.root(), campaign, id);
                if let Err(e) = std::fs::write(&path, snapshot.to_text()) {
                    eprintln!("warning: cannot write worker metrics to {}: {e}", path.display());
                }
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: worker {id}: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

/// Coordinator mode: spawn the workers, wait, reconcile, merge, render.
fn coordinator_main(workers: u32, forwarded: &[String], opts: &Opts, store: &Arc<MemoStore>) -> ! {
    let spec = fig02_spec(opts);
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("error: cannot locate own binary to spawn workers: {e}");
        std::process::exit(1);
    });
    let mut children = Vec::new();
    for id in 0..workers {
        let child = Command::new(&exe)
            .args(forwarded)
            .env(WORKER_ID_ENV, id.to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn();
        match child {
            Ok(child) => children.push((id, child)),
            Err(e) => eprintln!("warning: cannot spawn worker {id}: {e} (reconcile will cover it)"),
        }
    }
    let mut worker_failures = 0u32;
    for (id, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                worker_failures += 1;
                eprintln!("llbp-coord: worker {id} exited abnormally ({status}); reconciling");
            }
            Err(e) => {
                worker_failures += 1;
                eprintln!("llbp-coord: cannot wait for worker {id}: {e}; reconciling");
            }
        }
    }

    // Reconcile in-process: the coordinator takes the next worker id so
    // its shard journal merges like any other worker's.
    let cfg = shard_config(workers);
    let merge =
        finish_campaign(&spec, store, fault_injector().as_ref(), &cfg, MAX_RECONCILE_PASSES)
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(e.exit_code());
            });

    // Merge the workers' shipped metric snapshots with our own registry.
    let mut metrics = telemetry(opts).metrics();
    for id in 0..=workers {
        let path = worker_metrics_path(store.root(), merge.campaign, id);
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        match MetricsSnapshot::from_text(&text) {
            Ok(shard) => metrics.merge(&shard),
            Err(e) => eprintln!("warning: skipping torn metrics snapshot {}: {e}", path.display()),
        }
    }
    if let Some(path) = &opts.metrics_out {
        if let Err(e) = std::fs::write(path, llbp_obs::export::prometheus(&metrics)) {
            eprintln!("warning: cannot write metrics to {path}: {e}");
        }
    }

    let failed = merge.cells.iter().filter(|cell| cell.is_none()).count();
    let placeholders: Vec<SimResult> =
        (0..merge.cells.len()).map(|index| placeholder_result(&spec, index)).collect();
    print!(
        "{}",
        fig02_render(
            |w, p| {
                let index = w * spec.predictors.len() + p;
                merge.cells[index].as_ref().map_or(&placeholders[index], |cell| &cell.result)
            },
            opts,
        )
    );
    eprintln!(
        "{{\"event\":\"coord_campaign\",\"workers\":{workers},\"cells\":{},\"failed\":{failed},\
         \"worker_failures\":{worker_failures},\"reconcile_passes\":{},\"lease_takeovers\":{},\
         \"journal\":\"{}\"}}",
        merge.cells.len(),
        merge.passes,
        merge.takeovers,
        merge.journal.display(),
    );
    for (cell, outcome) in &merge.outcomes {
        if let CellOutcome::Failed { class } = outcome {
            eprintln!("warning: cell {cell} ultimately failed ({class})");
        }
    }
    if opts.strict && failed > 0 {
        eprintln!("error: {failed} of {} cells failed", merge.cells.len());
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// [`ShardConfig::from_env`] with the standard knob-error exit: a
/// malformed `LLBP_MAX_RETRIES` is a configuration error (status 2),
/// the same contract every other `LLBP_*` knob follows.
fn shard_config(worker: u32) -> ShardConfig {
    ShardConfig::from_env(worker).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    })
}

/// The engine's all-zero placeholder for a failed cell, so the grid
/// still renders (and `--strict` decides the exit status).
fn placeholder_result(spec: &llbp_sim::SweepSpec, index: usize) -> SimResult {
    let (workload, predictor) = (index / spec.predictors.len(), index % spec.predictors.len());
    SimResult {
        label: spec.predictors[predictor].label(),
        workload: spec.workloads[workload].name().to_string(),
        instructions: 0,
        conditional_branches: 0,
        mispredictions: 0,
        provider_counts: Default::default(),
        per_branch_mispredicts: None,
        per_branch_executions: None,
        llbp: None,
    }
}
