//! Figure 15: breakdown of LLBP's predictions into No-Override, Good/Bad
//! Override, Both-Correct and Both-Wrong, plus the provider mix.
//!
//! Paper values: LLBP provides for 14.8% of dynamic conditional branches;
//! when it matches, it overrides in 77% of cases; only 6.8% of overrides
//! are bad; 59% of overrides are redundant (both agree); 49% of all
//! predictions come from the bimodal table.

use llbp_bench::{emit, engine, sim_config, workload_specs, Opts};
use llbp_core::{LlbpParams, LlbpStats};
use llbp_sim::engine::SweepSpec;
use llbp_sim::report::{pct, Table};
use llbp_sim::PredictorKind;

fn main() {
    let opts = Opts::from_args();

    let spec = SweepSpec::new(
        vec![PredictorKind::Llbp(LlbpParams::default())],
        workload_specs(&opts),
        sim_config(&opts),
    );
    let report = llbp_bench::run_sweep(&engine(&opts), &spec);

    let mut total = LlbpStats::default();
    let mut conds = 0u64;
    let mut bim = 0u64;
    for (i, _w) in opts.workloads.iter().enumerate() {
        let result = report.get(i, 0);
        let s = &result.llbp.as_ref().expect("LLBP cell stats").llbp;
        total.predictions += s.predictions;
        total.llbp_matches += s.llbp_matches;
        total.no_override += s.no_override;
        total.good_override += s.good_override;
        total.bad_override += s.bad_override;
        total.both_correct += s.both_correct;
        total.both_wrong += s.both_wrong;
        conds += result.conditional_branches;
        bim += result.provider_counts.get("bim").copied().unwrap_or(0);
    }
    assert!(total.breakdown_is_consistent());

    let matches = total.llbp_matches.max(1) as f64;
    let overrides = total.overrides().max(1) as f64;

    println!("# Figure 15 — LLBP prediction breakdown (all workloads combined)");
    println!(
        "(paper: LLBP matches 14.8% of predictions; 77% of matches override; \
         6.8% of overrides bad; 59% redundant; bimodal provides 49% of all predictions)\n"
    );
    let mut table = Table::new(["metric", "value"]);
    table.row([
        "LLBP match rate".to_string(),
        pct(total.llbp_matches as f64 / total.predictions.max(1) as f64),
    ]);
    table.row(["override rate (of matches)".to_string(), pct(overrides / matches)]);
    table.row(["no-override (of matches)".to_string(), pct(total.no_override as f64 / matches)]);
    table.row([
        "good override (of overrides)".to_string(),
        pct(total.good_override as f64 / overrides),
    ]);
    table.row([
        "bad override (of overrides)".to_string(),
        pct(total.bad_override as f64 / overrides),
    ]);
    table.row([
        "redundant (both agree, of overrides)".to_string(),
        pct((total.both_correct + total.both_wrong) as f64 / overrides),
    ]);
    table.row([
        "bimodal share of all predictions".to_string(),
        pct(bim as f64 / conds.max(1) as f64),
    ]);
    println!("{}", table.to_markdown());
    emit(&report, "fig15", &opts);
}
