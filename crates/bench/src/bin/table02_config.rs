//! Table II: the simulated processor parameters, as instantiated by this
//! reproduction's models.

use llbp_core::LlbpParams;
use llbp_sim::report::Table;
use llbp_sim::TimingModel;
use llbp_tage::TslConfig;

fn main() {
    let timing = TimingModel::default();
    let tsl = TslConfig::cbp64k();
    let llbp = LlbpParams::default();

    println!("# Table II — simulated processor parameters\n");
    let mut table = Table::new(["component", "parameters"]);
    table.row([
        "Core (timing model)".to_string(),
        format!(
            "{}-wide fetch, {}-cycle misprediction penalty (paper: 4GHz 6-way OoO, 512 ROB)",
            timing.fetch_width, timing.mispredict_penalty
        ),
    ]);
    table.row([
        "Branch predictor".to_string(),
        format!(
            "{}: {} tagged tables, histories {}..{}, {:.1} KiB",
            tsl.label,
            tsl.tage.num_tables(),
            tsl.tage.history_lengths.first().unwrap(),
            tsl.tage.max_history(),
            tsl.storage_bits() as f64 / 8192.0
        ),
    ]);
    table.row([
        "LLBP".to_string(),
        format!(
            "{} pattern sets x {} patterns ({} buckets), CD {}-way, PB {} sets x {}-way, \
             W={}, D={}, {}-cycle prefetch; {:.0} KiB total",
            llbp.num_contexts(),
            llbp.patterns_per_set,
            llbp.num_buckets,
            llbp.cd_ways,
            1 << llbp.pb_index_bits,
            llbp.pb_ways,
            llbp.window,
            llbp.prefetch_distance,
            llbp.prefetch_delay,
            (llbp.storage_bits() + llbp.cd_bits() + llbp.pb_bits()) as f64 / 8192.0
        ),
    ]);
    table.row(["L1-I".to_string(), "32 KiB, 8-way, 64 B lines, next-line prefetch".to_string()]);
    table.row([
        "Simulation".to_string(),
        "first third of each trace warms the predictor; statistics from the rest".to_string(),
    ]);
    println!("{}", table.to_markdown());
}
