//! Extension experiment (paper §V-A future work): *virtualising* LLBP
//! into the cache hierarchy instead of dedicating SRAM to it.
//!
//! Backing the pattern-set store with the L2/LLC changes one thing the
//! predictor can feel: the prefetch latency. This sweep increases the
//! access delay from the dedicated-SRAM 6 cycles up to LLC-like latencies
//! and reports how much of LLBP's MPKI reduction survives — i.e. how much
//! slack the context prefetcher really has.

use llbp_bench::{emit, engine, mean_reduction, sim_config, workload_specs, Opts};
use llbp_core::LlbpParams;
use llbp_sim::engine::SweepSpec;
use llbp_sim::report::{f1, Table};
use llbp_sim::PredictorKind;

const DELAYS: [u64; 6] = [0, 6, 12, 20, 30, 45];

fn main() {
    let opts = Opts::from_args();

    let mut predictors = vec![PredictorKind::Tsl64K];
    for &d in &DELAYS {
        let params = LlbpParams {
            prefetch_delay: d,
            label: format!("LLBP@{d}cyc"),
            ..LlbpParams::default()
        };
        predictors.push(PredictorKind::Llbp(params));
    }
    let spec = SweepSpec::new(predictors, workload_specs(&opts), sim_config(&opts));
    let report = llbp_bench::run_sweep(&engine(&opts), &spec);

    println!("# Extension — virtualised LLBP: MPKI reduction vs pattern-store latency");
    println!(
        "(6 cycles = the paper's dedicated SRAM; 12–45 model L2/LLC-backed storage, \
         the §V-A virtualisation future work)\n"
    );
    let mut table = Table::new(
        std::iter::once("metric".to_string()).chain(DELAYS.iter().map(|d| format!("{d} cyc"))),
    );
    let mut cells = vec!["mean MPKI reduction".to_string()];
    for (i, _) in DELAYS.iter().enumerate() {
        let vals: Vec<f64> = (0..opts.workloads.len())
            .map(|w| report.get(w, 1 + i).mpki_reduction_vs(report.get(w, 0)))
            .collect();
        cells.push(format!("{}%", f1(mean_reduction(&vals))));
    }
    table.row(cells);
    println!("{}", table.to_markdown());
    emit(&report, "ext_virtualized", &opts);
}
