//! Figure 14: sensitivity of the MPKI reduction and the LLBP capacity to
//! the number of contexts (pattern sets) and the pattern-set size.
//!
//! Paper: 16K contexts × 8 patterns ≈ −11%; doubling the set to 16 adds
//! ≈2.6%; 32 adds 1.4% more and 64 almost nothing; reduction scales
//! near-linearly with the context count until ≈14K and slows beyond;
//! ≈512 KiB (14K × 16) is the local optimum chosen for LLBP.
//!
//! Study mode (as in the paper): highly-associative context index, wide
//! context tags, no bucketing, zero latency. Context counts are powers of
//! two here (the paper also samples 10/12/14K).

use llbp_bench::{emit, engine, mean_reduction, sim_config, workload_specs, Opts};
use llbp_core::LlbpParams;
use llbp_sim::engine::SweepSpec;
use llbp_sim::report::{f1, Table};
use llbp_sim::PredictorKind;

const CONTEXTS: [usize; 5] = [8_192, 16_384, 32_768, 65_536, 131_072];
const SET_SIZES: [usize; 4] = [8, 16, 32, 64];

fn main() {
    let opts = Opts::from_args();

    // Predictor 0 is the baseline; then set-size-major × context-minor.
    let mut predictors = vec![PredictorKind::Tsl64K];
    for &set_size in &SET_SIZES {
        for &contexts in &CONTEXTS {
            predictors.push(PredictorKind::Llbp(LlbpParams::study_full_assoc(contexts, set_size)));
        }
    }
    let spec = SweepSpec::new(predictors, workload_specs(&opts), sim_config(&opts));
    let report = llbp_bench::run_sweep(&engine(&opts), &spec);

    println!("# Figure 14 — contexts × pattern-set size (mean MPKI reduction & capacity)");
    println!("(paper: 16K×8 ≈ −11%; ×16 +2.6 more; ×32 +1.4; ×64 ≈ +0; ≈512KiB local optimum)\n");
    let mut table = Table::new(
        std::iter::once("patterns/set".to_string())
            .chain(CONTEXTS.iter().map(|c| format!("{}K ctx", c / 1024))),
    );
    for (si, &set_size) in SET_SIZES.iter().enumerate() {
        let mut cells = vec![set_size.to_string()];
        for (ci, _) in CONTEXTS.iter().enumerate() {
            let vals: Vec<f64> = (0..opts.workloads.len())
                .map(|w| {
                    let base = report.get(w, 0);
                    report.get(w, 1 + si * CONTEXTS.len() + ci).mpki_reduction_vs(base)
                })
                .collect();
            cells.push(format!("{}%", f1(mean_reduction(&vals))));
        }
        table.row(cells);
    }
    println!("{}", table.to_markdown());

    let mut cap = Table::new(
        std::iter::once("patterns/set".to_string())
            .chain(CONTEXTS.iter().map(|c| format!("{}K ctx", c / 1024))),
    );
    for &set_size in &SET_SIZES {
        let mut cells = vec![set_size.to_string()];
        for &contexts in &CONTEXTS {
            let params = LlbpParams::study_full_assoc(contexts, set_size);
            cells.push(format!("{} KiB", params.storage_bits() / 8192));
        }
        cap.row(cells);
    }
    println!("## LLBP capacity per configuration\n");
    println!("{}", cap.to_markdown());
    emit(&report, "fig14", &opts);
}
