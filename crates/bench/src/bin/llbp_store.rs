//! `llbp-store` — the shared object-store server for distributed
//! campaigns.
//!
//! Serves the length-prefixed TCP object protocol over a local
//! content-addressed directory. Workers point `LLBP_STORE=tcp://host:port`
//! at it; everything else (journals, locks, leases) stays on each
//! worker's own filesystem.
//!
//! ```text
//! llbp_store [--addr HOST:PORT] [--root DIR] [--print-addr]
//! ```
//!
//! `--addr` defaults to `127.0.0.1:0` (an ephemeral port; combine with
//! `--print-addr`, which writes the bound address to stdout as its own
//! line so scripts can capture it). `--root` defaults to the
//! `LLBP_CACHE_DIR`/`target/llbp-cache` resolution every binary uses.

use llbp_sim::memo::{CACHE_DIR_ENV, DEFAULT_CACHE_DIR};
use llbp_sim::store::server::StoreServer;

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: llbp_store [--addr HOST:PORT] [--root DIR] [--print-addr]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut root: Option<String> = None;
    let mut print_addr = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage("--addr needs HOST:PORT")),
            "--root" => root = Some(args.next().unwrap_or_else(|| usage("--root needs DIR"))),
            "--print-addr" => print_addr = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = root.or_else(|| std::env::var(CACHE_DIR_ENV).ok()).filter(|r| !r.trim().is_empty());
    let root = std::path::PathBuf::from(root.unwrap_or_else(|| DEFAULT_CACHE_DIR.to_string()));

    let server = match StoreServer::bind(&addr, &root) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot serve {addr}: {e}");
            std::process::exit(4);
        }
    };
    let bound = server.local_addr().expect("bound listener has an address");
    if print_addr {
        // Scripts parse this line; keep it bare.
        println!("{bound}");
        use std::io::Write;
        let _ = std::io::stdout().flush();
    }
    eprintln!("llbp-store: serving {} at {bound}", root.display());
    server.run();
}
