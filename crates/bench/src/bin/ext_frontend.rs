//! Extension experiment: front-end pipeline-reset sources.
//!
//! LLBP's prefetcher is reset-sensitive (§VI, §VII-A): every late
//! front-end redirect squashes in-flight pattern-set prefetches. This
//! harness attributes resets to their source — direction mispredictions,
//! BTB misses on taken branches, return-stack mismatches, and
//! indirect-target mispredictions — per workload, explaining why
//! indirect-heavy workloads (PHPWiki) lose more of LLBP's benefit.

use llbp_bench::{parallel_over_workloads, Opts};
use llbp_core::{LlbpParams, LlbpPredictor};
use llbp_sim::report::{f2, Table};
use llbp_sim::SimConfig;

fn main() {
    let opts = Opts::from_args();
    let cfg = SimConfig::default();

    let rows = parallel_over_workloads(&opts, |_w, trace| {
        let mut p = LlbpPredictor::new(LlbpParams::default());
        let result = cfg.run_predictor(&mut p, trace);
        let fe = *p.frontend().stats();
        let dir_resets = p.stats().pipeline_resets - fe.total_resets();
        (result.mispredictions, fe, dir_resets, trace.len() as u64)
    });

    println!("# Extension — pipeline-reset sources (per kilo-branch)");
    println!("(every reset squashes LLBP's in-flight prefetches, §VI)\n");
    let mut table = Table::new([
        "workload",
        "direction",
        "BTB miss",
        "RAS mismatch",
        "indirect target",
        "total/kbr",
    ]);
    for (w, (_mis, fe, dir, branches)) in &rows {
        let per_kbr = |v: u64| f2(v as f64 * 1000.0 / *branches as f64);
        table.row([
            w.to_string(),
            per_kbr(*dir),
            per_kbr(fe.btb_resets),
            per_kbr(fe.ras_resets),
            per_kbr(fe.indirect_resets),
            per_kbr(*dir + fe.total_resets()),
        ]);
    }
    println!("{}", table.to_markdown());
}
