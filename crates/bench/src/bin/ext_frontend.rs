//! Extension experiment: front-end pipeline-reset sources.
//!
//! LLBP's prefetcher is reset-sensitive (§VI, §VII-A): every late
//! front-end redirect squashes in-flight pattern-set prefetches. This
//! harness attributes resets to their source — direction mispredictions,
//! BTB misses on taken branches, return-stack mismatches, and
//! indirect-target mispredictions — per workload, explaining why
//! indirect-heavy workloads (PHPWiki) lose more of LLBP's benefit.

use llbp_bench::{emit, engine, sim_config, workload_specs, Opts};
use llbp_core::LlbpParams;
use llbp_sim::engine::SweepSpec;
use llbp_sim::report::{f2, Table};
use llbp_sim::PredictorKind;

fn main() {
    let opts = Opts::from_args();

    let spec = SweepSpec::new(
        vec![PredictorKind::Llbp(LlbpParams::default())],
        workload_specs(&opts),
        sim_config(&opts),
    );
    let report = llbp_bench::run_sweep(&engine(&opts), &spec);

    println!("# Extension — pipeline-reset sources (per kilo-branch)");
    println!("(every reset squashes LLBP's in-flight prefetches, §VI)\n");
    let mut table = Table::new([
        "workload",
        "direction",
        "BTB miss",
        "RAS mismatch",
        "indirect target",
        "total/kbr",
    ]);
    for (i, w) in opts.workloads.iter().enumerate() {
        let rec = &report.jobs[i];
        let cell = rec.result.llbp.as_ref().expect("LLBP cell stats");
        let fe = cell.frontend;
        let dir = cell.llbp.pipeline_resets - fe.total_resets();
        let branches = rec.stats.branches;
        let per_kbr = |v: u64| f2(v as f64 * 1000.0 / branches as f64);
        table.row([
            w.to_string(),
            per_kbr(dir),
            per_kbr(fe.btb_resets),
            per_kbr(fe.ras_resets),
            per_kbr(fe.indirect_resets),
            per_kbr(dir + fe.total_resets()),
        ]);
    }
    println!("{}", table.to_markdown());
    emit(&report, "ext_frontend", &opts);
}
