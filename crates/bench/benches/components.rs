//! Microbenchmarks of the predictor building blocks: folded history
//! maintenance, pattern-set matching/allocation, RCR hashing, and table
//! lookups. These quantify the per-branch cost of each hardware
//! structure's software model.
//!
//! Uses a std-only timing harness (no external bench framework) so the
//! workspace builds hermetically; run with `cargo bench --bench components`.

use bputil::history::{FoldedHistory, HistoryBuffer};
use bputil::rng::SplitMix64;
use bputil::table::SetAssoc;
use llbp_core::rcr::RollingContextRegister;
use llbp_core::{ContextHistoryKind, PatternSet};
use std::hint::black_box;
use std::time::Instant;

const ITERS: u64 = 2_000_000;

/// Times `ITERS` calls of `f` and reports nanoseconds per call.
fn bench<F: FnMut()>(name: &str, mut f: F) {
    // Warmup.
    for _ in 0..(ITERS / 10) {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let ns = t0.elapsed().as_secs_f64() * 1e9 / ITERS as f64;
    println!("{name:28} {ns:>10.2} ns/op");
}

fn bench_folded_history() {
    let mut ghr = HistoryBuffer::new(4096);
    let mut folds: Vec<FoldedHistory> =
        (1..=21).map(|i| FoldedHistory::new(i * 140 + 6, 13)).collect();
    let mut rng = SplitMix64::new(1);
    bench("folded_history_update", || {
        let bit = rng.chance(1, 2);
        for f in &mut folds {
            f.update_before_push(&ghr, bit);
        }
        ghr.push(bit);
        black_box(folds[20].value());
    });
}

fn bench_pattern_set() {
    let mut set = PatternSet::new(16, 4, 16);
    let mut rng = SplitMix64::new(2);
    for i in 0..16u8 {
        set.allocate(i, rng.next_u64() as u32 & 0x1FFF, rng.chance(1, 2), 3);
    }
    let tags: Vec<u32> = (0..16).map(|_| rng.next_u64() as u32 & 0x1FFF).collect();
    bench("pattern_set_match", || {
        black_box(set.find_longest(black_box(&tags)));
    });

    let mut rng = SplitMix64::new(3);
    bench("pattern_set_allocate", || {
        let mut set = PatternSet::new(16, 4, 16);
        for _ in 0..16 {
            set.allocate(rng.below(16) as u8, rng.next_u64() as u32 & 0x1FFF, rng.chance(1, 2), 3);
        }
        black_box(set.occupancy());
    });
}

fn bench_rcr() {
    let mut rcr = RollingContextRegister::new(8, 4, 14, ContextHistoryKind::Unconditional);
    let mut rng = SplitMix64::new(4);
    bench("rcr_push_and_cid", || {
        rcr.push(rng.next_u64());
        black_box((rcr.current_cid(), rcr.prefetch_cid()));
    });
}

fn bench_set_assoc() {
    let mut t: SetAssoc<u64> = SetAssoc::new(11, 7);
    for i in 0..14_000u64 {
        t.insert_lru(i, i >> 11, i);
    }
    let mut rng = SplitMix64::new(5);
    bench("set_assoc_lookup_hit", || {
        let i = rng.below(14_000);
        black_box(t.get(i, i >> 11).copied());
    });
}

fn main() {
    bench_folded_history();
    bench_pattern_set();
    bench_rcr();
    bench_set_assoc();
}
