//! Criterion microbenchmarks of the predictor building blocks: folded
//! history maintenance, pattern-set matching/allocation, RCR hashing, and
//! table lookups. These quantify the per-branch cost of each hardware
//! structure's software model.

use bputil::history::{FoldedHistory, HistoryBuffer};
use bputil::rng::SplitMix64;
use bputil::table::SetAssoc;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use llbp_core::rcr::RollingContextRegister;
use llbp_core::{ContextHistoryKind, PatternSet};
use std::hint::black_box;

fn bench_folded_history(c: &mut Criterion) {
    c.bench_function("folded_history_update", |b| {
        let mut ghr = HistoryBuffer::new(4096);
        let mut folds: Vec<FoldedHistory> =
            (1..=21).map(|i| FoldedHistory::new(i * 140 + 6, 13)).collect();
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let bit = rng.chance(1, 2);
            for f in &mut folds {
                f.update_before_push(&ghr, bit);
            }
            ghr.push(bit);
            black_box(folds[20].value())
        });
    });
}

fn bench_pattern_set(c: &mut Criterion) {
    c.bench_function("pattern_set_match", |b| {
        let mut set = PatternSet::new(16, 4, 16);
        let mut rng = SplitMix64::new(2);
        for i in 0..16u8 {
            set.allocate(i, rng.next_u64() as u32 & 0x1FFF, rng.chance(1, 2), 3);
        }
        let tags: Vec<u32> = (0..16).map(|_| rng.next_u64() as u32 & 0x1FFF).collect();
        b.iter(|| black_box(set.find_longest(black_box(&tags))));
    });

    c.bench_function("pattern_set_allocate", |b| {
        let mut rng = SplitMix64::new(3);
        b.iter_batched(
            || PatternSet::new(16, 4, 16),
            |mut set| {
                for _ in 0..16 {
                    set.allocate(
                        rng.below(16) as u8,
                        rng.next_u64() as u32 & 0x1FFF,
                        rng.chance(1, 2),
                        3,
                    );
                }
                black_box(set.occupancy())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_rcr(c: &mut Criterion) {
    c.bench_function("rcr_push_and_cid", |b| {
        let mut rcr = RollingContextRegister::new(8, 4, 14, ContextHistoryKind::Unconditional);
        let mut rng = SplitMix64::new(4);
        b.iter(|| {
            rcr.push(rng.next_u64());
            black_box((rcr.current_cid(), rcr.prefetch_cid()))
        });
    });
}

fn bench_set_assoc(c: &mut Criterion) {
    c.bench_function("set_assoc_lookup_hit", |b| {
        let mut t: SetAssoc<u64> = SetAssoc::new(11, 7);
        for i in 0..14_000u64 {
            t.insert_lru(i, i >> 11, i);
        }
        let mut rng = SplitMix64::new(5);
        b.iter(|| {
            let i = rng.below(14_000);
            black_box(t.get(i, i >> 11).copied())
        });
    });
}

criterion_group!(benches, bench_folded_history, bench_pattern_set, bench_rcr, bench_set_assoc);
criterion_main!(benches);
