//! Criterion end-to-end benchmarks: throughput of each predictor design
//! over a fixed synthetic trace (branches per second of simulation), the
//! simulator-side counterpart of the paper's "15–45 min per
//! configuration" artifact note.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use llbp_core::LlbpParams;
use llbp_sim::{PredictorKind, SimConfig};
use llbp_trace::{Trace, Workload, WorkloadSpec};
use std::hint::black_box;

const BRANCHES: usize = 30_000;

fn trace() -> Trace {
    WorkloadSpec::named(Workload::Tpcc).with_branches(BRANCHES).generate()
}

fn bench_predictors(c: &mut Criterion) {
    let trace = trace();
    let cfg = SimConfig { warmup_fraction: 0.0, track_per_branch: false };
    let mut group = c.benchmark_group("simulate");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);

    for (name, kind) in [
        ("64k_tsl", PredictorKind::Tsl64K),
        ("512k_tsl", PredictorKind::TslScaled(8)),
        ("inf_tsl", PredictorKind::InfTsl),
        ("llbp", PredictorKind::Llbp(LlbpParams::default())),
        ("llbp_0lat", PredictorKind::Llbp(LlbpParams::zero_latency())),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(cfg.run(kind.clone(), black_box(&trace))));
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.throughput(Throughput::Elements(BRANCHES as u64));
    group.sample_size(10);
    group.bench_function("synthetic_workload", |b| {
        b.iter(|| black_box(trace()));
    });
    group.finish();
}

criterion_group!(benches, bench_predictors, bench_trace_generation);
criterion_main!(benches);
