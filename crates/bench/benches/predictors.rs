//! End-to-end benchmarks: throughput of each predictor design over a
//! fixed synthetic trace (branches per second of simulation), the
//! simulator-side counterpart of the paper's "15–45 min per
//! configuration" artifact note.
//!
//! Uses a std-only timing harness (no external bench framework) so the
//! workspace builds hermetically; run with `cargo bench --bench predictors`.

use llbp_core::LlbpParams;
use llbp_sim::{PredictorKind, SimConfig};
use llbp_trace::{Trace, Workload, WorkloadSpec};
use std::hint::black_box;
use std::time::Instant;

const BRANCHES: usize = 30_000;
const SAMPLES: usize = 5;

fn trace() -> Trace {
    WorkloadSpec::named(Workload::Tpcc).with_branches(BRANCHES).generate()
}

/// Runs `f` `SAMPLES` times and reports the best wall time and a derived
/// elements-per-second rate, criterion-style but dependency-free.
fn bench<F: FnMut()>(name: &str, elements: u64, mut f: F) {
    // One untimed warmup iteration.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let rate = elements as f64 / best;
    println!("{name:28} {:>10.3} ms   {:>12.0} elem/s", best * 1e3, rate);
}

fn bench_predictors(trace: &Trace) {
    let cfg = SimConfig { warmup_fraction: 0.0, track_per_branch: false, ..SimConfig::default() };
    for (name, kind) in [
        ("simulate/64k_tsl", PredictorKind::Tsl64K),
        ("simulate/512k_tsl", PredictorKind::TslScaled(8)),
        ("simulate/inf_tsl", PredictorKind::InfTsl),
        ("simulate/llbp", PredictorKind::Llbp(LlbpParams::default())),
        ("simulate/llbp_0lat", PredictorKind::Llbp(LlbpParams::zero_latency())),
    ] {
        bench(name, trace.len() as u64, || {
            black_box(cfg.run(kind.clone(), black_box(trace)));
        });
    }
}

fn bench_trace_generation() {
    bench("generate/synthetic_workload", BRANCHES as u64, || {
        black_box(trace());
    });
}

fn main() {
    let trace = trace();
    bench_predictors(&trace);
    bench_trace_generation();
}
