//! Deep-dive diagnostics of one LLBP run: match/override rates, context
//! and prefetch behaviour, transfer counts, and front-end reset sources.
//!
//! ```sh
//! cargo run --release -p llbp-bench --example llbp_diag [branches]
//! ```

use llbp_core::{LlbpParams, LlbpPredictor};
use llbp_sim::SimConfig;
use llbp_trace::{Workload, WorkloadSpec};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(300_000);
    for w in [Workload::NodeApp, Workload::Tomcat] {
        let trace = WorkloadSpec::named(w).with_branches(n).generate();
        let mut p = LlbpPredictor::new(LlbpParams::default());
        let r = SimConfig::default().run_predictor(&mut p, &trace);
        let s = p.stats();
        println!("== {w}: mpki={:.2}", r.mpki());
        println!(
            "  predictions={} matches={} ({:.1}%)",
            s.predictions,
            s.llbp_matches,
            100.0 * s.match_rate()
        );
        println!("  contexts_created={} pattern_allocs={}", s.contexts_created, s.pattern_allocs);
        println!(
            "  cd_lookups={} cd_hits={} ({:.1}%)",
            s.cd_lookups,
            s.cd_hits,
            100.0 * s.cd_hits as f64 / s.cd_lookups.max(1) as f64
        );
        println!(
            "  pb_hits={} ({:.1}% of preds) late={} ({:.1}%)",
            s.pb_hits,
            100.0 * s.pb_hits as f64 / s.predictions.max(1) as f64,
            s.late_prefetches,
            100.0 * s.late_prefetches as f64 / s.predictions.max(1) as f64
        );
        println!(
            "  reads={} writes={} resets={} (over {} branches)",
            s.storage_reads,
            s.storage_writes,
            s.pipeline_resets,
            trace.len()
        );
        println!(
            "  overrides: good={} bad={} both_correct={} both_wrong={} no_override={}",
            s.good_override, s.bad_override, s.both_correct, s.both_wrong, s.no_override
        );
        let fe = p.frontend().stats();
        println!(
            "  frontend resets: btb={} ras={} indirect={}",
            fe.btb_resets, fe.ras_resets, fe.indirect_resets
        );
    }
}
