//! Generic building blocks for table-based branch predictors.
//!
//! This crate collects the low-level machinery shared by the TAGE-SC-L
//! baseline (`llbp-tage`) and the Last-Level Branch Predictor
//! (`llbp-core`):
//!
//! * [`counter`] — saturating up/down counters with configurable width.
//! * [`history`] — a long global history register plus incrementally
//!   maintained *folded* (compressed) histories, as used by TAGE to hash
//!   thousands of history bits in O(1) per branch.
//! * [`table`] — direct-mapped and set-associative tables with pluggable
//!   victim selection (LRU or custom policies).
//! * [`hash`] — small integer mixing functions used to build table indices
//!   and tags.
//! * [`rng`] — a tiny deterministic PRNG for allocation tie-breaking, so
//!   predictors are reproducible without depending on external crates.
//! * [`stats`] — percentiles, means and histograms for experiment reporting.
//!
//! # Example
//!
//! ```
//! use bputil::counter::SatCounter;
//!
//! let mut ctr = SatCounter::new_signed(3); // 3-bit counter in [-4, 3]
//! for _ in 0..10 {
//!     ctr.update(true);
//! }
//! assert!(ctr.taken());
//! assert!(ctr.is_saturated());
//! ```

pub mod counter;
pub mod hash;
pub mod history;
pub mod rng;
pub mod stats;
pub mod table;

pub use counter::{SatCounter, UnsignedCounter};
pub use history::{FoldedHistory, HistoryBuffer, PathHistory};
pub use rng::SplitMix64;
pub use table::{DirectMapped, SetAssoc};
