//! A tiny deterministic PRNG for predictor-internal randomness.
//!
//! TAGE's allocation policy breaks ties randomly (which table receives the
//! newly allocated entry). Hardware uses an LFSR; we use SplitMix64 so the
//! whole simulation is reproducible from a seed without pulling the `rand`
//! crate into the predictor crates.

/// SplitMix64: a fast, high-quality 64-bit PRNG with a single u64 of state.
///
/// # Example
///
/// ```
/// use bputil::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift range reduction; bias is negligible for our bounds.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0x5eed_1e5e_ed15_e1f5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SplitMix64::new(3);
        let hits = (0..100_000).filter(|_| r.chance(1, 4)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }
}
