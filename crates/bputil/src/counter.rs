//! Saturating counters — the basic state element of direction predictors.
//!
//! Two flavours are provided:
//!
//! * [`SatCounter`] — a *signed* counter in `[-2^(n-1), 2^(n-1) - 1]` whose
//!   sign encodes the predicted direction (non-negative ⇒ taken, matching
//!   the convention of Seznec's TAGE code where `ctr >= 0` predicts taken).
//! * [`UnsignedCounter`] — an *unsigned* counter in `[0, 2^n - 1]`, used for
//!   usefulness bits, confidence counters and replacement metadata.

/// A signed saturating counter with a configurable bit width.
///
/// The counter predicts **taken** when its value is non-negative. Its
/// *confidence* grows with the distance from the weak states (`0` / `-1`).
///
/// # Example
///
/// ```
/// use bputil::counter::SatCounter;
///
/// let mut c = SatCounter::new_signed(3);
/// assert!(c.taken()); // initial value 0 predicts taken (weakly)
/// c.update(false);
/// c.update(false);
/// assert!(!c.taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: i16,
    min: i16,
    max: i16,
}

impl SatCounter {
    /// Creates a signed `bits`-wide counter initialised to the weak-taken
    /// state (`0`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=15`.
    #[must_use]
    pub fn new_signed(bits: u32) -> Self {
        assert!((1..=15).contains(&bits), "counter width out of range: {bits}");
        let max = (1i16 << (bits - 1)) - 1;
        Self { value: 0, min: -max - 1, max }
    }

    /// Creates a counter initialised to the weakest state for `taken`:
    /// `0` when taken, `-1` when not taken.
    #[must_use]
    pub fn weak(bits: u32, taken: bool) -> Self {
        let mut c = Self::new_signed(bits);
        c.value = if taken { 0 } else { -1 };
        c
    }

    /// The current raw counter value.
    #[must_use]
    pub fn value(&self) -> i16 {
        self.value
    }

    /// Overwrites the raw value, clamping into the representable range.
    pub fn set(&mut self, value: i16) {
        self.value = value.clamp(self.min, self.max);
    }

    /// Predicted direction: `true` (taken) when the value is non-negative.
    #[must_use]
    pub fn taken(&self) -> bool {
        self.value >= 0
    }

    /// Moves the counter one step towards `taken`, saturating at the bounds.
    ///
    /// Branchless: the ±1 step is computed from `taken` and clamped, which
    /// compiles to conditional moves. Counter updates run once per
    /// conditional branch record in every table of every predictor, so a
    /// data-dependent branch here (taken/not-taken is exactly the
    /// hard-to-predict bit) costs real simulation throughput. Widths are
    /// capped at 15 bits, so `value + 1` cannot overflow `i16`.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        let step = i16::from(taken) * 2 - 1;
        self.value = (self.value + step).clamp(self.min, self.max);
    }

    /// `true` when the counter sits in one of the two weak states.
    ///
    /// Weak entries are preferred victims during allocation (TAGE §V-D).
    #[must_use]
    pub fn is_weak(&self) -> bool {
        self.value == 0 || self.value == -1
    }

    /// `true` when the counter is pinned at either extreme.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.value == self.min || self.value == self.max
    }

    /// Confidence of the prediction: distance from the weak boundary,
    /// in `[0, 2^(bits-1) - 1]`. Used by LLBP's replacement policy to count
    /// high-confidence patterns per set.
    #[must_use]
    pub fn confidence(&self) -> u32 {
        if self.value >= 0 {
            self.value as u32
        } else {
            (-(self.value as i32) - 1) as u32
        }
    }

    /// `true` when the counter is at least `threshold` steps away from the
    /// weak boundary.
    #[must_use]
    pub fn is_confident(&self, threshold: u32) -> bool {
        self.confidence() >= threshold
    }

    /// Maximum representable value.
    #[must_use]
    pub fn max(&self) -> i16 {
        self.max
    }

    /// Minimum representable value.
    #[must_use]
    pub fn min(&self) -> i16 {
        self.min
    }
}

impl Default for SatCounter {
    fn default() -> Self {
        Self::new_signed(3)
    }
}

/// An unsigned saturating counter in `[0, 2^bits - 1]`.
///
/// # Example
///
/// ```
/// use bputil::counter::UnsignedCounter;
///
/// let mut useful = UnsignedCounter::new(2);
/// useful.increment();
/// assert_eq!(useful.value(), 1);
/// useful.decrement();
/// useful.decrement(); // saturates at zero
/// assert_eq!(useful.value(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UnsignedCounter {
    value: u16,
    max: u16,
}

impl UnsignedCounter {
    /// Creates a `bits`-wide counter initialised to zero.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=15`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=15).contains(&bits), "counter width out of range: {bits}");
        Self { value: 0, max: (1u16 << bits) - 1 }
    }

    /// The current value.
    #[must_use]
    pub fn value(&self) -> u16 {
        self.value
    }

    /// Overwrites the value, clamping to the representable range.
    pub fn set(&mut self, value: u16) {
        self.value = value.min(self.max);
    }

    /// Increments, saturating at the maximum. Branchless (`min` compiles
    /// to a conditional move); widths are capped at 15 bits so `value + 1`
    /// cannot overflow `u16`.
    #[inline]
    pub fn increment(&mut self) {
        self.value = (self.value + 1).min(self.max);
    }

    /// Decrements, saturating at zero.
    #[inline]
    pub fn decrement(&mut self) {
        self.value = self.value.saturating_sub(1);
    }

    /// `true` when the counter is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.value == 0
    }

    /// `true` when the counter is at its maximum.
    #[must_use]
    pub fn is_max(&self) -> bool {
        self.value == self.max
    }

    /// Maximum representable value.
    #[must_use]
    pub fn max(&self) -> u16 {
        self.max
    }

    /// Halves the counter (used by periodic usefulness aging policies).
    pub fn halve(&mut self) {
        self.value >>= 1;
    }

    /// Clears the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_counter_saturates_high() {
        let mut c = SatCounter::new_signed(2); // [-2, 1]
        for _ in 0..8 {
            c.update(true);
        }
        assert_eq!(c.value(), 1);
        assert!(c.is_saturated());
        assert!(c.taken());
    }

    #[test]
    fn signed_counter_saturates_low() {
        let mut c = SatCounter::new_signed(2);
        for _ in 0..8 {
            c.update(false);
        }
        assert_eq!(c.value(), -2);
        assert!(c.is_saturated());
        assert!(!c.taken());
    }

    #[test]
    fn weak_states_detected() {
        let mut c = SatCounter::new_signed(3);
        assert!(c.is_weak());
        c.update(false); // 0 -> -1
        assert!(c.is_weak());
        c.update(false); // -1 -> -2
        assert!(!c.is_weak());
    }

    #[test]
    fn weak_constructor_matches_direction() {
        assert!(SatCounter::weak(3, true).taken());
        assert!(!SatCounter::weak(3, false).taken());
        assert!(SatCounter::weak(3, true).is_weak());
        assert!(SatCounter::weak(3, false).is_weak());
    }

    #[test]
    fn confidence_is_distance_from_weak_boundary() {
        let mut c = SatCounter::new_signed(3); // [-4, 3]
        assert_eq!(c.confidence(), 0);
        c.update(true);
        c.update(true);
        assert_eq!(c.confidence(), 2);
        let mut d = SatCounter::new_signed(3);
        d.update(false); // -1
        assert_eq!(d.confidence(), 0);
        d.update(false); // -2
        assert_eq!(d.confidence(), 1);
        assert!(d.is_confident(1));
        assert!(!d.is_confident(2));
    }

    #[test]
    fn set_clamps_to_range() {
        let mut c = SatCounter::new_signed(3);
        c.set(100);
        assert_eq!(c.value(), 3);
        c.set(-100);
        assert_eq!(c.value(), -4);
    }

    #[test]
    #[should_panic(expected = "counter width out of range")]
    fn zero_width_counter_panics() {
        let _ = SatCounter::new_signed(0);
    }

    #[test]
    fn unsigned_counter_bounds() {
        let mut u = UnsignedCounter::new(2); // [0, 3]
        assert!(u.is_zero());
        for _ in 0..10 {
            u.increment();
        }
        assert_eq!(u.value(), 3);
        assert!(u.is_max());
        u.decrement();
        assert_eq!(u.value(), 2);
        u.halve();
        assert_eq!(u.value(), 1);
        u.reset();
        assert!(u.is_zero());
    }

    #[test]
    fn unsigned_set_clamps() {
        let mut u = UnsignedCounter::new(3);
        u.set(100);
        assert_eq!(u.value(), 7);
    }
}
