//! Global branch history and incrementally folded (compressed) histories.
//!
//! TAGE hashes up to thousands of global-history bits into each table's
//! index and tag. Recomputing such a hash from scratch on every branch would
//! be infeasible in hardware, so TAGE maintains *folded* histories: for each
//! (original length, compressed length) pair, a circular CRC-like register
//! that is updated in O(1) when a new outcome is shifted into the history
//! ([Michaud'05], [Seznec'16]). [`FoldedHistory`] reproduces that scheme and
//! is property-tested against folding the full history from scratch.

/// A long global-history shift register backed by a circular bit buffer.
///
/// Bit `0` is the most recent outcome. The buffer holds `capacity` bits;
/// pushing beyond capacity silently drops the oldest bit (which is fine as
/// long as `capacity` exceeds the longest history any consumer folds).
///
/// # Example
///
/// ```
/// use bputil::history::HistoryBuffer;
///
/// let mut h = HistoryBuffer::new(64);
/// h.push(true);
/// h.push(false);
/// assert!(!h.bit(0)); // newest
/// assert!(h.bit(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryBuffer {
    words: Vec<u64>,
    /// Index of the *next* position to write, in bits.
    head: usize,
    capacity: usize,
    len: usize,
}

impl HistoryBuffer {
    /// Creates an empty history able to remember `capacity` bits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be non-zero");
        let words = vec![0u64; capacity.div_ceil(64)];
        let capacity = words_capacity(&words);
        Self { words, head: 0, capacity, len: 0 }
    }

    /// Pushes a new outcome as the most recent bit.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        let w = self.head / 64;
        let b = self.head % 64;
        if taken {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
        // `head < capacity` always holds, so the wrap is a compare instead
        // of an integer division (capacity is not a power of two; this is
        // on the per-branch path via the folded-history updates).
        self.head += 1;
        if self.head == self.capacity {
            self.head = 0;
        }
        self.len = (self.len + 1).min(self.capacity);
    }

    /// Returns the bit `age` positions back (`0` = most recent).
    ///
    /// Bits older than anything pushed read as `false`.
    #[inline]
    #[must_use]
    pub fn bit(&self, age: usize) -> bool {
        if age >= self.capacity {
            return false;
        }
        // `head < capacity` and `age < capacity`, so the sum is below
        // `2 * capacity` and the modulo reduces to one conditional
        // subtract — this runs ~3×tables times per simulated branch.
        let mut pos = self.head + self.capacity - 1 - age;
        if pos >= self.capacity {
            pos -= self.capacity;
        }
        (self.words[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// Number of bits pushed so far, capped at the capacity.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity in bits.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Captures the full register content for later rollback.
    #[must_use]
    pub fn checkpoint(&self) -> HistoryCheckpoint {
        HistoryCheckpoint { words: self.words.clone(), head: self.head, len: self.len }
    }

    /// Restores a previously captured checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint came from a register of different
    /// capacity.
    pub fn restore(&mut self, checkpoint: &HistoryCheckpoint) {
        assert_eq!(checkpoint.words.len(), self.words.len(), "checkpoint size mismatch");
        self.words.copy_from_slice(&checkpoint.words);
        self.head = checkpoint.head;
        self.len = checkpoint.len;
    }

    /// Folds the most recent `olen` bits into a `clen`-bit value by XOR,
    /// computing from scratch. This is the *specification* that
    /// [`FoldedHistory`] implements incrementally; it is exposed for tests
    /// and for one-off hashes where speed does not matter.
    #[must_use]
    pub fn fold(&self, olen: usize, clen: u32) -> u32 {
        assert!(clen > 0 && clen <= 32);
        let mut acc: u32 = 0;
        // A bit enters the fold at position 0 and is rotated left once per
        // subsequent push, so the bit of age `i` sits at position `i % clen`.
        for i in 0..olen.min(self.len) {
            if self.bit(i) {
                acc ^= 1 << (i as u32 % clen);
            }
        }
        acc & mask(clen)
    }
}

/// A snapshot of a [`HistoryBuffer`], for misprediction rollback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryCheckpoint {
    words: Vec<u64>,
    head: usize,
    len: usize,
}

fn words_capacity(words: &[u64]) -> usize {
    words.len() * 64
}

fn mask(bits: u32) -> u32 {
    if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

/// An incrementally maintained folded history, per Michaud's PPM / Seznec's
/// TAGE. Folds the most recent `original_len` history bits into
/// `compressed_len` bits, updated in O(1) per branch outcome.
///
/// The folding function: the bit of age `i` (0 = newest) contributes to fold
/// position `i mod compressed_len`. On `update` the register rotates left by
/// one, the new bit enters at position 0, and the bit falling out of the
/// history window (age `original_len - 1` before the push, rotated once by
/// this update) is cancelled at position `original_len mod compressed_len` —
/// the classic `outpoint` trick.
///
/// # Example
///
/// ```
/// use bputil::history::{FoldedHistory, HistoryBuffer};
///
/// let mut ghr = HistoryBuffer::new(256);
/// let mut fh = FoldedHistory::new(100, 11);
/// for i in 0..500 {
///     let t = i % 3 == 0;
///     fh.update_before_push(&ghr, t);
///     ghr.push(t);
/// }
/// assert_eq!(fh.value(), ghr.fold(100, 11));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldedHistory {
    comp: u32,
    original_len: usize,
    compressed_len: u32,
    outpoint: u32,
}

impl FoldedHistory {
    /// Creates a folded history of `original_len` bits compressed into
    /// `compressed_len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `compressed_len` is zero or exceeds 32, or if
    /// `original_len` is zero.
    #[must_use]
    pub fn new(original_len: usize, compressed_len: u32) -> Self {
        assert!(original_len > 0, "folded history needs a non-zero length");
        assert!(
            (1..=32).contains(&compressed_len),
            "compressed length out of range: {compressed_len}"
        );
        Self {
            comp: 0,
            original_len,
            compressed_len,
            outpoint: (original_len as u32) % compressed_len,
        }
    }

    /// The current folded value.
    #[inline]
    #[must_use]
    pub fn value(&self) -> u32 {
        self.comp
    }

    /// The original (unfolded) history length in bits.
    #[must_use]
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// The compressed width in bits.
    #[must_use]
    pub fn compressed_len(&self) -> u32 {
        self.compressed_len
    }

    /// Updates the fold for a new outcome `taken`. Must be called **before**
    /// the outcome is pushed into `ghr` (it needs to observe the bit that
    /// falls out of the history window).
    #[inline]
    pub fn update_before_push(&mut self, ghr: &HistoryBuffer, taken: bool) {
        // Shift in the new bit at position 0.
        self.comp = (self.comp << 1) | u32::from(taken);
        // Cancel the bit that leaves the window: before the push it has age
        // original_len - 1; after the shift its contribution sits at
        // `outpoint`.
        if ghr.bit(self.original_len - 1) {
            self.comp ^= 1 << self.outpoint;
        }
        // Wrap the bit shifted out of the compressed register back in.
        self.comp ^= self.comp >> self.compressed_len;
        self.comp &= mask(self.compressed_len);
    }

    /// Restores the fold from a checkpointed raw value (misprediction
    /// rollback).
    pub fn restore(&mut self, raw: u32) {
        self.comp = raw & mask(self.compressed_len);
    }

    /// [`FoldedHistory::update_before_push`] with the outgoing bit
    /// supplied by the caller — `out_bit` must equal
    /// `ghr.bit(original_len - 1)` taken before the push.
    ///
    /// Branch-free: the cancel XOR is computed from the bit instead of
    /// branched on. The outgoing history bit is essentially a coin flip on
    /// real traces, so the `if` in the reference variant mispredicts
    /// constantly — across the ~3×tables registers a TAGE updates per
    /// branch, those mispredicts dominate the history-advance cost.
    /// Callers that maintain several registers over the same window length
    /// (index + both tag folds of one TAGE table) also read the outgoing
    /// bit once instead of three times.
    #[inline]
    pub fn update_with_out_bit(&mut self, out_bit: bool, taken: bool) {
        self.comp = (self.comp << 1) | u32::from(taken);
        self.comp ^= u32::from(out_bit) << self.outpoint;
        self.comp ^= self.comp >> self.compressed_len;
        self.comp &= mask(self.compressed_len);
    }
}

/// A fixed-width path history of low-order PC bits, as used by TAGE's index
/// hash (`phist` in Seznec's code).
///
/// # Example
///
/// ```
/// use bputil::history::PathHistory;
///
/// let mut p = PathHistory::new(27);
/// p.push(0x4000_1235); // low bit 1
/// p.push(0x4000_5678); // low bit 0
/// assert_eq!(p.value(), 0b10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathHistory {
    value: u64,
    bits: u32,
}

impl PathHistory {
    /// Creates an empty path history of `bits` width (`1..=63`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=63`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=63).contains(&bits), "path history width out of range");
        Self { value: 0, bits }
    }

    /// Shifts in one bit of the branch address.
    pub fn push(&mut self, pc: u64) {
        self.value = ((self.value << 1) | (pc & 1)) & ((1u64 << self.bits) - 1);
    }

    /// The current packed path history.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Restores a checkpointed value (misprediction rollback).
    pub fn restore(&mut self, raw: u64) {
        self.value = raw & ((1u64 << self.bits) - 1);
    }

    /// Width in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_buffer_orders_bits_newest_first() {
        let mut h = HistoryBuffer::new(8);
        h.push(true);
        h.push(false);
        h.push(true);
        assert!(h.bit(0));
        assert!(!h.bit(1));
        assert!(h.bit(2));
        assert!(!h.bit(3)); // never pushed
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn history_buffer_wraps_capacity() {
        let mut h = HistoryBuffer::new(64);
        for i in 0..200 {
            h.push(i % 2 == 0);
        }
        assert_eq!(h.len(), h.capacity());
        // Last push was i=199 (odd -> false).
        assert!(!h.bit(0));
        assert!(h.bit(1));
    }

    #[test]
    fn update_with_out_bit_matches_update_before_push() {
        // The branch-free variant must track the reference update exactly
        // for every (original_len, compressed_len) shape, over a bit
        // stream long enough to wrap every fold several times.
        let mut rng = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng & 1 == 1
        };
        for (original_len, compressed_len) in
            [(1, 1), (3, 4), (8, 8), (13, 7), (27, 11), (64, 12), (389, 13)]
        {
            let mut ghr = HistoryBuffer::new(original_len + 64);
            let mut slow = FoldedHistory::new(original_len, compressed_len);
            let mut fast = slow;
            for step in 0..3 * original_len + 100 {
                let taken = next();
                let out = ghr.bit(original_len - 1);
                slow.update_before_push(&ghr, taken);
                fast.update_with_out_bit(out, taken);
                ghr.push(taken);
                assert_eq!(
                    slow.value(),
                    fast.value(),
                    "divergence at step {step} for len {original_len}->{compressed_len}"
                );
            }
        }
    }

    #[test]
    fn fold_reference_small_case() {
        let mut h = HistoryBuffer::new(16);
        // Push bits so that history (newest first) = 1,0,1.
        h.push(true);
        h.push(false);
        h.push(true);
        // olen=3, clen=2: age0(1)->pos 0; age1(0)->pos 1; age2(1)->pos 0.
        // fold = (1<<0) ^ (1<<0) = 0.
        assert_eq!(h.fold(3, 2), 0);
    }

    #[test]
    fn folded_history_matches_reference_fold() {
        let mut ghr = HistoryBuffer::new(512);
        let cases = [(5usize, 3u32), (17, 8), (100, 11), (130, 12), (300, 13)];
        let mut folds: Vec<FoldedHistory> =
            cases.iter().map(|&(o, c)| FoldedHistory::new(o, c)).collect();
        let mut x: u64 = 0x1234_5678_9abc_def0;
        for _ in 0..2000 {
            // xorshift for a deterministic pseudo-random outcome stream
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let taken = x & 1 == 1;
            for f in &mut folds {
                f.update_before_push(&ghr, taken);
            }
            ghr.push(taken);
        }
        for (f, &(o, c)) in folds.iter().zip(&cases) {
            assert_eq!(f.value(), ghr.fold(o, c), "mismatch for olen={o} clen={c}");
        }
    }

    #[test]
    fn folded_history_restore_roundtrip() {
        let mut ghr = HistoryBuffer::new(64);
        let mut f = FoldedHistory::new(20, 7);
        for i in 0..50 {
            f.update_before_push(&ghr, i % 3 == 0);
            ghr.push(i % 3 == 0);
        }
        let snapshot = f.value();
        f.update_before_push(&ghr, true);
        f.restore(snapshot);
        assert_eq!(f.value(), snapshot);
    }

    #[test]
    fn path_history_masks_width() {
        let mut p = PathHistory::new(4);
        for _ in 0..100 {
            p.push(1);
        }
        assert_eq!(p.value(), 0xF);
        p.restore(0xFFFF);
        assert_eq!(p.value(), 0xF);
    }

    #[test]
    #[should_panic(expected = "history capacity")]
    fn zero_capacity_panics() {
        let _ = HistoryBuffer::new(0);
    }
}
