//! Small integer mixing functions for table indices, tags and context IDs.
//!
//! Branch predictors hash program counters and histories into narrow table
//! indices. These helpers provide well-distributed, cheap, deterministic
//! mixes. None of them are cryptographic — they only need to decorrelate
//! nearby PCs.

/// Finalization mix from SplitMix64 / MurmurHash3's 64-bit finalizer.
///
/// A strong full-avalanche mix: every input bit affects every output bit.
///
/// # Example
///
/// ```
/// use bputil::hash::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// ```
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Folds a 64-bit value down to `bits` by repeated XOR of `bits`-wide limbs.
///
/// Unlike simple truncation this preserves entropy from the high bits,
/// which matters when hashing shifted PCs (LLBP's context-ID hash).
///
/// # Panics
///
/// Panics if `bits` is zero or greater than 63.
#[must_use]
pub fn fold_to_bits(mut x: u64, bits: u32) -> u64 {
    assert!((1..=63).contains(&bits), "fold width out of range: {bits}");
    let m = (1u64 << bits) - 1;
    let mut acc = 0u64;
    while x != 0 {
        acc ^= x & m;
        x >>= bits;
    }
    acc
}

/// Combines a PC with folded index history and path history in the style of
/// TAGE's table-index hash (`gindex` in Seznec's CBP code).
#[must_use]
pub fn tage_index(pc: u64, folded_index: u32, path: u64, table: u32, index_bits: u32) -> u64 {
    let pc_part = pc ^ (pc >> (index_bits as u64 + 1)) ^ (pc >> (2 * index_bits as u64 + 2));
    let mixed = pc_part ^ u64::from(folded_index) ^ path_mix(path, table, index_bits);
    fold_to_bits(mix64(mixed ^ u64::from(table) << 57), index_bits)
}

/// Combines a PC with two folded tag histories in the style of TAGE's tag
/// hash (`gtag`).
#[must_use]
pub fn tage_tag(pc: u64, folded_tag0: u32, folded_tag1: u32, tag_bits: u32) -> u32 {
    let mixed = pc ^ u64::from(folded_tag0) ^ (u64::from(folded_tag1) << 1);
    (fold_to_bits(mix64(mixed), tag_bits)) as u32
}

/// The auxiliary path-history mix TAGE applies per table.
fn path_mix(path: u64, table: u32, index_bits: u32) -> u64 {
    let m = (1u64 << index_bits) - 1;
    let size = u64::from(index_bits.min(16));
    let mut a = path & ((1u64 << size.min(32)) - 1).max(1);
    let a1 = a & m;
    let a2 = a >> index_bits;
    a = a1 ^ a2.rotate_left(table % index_bits.max(1));
    a & m
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_avalanches_nearby_inputs() {
        let h1 = mix64(0x4000_0000);
        let h2 = mix64(0x4000_0004);
        let differing = (h1 ^ h2).count_ones();
        assert!(differing > 16, "only {differing} bits differ");
    }

    #[test]
    fn fold_to_bits_stays_in_range() {
        for bits in 1..=20 {
            let v = fold_to_bits(u64::MAX, bits);
            assert!(v < (1 << bits));
        }
    }

    #[test]
    fn fold_to_bits_uses_high_bits() {
        // Two values differing only in the high bits must fold differently
        // (for this particular pair).
        assert_ne!(fold_to_bits(0x8000_0000_0000_0000, 10), fold_to_bits(0, 10));
    }

    #[test]
    fn tage_index_distributes_sequential_pcs() {
        let mut seen = HashSet::new();
        for pc in (0x1000u64..0x3000).step_by(4) {
            seen.insert(tage_index(pc, 0xabc, 0x55, 3, 10));
        }
        // 2048 PCs into 1024 slots: expect to hit most of the table.
        assert!(seen.len() > 600, "poor distribution: {} distinct", seen.len());
    }

    #[test]
    fn tage_tag_depends_on_history() {
        let t1 = tage_tag(0x1234, 0x0, 0x0, 12);
        let t2 = tage_tag(0x1234, 0x1, 0x0, 12);
        assert_ne!(t1, t2);
        assert!(t1 < (1 << 12) && t2 < (1 << 12));
    }

    #[test]
    #[should_panic(expected = "fold width")]
    fn fold_to_zero_bits_panics() {
        let _ = fold_to_bits(1, 0);
    }
}
