//! Small integer mixing functions for table indices, tags and context IDs.
//!
//! Branch predictors hash program counters and histories into narrow table
//! indices. These helpers provide well-distributed, cheap, deterministic
//! mixes. None of them are cryptographic — they only need to decorrelate
//! nearby PCs.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A fast, deterministic, non-cryptographic [`Hasher`] in the FxHash
/// family (rotate–xor–multiply per word).
///
/// The simulator's hot loop hits hash maps on every branch (TAGE's
/// infinite-storage tables, per-branch tracking), where std's SipHash —
/// designed to resist hash-flooding from untrusted input — costs more
/// than the table work it guards. All simulator keys are derived from
/// trusted trace data, so a two-instruction multiply mix is sufficient
/// and measurably faster. Determinism (no per-process random seed) also
/// keeps map iteration reproducible across runs, which SipHash's
/// `RandomState` does not.
///
/// # Example
///
/// ```
/// use bputil::hash::FastHashMap;
///
/// let mut m: FastHashMap<u64, u32> = FastHashMap::default();
/// m.insert(42, 1);
/// assert_eq!(m[&42], 1);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher64 {
    hash: u64,
}

/// Knuth's 64-bit multiplicative-hash constant (2^64 / φ).
const FX_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl FxHasher64 {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().expect("chunk of 8")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // A final avalanche decorrelates the low bits hashbrown uses for
        // bucket selection from the multiply's weakly-mixed low bits.
        mix64(self.hash)
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher64`] (deterministic, zero state).
pub type FastBuildHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` using the fast deterministic hasher — drop-in for hot-path
/// maps keyed by trusted simulator data.
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using the fast deterministic hasher.
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

/// Finalization mix from SplitMix64 / MurmurHash3's 64-bit finalizer.
///
/// A strong full-avalanche mix: every input bit affects every output bit.
///
/// # Example
///
/// ```
/// use bputil::hash::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// ```
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Folds a 64-bit value down to `bits` by repeated XOR of `bits`-wide limbs.
///
/// Unlike simple truncation this preserves entropy from the high bits,
/// which matters when hashing shifted PCs (LLBP's context-ID hash).
///
/// # Panics
///
/// Panics if `bits` is zero or greater than 63.
#[must_use]
pub fn fold_to_bits(mut x: u64, bits: u32) -> u64 {
    assert!((1..=63).contains(&bits), "fold width out of range: {bits}");
    let m = (1u64 << bits) - 1;
    let mut acc = 0u64;
    while x != 0 {
        acc ^= x & m;
        x >>= bits;
    }
    acc
}

/// Combines a PC with folded index history and path history in the style of
/// TAGE's table-index hash (`gindex` in Seznec's CBP code).
#[must_use]
pub fn tage_index(pc: u64, folded_index: u32, path: u64, table: u32, index_bits: u32) -> u64 {
    IndexCtx::new(pc, path, index_bits).index(folded_index, table)
}

/// The table-invariant parts of [`tage_index`], hoisted out of the
/// per-table loop.
///
/// A TAGE lookup computes one index per tagged table (up to ~20 for the
/// CBP-5 geometry) for the *same* `(pc, path)` pair; only the folded
/// history and the table number vary. The PC scramble and the path-history
/// masking are table-invariant, so computing them once per prediction and
/// reusing them across tables removes redundant work from the hottest loop
/// in the simulator. [`IndexCtx::index`] is bit-identical to
/// [`tage_index`] by construction (and pinned by a test).
#[derive(Debug, Clone, Copy)]
pub struct IndexCtx {
    pc_part: u64,
    path_a1: u64,
    path_a2: u64,
    index_bits: u32,
}

impl IndexCtx {
    /// Precomputes the table-invariant mix parts for one prediction.
    #[inline]
    #[must_use]
    pub fn new(pc: u64, path: u64, index_bits: u32) -> Self {
        let pc_part = pc ^ (pc >> (index_bits as u64 + 1)) ^ (pc >> (2 * index_bits as u64 + 2));
        let m = (1u64 << index_bits) - 1;
        let size = u64::from(index_bits.min(16));
        let a = path & ((1u64 << size.min(32)) - 1).max(1);
        Self { pc_part, path_a1: a & m, path_a2: a >> index_bits, index_bits }
    }

    /// The index for `table` given its folded history value.
    #[inline]
    #[must_use]
    pub fn index(&self, folded_index: u32, table: u32) -> u64 {
        let m = (1u64 << self.index_bits) - 1;
        let path = (self.path_a1 ^ self.path_a2.rotate_left(table % self.index_bits.max(1))) & m;
        let mixed = self.pc_part ^ u64::from(folded_index) ^ path;
        fold_to_bits(mix64(mixed ^ u64::from(table) << 57), self.index_bits)
    }
}

/// Combines a PC with two folded tag histories in the style of TAGE's tag
/// hash (`gtag`).
#[must_use]
pub fn tage_tag(pc: u64, folded_tag0: u32, folded_tag1: u32, tag_bits: u32) -> u32 {
    let mixed = pc ^ u64::from(folded_tag0) ^ (u64::from(folded_tag1) << 1);
    (fold_to_bits(mix64(mixed), tag_bits)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_avalanches_nearby_inputs() {
        let h1 = mix64(0x4000_0000);
        let h2 = mix64(0x4000_0004);
        let differing = (h1 ^ h2).count_ones();
        assert!(differing > 16, "only {differing} bits differ");
    }

    #[test]
    fn fold_to_bits_stays_in_range() {
        for bits in 1..=20 {
            let v = fold_to_bits(u64::MAX, bits);
            assert!(v < (1 << bits));
        }
    }

    #[test]
    fn fold_to_bits_uses_high_bits() {
        // Two values differing only in the high bits must fold differently
        // (for this particular pair).
        assert_ne!(fold_to_bits(0x8000_0000_0000_0000, 10), fold_to_bits(0, 10));
    }

    #[test]
    fn tage_index_distributes_sequential_pcs() {
        let mut seen = HashSet::new();
        for pc in (0x1000u64..0x3000).step_by(4) {
            seen.insert(tage_index(pc, 0xabc, 0x55, 3, 10));
        }
        // 2048 PCs into 1024 slots: expect to hit most of the table.
        assert!(seen.len() > 600, "poor distribution: {} distinct", seen.len());
    }

    #[test]
    fn tage_tag_depends_on_history() {
        let t1 = tage_tag(0x1234, 0x0, 0x0, 12);
        let t2 = tage_tag(0x1234, 0x1, 0x0, 12);
        assert_ne!(t1, t2);
        assert!(t1 < (1 << 12) && t2 < (1 << 12));
    }

    #[test]
    #[should_panic(expected = "fold width")]
    fn fold_to_zero_bits_panics() {
        let _ = fold_to_bits(1, 0);
    }

    #[test]
    fn index_ctx_matches_scalar_tage_index() {
        // The hoisted per-lookup context must be bit-identical to the
        // straight-line hash for every (pc, path, table, bits) combination.
        let mut rng = crate::rng::SplitMix64::new(0x1DC);
        for _ in 0..2_000 {
            let pc = rng.next_u64();
            let path = rng.next_u64();
            let index_bits = 1 + rng.below(20) as u32;
            let folded = rng.next_u64() as u32;
            let table = rng.below(30) as u32;
            let ctx = IndexCtx::new(pc, path, index_bits);
            assert_eq!(
                ctx.index(folded, table),
                tage_index(pc, folded, path, table, index_bits),
                "pc={pc:#x} path={path:#x} bits={index_bits} table={table}"
            );
        }
    }

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        use std::hash::BuildHasher;
        let build = FastBuildHasher::default();
        let hash_one = |v: u64| build.hash_one(v);
        // Deterministic across calls (unlike RandomState).
        assert_eq!(hash_one(1234), hash_one(1234));
        // Sequential keys spread across the low bits used for buckets.
        let mut low = HashSet::new();
        for k in 0u64..4096 {
            low.insert(hash_one(k) & 0xFFF);
        }
        assert!(low.len() > 2500, "poor low-bit spread: {}", low.len());
    }

    #[test]
    fn fx_hasher_handles_byte_tails() {
        use std::hash::Hasher;
        let h = |bytes: &[u8]| {
            let mut h = FxHasher64::default();
            h.write(bytes);
            h.finish()
        };
        // Different lengths of the same prefix must differ.
        assert_ne!(h(b"abcdefg"), h(b"abcdefgh"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefghi"));
        assert_ne!(h(b""), h(b"\0"));
    }
}
