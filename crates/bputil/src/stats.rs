//! Statistics helpers for experiment reporting: percentiles, means,
//! geometric means and simple histograms.

/// Returns the `p`-th percentile (0–100, nearest-rank) of `values`.
///
/// Returns `None` for an empty slice. The input is copied and sorted.
///
/// # Example
///
/// ```
/// use bputil::stats::percentile;
/// let v = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&v, 50.0), Some(2.0));
/// assert_eq!(percentile(&v, 100.0), Some(4.0));
/// ```
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

/// Arithmetic mean; `None` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Geometric mean; `None` for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive (geometric mean is undefined there).
#[must_use]
pub fn gmean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "gmean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    Some((log_sum / values.len() as f64).exp())
}

/// A power-of-two-bucketed histogram of `u64` samples, used for
/// patterns-per-context distributions (Fig. 5 style reporting).
///
/// # Example
///
/// ```
/// use bputil::stats::Histogram;
/// let mut h = Histogram::new();
/// h.record(3);
/// h.record(100);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.max(), Some(100));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Largest sample, if any.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Smallest sample, if any.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Nearest-rank percentile of the recorded samples.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }

    /// Arithmetic mean of the samples.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64)
    }

    /// The raw samples, unsorted, in recording order.
    #[must_use]
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Bucket counts keyed by bucket start: bucket `0` holds the value 0 and
    /// bucket `2^k` holds samples in `[2^k, 2^(k+1) - 1]`.
    #[must_use]
    pub fn log2_buckets(&self) -> Vec<(u64, usize)> {
        let max = match self.max() {
            Some(m) => m,
            None => return Vec::new(),
        };
        let nb = 64 - max.leading_zeros() as usize + 1;
        let mut buckets = vec![0usize; nb + 1];
        for &s in &self.samples {
            let b = if s == 0 { 0 } else { 64 - s.leading_zeros() as usize };
            buckets[b] += 1;
        }
        buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }
}

impl Extend<u64> for Histogram {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        Self { samples: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), Some(50.0));
        assert_eq!(percentile(&v, 95.0), Some(95.0));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(100.0));
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn mean_and_gmean() {
        assert_eq!(mean(&[1.0, 3.0]), Some(2.0));
        let g = gmean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), None);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn gmean_rejects_zero() {
        let _ = gmean(&[0.0, 1.0]);
    }

    #[test]
    fn histogram_percentiles() {
        let h: Histogram = (1..=1000u64).collect();
        assert_eq!(h.percentile(50.0), Some(500));
        assert_eq!(h.percentile(95.0), Some(950));
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(1));
    }

    #[test]
    fn histogram_log2_buckets() {
        let mut h = Histogram::new();
        h.extend([0u64, 1, 2, 3, 4, 8]);
        let buckets = h.log2_buckets();
        // 0 -> bucket 0; 1 -> bucket [1,1]; 2,3 -> bucket [2,3]; 4 -> [4,7];
        // 8 -> [8,15].
        assert!(buckets.contains(&(0, 1)));
        assert!(buckets.contains(&(1, 1)));
        assert!(buckets.contains(&(2, 2)));
        assert!(buckets.contains(&(4, 1)));
        assert!(buckets.contains(&(8, 1)));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), None);
        assert!(h.log2_buckets().is_empty());
    }
}
