//! Direct-mapped and set-associative lookup tables.
//!
//! These model the SRAM arrays of a predictor: a fixed geometry (sets ×
//! ways) with tag match and a victim-selection policy. [`SetAssoc`] keeps
//! per-way LRU ranks and supports custom victim selection for policies like
//! LLBP's confidence-based Context Directory replacement.

/// A direct-mapped table of `V` indexed by a masked index.
///
/// # Example
///
/// ```
/// use bputil::table::DirectMapped;
///
/// let mut t: DirectMapped<u32> = DirectMapped::new(4); // 16 entries
/// *t.entry_mut(0x33) = 7; // index masked to 0x3
/// assert_eq!(*t.entry(0x3), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectMapped<V> {
    entries: Vec<V>,
    index_bits: u32,
}

impl<V: Default + Clone> DirectMapped<V> {
    /// Creates a table with `2^index_bits` default-initialised entries.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` exceeds 28 (guard against absurd allocations).
    #[must_use]
    pub fn new(index_bits: u32) -> Self {
        assert!(index_bits <= 28, "table too large: 2^{index_bits} entries");
        Self { entries: vec![V::default(); 1usize << index_bits], index_bits }
    }
}

impl<V> DirectMapped<V> {
    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the table has no entries (never the case after `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index width in bits.
    #[must_use]
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    fn mask(&self, index: u64) -> usize {
        (index as usize) & (self.entries.len() - 1)
    }

    /// Shared access to the entry for `index` (masked to the table size).
    #[must_use]
    pub fn entry(&self, index: u64) -> &V {
        &self.entries[self.mask(index)]
    }

    /// Exclusive access to the entry for `index` (masked to the table size).
    pub fn entry_mut(&mut self, index: u64) -> &mut V {
        let i = self.mask(index);
        &mut self.entries[i]
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &V> {
        self.entries.iter()
    }

    /// Iterates mutably over all entries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut()
    }
}

/// One way of a set-associative table.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Way<V> {
    tag: u64,
    valid: bool,
    /// Monotonic timestamp of last touch; larger = more recent.
    lru: u64,
    value: V,
}

/// A set-associative table with per-set LRU and custom victim selection.
///
/// Keys are split by the caller into a set `index` and a `tag`; the table
/// masks the index to its set count and matches tags within the set.
///
/// # Example
///
/// ```
/// use bputil::table::SetAssoc;
///
/// let mut t: SetAssoc<&'static str> = SetAssoc::new(2, 2); // 4 sets, 2 ways
/// t.insert_lru(1, 0xAA, "a");
/// t.insert_lru(1, 0xBB, "b");
/// assert_eq!(t.get(1, 0xAA), Some(&"a"));
/// t.insert_lru(1, 0xCC, "c"); // evicts LRU ("a" was touched by get? yes)
/// assert!(t.get(1, 0xBB).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct SetAssoc<V> {
    sets: Vec<Vec<Way<V>>>,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> SetAssoc<V> {
    /// Creates a table with `2^index_bits` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or `index_bits` exceeds 24.
    #[must_use]
    pub fn new(index_bits: u32, ways: usize) -> Self {
        assert!(ways > 0, "need at least one way");
        assert!(index_bits <= 24, "table too large: 2^{index_bits} sets");
        let sets = (0..1usize << index_bits).map(|_| Vec::with_capacity(ways)).collect();
        Self { sets, ways, tick: 0, hits: 0, misses: 0, evictions: 0 }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total lookup hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lookup misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total evictions of valid entries so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn set_of(&self, index: u64) -> usize {
        (index as usize) & (self.sets.len() - 1)
    }

    /// Looks up `(index, tag)`, refreshing LRU state on hit.
    pub fn get(&mut self, index: u64, tag: u64) -> Option<&V> {
        let s = self.set_of(index);
        self.tick += 1;
        let tick = self.tick;
        let set = &mut self.sets[s];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = tick;
            self.hits += 1;
            Some(&w.value)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Like [`SetAssoc::get`] but returning a mutable reference.
    pub fn get_mut(&mut self, index: u64, tag: u64) -> Option<&mut V> {
        let s = self.set_of(index);
        self.tick += 1;
        let tick = self.tick;
        let set = &mut self.sets[s];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = tick;
            self.hits += 1;
            Some(&mut w.value)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Checks presence without disturbing LRU or hit/miss statistics.
    #[must_use]
    pub fn peek(&self, index: u64, tag: u64) -> Option<&V> {
        let s = self.set_of(index);
        self.sets[s].iter().find(|w| w.valid && w.tag == tag).map(|w| &w.value)
    }

    /// Inserts with LRU victim selection. Returns the evicted `(tag, value)`
    /// if a valid entry was displaced. If the tag is already present, its
    /// value is replaced (and nothing is evicted).
    pub fn insert_lru(&mut self, index: u64, tag: u64, value: V) -> Option<(u64, V)> {
        self.insert_with(index, tag, value, |ways| {
            ways.iter().enumerate().min_by_key(|(_, w)| w.0).map(|(i, _)| i).unwrap_or(0)
        })
    }

    /// Inserts with a caller-selected victim. `select` receives, for each
    /// valid way in the target set, `(lru_timestamp, &value)` and must return
    /// the position of the way to evict. Invalid ways are filled first
    /// without consulting `select`.
    ///
    /// Returns the evicted `(tag, value)` when a valid entry is displaced.
    pub fn insert_with<F>(&mut self, index: u64, tag: u64, value: V, select: F) -> Option<(u64, V)>
    where
        F: FnOnce(&[(u64, &V)]) -> usize,
    {
        let s = self.set_of(index);
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let set = &mut self.sets[s];

        // Same-tag replacement.
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.value = value;
            w.lru = tick;
            return None;
        }
        // Fill an empty way.
        if set.len() < ways {
            set.push(Way { tag, valid: true, lru: tick, value });
            return None;
        }
        if let Some(w) = set.iter_mut().find(|w| !w.valid) {
            *w = Way { tag, valid: true, lru: tick, value };
            return None;
        }
        // Evict.
        let candidates: Vec<(u64, &V)> = set.iter().map(|w| (w.lru, &w.value)).collect();
        let victim = select(&candidates).min(set.len() - 1);
        self.evictions += 1;
        let old = std::mem::replace(&mut set[victim], Way { tag, valid: true, lru: tick, value });
        Some((old.tag, old.value))
    }

    /// Removes `(index, tag)`, returning its value if present.
    pub fn remove(&mut self, index: u64, tag: u64) -> Option<V> {
        let s = self.set_of(index);
        let set = &mut self.sets[s];
        let pos = set.iter().position(|w| w.valid && w.tag == tag)?;
        let way = set.swap_remove(pos);
        Some(way.value)
    }

    /// Invalidates everything.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of valid entries across all sets.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|s| s.iter().filter(|w| w.valid).count()).sum()
    }

    /// Iterates over `(set_index, tag, &value)` of all valid entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64, &V)> {
        self.sets
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.iter().filter(|w| w.valid).map(move |w| (i, w.tag, &w.value)))
    }

    /// Iterates mutably over `(set_index, tag, &mut value)` of valid entries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, u64, &mut V)> {
        self.sets.iter_mut().enumerate().flat_map(|(i, s)| {
            s.iter_mut().filter(|w| w.valid).map(move |w| (i, w.tag, &mut w.value))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_masks_index() {
        let mut t: DirectMapped<u8> = DirectMapped::new(3);
        *t.entry_mut(8) = 42; // masks to 0
        assert_eq!(*t.entry(0), 42);
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn set_assoc_hit_and_miss_counting() {
        let mut t: SetAssoc<u32> = SetAssoc::new(1, 2);
        assert!(t.get(0, 1).is_none());
        t.insert_lru(0, 1, 10);
        assert_eq!(t.get(0, 1), Some(&10));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut t: SetAssoc<&str> = SetAssoc::new(0, 2); // one set, 2 ways
        t.insert_lru(0, 1, "one");
        t.insert_lru(0, 2, "two");
        let _ = t.get(0, 1); // touch "one" -> "two" becomes LRU
        let evicted = t.insert_lru(0, 3, "three");
        assert_eq!(evicted, Some((2, "two")));
        assert!(t.peek(0, 1).is_some());
        assert!(t.peek(0, 3).is_some());
    }

    #[test]
    fn same_tag_insert_replaces_value() {
        let mut t: SetAssoc<u32> = SetAssoc::new(0, 2);
        t.insert_lru(0, 7, 1);
        let evicted = t.insert_lru(0, 7, 2);
        assert!(evicted.is_none());
        assert_eq!(t.peek(0, 7), Some(&2));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn custom_victim_selection() {
        let mut t: SetAssoc<u32> = SetAssoc::new(0, 3);
        t.insert_lru(0, 1, 100);
        t.insert_lru(0, 2, 5);
        t.insert_lru(0, 3, 50);
        // Evict the way with the smallest value (confidence-style policy).
        let evicted = t.insert_with(0, 4, 999, |ways| {
            ways.iter().enumerate().min_by_key(|(_, (_, v))| **v).map(|(i, _)| i).unwrap()
        });
        assert_eq!(evicted, Some((2, 5)));
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut t: SetAssoc<&str> = SetAssoc::new(0, 2);
        t.insert_lru(0, 1, "one");
        t.insert_lru(0, 2, "two");
        let _ = t.peek(0, 1); // must NOT refresh
        let evicted = t.insert_lru(0, 3, "three");
        assert_eq!(evicted, Some((1, "one")));
    }

    #[test]
    fn remove_and_clear() {
        let mut t: SetAssoc<u32> = SetAssoc::new(2, 2);
        t.insert_lru(0, 1, 1);
        t.insert_lru(1, 2, 2);
        assert_eq!(t.remove(0, 1), Some(1));
        assert_eq!(t.remove(0, 1), None);
        t.clear();
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut t: SetAssoc<u32> = SetAssoc::new(2, 1);
        t.insert_lru(0, 9, 0);
        t.insert_lru(1, 9, 1);
        t.insert_lru(2, 9, 2);
        assert_eq!(t.peek(0, 9), Some(&0));
        assert_eq!(t.peek(1, 9), Some(&1));
        assert_eq!(t.peek(2, 9), Some(&2));
        assert_eq!(t.occupancy(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        let _: SetAssoc<u32> = SetAssoc::new(1, 0);
    }
}
