//! Randomized property tests for the predictor building blocks.
//!
//! Driven by the in-tree `SplitMix64` PRNG (deterministic seeds, many
//! cases per property) instead of an external property-testing framework,
//! so the workspace builds with no network access.

use bputil::counter::{SatCounter, UnsignedCounter};
use bputil::history::{FoldedHistory, HistoryBuffer};
use bputil::rng::SplitMix64;
use bputil::table::SetAssoc;

/// The incrementally folded history always equals folding the full
/// history from scratch, for arbitrary outcome streams and geometries.
#[test]
fn folded_history_equals_reference() {
    let mut rng = SplitMix64::new(0xF01D);
    for case in 0..60 {
        let olen = 1 + rng.below(400) as usize;
        let clen = 1 + rng.below(20) as u32;
        let n = 1 + rng.below(1500) as usize;
        let mut ghr = HistoryBuffer::new(512);
        let mut fh = FoldedHistory::new(olen, clen);
        for _ in 0..n {
            let t = rng.chance(1, 2);
            fh.update_before_push(&ghr, t);
            ghr.push(t);
        }
        // Only valid while the GHR still remembers the whole window.
        if olen <= ghr.capacity() {
            assert_eq!(
                fh.value(),
                ghr.fold(olen, clen),
                "case {case}: olen={olen} clen={clen} n={n}"
            );
        }
    }
}

/// Saturating counters never leave their representable range and the
/// predicted direction equals the sign.
#[test]
fn sat_counter_stays_in_range() {
    let mut rng = SplitMix64::new(0x5A7);
    for _ in 0..100 {
        let bits = 1 + rng.below(8) as u32;
        let mut c = SatCounter::new_signed(bits);
        for _ in 0..rng.below(200) {
            c.update(rng.chance(1, 2));
            assert!(c.value() >= c.min() && c.value() <= c.max());
            assert_eq!(c.taken(), c.value() >= 0);
        }
    }
}

/// An unsigned counter never exceeds the number of increments and never
/// goes negative.
#[test]
fn unsigned_counter_bounds() {
    let mut rng = SplitMix64::new(0xC0);
    for _ in 0..100 {
        let bits = 1 + rng.below(8) as u32;
        let mut c = UnsignedCounter::new(bits);
        let mut ups = 0u32;
        for _ in 0..rng.below(200) {
            if rng.chance(1, 2) {
                c.increment();
                ups += 1;
            } else {
                c.decrement();
            }
            assert!(u32::from(c.value()) <= ups);
            assert!(c.value() <= c.max());
        }
    }
}

/// A set-associative table never holds two valid entries with the same
/// (set, tag), and occupancy never exceeds sets × ways.
#[test]
fn set_assoc_no_duplicate_tags() {
    let mut rng = SplitMix64::new(0x7AB);
    for _ in 0..60 {
        let index_bits = rng.below(5) as u32;
        let ways = 1 + rng.below(4) as usize;
        let mut t: SetAssoc<u64> = SetAssoc::new(index_bits, ways);
        for _ in 0..1 + rng.below(300) {
            let tag = rng.next_u64();
            let idx = rng.below(16);
            t.insert_lru(idx, tag, tag);
            let set_count = 1usize << index_bits;
            assert!(t.occupancy() <= set_count * ways);
        }
        // No duplicates: every (set, tag) pair appears at most once.
        let mut seen = std::collections::HashSet::new();
        for (set, tag, _) in t.iter() {
            assert!(seen.insert((set, tag)), "duplicate (set={set}, tag={tag})");
        }
    }
}

/// Lookup after insert always hits (within the same set and tag), and the
/// stored value round-trips.
#[test]
fn set_assoc_insert_then_get() {
    let mut rng = SplitMix64::new(0x9E7);
    for _ in 0..200 {
        let index_bits = rng.below(5) as u32;
        let ways = 1 + rng.below(8) as usize;
        let idx = rng.next_u64();
        let tag = rng.next_u64();
        let value = rng.next_u64();
        let mut t: SetAssoc<u64> = SetAssoc::new(index_bits, ways);
        t.insert_lru(idx, tag, value);
        assert_eq!(t.get(idx, tag), Some(&value));
    }
}

/// Histogram percentiles are monotone in `p` and bounded by min/max.
#[test]
fn histogram_percentiles_monotone() {
    let mut rng = SplitMix64::new(0x415);
    for _ in 0..100 {
        let n = 1 + rng.below(200) as usize;
        let samples: Vec<u64> = (0..n).map(|_| rng.below(10_000)).collect();
        let h: bputil::stats::Histogram = samples.iter().copied().collect();
        let p50 = h.percentile(50.0).unwrap();
        let p95 = h.percentile(95.0).unwrap();
        assert!(p50 <= p95);
        assert!(h.min().unwrap() <= p50);
        assert!(p95 <= h.max().unwrap());
    }
}
