//! Property-based tests for the predictor building blocks.

use bputil::counter::{SatCounter, UnsignedCounter};
use bputil::history::{FoldedHistory, HistoryBuffer};
use bputil::table::SetAssoc;
use proptest::prelude::*;

proptest! {
    /// The incrementally folded history always equals folding the full
    /// history from scratch, for arbitrary outcome streams and geometries.
    #[test]
    fn folded_history_equals_reference(
        outcomes in proptest::collection::vec(any::<bool>(), 1..1500),
        olen in 1usize..400,
        clen in 1u32..=20,
    ) {
        let mut ghr = HistoryBuffer::new(512);
        let mut fh = FoldedHistory::new(olen, clen);
        for &t in &outcomes {
            fh.update_before_push(&ghr, t);
            ghr.push(t);
        }
        // Only valid while the GHR still remembers the whole window.
        prop_assume!(olen <= ghr.capacity());
        prop_assert_eq!(fh.value(), ghr.fold(olen, clen));
    }

    /// Saturating counters never leave their representable range and the
    /// predicted direction equals the sign.
    #[test]
    fn sat_counter_stays_in_range(
        bits in 1u32..=8,
        updates in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut c = SatCounter::new_signed(bits);
        for &t in &updates {
            c.update(t);
            prop_assert!(c.value() >= c.min() && c.value() <= c.max());
            prop_assert_eq!(c.taken(), c.value() >= 0);
        }
    }

    /// An unsigned counter is exactly `clamp(ups - downs)` when updates are
    /// applied in a non-interleaved order... more precisely, it never exceeds
    /// the number of increments and never goes negative.
    #[test]
    fn unsigned_counter_bounds(
        bits in 1u32..=8,
        ops in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut c = UnsignedCounter::new(bits);
        let mut ups = 0u32;
        for &up in &ops {
            if up { c.increment(); ups += 1; } else { c.decrement(); }
            prop_assert!(u32::from(c.value()) <= ups);
            prop_assert!(c.value() <= c.max());
        }
    }

    /// A set-associative table never holds two valid entries with the same
    /// (set, tag), and occupancy never exceeds sets × ways.
    #[test]
    fn set_assoc_no_duplicate_tags(
        index_bits in 0u32..=4,
        ways in 1usize..=4,
        ops in proptest::collection::vec((any::<u64>(), 0u64..16), 1..300),
    ) {
        let mut t: SetAssoc<u64> = SetAssoc::new(index_bits, ways);
        for &(tag, idx) in &ops {
            t.insert_lru(idx, tag, tag);
            let set_count = 1usize << index_bits;
            prop_assert!(t.occupancy() <= set_count * ways);
        }
        // No duplicates: every (set, tag) pair appears at most once.
        let mut seen = std::collections::HashSet::new();
        for (set, tag, _) in t.iter() {
            prop_assert!(seen.insert((set, tag)), "duplicate (set={}, tag={})", set, tag);
        }
    }

    /// Lookup after insert always hits (within the same set and tag), and the
    /// stored value round-trips.
    #[test]
    fn set_assoc_insert_then_get(
        index_bits in 0u32..=4,
        ways in 1usize..=8,
        idx in any::<u64>(),
        tag in any::<u64>(),
        value in any::<u64>(),
    ) {
        let mut t: SetAssoc<u64> = SetAssoc::new(index_bits, ways);
        t.insert_lru(idx, tag, value);
        prop_assert_eq!(t.get(idx, tag), Some(&value));
    }

    /// Histogram percentiles are monotone in `p` and bounded by min/max.
    #[test]
    fn histogram_percentiles_monotone(
        samples in proptest::collection::vec(0u64..10_000, 1..200),
    ) {
        let h: bputil::stats::Histogram = samples.iter().copied().collect();
        let p50 = h.percentile(50.0).unwrap();
        let p95 = h.percentile(95.0).unwrap();
        prop_assert!(p50 <= p95);
        prop_assert!(h.min().unwrap() <= p50);
        prop_assert!(p95 <= h.max().unwrap());
    }
}
