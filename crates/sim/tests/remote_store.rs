//! End-to-end tests of the remote storage tier: a real `StoreServer`
//! on a loopback socket, a `MemoStore` routed through `RemoteBackend`,
//! injected network faults, and the degradation/republish lifecycle.

use llbp_sim::store::remote::RemoteBackend;
use llbp_sim::store::server::{StoreServer, StoreServerHandle};
use llbp_sim::{FaultInjector, MemoStore, SimConfig, SimResult};
use llbp_trace::fingerprint::Fingerprint;
use llbp_trace::{Workload, WorkloadSpec};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "llbp-remote-it-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn spawn_server(tag: &str) -> (StoreServerHandle, SocketAddr, PathBuf) {
    let root = scratch_dir(&format!("{tag}-srv"));
    let server = StoreServer::bind("127.0.0.1:0", &root).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle().expect("handle");
    std::thread::spawn(move || server.run());
    (handle, addr, root)
}

fn remote_store(addr: SocketAddr, tag: &str) -> (MemoStore, Arc<RemoteBackend>, PathBuf) {
    let overlay = scratch_dir(&format!("{tag}-ovl"));
    let backend = Arc::new(RemoteBackend::open(addr.to_string(), &overlay).expect("overlay opens"));
    let store = MemoStore::open_with_backend(&overlay, Arc::<RemoteBackend>::clone(&backend))
        .expect("store opens");
    (store, backend, overlay)
}

fn sample_result() -> SimResult {
    let mut provider_counts: bputil::hash::FastHashMap<&'static str, u64> = Default::default();
    provider_counts.insert("tage", 669);
    SimResult {
        label: "64K TSL".into(),
        workload: "HTTP".into(),
        instructions: 5_000,
        conditional_branches: 700,
        mispredictions: 31,
        provider_counts,
        per_branch_mispredicts: None,
        per_branch_executions: None,
        llbp: None,
    }
}

#[test]
fn memo_store_roundtrips_through_the_remote_tier() {
    let (handle, addr, srv_root) = spawn_server("roundtrip");
    let (store, _backend, overlay) = remote_store(addr, "roundtrip");
    assert_eq!(store.tier(), "remote");

    let result = sample_result();
    let fp = store.result_fingerprint(
        &llbp_sim::PredictorKind::Tsl64K,
        &WorkloadSpec::named(Workload::Http).with_branches(700),
        &SimConfig::default(),
    );
    assert!(store.load_result(fp).expect("reachable").is_none());
    let digest =
        store.store_result(fp, &result, Duration::from_millis(9), 700).expect("remote put");

    // A *different* worker (fresh overlay, same server) sees the cell:
    // the bytes really did travel through the socket.
    let (peer, _peer_backend, peer_overlay) = remote_store(addr, "roundtrip-peer");
    let cell = peer.load_result(fp).expect("reachable").expect("served by the shared store");
    assert_eq!(cell.result, result);
    assert_eq!(cell.digest, digest);
    assert!(peer.has_result(fp));
    assert_eq!(peer.recorded_cost(fp), Some(Duration::from_millis(9)));
    assert!(peer.verify_result(fp, Some(digest)).expect("reachable"));

    // Traces travel too.
    let spec = WorkloadSpec::named(Workload::Kafka).with_branches(600);
    let trace_fp = store.trace_fingerprint(&spec);
    let trace = spec.generate();
    store.store_trace(trace_fp, &trace).expect("remote trace put");
    let back = peer.load_trace(trace_fp).expect("reachable").expect("trace served");
    assert_eq!(back.records(), trace.records());

    handle.shutdown();
    for dir in [srv_root, overlay, peer_overlay] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn injected_net_faults_are_retried_away() {
    let (handle, addr, srv_root) = spawn_server("faults");
    let (mut store, backend, overlay) = remote_store(addr, "faults");
    // Each operation gets a budget of REQUEST_RETRIES attempts, so two
    // injected faults per operation must be absorbed by its retry loop.
    store.attach_faults(Arc::new(
        FaultInjector::parse("net:disconnect:count=1;net:drop:count=1").expect("spec parses"),
    ));
    let fp = Fingerprint(0x5eed);
    let result = sample_result();
    store.store_result(fp, &result, Duration::from_millis(3), 10).expect("put despite faults");
    assert_eq!(backend.degraded_ops(), 0, "retries must absorb the faults, not degradation");

    store.attach_faults(Arc::new(
        FaultInjector::parse("net:timeout:count=1;net:torn-write:count=1").expect("spec parses"),
    ));
    let cell = store.load_result(fp).expect("reachable").expect("get despite faults");
    assert_eq!(cell.result, result);
    assert_eq!(backend.degraded_ops(), 0, "retries must absorb the faults, not degradation");

    handle.shutdown();
    for dir in [srv_root, overlay] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn unreachable_remote_degrades_to_overlay_and_republishes_on_reconnect() {
    // Reserve a port with no listener behind it: binding then dropping
    // a listener that never accepted a connection leaves the port
    // closed but re-bindable.
    let placeholder = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let addr = placeholder.local_addr().expect("addr");
    drop(placeholder);

    let (mut store, backend, overlay) = remote_store(addr, "degraded");
    store.attach_faults(Arc::new(FaultInjector::parse("").expect("empty spec")));

    // Remote down: every operation degrades to the overlay, none fails.
    let fp = Fingerprint(0xd1e);
    let result = sample_result();
    let digest = store
        .store_result(fp, &result, Duration::from_millis(2), 5)
        .expect("degraded put must not fail the campaign");
    assert!(backend.degraded_ops() > 0, "the outage must be counted");
    let cell = store.load_result(fp).expect("degraded get").expect("served from overlay");
    assert_eq!(cell.digest, digest);
    assert!(store.has_result(fp), "contains degrades too");

    // The server comes back *on the same address*: the next operation
    // reconnects and republishes the overlay-only objects first.
    let srv_root = scratch_dir("degraded-srv");
    let server = StoreServer::bind(addr, &srv_root).expect("rebind");
    let handle = server.handle().expect("handle");
    std::thread::spawn(move || server.run());

    assert!(store.has_result(fp), "first op after recovery");
    assert_eq!(backend.republished(), 1, "the overlay object must be re-published");

    // Proof it reached the shared store: a fresh worker with an empty
    // overlay can read it.
    let (peer, _pb, peer_overlay) = remote_store(addr, "degraded-peer");
    let cell = peer.load_result(fp).expect("reachable").expect("republished cell served");
    assert_eq!(cell.result, result);

    handle.shutdown();
    for dir in [srv_root, overlay, peer_overlay] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
