//! Fault-injection parity: a campaign that suffers injected panics, IO
//! faults or slowness must — after bounded retry and/or resume — publish
//! a report identical to the fault-free run, at any worker count. These
//! tests pin the resilience layer's central guarantee: faults cost wall
//! time, never results.

use llbp_sim::engine::{SweepEngine, SweepSpec};
use llbp_sim::{FaultInjector, MemoStore, PredictorKind, SimConfig};
use llbp_trace::{Workload, WorkloadSpec};
use std::sync::Arc;
use std::time::Duration;

fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("llbp-fault-parity-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn grid() -> SweepSpec {
    SweepSpec::new(
        vec![PredictorKind::Tsl64K, PredictorKind::TslScaled(2)],
        vec![
            WorkloadSpec::named(Workload::Http).with_branches(3_000),
            WorkloadSpec::named(Workload::Kafka).with_branches(3_000),
            WorkloadSpec::named(Workload::Tpcc).with_branches(3_000),
        ],
        SimConfig::default(),
    )
}

fn injector(spec: &str) -> Arc<FaultInjector> {
    Arc::new(FaultInjector::parse(spec).expect("test fault spec parses"))
}

/// Asserts `faulty` carries exactly the results of the fault-free `clean`.
fn assert_reports_match(clean: &llbp_sim::SweepReport, faulty: &llbp_sim::SweepReport) {
    assert!(faulty.is_complete(), "unexpected failures: {:?}", faulty.failed);
    assert_eq!(clean.jobs.len(), faulty.jobs.len());
    for (c, f) in clean.jobs.iter().zip(&faulty.jobs) {
        assert_eq!(c.job, f.job);
        assert_eq!(c.result, f.result);
    }
}

#[test]
fn injected_panics_converge_after_retry() {
    let spec = grid();
    let clean = SweepEngine::with_workers(1).run(&spec);
    for workers in [1, 4] {
        let faulty = SweepEngine::with_workers(workers)
            .retries(2)
            .with_faults(injector("panic:cell=2"))
            .run(&spec);
        assert_reports_match(&clean, &faulty);
    }
}

#[test]
fn injected_io_faults_converge_after_retry() {
    let spec = grid();
    let clean = SweepEngine::with_workers(1).run(&spec);
    for workers in [1, 4] {
        let dir = temp_store_dir(&format!("io-{workers}"));
        let faults = injector("io:rate=1/7");
        let mut store = MemoStore::open(&dir).expect("temp store");
        store.attach_faults(Arc::clone(&faults));
        // A generous retry budget: each attempt draws fresh IO-fault
        // chances, so convergence only needs one clean sequence.
        let faulty = SweepEngine::with_workers(workers)
            .retries(5)
            .with_store(Arc::new(store))
            .with_faults(faults)
            .run(&spec);
        assert_reports_match(&clean, &faulty);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn slow_cells_time_out_and_converge_on_retry() {
    let spec = grid();
    let clean = SweepEngine::with_workers(1).run(&spec);
    for workers in [1, 4] {
        // Attempt 0 of cell 0 sleeps past the watchdog deadline and is
        // cancelled cooperatively; attempt 1 no longer sleeps and wins.
        let faulty = SweepEngine::with_workers(workers)
            .retries(2)
            .timeout(Some(Duration::from_millis(100)))
            .with_faults(injector("slow:cell=0,ms=400"))
            .run(&spec);
        assert_reports_match(&clean, &faulty);
    }
}

#[test]
fn slow_generation_times_out_and_converges_on_retry() {
    // One predictor × three distinct workloads: every cell owns its
    // workload's cache slot, so the only thing racing the watchdog is the
    // injected generation delay itself.
    let spec = SweepSpec::new(
        vec![PredictorKind::Tsl64K],
        vec![
            WorkloadSpec::named(Workload::Http).with_branches(3_000),
            WorkloadSpec::named(Workload::Kafka).with_branches(3_000),
            WorkloadSpec::named(Workload::Tpcc).with_branches(3_000),
        ],
        SimConfig::default(),
    );
    let clean = SweepEngine::with_workers(1).run(&spec);
    // Attempt 0 of cell 1 stalls inside *trace generation*; the watchdog
    // cancels it at the generator's next poll point, and the cache rolls
    // the pending slot back so attempt 1 regenerates cleanly.
    let faulty = SweepEngine::with_workers(1)
        .retries(2)
        .timeout(Some(Duration::from_millis(100)))
        .with_faults(injector("slow:cell=1,ms=400,at=gen"))
        .run(&spec);
    assert_reports_match(&clean, &faulty);

    // With no retry budget the stuck-in-generation cell surfaces as a
    // structured timeout, not a hang or a truncated trace.
    let report = SweepEngine::with_workers(1)
        .retries(0)
        .timeout(Some(Duration::from_millis(100)))
        .with_faults(injector("slow:cell=1,ms=400,count=99,at=gen"))
        .run(&spec);
    assert_eq!(report.failed.len(), 1);
    assert_eq!(report.failed[0].index, 1);
    assert_eq!(report.failed[0].error.class(), "timeout");
}

#[test]
fn exhausted_retries_surface_as_structured_failures() {
    let spec = grid();
    let report = SweepEngine::with_workers(2)
        .retries(1)
        .with_faults(injector("panic:cell=1,count=99"))
        .run(&spec);
    assert!(!report.is_complete());
    assert_eq!(report.failed.len(), 1);
    let err = &report.failed[0];
    assert_eq!(err.index, 1);
    assert_eq!(err.attempts, 2, "retries(1) = one retry after the first attempt");
    assert_eq!(err.error.class(), "injected");
    // The failed cell holds an all-zero placeholder with correct labels,
    // so dense grid indexing and table rendering still work.
    let placeholder = report.get(err.job.workload, err.job.predictor);
    assert_eq!(placeholder.label, spec.predictors[err.job.predictor].label());
    assert_eq!(placeholder.instructions, 0);
    assert_eq!(placeholder.mispredictions, 0);
    // And the archived JSON is honest about the gap.
    let json = report.throughput_json("fault-test");
    assert!(json.contains("\"failed\":[{\"cell\":1,"));
    assert!(json.contains("\"class\":\"injected\""));
}

#[test]
fn timeout_exhaustion_is_classified_as_timeout() {
    let spec = grid();
    let report = SweepEngine::with_workers(1)
        .retries(0)
        .timeout(Some(Duration::from_millis(50)))
        .with_faults(injector("slow:cell=0,ms=300,count=99"))
        .run(&spec);
    assert_eq!(report.failed.len(), 1);
    assert_eq!(report.failed[0].index, 0);
    assert_eq!(report.failed[0].error.class(), "timeout");
}

#[test]
fn resume_completes_an_interrupted_campaign() {
    let spec = grid();
    let n = spec.num_jobs() as u64;
    let clean = SweepEngine::with_workers(1).run(&spec);
    let dir = temp_store_dir("resume");

    // Campaign 1: cell 2 fails permanently (no retry budget converges).
    let first = SweepEngine::with_workers(2)
        .retries(0)
        .with_store(Arc::new(MemoStore::open(&dir).expect("temp store")))
        .with_faults(injector("panic:cell=2,count=99"))
        .run(&spec);
    assert_eq!(first.failed.len(), 1);
    assert_eq!(first.memo_misses, n - 1, "every healthy cell was simulated and published");

    // Campaign 2: same grid, faults gone, --resume. Only the gap is
    // simulated; everything else is trusted from the journal + store.
    let second = SweepEngine::with_workers(2)
        .resume(true)
        .with_store(Arc::new(MemoStore::open(&dir).expect("temp store")))
        .run(&spec);
    assert_reports_match(&clean, &second);
    assert_eq!(second.resumed, n - 1);
    assert_eq!(second.memo_hits, n - 1);
    assert_eq!(second.memo_misses, 1, "only the previously failed cell re-simulates");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fresh_runs_truncate_a_stale_journal() {
    let spec = grid();
    let n = spec.num_jobs() as u64;
    let dir = temp_store_dir("truncate");

    let first = SweepEngine::with_workers(1)
        .with_store(Arc::new(MemoStore::open(&dir).expect("temp store")))
        .run(&spec);
    assert!(first.is_complete());

    // Without --resume the journal restarts, so nothing counts as
    // resumed even though the memo store still serves every cell.
    let second = SweepEngine::with_workers(1)
        .with_store(Arc::new(MemoStore::open(&dir).expect("temp store")))
        .run(&spec);
    assert_eq!(second.resumed, 0);
    assert_eq!(second.memo_hits, n);
    let _ = std::fs::remove_dir_all(&dir);
}
