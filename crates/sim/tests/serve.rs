//! Sweep-daemon integration tests: cross-campaign dedup, remote/local
//! report parity, and restart resume — all against an in-process
//! [`ServeDaemon`] on a loopback socket, which exercises the real wire
//! protocol end to end. The process-level story (spawned `llbp_serve`,
//! byte-identical stdout through `--server`, metrics scrape, injected
//! network faults, clean shutdown) lives in `scripts/tier1.sh`.

use llbp_sim::coord::grid_fingerprints;
use llbp_sim::journal::{campaign_fingerprint, read_outcomes};
use llbp_sim::serve::client::{run_remote, run_remote_with, ServeClient};
use llbp_sim::serve::{ServeDaemon, ServeHandle};
use llbp_sim::{FaultInjector, MemoStore, PredictorKind, SimConfig, SweepEngine, SweepSpec};
use llbp_trace::{Workload, WorkloadSpec};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "llbp-serve-it-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn spec_for(workloads: &[Workload]) -> SweepSpec {
    SweepSpec::new(
        vec![PredictorKind::Tsl64K, PredictorKind::TslScaled(2)],
        workloads.iter().map(|&w| WorkloadSpec::named(w).with_branches(2_000)).collect(),
        SimConfig::default(),
    )
}

/// Binds a daemon over `root` and serves it from a background thread.
/// The returned handle stops the accept loop; resident campaigns have
/// all finished by the time the tests call it (they block on
/// `run_remote`), so join-after-shutdown is prompt.
fn start_daemon(root: &Path) -> (ServeHandle, String, std::thread::JoinHandle<()>) {
    let store = Arc::new(MemoStore::open(root).expect("store opens"));
    let daemon = ServeDaemon::bind("127.0.0.1:0", store, None).expect("daemon binds");
    let addr = format!("tcp://{}", daemon.local_addr());
    let handle = daemon.handle();
    let join = std::thread::spawn(move || daemon.run());
    (handle, addr, join)
}

fn published_cells(root: &Path) -> usize {
    std::fs::read_dir(root.join("results"))
        .expect("results dir exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|ext| ext == "llbr"))
        .count()
}

#[test]
fn concurrent_overlapping_campaigns_compute_shared_cells_exactly_once() {
    let root = scratch_dir("dedup");
    let (handle, addr, join) = start_daemon(&root);

    // Two 2x2 grids sharing the Kafka column: 8 submitted cells, 6
    // distinct. The daemon-global interlock plus the memo probe must
    // make the 2 shared cells simulate once and memo-serve the other
    // campaign, whichever gets there first.
    let spec_a = spec_for(&[Workload::Http, Workload::Kafka]);
    let spec_b = spec_for(&[Workload::Kafka, Workload::Tpcc]);
    let (report_a, report_b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| run_remote(&addr, &spec_a).expect("campaign A"));
        let b = scope.spawn(|| run_remote(&addr, &spec_b).expect("campaign B"));
        (a.join().expect("A thread"), b.join().expect("B thread"))
    });

    for (label, report) in [("A", &report_a), ("B", &report_b)] {
        assert_eq!(report.jobs.len(), 4, "campaign {label} grid");
        assert!(report.failed.is_empty(), "campaign {label} failures: {:?}", report.failed);
        assert_eq!(report.store_tier, "serve");
    }
    // `memo_misses` counts cells a campaign actually simulated;
    // exactly-once means the two campaigns split the 6 distinct cells
    // between them, and the store holds exactly the union.
    assert_eq!(
        report_a.memo_misses + report_b.memo_misses,
        6,
        "each distinct cell simulated exactly once \
         (A: {}, B: {})",
        report_a.memo_misses,
        report_b.memo_misses
    );
    assert_eq!(published_cells(&root), 6, "store holds the union grid, nothing twice");
    // The 2 shared cells were served across campaigns, not recomputed.
    assert!(
        report_a.memo_hits + report_b.memo_hits >= 2,
        "shared cells memo-served (A: {}, B: {})",
        report_a.memo_hits,
        report_b.memo_hits
    );

    // Kafka is workload index 1 in A (cells 2,3) and index 0 in B
    // (cells 0,1): the shared cells must carry identical results.
    for pred in 0..2 {
        assert_eq!(
            report_a.jobs[2 + pred].result,
            report_b.jobs[pred].result,
            "shared Kafka cell, predictor {pred}"
        );
    }

    handle.shutdown();
    join.join().expect("daemon thread");
}

#[test]
fn remote_report_matches_a_local_run_cell_for_cell() {
    let remote_root = scratch_dir("parity-remote");
    let local_root = scratch_dir("parity-local");
    let spec = spec_for(&[Workload::Http, Workload::Kafka]);

    let (handle, addr, join) = start_daemon(&remote_root);
    let remote = run_remote(&addr, &spec).expect("remote sweep");
    let local = SweepEngine::with_workers(1)
        .with_store(Arc::new(MemoStore::open(&local_root).expect("local store")))
        .run(&spec);

    assert_eq!(remote.jobs.len(), local.jobs.len());
    assert!(remote.failed.is_empty() && local.failed.is_empty());
    for (r, l) in remote.jobs.iter().zip(&local.jobs) {
        assert_eq!(r.job, l.job, "grid order");
        assert_eq!(r.result, l.result, "cell {:?}", r.job);
        assert_eq!(r.stats.branches, l.stats.branches, "cell {:?}", r.job);
    }
    assert_eq!(remote.memo_misses, 4, "fresh grid: every cell simulated daemon-side");
    assert_eq!(remote.num_predictors, local.num_predictors);

    // Resubmitting the identical grid is idempotent: the
    // content-addressed ticket lands on the finished resident campaign
    // and the store still holds exactly one file per cell.
    let again = run_remote(&addr, &spec).expect("resubmitted sweep");
    assert_eq!(again.jobs.len(), 4);
    for (r, l) in again.jobs.iter().zip(&local.jobs) {
        assert_eq!(r.result, l.result, "resubmitted cell {:?}", r.job);
    }
    assert_eq!(published_cells(&remote_root), 4);

    handle.shutdown();
    join.join().expect("daemon thread");
}

#[test]
fn injected_disconnects_cost_a_retry_tick_not_the_campaign() {
    let root = scratch_dir("netfault");
    let (handle, addr, join) = start_daemon(&root);
    let spec = spec_for(&[Workload::Http, Workload::Kafka]);

    // Two injected disconnects (one per request, like the remote store
    // backend's fault model): the client reconnects and idempotently
    // resubmits, and the campaign still completes whole.
    let faults = Arc::new(FaultInjector::parse("net:disconnect:count=2").expect("spec parses"));
    let report = run_remote_with(&addr, &spec, Some(faults)).expect("survives disconnects");
    assert_eq!(report.jobs.len(), 4);
    assert!(report.failed.is_empty(), "failures: {:?}", report.failed);
    assert_eq!(report.memo_misses, 4, "every cell simulated despite the faults");
    assert_eq!(published_cells(&root), 4);

    handle.shutdown();
    join.join().expect("daemon thread");
}

#[test]
fn daemon_restart_resumes_from_journals_and_published_cells() {
    let root = scratch_dir("restart");
    let spec = spec_for(&[Workload::Http, Workload::Kafka]);

    // First incarnation completes the campaign and shuts down.
    let (handle, addr, join) = start_daemon(&root);
    let first = run_remote(&addr, &spec).expect("first incarnation sweep");
    assert_eq!(first.memo_misses, 4);
    handle.shutdown();
    join.join().expect("first daemon thread");

    // Simulate a cell lost to a crash before publish: delete one
    // published result. (A real crash also leaves a dead-pid lease,
    // which the takeover path steals; in-process the pid is ours and
    // looks live, but clean completion already released every lease.)
    let store = MemoStore::open(&root).expect("store reopens");
    let fps = grid_fingerprints(&spec, &store);
    let campaign = campaign_fingerprint(&fps);
    let victim = root.join("results").join(format!("{}.llbr", fps[2]));
    std::fs::remove_file(&victim).expect("victim cell exists");
    assert_eq!(published_cells(&root), 3);

    // Second incarnation: same root, fresh daemon state. Resubmission
    // must re-simulate exactly the missing cell and memo-serve the
    // other three from the store.
    let (handle, addr, join) = start_daemon(&root);
    let second = run_remote(&addr, &spec).expect("second incarnation sweep");
    assert!(second.failed.is_empty(), "failures: {:?}", second.failed);
    assert_eq!(second.memo_misses, 1, "only the deleted cell re-simulates");
    assert!(second.memo_hits >= 3, "published cells memo-serve (got {})", second.memo_hits);
    assert_eq!(published_cells(&root), 4, "grid is whole again");
    for (r, l) in second.jobs.iter().zip(&first.jobs) {
        assert_eq!(r.result, l.result, "resumed cell {:?}", r.job);
    }

    // The merged canonical journal covers the full grid after resume.
    let outcomes = read_outcomes(&root.join(format!("{campaign}.journal")));
    assert_eq!(outcomes.len(), 4, "merged journal covers the grid: {outcomes:?}");

    // Poll/stream against the dead first incarnation's ticket on the
    // *new* daemon works because resubmission re-registered it; an
    // unknown ticket is a clean protocol miss, not a hang.
    let mut client = ServeClient::connect(&addr).expect("client connects");
    let status = client.poll(campaign).expect("known ticket polls");
    assert!(status.finished && status.total == 4);
    let err = client.poll(llbp_trace::fingerprint::Fingerprint(0xdead_beef)).unwrap_err();
    assert!(
        err.to_string().contains("unknown campaign ticket"),
        "unknown ticket is a clean miss: {err}"
    );

    handle.shutdown();
    join.join().expect("second daemon thread");
}
