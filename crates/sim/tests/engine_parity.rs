//! The sweep engine must be bit-identical to the serial simulation path:
//! for every grid cell, the engine's `SimResult` equals what a plain
//! `Simulator::run` over a freshly generated trace produces, at any worker
//! count.

use llbp_sim::engine::{SweepEngine, SweepSpec};
use llbp_sim::{PredictorKind, SimConfig};
use llbp_trace::{Workload, WorkloadSpec};

fn grid() -> SweepSpec {
    SweepSpec::new(
        vec![PredictorKind::Tsl64K, PredictorKind::TslScaled(2), PredictorKind::InfTage],
        vec![
            WorkloadSpec::named(Workload::Http).with_branches(4_000),
            WorkloadSpec::named(Workload::Tpcc).with_branches(4_000),
            WorkloadSpec::named(Workload::NodeApp).with_branches(4_000),
        ],
        SimConfig::default(),
    )
}

/// The serial reference: generate each trace independently and run each
/// cell with the plain one-shot path, no sharing, no threads.
fn serial_reference(spec: &SweepSpec) -> Vec<llbp_sim::SimResult> {
    let mut out = Vec::new();
    for w in &spec.workloads {
        let trace = w.generate();
        for p in &spec.predictors {
            out.push(spec.sim.run(p.clone(), &trace));
        }
    }
    out
}

#[test]
fn engine_matches_serial_at_any_worker_count() {
    let spec = grid();
    let reference = serial_reference(&spec);
    for workers in [1, 2, 3, 8] {
        let report = SweepEngine::with_workers(workers).run(&spec);
        assert_eq!(report.jobs.len(), reference.len(), "workers={workers}");
        for (i, rec) in report.jobs.iter().enumerate() {
            assert_eq!(rec.result, reference[i], "cell {i} diverged at workers={workers}");
        }
    }
}

#[test]
fn engine_runs_are_reproducible() {
    let spec = grid();
    let a = SweepEngine::with_workers(2).run(&spec);
    let b = SweepEngine::with_workers(4).run(&spec);
    for (ra, rb) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(ra.result, rb.result);
        assert_eq!(ra.job, rb.job);
    }
}

#[test]
fn per_branch_tracking_survives_the_engine() {
    // The optional per-branch maps must also round-trip identically
    // (they exercise the FastHashMap-backed SimResult fields).
    let spec = SweepSpec::new(
        vec![PredictorKind::Tsl64K],
        vec![WorkloadSpec::named(Workload::Kafka).with_branches(5_000)],
        SimConfig { warmup_fraction: 0.25, track_per_branch: true, ..SimConfig::default() },
    );
    let reference = serial_reference(&spec);
    let report = SweepEngine::with_workers(3).run(&spec);
    assert_eq!(report.jobs[0].result, reference[0]);
    assert!(report.jobs[0].result.per_branch_mispredicts.is_some());
}
