//! Cross-process campaign safety: the journal lock must serialize
//! concurrent campaigns on one cache root (or fail one of them fast with
//! a clean contention error), a crashed holder's lock must be taken over,
//! and `--verify-resume` must demote silently corrupted memo cells back
//! to misses instead of trusting the journal.

use llbp_sim::engine::{SweepEngine, SweepSpec};
use llbp_sim::{
    campaign_fingerprint, CampaignJournal, MemoStore, PredictorKind, SimConfig, SimError,
};
use llbp_trace::{Fingerprint, Workload, WorkloadSpec};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn temp_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("llbp-campaign-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deliberately tiny grid so 50 back-to-back campaigns stay cheap.
fn tiny_grid() -> SweepSpec {
    SweepSpec::new(
        vec![PredictorKind::Tsl64K],
        vec![WorkloadSpec::named(Workload::Http).with_branches(2_000)],
        SimConfig::default(),
    )
}

fn engine_on(dir: &Path) -> SweepEngine {
    SweepEngine::with_workers(1).with_store(Arc::new(MemoStore::open(dir).expect("temp store")))
}

/// Asserts every line of every journal under `dir` parses as exactly one
/// well-formed v2 entry — the "zero malformed lines" guarantee durable
/// appends are supposed to buy.
fn assert_journals_well_formed(dir: &Path) {
    let mut seen = 0usize;
    for entry in std::fs::read_dir(dir).expect("cache root listable") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "journal") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("journal readable");
        assert!(
            text.is_empty() || text.ends_with('\n'),
            "journal {} does not end with a newline",
            path.display()
        );
        for line in text.lines() {
            assert!(
                well_formed_entry(line),
                "malformed journal line in {}: {line:?}",
                path.display()
            );
            seen += 1;
        }
    }
    assert!(seen > 0, "expected at least one journal entry under {}", dir.display());
}

/// Strict shape check for one journal line, independent of the parser
/// under test: `ok <cell> <fp32> <fp32|->`, `failed <cell> <class>`, or
/// `stale <cell> <fp32>`.
fn well_formed_entry(line: &str) -> bool {
    let fields: Vec<&str> = line.split(' ').collect();
    let is_hex32 = |s: &str| s.len() == 32 && s.bytes().all(|b| b.is_ascii_hexdigit());
    let is_cell = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    match fields.as_slice() {
        ["ok", cell, fp, digest] => {
            is_cell(cell) && is_hex32(fp) && (*digest == "-" || is_hex32(digest))
        }
        ["ok", cell, fp] => is_cell(cell) && is_hex32(fp), // legacy v1
        ["failed", cell, class] => is_cell(cell) && !class.is_empty(),
        ["stale", cell, fp] => is_cell(cell) && is_hex32(fp),
        _ => false,
    }
}

#[test]
fn concurrent_campaigns_serialize_or_contend_cleanly() {
    let dir = temp_store_dir("concurrent");
    let spec = tiny_grid();
    for iteration in 0..50 {
        let outcomes: Vec<Result<_, SimError>> = std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..2).map(|_| scope.spawn(|| engine_on(&dir).try_run(&spec))).collect();
            handles.into_iter().map(|h| h.join().expect("campaign thread")).collect()
        });
        let mut completed = 0;
        for outcome in outcomes {
            match outcome {
                Ok(report) => {
                    assert!(report.is_complete(), "iteration {iteration}: {:?}", report.failed);
                    completed += 1;
                }
                Err(SimError::CacheContention { holder, .. }) => {
                    // The loser names the live holder (this very process).
                    // `None` is tolerated: the winner can release between
                    // the loser's create attempt and its holder read.
                    assert!(
                        holder.is_none_or(|pid| pid == std::process::id()),
                        "iteration {iteration}: contention against foreign pid {holder:?}"
                    );
                }
                Err(other) => panic!("iteration {iteration}: unexpected error {other}"),
            }
        }
        assert!(completed >= 1, "iteration {iteration}: both campaigns lost the lock race");
        assert_journals_well_formed(&dir);
    }
    // A follow-up resume sees a consistent journal and completes.
    let report = engine_on(&dir).resume(true).try_run(&spec).expect("resume after races");
    assert!(report.is_complete());
    assert_eq!(report.resumed, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_holder_lock_is_taken_over() {
    let dir = temp_store_dir("takeover");
    let spec = tiny_grid();
    let report = engine_on(&dir).try_run(&spec).expect("first campaign");
    assert!(report.is_complete());

    // Fabricate a crash: the campaign's lock file left behind by a PID
    // that no longer exists. PIDs this large are far above any real
    // pid_max, so the holder is reliably dead.
    let journal_path = std::fs::read_dir(&dir)
        .expect("cache root listable")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "journal"))
        .expect("campaign journal exists");
    let lock_path = journal_path.with_extension("journal.lock");
    std::fs::write(&lock_path, "3999999999\n").expect("plant stale lock");

    let report = engine_on(&dir).resume(true).try_run(&spec).expect("takeover succeeds");
    assert!(report.is_complete());
    assert_eq!(report.resumed, 1);
    assert!(!lock_path.exists(), "released lock must not linger after the campaign");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_holder_contention_fails_fast_with_holder_pid() {
    let dir = temp_store_dir("live-holder");
    let spec = tiny_grid();
    // Hold the campaign's journal lock the way a live sibling process
    // would, then race an engine against it with a short lock wait.
    let store = MemoStore::open(&dir).expect("temp store");
    // Single-predictor grid: cell i is simply workload i.
    let fps: Vec<Fingerprint> = spec
        .workloads
        .iter()
        .map(|w| store.result_fingerprint(&spec.predictors[0], w, &spec.sim))
        .collect();
    let held = CampaignJournal::open_with_wait(
        store.root(),
        campaign_fingerprint(&fps),
        false,
        Duration::from_millis(10),
    )
    .expect("holder acquires the lock");

    let err = engine_on(&dir).try_run(&spec).expect_err("second campaign must contend");
    match err {
        SimError::CacheContention { holder, .. } => {
            assert_eq!(holder, Some(std::process::id()));
        }
        other => panic!("expected contention, got {other}"),
    }
    drop(held);

    // Lock released: the same campaign now runs to completion.
    let report = engine_on(&dir).try_run(&spec).expect("after release");
    assert!(report.is_complete());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two-cell grid plus the paths of each cell's memoized result file.
fn verify_fixture(dir: &Path) -> (SweepSpec, Vec<PathBuf>) {
    let spec = SweepSpec::new(
        vec![PredictorKind::Tsl64K],
        vec![
            WorkloadSpec::named(Workload::Http).with_branches(2_000),
            WorkloadSpec::named(Workload::Kafka).with_branches(2_000),
        ],
        SimConfig::default(),
    );
    let store = MemoStore::open(dir).expect("temp store");
    // Single-predictor grid: cell i is simply workload i.
    let cells = spec
        .workloads
        .iter()
        .map(|w| {
            let fp = store.result_fingerprint(&spec.predictors[0], w, &spec.sim);
            dir.join("results").join(format!("{fp}.llbr"))
        })
        .collect();
    (spec, cells)
}

#[test]
fn verify_resume_demotes_a_bit_flipped_cell() {
    let dir = temp_store_dir("bit-flip");
    let (spec, cells) = verify_fixture(&dir);
    let clean = engine_on(&dir).try_run(&spec).expect("cold campaign");
    assert!(clean.is_complete());

    // Flip one payload bit of cell 1's memoized result on disk.
    let mut bytes = std::fs::read(&cells[1]).expect("memoized cell exists");
    bytes[10] ^= 0x04;
    std::fs::write(&cells[1], &bytes).expect("rewrite tampered cell");

    let verified = engine_on(&dir).resume(true).verify_resume(true).try_run(&spec).expect("verify");
    assert!(verified.is_complete());
    assert_eq!(verified.stale, 1, "exactly the tampered cell is demoted");
    assert_eq!(verified.resumed, 1, "the intact cell is still trusted");
    assert_eq!(verified.memo_misses, 1, "the demoted cell re-simulates");
    for (c, v) in clean.jobs.iter().zip(&verified.jobs) {
        assert_eq!(c.result, v.result, "verified resume reproduces the cold run");
    }
    // The demotion is journaled, and the re-run supersedes it.
    assert_journals_well_formed(&dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verify_resume_demotes_a_replaced_cell() {
    let dir = temp_store_dir("replaced");
    let (spec, cells) = verify_fixture(&dir);
    let clean = engine_on(&dir).try_run(&spec).expect("cold campaign");
    assert!(clean.is_complete());

    // Overwrite cell 1's file with cell 0's — internally consistent bytes
    // (magic, version and trailer checksum all pass), but the *wrong*
    // result. Only the journaled digest can catch this: a plain decode
    // happily serves it.
    std::fs::copy(&cells[0], &cells[1]).expect("replace cell 1 with cell 0");

    let verified = engine_on(&dir).resume(true).verify_resume(true).try_run(&spec).expect("verify");
    assert!(verified.is_complete());
    assert_eq!(verified.stale, 1, "the replaced cell fails digest verification");
    for (c, v) in clean.jobs.iter().zip(&verified.jobs) {
        assert_eq!(c.result, v.result, "verified resume reproduces the cold run");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
