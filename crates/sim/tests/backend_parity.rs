//! The backend contract: execution tier is a pure throughput choice.
//!
//! Every non-reference backend must reproduce the reference backend's
//! [`llbp_sim::SimResult`] *exactly* — same misprediction counts, same
//! provider attribution, same per-branch maps, same LLBP-internal
//! statistics — for every [`PredictorKind`]. Any divergence here means a
//! backend changed simulation semantics, which would silently corrupt
//! figures and poison the shared memo store.

use llbp_core::LlbpParams;
use llbp_sim::{BackendKind, CancelToken, PredictorKind, SimConfig, BATCH_BLOCK};
use llbp_tage::TslConfig;
use llbp_trace::{Trace, Workload, WorkloadSpec};

/// One instance of every `PredictorKind` variant, small enough for a
/// debug-mode test run.
fn every_kind() -> Vec<PredictorKind> {
    vec![
        PredictorKind::Tsl64K,
        PredictorKind::TslScaled(2),
        PredictorKind::InfTage,
        PredictorKind::InfTsl,
        PredictorKind::Llbp(LlbpParams::default()),
        PredictorKind::CustomTsl(TslConfig::cbp64k()),
        PredictorKind::Gshare { index_bits: 12, history_bits: 12 },
        PredictorKind::TwoLevelLocal { bht_bits: 10, local_bits: 10 },
        PredictorKind::HashedPerceptron { tables: 4, index_bits: 10, segment_bits: 8 },
    ]
}

fn non_reference() -> [BackendKind; 2] {
    [BackendKind::Specialized, BackendKind::Batch]
}

fn assert_backends_match(cfg: &SimConfig, kind: &PredictorKind, trace: &Trace) {
    let reference = cfg.with_backend(BackendKind::Reference).run(kind.clone(), trace);
    // Full-warmup configs legitimately measure nothing; every other split
    // must exercise the measure phase or the comparison proves nothing.
    assert!(
        cfg.warmup_fraction >= 1.0 || reference.conditional_branches > 0,
        "degenerate trace would prove nothing"
    );
    for backend in non_reference() {
        let got = cfg.with_backend(backend).run(kind.clone(), trace);
        assert_eq!(
            got,
            reference,
            "backend `{backend}` diverges from reference for {kind:?} on {} \
             (cfg: warmup={}, track={})",
            trace.name(),
            cfg.warmup_fraction,
            cfg.track_per_branch,
        );
    }
}

#[test]
fn every_backend_matches_reference_for_every_predictor_kind() {
    // Tracking on: the per-branch maps and provider counts must round-trip
    // identically too, not just the scalar totals.
    let trace = WorkloadSpec::named(Workload::Tomcat).with_branches(2_500).generate();
    let cfg = SimConfig { warmup_fraction: 0.25, track_per_branch: true, ..SimConfig::default() };
    for kind in every_kind() {
        assert_backends_match(&cfg, &kind, &trace);
    }
}

#[test]
fn parity_holds_across_sampled_workloads_and_phase_splits() {
    // The untracked loop instantiations and the warmup edge cases
    // (warmup = 0: no warmup phase; warmup = 1: no measure phase) are
    // separate code paths in the non-reference tiers — pin each of them
    // on a second and third workload.
    for workload in [Workload::Kafka, Workload::Http] {
        let trace = WorkloadSpec::named(workload).with_branches(2_500).generate();
        for warmup_fraction in [0.0, 1.0 / 3.0, 1.0] {
            let cfg =
                SimConfig { warmup_fraction, track_per_branch: false, ..SimConfig::default() };
            for kind in [PredictorKind::Tsl64K, PredictorKind::Llbp(LlbpParams::default())] {
                assert_backends_match(&cfg, &kind, &trace);
            }
        }
    }
}

#[test]
fn auto_backend_runs_and_matches_reference() {
    let trace = WorkloadSpec::named(Workload::Tomcat).with_branches(2_500).generate();
    let cfg = SimConfig::default(); // backend: Auto
    let reference = cfg.with_backend(BackendKind::Reference).run(PredictorKind::Tsl64K, &trace);
    assert_eq!(cfg.run(PredictorKind::Tsl64K, &trace), reference);
}

#[test]
fn non_reference_backends_honor_cancellation_within_one_block() {
    // A token that is already cancelled must stop the run at the first
    // block boundary: the error surfaces and no more than one block of
    // progress is ever reported.
    let trace = WorkloadSpec::named(Workload::Tomcat).with_branches(3 * BATCH_BLOCK).generate();
    for backend in non_reference() {
        let cfg = SimConfig::default().with_backend(backend);
        let token = CancelToken::manual();
        token.cancel();
        let telemetry = llbp_obs::Telemetry::enabled();
        let progress = telemetry.counter("sim_records_total");
        let result = cfg.run_observed(PredictorKind::Tsl64K, &trace, &token, &progress);
        assert!(result.is_err(), "backend `{backend}` ignored a cancelled token");
        assert!(
            progress.get() <= BATCH_BLOCK as u64,
            "backend `{backend}` ran {} records past a cancelled token",
            progress.get(),
        );
    }
}
