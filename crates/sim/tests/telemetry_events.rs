//! Telemetry integration: an observed campaign must narrate itself —
//! every job leaves the five stage spans (`queue_wait`, `memo_probe`,
//! `generation`, `simulation`, `write_back`), injected faults leave
//! their marks (`retry`, `watchdog_kill`, `stale_demotion`), lock churn
//! leaves `lock_wait`/`lock_takeover`, and the metrics snapshot agrees
//! with the event log to the microsecond. These tests reuse the
//! fault-parity harness (tiny grid, `FaultInjector::parse`, temp store
//! dirs) so observation is checked under the same adversity the
//! resilience layer is.

use llbp_sim::engine::{SweepEngine, SweepSpec};
use llbp_sim::obs::{Event, EventKind, Telemetry};
use llbp_sim::{FaultInjector, MemoStore, PredictorKind, SimConfig};
use llbp_trace::{Workload, WorkloadSpec};
use std::sync::Arc;
use std::time::Duration;

/// The five per-job stage spans the engine promises (grepped by name in
/// `scripts/tier1.sh` — keep in sync).
const STAGE_SPANS: [&str; 5] =
    ["queue_wait", "memo_probe", "generation", "simulation", "write_back"];

fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("llbp-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn grid() -> SweepSpec {
    SweepSpec::new(
        vec![PredictorKind::Tsl64K, PredictorKind::TslScaled(2)],
        vec![
            WorkloadSpec::named(Workload::Http).with_branches(3_000),
            WorkloadSpec::named(Workload::Kafka).with_branches(3_000),
            WorkloadSpec::named(Workload::Tpcc).with_branches(3_000),
        ],
        SimConfig::default(),
    )
}

fn injector(spec: &str) -> Arc<FaultInjector> {
    Arc::new(FaultInjector::parse(spec).expect("test fault spec parses"))
}

fn spans<'a>(events: &'a [Event], name: &str) -> Vec<&'a Event> {
    events.iter().filter(|e| e.kind == EventKind::Span && e.name == name).collect()
}

fn marks<'a>(events: &'a [Event], name: &str) -> Vec<&'a Event> {
    events.iter().filter(|e| e.kind == EventKind::Mark && e.name == name).collect()
}

#[test]
fn every_job_records_the_five_stage_spans() {
    let dir = temp_store_dir("stages");
    let telemetry = Telemetry::enabled();
    let spec = grid();
    let n = spec.num_jobs();
    let report = SweepEngine::with_workers(2)
        .with_store(Arc::new(MemoStore::open(&dir).expect("temp store")))
        .with_telemetry(telemetry.clone())
        .run(&spec);
    assert!(report.is_complete(), "unexpected failures: {:?}", report.failed);

    let events = telemetry.drain_events();
    for stage in STAGE_SPANS {
        let stage_spans = spans(&events, stage);
        assert_eq!(stage_spans.len(), n, "one `{stage}` span per job");
        let mut cells: Vec<i64> = stage_spans.iter().map(|e| e.cell).collect();
        cells.sort_unstable();
        let expected: Vec<i64> = (0..n as i64).collect();
        assert_eq!(cells, expected, "`{stage}` spans cover every cell exactly once");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_snapshot_agrees_with_the_event_log() {
    let dir = temp_store_dir("agree");
    let telemetry = Telemetry::enabled();
    let spec = grid();
    let report = SweepEngine::with_workers(2)
        .with_store(Arc::new(MemoStore::open(&dir).expect("temp store")))
        .with_telemetry(telemetry.clone())
        .run(&spec);
    assert!(report.is_complete());

    // Snapshot FIRST: draining must not be what makes the metrics real.
    let snapshot = telemetry.metrics();
    let events = telemetry.drain_events();
    for stage in STAGE_SPANS {
        let stage_spans = spans(&events, stage);
        let hist = snapshot.histograms.get(stage).expect("stage histogram registered");
        assert_eq!(hist.count(), stage_spans.len() as u64, "`{stage}` sample count");
        let event_total: u64 = stage_spans.iter().map(|e| e.dur_us).sum();
        assert_eq!(hist.sum, event_total, "`{stage}` total µs matches the event log");
    }
    // The engine mirrors its summary counters into the registry.
    assert_eq!(snapshot.counters["sweep_jobs"], spec.num_jobs() as u64);
    assert_eq!(snapshot.counters["memo_misses"], report.memo_misses);
    // The hot loop's sampled record counter is registered (the loop
    // resolves it once per attempt) and never overcounts: sampling at
    // poll granularity undercounts by at most one interval per cell —
    // with these 3 000-branch traces, that rounds all the way to zero.
    let simulated: u64 = snapshot.counters["sim_records_total"];
    assert!(
        simulated <= spec.num_jobs() as u64 * 3_000,
        "sampled counter never overcounts (saw {simulated})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn throughput_json_carries_wall_percentiles_and_lock_stats() {
    let dir = temp_store_dir("json");
    let telemetry = Telemetry::enabled();
    let report = SweepEngine::with_workers(2)
        .with_store(Arc::new(MemoStore::open(&dir).expect("temp store")))
        .with_telemetry(telemetry)
        .run(&grid());
    let json = report.throughput_json("telemetry-test");
    for key in [
        "\"lock_wait_ms\":",
        "\"lock_takeovers\":",
        "\"cell_wall_p50_ms\":",
        "\"cell_wall_p95_ms\":",
        "\"cell_wall_max_ms\":",
    ] {
        assert!(json.contains(key), "throughput JSON missing {key}: {json}");
    }
    // Percentiles are ordered and bounded by the max.
    assert!(report.cell_wall.quantile(0.5) <= report.cell_wall.quantile(0.95));
    assert!(report.cell_wall.quantile(0.95) <= report.cell_wall.max);
    assert_eq!(report.cell_wall.count(), report.jobs.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_slowness_leaves_retry_and_watchdog_marks() {
    let telemetry = Telemetry::enabled();
    let spec = grid();
    // Attempt 0 of cell 0 sleeps past the watchdog and is killed; the
    // retry converges (same shape as the fault-parity test).
    let report = SweepEngine::with_workers(1)
        .retries(2)
        .timeout(Some(Duration::from_millis(100)))
        .with_faults(injector("slow:cell=0,ms=400"))
        .with_telemetry(telemetry.clone())
        .run(&spec);
    assert!(report.is_complete(), "retry must converge: {:?}", report.failed);

    let snapshot = telemetry.metrics();
    let events = telemetry.drain_events();
    let kills = marks(&events, "watchdog_kill");
    let retries = marks(&events, "retry");
    assert!(!kills.is_empty(), "watchdog kill must be marked");
    assert!(!retries.is_empty(), "retry must be marked");
    assert!(kills.iter().all(|e| e.cell == 0), "only cell 0 was killed");
    assert!(retries.iter().all(|e| e.cell == 0), "only cell 0 retried");
    // Mark events and mark counters are the same tally.
    assert_eq!(snapshot.counters["watchdog_kill"], kills.len() as u64);
    assert_eq!(snapshot.counters["retry"], retries.len() as u64);
}

#[test]
fn stale_demotion_under_verify_resume_is_marked() {
    let dir = temp_store_dir("stale");
    let spec = grid();

    // Campaign 1 (unobserved): complete the grid and journal it.
    let first = SweepEngine::with_workers(2)
        .with_store(Arc::new(MemoStore::open(&dir).expect("temp store")))
        .run(&spec);
    assert!(first.is_complete());

    // Campaign 2: --verify-resume with an injected stale verdict on cell
    // 2. The demotion is marked, counted, and the cell re-simulates.
    let telemetry = Telemetry::enabled();
    let second = SweepEngine::with_workers(2)
        .resume(true)
        .verify_resume(true)
        .with_store(Arc::new(MemoStore::open(&dir).expect("temp store")))
        .with_faults(injector("stale:cell=2"))
        .with_telemetry(telemetry.clone())
        .run(&spec);
    assert!(second.is_complete());
    assert_eq!(second.stale, 1);

    let snapshot = telemetry.metrics();
    let events = telemetry.drain_events();
    let demotions = marks(&events, "stale_demotion");
    assert_eq!(demotions.len(), 1, "exactly one demotion mark");
    assert_eq!(demotions[0].cell, 2, "the injected cell was demoted");
    assert_eq!(snapshot.counters["stale_demotion"], 1);
    // The demoted cell ran the full pipeline again: generation and
    // simulation spans exist for cell 2 and for nothing else.
    for stage in ["generation", "simulation"] {
        let cells: Vec<i64> = spans(&events, stage).iter().map(|e| e.cell).collect();
        assert_eq!(cells, vec![2], "`{stage}` re-ran only for the demoted cell");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_holder_takeover_is_observed_through_the_engine() {
    // Only meaningful where /proc lets us prove a PID dead.
    let proc_root = std::path::Path::new("/proc");
    if !proc_root.is_dir() {
        return;
    }
    let Some(dead) = (400_000..500_000).find(|p| !proc_root.join(p.to_string()).exists()) else {
        return;
    };

    let dir = temp_store_dir("takeover");
    let spec = grid();
    let store = Arc::new(MemoStore::open(&dir).expect("temp store"));

    // Plant a lock orphaned by a "crashed" campaign: same path the
    // journal derives (<root>/<campaign>.journal.lock). Job order is
    // workload-major, mirroring the engine's grid layout.
    let fingerprints: Vec<_> = (0..spec.num_jobs())
        .map(|i| {
            let (w, p) = (i / spec.predictors.len(), i % spec.predictors.len());
            store.result_fingerprint(&spec.predictors[p], &spec.workloads[w], &spec.sim)
        })
        .collect();
    let campaign = llbp_sim::campaign_fingerprint(&fingerprints);
    let lock_path = store.root().join(format!("{campaign}.journal.lock"));
    std::fs::write(&lock_path, format!("{dead}\n")).expect("plant orphaned lock");

    let telemetry = Telemetry::enabled();
    let report =
        SweepEngine::with_workers(1).with_store(store).with_telemetry(telemetry.clone()).run(&spec);
    assert!(report.is_complete());
    assert_eq!(report.lock_takeovers, 1, "the orphaned lock was taken over");

    let events = telemetry.drain_events();
    assert_eq!(marks(&events, "lock_takeover").len(), 1);
    let waits = spans(&events, "lock_wait");
    assert_eq!(waits.len(), 1, "takeover records the acquisition as a lock_wait span");
    assert_eq!(telemetry.metrics().counters["lock_takeover"], 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_telemetry_changes_nothing_and_records_nothing() {
    let dir = temp_store_dir("inert");
    let spec = grid();
    let clean = SweepEngine::with_workers(1).run(&spec);

    let telemetry = Telemetry::disabled();
    let observed = SweepEngine::with_workers(1)
        .with_store(Arc::new(MemoStore::open(&dir).expect("temp store")))
        .with_telemetry(telemetry.clone())
        .run(&spec);
    assert!(observed.is_complete());
    for (c, o) in clean.jobs.iter().zip(&observed.jobs) {
        assert_eq!(c.result, o.result, "telemetry must not perturb results");
    }
    assert!(telemetry.drain_events().is_empty());
    assert!(telemetry.metrics().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
