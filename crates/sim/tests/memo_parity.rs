//! Warm-vs-cold parity for the persistent memo store: results served from
//! disk must be byte-for-byte equal to freshly simulated ones, cold mode
//! must bypass (but refresh) the store, and bumping the format-version
//! salt must invalidate every entry cleanly.

use llbp_core::LlbpParams;
use llbp_sim::engine::{SweepEngine, SweepSpec};
use llbp_sim::{MemoStore, PredictorKind, SimConfig};
use llbp_trace::{Workload, WorkloadSpec};
use std::sync::Arc;

fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("llbp-memo-parity-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn grid() -> SweepSpec {
    SweepSpec::new(
        vec![
            PredictorKind::Tsl64K,
            PredictorKind::InfTage,
            // An LLBP cell exercises the LlbpCellStats (provider counts,
            // LLBP + front-end stats) serialization paths.
            PredictorKind::Llbp(LlbpParams::default()),
        ],
        vec![
            WorkloadSpec::named(Workload::Http).with_branches(4_000),
            WorkloadSpec::named(Workload::Kafka).with_branches(4_000),
        ],
        SimConfig::default(),
    )
}

#[test]
fn warm_rerun_is_identical_and_fully_memoized() {
    let dir = temp_store_dir("warm");
    let spec = grid();
    let store = Arc::new(MemoStore::open(&dir).expect("temp store"));

    let cold = SweepEngine::with_workers(2).with_store(Arc::clone(&store)).run(&spec);
    assert_eq!(cold.memo_hits, 0);
    assert_eq!(cold.memo_misses, spec.num_jobs() as u64);

    let warm = SweepEngine::with_workers(2).with_store(Arc::clone(&store)).run(&spec);
    assert_eq!(warm.memo_hits, spec.num_jobs() as u64);
    assert_eq!(warm.memo_misses, 0);
    // No trace needs generating or even loading on a fully warm sweep.
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(warm.trace_disk_hits, 0);

    for (c, w) in cold.jobs.iter().zip(&warm.jobs) {
        assert_eq!(c.result, w.result);
        assert_eq!(c.job, w.job);
        assert_eq!(c.stats.branches, w.stats.branches);
    }

    // And both match a store-less engine exactly.
    let plain = SweepEngine::with_workers(1).run(&spec);
    for (p, w) in plain.jobs.iter().zip(&warm.jobs) {
        assert_eq!(p.result, w.result);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cold_mode_bypasses_reads_but_refreshes_the_store() {
    let dir = temp_store_dir("cold");
    let spec = grid();
    let store = Arc::new(MemoStore::open(&dir).expect("temp store"));

    let first = SweepEngine::with_workers(1).with_store(Arc::clone(&store)).run(&spec);
    let cold = SweepEngine::with_workers(1).with_store(Arc::clone(&store)).cold(true).run(&spec);
    assert_eq!(cold.memo_hits, 0, "cold run must not read memoized results");
    assert_eq!(cold.memo_misses, spec.num_jobs() as u64);
    for (a, b) in first.jobs.iter().zip(&cold.jobs) {
        assert_eq!(a.result, b.result);
    }

    // The cold run re-published every cell, so a subsequent warm run
    // still hits everything.
    let warm = SweepEngine::with_workers(1).with_store(Arc::clone(&store)).run(&spec);
    assert_eq!(warm.memo_hits, spec.num_jobs() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn salt_bump_invalidates_cleanly() {
    let dir = temp_store_dir("salt");
    let spec = grid();

    let v0 = Arc::new(MemoStore::open_with_salt(&dir, 0).expect("temp store"));
    let first = SweepEngine::with_workers(1).with_store(Arc::clone(&v0)).run(&spec);
    assert_eq!(first.memo_misses, spec.num_jobs() as u64);

    // Same directory, new salt: every fingerprint changes, so nothing
    // hits — stale entries can never be served across a format bump.
    let v1 = Arc::new(MemoStore::open_with_salt(&dir, 1).expect("temp store"));
    let bumped = SweepEngine::with_workers(1).with_store(Arc::clone(&v1)).run(&spec);
    assert_eq!(bumped.memo_hits, 0);
    assert_eq!(bumped.memo_misses, spec.num_jobs() as u64);
    for (a, b) in first.jobs.iter().zip(&bumped.jobs) {
        assert_eq!(a.result, b.result);
    }

    // The old-salt view still works after the bump wrote its own entries.
    let old_view = SweepEngine::with_workers(1).with_store(v0).run(&spec);
    assert_eq!(old_view.memo_hits, spec.num_jobs() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cells_degrade_to_misses() {
    let dir = temp_store_dir("corrupt");
    let spec = grid();
    let store = Arc::new(MemoStore::open(&dir).expect("temp store"));
    let first = SweepEngine::with_workers(1).with_store(Arc::clone(&store)).run(&spec);

    // Truncate every stored result cell mid-payload.
    for entry in std::fs::read_dir(dir.join("results")).expect("results dir") {
        let path = entry.expect("dir entry").path();
        let bytes = std::fs::read(&path).expect("cell bytes");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate cell");
    }

    let rerun = SweepEngine::with_workers(1).with_store(Arc::clone(&store)).run(&spec);
    assert_eq!(rerun.memo_hits, 0, "corrupt cells must not be served");
    assert_eq!(rerun.memo_misses, spec.num_jobs() as u64);
    for (a, b) in first.jobs.iter().zip(&rerun.jobs) {
        assert_eq!(a.result, b.result);
    }

    // The rerun replaced the corrupt cells with good ones.
    let warm = SweepEngine::with_workers(1).with_store(store).run(&spec);
    assert_eq!(warm.memo_hits, spec.num_jobs() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}
