//! Distributed-campaign integration tests: lease-sharded execution,
//! crashed-worker takeover, and the order-insensitive journal merge.
//!
//! These run every multi-process ingredient inside one process (shard
//! passes are plain function calls; "crashed workers" are planted stale
//! lease files), so the logic is exercised deterministically. The real
//! multi-process chaos run — spawned workers, a staged kill, injected
//! network faults, byte-identical stdout — lives in `scripts/tier1.sh`.

use llbp_sim::coord::{
    finish_campaign, read_worker_journals, run_shard, worker_journal_path, ShardConfig,
};
use llbp_sim::journal::{campaign_fingerprint, merge_outcomes, outcome_line, read_outcomes};
use llbp_sim::lease::LeaseSet;
use llbp_sim::lock::ProcessStamp;
use llbp_sim::{
    CellOutcome, FaultInjector, MemoStore, PredictorKind, SimConfig, SweepEngine, SweepSpec,
};
use llbp_trace::fingerprint::Fingerprint;
use llbp_trace::{Workload, WorkloadSpec};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "llbp-dist-it-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn small_spec() -> SweepSpec {
    SweepSpec::new(
        vec![PredictorKind::Tsl64K, PredictorKind::TslScaled(2)],
        vec![
            WorkloadSpec::named(Workload::Http).with_branches(2_000),
            WorkloadSpec::named(Workload::Kafka).with_branches(2_000),
        ],
        SimConfig::default(),
    )
}

fn cfg(worker: u32) -> ShardConfig {
    ShardConfig { worker, abort_after_claims: None, max_retries: 2 }
}

/// SplitMix64, for deterministic shuffles without `rand`.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[test]
fn one_shard_pass_completes_the_grid_and_later_shards_are_memo_served() {
    let root = scratch_dir("complete");
    let store = Arc::new(MemoStore::open(&root).expect("store opens"));
    let spec = small_spec();

    let first = run_shard(&spec, &store, None, &cfg(0)).expect("shard 0 runs");
    assert_eq!(first.claimed, 4);
    assert_eq!(first.completed, 4);
    assert_eq!(first.failed + first.lost + first.skipped, 0);

    // A second worker over the same grid: every cell is already
    // published, so its whole shard is memo-served, not re-simulated.
    let second = run_shard(&spec, &store, None, &cfg(1)).expect("shard 1 runs");
    assert_eq!(second.memo_served, 4);
    assert_eq!(second.completed, 0);

    // Both shard journals agree cell-for-cell once merged.
    let campaign = campaign_fingerprint(&llbp_sim::coord::grid_fingerprints(&spec, &store));
    let merged = merge_outcomes(read_worker_journals(&root, campaign));
    assert_eq!(merged.len(), 4);
    assert!(merged.values().all(|o| matches!(o, CellOutcome::Ok { digest: Some(_), .. })));
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn crashed_workers_cells_are_stolen_and_results_match_a_single_process_run() {
    let dist_root = scratch_dir("chaos");
    let store = Arc::new(MemoStore::open(&dist_root).expect("store opens"));
    let spec = small_spec();

    // A "crashed worker": cell 0's lease is held by a process stamp that
    // can never be alive (our PID, perturbed start time — the PID-reuse
    // shape), with a deadline far in the future. Only dead-holder
    // takeover can free it.
    let fps = llbp_sim::coord::grid_fingerprints(&spec, &store);
    let campaign = campaign_fingerprint(&fps);
    let leases = LeaseSet::open(&dist_root, campaign, Duration::from_secs(600)).expect("leases");
    let dead = ProcessStamp {
        pid: std::process::id(),
        start_time: Some(ProcessStamp::current().start_time.unwrap_or(7) + 1),
    };
    let far_deadline =
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_millis()
            as u64
            + 600_000;
    std::fs::write(leases.path_for(0), format!("{} {far_deadline}\n", dead.to_line()))
        .expect("plant dead worker lease");

    let merge = finish_campaign(&spec, &store, None, &cfg(7), 5).expect("campaign finishes");
    assert!(merge.takeovers >= 1, "the dead worker's lease must be stolen");
    assert_eq!(merge.cells.len(), 4);
    assert!(merge.cells.iter().all(Option::is_some), "every cell recovered");
    assert!(merge.journal.exists(), "merged canonical journal written");
    assert_eq!(read_outcomes(&merge.journal).len(), 4);

    // Chaos parity at the results level: the recovered distributed
    // campaign equals a plain single-process engine run on a fresh root.
    let serial_root = scratch_dir("chaos-serial");
    let serial_store = Arc::new(MemoStore::open(&serial_root).expect("serial store"));
    let serial = SweepEngine::with_workers(1).with_store(serial_store).run(&spec);
    for (index, cell) in merge.cells.iter().enumerate() {
        assert_eq!(
            cell.as_ref().unwrap().result,
            serial.jobs[index].result,
            "cell {index} must be bit-identical to the single-process run"
        );
    }
    for dir in [dist_root, serial_root] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn injected_lease_expiry_discards_the_result_and_reconcile_converges() {
    let root = scratch_dir("expiry");
    let store = Arc::new(MemoStore::open(&root).expect("store opens"));
    let spec = small_spec();
    let faults = Arc::new(FaultInjector::parse("lease:expire:count=1").expect("spec parses"));

    // The armed rule fires on the first cell's pre-publish check: that
    // result is discarded (nobody journals it), the rest complete.
    let first = run_shard(&spec, &store, Some(&faults), &cfg(0)).expect("shard runs");
    assert_eq!(first.lost, 1, "exactly one cell must lose its lease");
    assert_eq!(first.completed, 3);

    // Reconcile re-claims and re-runs the lost cell; with the rule
    // exhausted the campaign converges to a full grid.
    let merge = finish_campaign(&spec, &store, Some(&faults), &cfg(1), 5).expect("converges");
    assert!(merge.cells.iter().all(Option::is_some));
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn merging_shuffled_shard_journals_is_order_insensitive_and_matches_single_process() {
    let root = scratch_dir("merge-prop");
    let campaign = Fingerprint(0xc0ffee);
    let mut rng = Rng(0x5eed);

    // Ground truth: 40 cells with mixed outcomes, including cells whose
    // shards disagree (a transient `failed` from a worker that died,
    // superseded by another worker's `ok` — the lattice must pick `ok`
    // regardless of which journal is read first).
    let mut truth: HashMap<usize, CellOutcome> = HashMap::new();
    let mut entries: Vec<(usize, CellOutcome)> = Vec::new();
    for cell in 0..40usize {
        let fp = Fingerprint(u128::from(rng.next()) << 64 | u128::from(rng.next()));
        let outcome = match cell % 4 {
            0 | 1 => CellOutcome::Ok {
                fingerprint: fp,
                digest: Some(Fingerprint(u128::from(rng.next()))),
            },
            2 => CellOutcome::Stale { fingerprint: fp },
            _ => CellOutcome::Failed { class: "timeout".to_string() },
        };
        if matches!(outcome, CellOutcome::Ok { .. }) && cell % 5 == 0 {
            // The losing shard's view, distributed alongside the winner.
            entries.push((cell, CellOutcome::Failed { class: "network".to_string() }));
        }
        entries.push((cell, outcome.clone()));
        truth.insert(cell, outcome);
    }

    // Shuffle entries across 4 shard journals.
    let mut shards: Vec<Vec<(usize, CellOutcome)>> = vec![Vec::new(); 4];
    for entry in entries {
        shards[(rng.next() % 4) as usize].push(entry);
    }
    for (worker, entries) in shards.iter().enumerate() {
        let mut text = String::new();
        for (cell, outcome) in entries {
            text.push_str(&outcome_line(*cell, outcome));
        }
        std::fs::write(worker_journal_path(&root, campaign, worker as u32), text)
            .expect("write shard journal");
    }

    // Conflicted cells resolve to Ok; everything else matches truth.
    let resolves = |merged: &HashMap<usize, CellOutcome>| {
        assert_eq!(merged.len(), truth.len());
        for (cell, expected) in &truth {
            assert_eq!(merged[cell], *expected, "cell {cell}");
        }
    };

    // Order-insensitivity: merge the shard maps in many permutations.
    let maps = read_worker_journals(&root, campaign);
    assert_eq!(maps.len(), 4);
    let reference = merge_outcomes(maps.clone());
    resolves(&reference);
    for perm in 0..8u64 {
        let mut order: Vec<usize> = (0..maps.len()).collect();
        // Fisher–Yates with the seeded generator.
        let mut r = Rng(perm.wrapping_mul(0x9e37).wrapping_add(11));
        for i in (1..order.len()).rev() {
            order.swap(i, (r.next() % (i as u64 + 1)) as usize);
        }
        let permuted = merge_outcomes(order.into_iter().map(|i| maps[i].clone()));
        assert_eq!(permuted, reference, "merge must not depend on shard order");
    }

    // ... and the merged view equals a single-process journal holding
    // the same history (last-entry-wins there, lattice here — for one
    // writer per cell they agree; truth's winners are what a single
    // process would have recorded).
    let mut single = String::new();
    for cell in 0..40usize {
        single.push_str(&outcome_line(cell, &truth[&cell]));
    }
    let single_path = root.join(format!("{campaign}.journal"));
    std::fs::write(&single_path, single).expect("write single-process journal");
    assert_eq!(read_outcomes(&single_path), reference);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn shard_journal_paths_are_per_worker_and_reread_exactly() {
    let root = scratch_dir("paths");
    let campaign = Fingerprint(0xabc);
    let a = worker_journal_path(&root, campaign, 0);
    let b = worker_journal_path(&root, campaign, 1);
    assert_ne!(a, b);
    assert!(a.file_name().unwrap().to_string_lossy().contains(".w0."));
    // An unrelated campaign's shard journal is not picked up.
    std::fs::write(&a, outcome_line(3, &CellOutcome::Failed { class: "panic".into() }))
        .expect("write");
    std::fs::write(
        worker_journal_path(&root, Fingerprint(0xdef), 0),
        outcome_line(9, &CellOutcome::Failed { class: "panic".into() }),
    )
    .expect("write other campaign");
    let maps = read_worker_journals(&root, campaign);
    assert_eq!(maps.len(), 1);
    assert_eq!(maps[0].len(), 1);
    assert!(maps[0].contains_key(&3));
    let _ = std::fs::remove_dir_all(root);
}
