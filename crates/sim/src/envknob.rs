//! Centralized `LLBP_*` environment-knob parsing.
//!
//! Every tunable in the workspace reads its override from one
//! environment variable, and historically each reader rolled its own
//! `var().ok().and_then(parse().ok())` chain — which silently swallows
//! typos. `LLBP_WORKERS=sixteen` ran on the default pool while
//! `LLBP_FAULT_SPEC=garbage` failed typed, an inconsistency that cost
//! real debugging time. This module is the single policy point:
//!
//! * unset or empty/whitespace variables mean "use the default"
//!   ([`Ok(None)`]);
//! * set-but-unparsable variables are a configuration mistake and fail
//!   with [`SimError::Config`] naming the variable, the offending
//!   value, and the parse error — surfacing as exit code 2 like every
//!   other config error.
//!
//! All `LLBP_*` readers (engine retries/timeout/workers, lease TTL,
//! lock wait, remote-store timeout, and the `LLBP_SERVE_*` daemon
//! knobs) go through [`parse_env`] / [`parse_env_or`]. Constructors
//! that must stay infallible (e.g. [`SweepEngine::new`]) capture the
//! error and defer it to the first fallible entry point instead of
//! dropping it.
//!
//! [`SweepEngine::new`]: crate::engine::SweepEngine::new

use crate::error::SimError;
use std::fmt::Display;
use std::str::FromStr;

/// Reads and parses `name`, distinguishing "unset" from "set to
/// garbage".
///
/// Returns `Ok(None)` when the variable is unset (or set to an
/// empty/whitespace value), `Ok(Some(parsed))` when it parses.
///
/// # Errors
///
/// [`SimError::Config`] when the variable is set but does not parse as
/// `T`; the message names the variable and the raw value so the fix is
/// obvious from the error alone.
pub fn parse_env<T>(name: &'static str) -> Result<Option<T>, SimError>
where
    T: FromStr,
    T::Err: Display,
{
    let Ok(raw) = std::env::var(name) else { return Ok(None) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    trimmed
        .parse::<T>()
        .map(Some)
        .map_err(|e| SimError::Config { detail: format!("{name} `{trimmed}`: {e}") })
}

/// [`parse_env`] with a default for the unset case.
///
/// # Errors
///
/// As [`parse_env`].
pub fn parse_env_or<T>(name: &'static str, default: T) -> Result<T, SimError>
where
    T: FromStr,
    T::Err: Display,
{
    Ok(parse_env(name)?.unwrap_or(default))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; each test uses its own variable
    // name so the suite stays parallel-safe.

    #[test]
    fn unset_and_blank_mean_default() {
        std::env::remove_var("LLBP_TEST_KNOB_UNSET");
        assert_eq!(parse_env::<u32>("LLBP_TEST_KNOB_UNSET").unwrap(), None);
        std::env::set_var("LLBP_TEST_KNOB_BLANK", "   ");
        assert_eq!(parse_env::<u32>("LLBP_TEST_KNOB_BLANK").unwrap(), None);
        assert_eq!(parse_env_or("LLBP_TEST_KNOB_BLANK", 7u32).unwrap(), 7);
        std::env::remove_var("LLBP_TEST_KNOB_BLANK");
    }

    #[test]
    fn valid_values_parse_with_whitespace_trimmed() {
        std::env::set_var("LLBP_TEST_KNOB_OK", " 42 ");
        assert_eq!(parse_env::<u64>("LLBP_TEST_KNOB_OK").unwrap(), Some(42));
        assert_eq!(parse_env_or("LLBP_TEST_KNOB_OK", 7u64).unwrap(), 42);
        std::env::remove_var("LLBP_TEST_KNOB_OK");
    }

    #[test]
    fn garbage_is_a_typed_config_error_naming_the_variable() {
        std::env::set_var("LLBP_TEST_KNOB_BAD", "sixteen");
        let err = parse_env::<usize>("LLBP_TEST_KNOB_BAD").unwrap_err();
        assert_eq!(err.class(), "config");
        assert_eq!(err.exit_code(), 2);
        let msg = err.to_string();
        assert!(msg.contains("LLBP_TEST_KNOB_BAD"), "message names the variable: {msg}");
        assert!(msg.contains("sixteen"), "message shows the raw value: {msg}");
        std::env::remove_var("LLBP_TEST_KNOB_BAD");
    }
}
