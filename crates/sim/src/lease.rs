//! Lease-based work claims for distributed campaigns.
//!
//! A multi-process campaign shards one sweep grid across worker
//! processes. Workers coordinate through per-cell *lease files* under
//! `<cache-root>/leases/`: claiming a cell atomically creates
//! `<campaign>.<cell>.lease`, stamped with the claimant's process
//! identity and a heartbeat deadline. A cell whose lease is held by a
//! live process within its deadline is someone else's work; everything
//! else — no lease, dead holder, expired deadline, unparsable stamp —
//! is claimable.
//!
//! # Takeover
//!
//! Lease theft mirrors the dead-holder lock takeover in [`crate::lock`],
//! including the PID-reuse hardening: the stamp carries the holder's
//! process *start time* (from `/proc/<pid>/stat`) alongside its PID via
//! [`ProcessStamp`], so a recycled PID belonging to an unrelated process
//! does not keep a crashed worker's cells hostage. The deadline adds a
//! second takeover trigger the lock does not need: a worker that is
//! alive but wedged (or partitioned from the filesystem view) loses its
//! claim once the deadline passes, bounded by `LLBP_LEASE_TTL_MS`.
//!
//! Claims are atomic *with their content*: the stamp is written to a
//! private temp file and hard-linked into place, so no observer ever
//! reads a half-written stamp (an empty lease would be judged torn and
//! stolen — the lock file can afford create-then-stamp because it
//! treats unreadable stamps as live, but leases must steal torn state
//! or a crashed claim would wedge its cell forever). Renewal likewise
//! replaces the file by rename. Theft is remove-then-relink: two
//! concurrent stealers both unlink (one wins, one no-ops), then race
//! the link — exactly one claims, the other observes the fresh live
//! lease and backs off; holders verify ownership before publishing
//! ([`CellLease::check`]), so the loser of any residual race discards
//! its work instead of double-publishing.
//!
//! # Fault injection
//!
//! `LLBP_FAULT_SPEC=lease:expire` simulates losing a lease mid-cell:
//! [`CellLease::check`] consults the injector, and an armed rule unlinks
//! the holder's own lease and surfaces [`SimError::LeaseLost`] — the
//! same observable outcome as a genuine steal, so recovery paths are
//! testable without real crashes.

use crate::error::SimError;
use crate::faultinject::FaultInjector;
use crate::lock::ProcessStamp;
use llbp_trace::fingerprint::Fingerprint;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Environment variable setting the lease heartbeat TTL in milliseconds.
pub const LEASE_TTL_ENV: &str = "LLBP_LEASE_TTL_MS";

/// Lease TTL when [`LEASE_TTL_ENV`] is unset or unparsable: long enough
/// that a healthy worker never loses a quick cell to clock skew, short
/// enough that a wedged worker's cells are re-run within one campaign.
pub const DEFAULT_LEASE_TTL: Duration = Duration::from_secs(30);

/// The lease TTL from [`LEASE_TTL_ENV`], else [`DEFAULT_LEASE_TTL`]
/// (values are clamped to >= 1 ms so a zero TTL cannot make every claim
/// instantly stealable).
///
/// # Errors
///
/// [`SimError::Config`] when the variable is set but unparsable.
pub fn lease_ttl_from_env() -> Result<Duration, SimError> {
    Ok(crate::envknob::parse_env::<u64>(LEASE_TTL_ENV)?
        .map_or(DEFAULT_LEASE_TTL, |ms| Duration::from_millis(ms.max(1))))
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

fn io_err(detail: std::io::Error) -> SimError {
    SimError::MemoIo { op: "lease", detail: detail.to_string() }
}

/// One campaign's lease directory: claims cells, steals stale claims.
#[derive(Debug)]
pub struct LeaseSet {
    dir: PathBuf,
    campaign: Fingerprint,
    ttl: Duration,
    takeovers: AtomicU64,
}

impl LeaseSet {
    /// Opens (creating) the lease directory for `campaign` under the
    /// cache root shared by the campaign's journals.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoIo`] when the directory cannot be created.
    pub fn open(root: &Path, campaign: Fingerprint, ttl: Duration) -> Result<Self, SimError> {
        let dir = root.join("leases");
        std::fs::create_dir_all(&dir).map_err(io_err)?;
        Ok(Self {
            dir,
            campaign,
            ttl: ttl.max(Duration::from_millis(1)),
            takeovers: AtomicU64::new(0),
        })
    }

    /// The lease file path for one grid cell.
    #[must_use]
    pub fn path_for(&self, cell: usize) -> PathBuf {
        self.dir.join(format!("{}.{cell}.lease", self.campaign))
    }

    /// Stale leases stolen by this set so far (dead holders and expired
    /// deadlines both count — each is one crashed-or-wedged worker's
    /// cell taken over).
    #[must_use]
    pub fn takeovers(&self) -> u64 {
        self.takeovers.load(Ordering::Relaxed)
    }

    /// Tries to claim `cell`. `Ok(None)` means a live holder within its
    /// deadline owns it — someone else's work, move on. Stale claims
    /// (dead holder, expired deadline, unparsable stamp) are stolen.
    ///
    /// The claim is atomic *with its stamp*: the stamp line is written
    /// to a private temp file and published with `hard_link`, so a
    /// concurrent claimant never reads an empty lease (it would be
    /// judged torn and a live claim stolen).
    ///
    /// # Errors
    ///
    /// [`SimError::MemoIo`] on filesystem failures.
    pub fn try_claim(&self, cell: usize) -> Result<Option<CellLease>, SimError> {
        let path = self.path_for(cell);
        let stamp = ProcessStamp::current();
        let tmp = self.claim_tmp_path(cell);
        write_stamp_file(&tmp, stamp, self.ttl).map_err(io_err)?;
        let claimed = self.link_claim(&tmp, &path);
        let _ = remove_ignoring_missing(&tmp);
        // The `CellLease` exists only once the claim is won: a losing
        // claimant must never hold one, or its release-on-drop would
        // delete the winner's lease whenever both share a process stamp
        // (same-process claimants are indistinguishable by stamp).
        claimed.map(|won| won.then(|| CellLease { path, cell, ttl: self.ttl, stamp }))
    }

    /// Publishes a pre-stamped claim by linking `tmp` to `path`;
    /// `Ok(false)` means a live holder owns the cell.
    fn link_claim(&self, tmp: &Path, path: &Path) -> Result<bool, SimError> {
        // Bounded: each iteration either claims, backs off, or removes a
        // stale file; a stealing race loses at most one iteration.
        for _ in 0..4 {
            match std::fs::hard_link(tmp, path) {
                Ok(()) => return Ok(true),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    match std::fs::read_to_string(path) {
                        Ok(text) if holder_is_live(&text) => return Ok(false),
                        // Stale (dead, expired, or torn): steal. A racing
                        // stealer may have unlinked first — that is fine.
                        Ok(_) => {
                            self.takeovers.fetch_add(1, Ordering::Relaxed);
                            remove_ignoring_missing(path).map_err(io_err)?;
                        }
                        // Unlinked between link and read: retry the link.
                        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                        Err(e) => return Err(io_err(e)),
                    }
                }
                Err(e) => return Err(io_err(e)),
            }
        }
        // Lost every race in the loop: someone live holds it now.
        Ok(false)
    }

    /// A per-claim-attempt scratch path that no other claimant touches.
    fn claim_tmp_path(&self, cell: usize) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        self.dir.join(format!(
            ".{}.{cell}.{}-{}.tmp",
            self.campaign,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }
}

/// Whether a lease file's contents denote a live claim: the stamped
/// process is alive (PID *and* start time — see [`ProcessStamp::alive`])
/// and the heartbeat deadline has not passed. Unparsable text is not a
/// live claim (a torn write must not wedge the cell forever).
fn holder_is_live(text: &str) -> bool {
    let Some((stamp, deadline)) = parse_lease(text) else {
        return false;
    };
    stamp.alive() && deadline > now_unix_ms()
}

/// Parses `"<pid> <starttime> <deadline_ms>"` (the start time is optional
/// for stamps from hosts without `/proc`, mirroring the lock format).
fn parse_lease(text: &str) -> Option<(ProcessStamp, u64)> {
    let text = text.trim();
    let (identity, deadline) = text.rsplit_once(char::is_whitespace)?;
    Some((ProcessStamp::parse(identity)?, deadline.trim().parse().ok()?))
}

/// A claimed grid cell. Dropping releases the claim (the file is removed
/// only if it still carries this process's stamp, so a stolen lease is
/// never deleted out from under its new holder).
#[derive(Debug)]
pub struct CellLease {
    path: PathBuf,
    cell: usize,
    ttl: Duration,
    stamp: ProcessStamp,
}

impl CellLease {
    /// The grid cell this lease covers.
    #[must_use]
    pub fn cell(&self) -> usize {
        self.cell
    }

    /// Heartbeat: pushes the deadline out by one TTL. Call between
    /// phases of long cells so a healthy worker is never mistaken for a
    /// wedged one.
    ///
    /// The new stamp replaces the file by rename — never a truncate in
    /// place, which would expose an empty (hence torn-looking, hence
    /// stealable) lease to concurrent claimants mid-renewal.
    ///
    /// # Errors
    ///
    /// [`SimError::LeaseLost`] when the lease file no longer carries this
    /// process's stamp (it was stolen); [`SimError::MemoIo`] on other
    /// filesystem failures.
    pub fn renew(&self) -> Result<(), SimError> {
        self.verify_ownership()?;
        let tmp = self.path.with_extension(format!("renew-{}", std::process::id()));
        write_stamp_file(&tmp, self.stamp, self.ttl).map_err(io_err)?;
        std::fs::rename(&tmp, &self.path).map_err(|e| {
            let _ = remove_ignoring_missing(&tmp);
            io_err(e)
        })
    }

    /// Confirms this process still owns the cell, consulting the fault
    /// injector first: an armed `lease:expire` rule unlinks our own
    /// lease and reports it lost — the same observable outcome as a
    /// genuine steal. Call before publishing a result, so a cell whose
    /// lease was lost mid-run is discarded (its new holder re-runs it)
    /// instead of racing the new holder's write.
    ///
    /// # Errors
    ///
    /// [`SimError::LeaseLost`] when the claim is gone (stolen, expired
    /// and collected, or injected); [`SimError::MemoIo`] on other
    /// filesystem failures.
    pub fn check(&self, faults: Option<&FaultInjector>) -> Result<(), SimError> {
        if faults.is_some_and(FaultInjector::check_lease_expire) {
            let _ = remove_ignoring_missing(&self.path);
            return Err(SimError::LeaseLost { cell: self.cell });
        }
        self.verify_ownership()
    }

    /// Whether the on-disk lease still carries our stamp.
    fn verify_ownership(&self) -> Result<(), SimError> {
        match std::fs::read_to_string(&self.path) {
            Ok(text) => match parse_lease(&text) {
                Some((stamp, _)) if stamp == self.stamp => Ok(()),
                _ => Err(SimError::LeaseLost { cell: self.cell }),
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(SimError::LeaseLost { cell: self.cell })
            }
            Err(e) => Err(io_err(e)),
        }
    }
}

impl Drop for CellLease {
    fn drop(&mut self) {
        // Release only our own claim: after a steal the file belongs to
        // the new holder and must survive this drop.
        if self.verify_ownership().is_ok() {
            let _ = remove_ignoring_missing(&self.path);
        }
    }
}

/// Writes a fresh stamp line (holder identity + deadline one TTL out) to
/// `path`, fully synced before return, so linking or renaming the file
/// into place publishes complete content.
fn write_stamp_file(path: &Path, stamp: ProcessStamp, ttl: Duration) -> std::io::Result<()> {
    use std::io::Write as _;
    let deadline = now_unix_ms().saturating_add(u64::try_from(ttl.as_millis()).unwrap_or(u64::MAX));
    let mut file = std::fs::File::create(path)?;
    file.write_all(format!("{} {deadline}\n", stamp.to_line()).as_bytes())?;
    file.sync_all()
}

fn remove_ignoring_missing(path: &Path) -> std::io::Result<()> {
    match std::fs::remove_file(path) {
        Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn scratch_root(tag: &str) -> PathBuf {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "llbp-lease-unit-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch root");
        dir
    }

    fn set(root: &Path, ttl: Duration) -> LeaseSet {
        LeaseSet::open(root, Fingerprint(0xfeed), ttl).expect("lease set opens")
    }

    #[test]
    fn claim_is_exclusive_until_released() {
        let root = scratch_root("exclusive");
        let leases = set(&root, Duration::from_secs(30));
        let held = leases.try_claim(3).expect("io").expect("first claim wins");
        assert_eq!(held.cell(), 3);
        assert!(leases.try_claim(3).expect("io").is_none(), "live lease must not be stolen");
        assert!(leases.try_claim(4).expect("io").is_some(), "other cells are free");
        drop(held);
        assert!(leases.try_claim(3).expect("io").is_some(), "released cell is claimable");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn dead_holder_leases_are_stolen_but_recycled_pids_are_not_trusted() {
        let root = scratch_root("dead");
        let leases = set(&root, Duration::from_secs(30));
        // A "crashed worker": our PID but a perturbed start time — the
        // PID-reuse shape, where the PID is alive but belongs to a
        // different process incarnation.
        let dead = ProcessStamp {
            pid: std::process::id(),
            start_time: Some(ProcessStamp::current().start_time.unwrap_or(7) + 1),
        };
        let deadline = now_unix_ms() + 60_000;
        std::fs::write(leases.path_for(0), format!("{} {deadline}\n", dead.to_line()))
            .expect("plant stale lease");
        let stolen = leases.try_claim(0).expect("io").expect("dead holder must be stolen");
        assert_eq!(leases.takeovers(), 1);
        drop(stolen);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn expired_deadlines_are_stolen_even_from_live_holders() {
        let root = scratch_root("expired");
        let leases = set(&root, Duration::from_secs(30));
        // Genuinely our own live process — but the deadline has passed,
        // which is the wedged-worker takeover trigger.
        let stale_deadline = now_unix_ms().saturating_sub(1);
        std::fs::write(
            leases.path_for(1),
            format!("{} {stale_deadline}\n", ProcessStamp::current().to_line()),
        )
        .expect("plant expired lease");
        assert!(leases.try_claim(1).expect("io").is_some(), "expired lease must be stolen");
        assert_eq!(leases.takeovers(), 1);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn torn_stamps_do_not_wedge_the_cell() {
        let root = scratch_root("torn");
        let leases = set(&root, Duration::from_secs(30));
        std::fs::write(leases.path_for(2), "gar bage not a lease").expect("plant torn lease");
        assert!(leases.try_claim(2).expect("io").is_some(), "torn lease must be claimable");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn renew_extends_and_stolen_leases_fail_ownership_checks() {
        let root = scratch_root("renew");
        let leases = set(&root, Duration::from_millis(5));
        let held = leases.try_claim(0).expect("io").expect("claim");
        held.renew().expect("renew while owned");
        held.check(None).expect("owned lease passes check");
        // Simulate a steal: another holder's stamp lands in the file.
        let thief = ProcessStamp {
            pid: std::process::id(),
            start_time: Some(ProcessStamp::current().start_time.unwrap_or(7) + 99),
        };
        std::fs::write(
            leases.path_for(0),
            format!("{} {}\n", thief.to_line(), now_unix_ms() + 60_000),
        )
        .expect("overwrite with thief stamp");
        let err = held.check(None).expect_err("stolen lease must fail");
        assert!(matches!(err, SimError::LeaseLost { cell: 0 }));
        assert_eq!(err.exit_code(), 5);
        assert!(held.renew().is_err(), "renew after steal must fail");
        drop(held);
        assert!(leases.path_for(0).exists(), "drop must not delete the thief's lease");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn injected_lease_expiry_surfaces_as_lease_lost() {
        let root = scratch_root("inject");
        let leases = set(&root, Duration::from_secs(30));
        let held = leases.try_claim(5).expect("io").expect("claim");
        let faults = FaultInjector::parse("lease:expire:count=1").expect("spec parses");
        let err = held.check(Some(&faults)).expect_err("armed rule must fire");
        assert!(matches!(err, SimError::LeaseLost { cell: 5 }));
        assert!(err.is_transient(), "a lost lease is retryable by a future holder");
        // The rule fired once; with it exhausted the loss is permanent
        // on disk (the file was unlinked), so the cell is re-claimable.
        assert!(leases.try_claim(5).expect("io").is_some());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn racing_claimants_never_mistake_a_fresh_claim_for_a_torn_lease() {
        // Regression: claims used to be create-then-stamp, so a racing
        // claimant could read the empty file in between, judge it torn,
        // and steal a live lease. With hard-link publication the file is
        // never observable without its stamp: every round has exactly
        // one winner and nothing is ever counted as a takeover.
        let root = scratch_root("race");
        let leases = set(&root, Duration::from_secs(30));
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = std::sync::Barrier::new(THREADS);
        let wins: Vec<AtomicU32> = (0..ROUNDS).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for (round, won) in wins.iter().enumerate() {
                        barrier.wait();
                        let claim = leases.try_claim(round).expect("io");
                        if claim.is_some() {
                            won.fetch_add(1, Ordering::Relaxed);
                        }
                        // Hold until every thread has attempted, so the
                        // winner's release cannot look like a free cell.
                        barrier.wait();
                        drop(claim);
                    }
                });
            }
        });
        for (round, count) in wins.iter().enumerate() {
            assert_eq!(count.load(Ordering::Relaxed), 1, "round {round} must have one winner");
        }
        assert_eq!(leases.takeovers(), 0, "no live claim may be judged torn and stolen");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn ttl_env_parsing_clamps_and_defaults() {
        assert_eq!(DEFAULT_LEASE_TTL, Duration::from_secs(30));
        // `lease_ttl_from_env` reads the live environment; exercise the
        // clamp through `LeaseSet::open` instead of mutating env state.
        let root = scratch_root("ttl");
        let leases = set(&root, Duration::ZERO);
        assert_eq!(leases.ttl, Duration::from_millis(1), "zero TTL is clamped");
        let _ = std::fs::remove_dir_all(root);
    }
}
