//! Trace-driven branch-prediction simulation: the driver, predictor
//! factory, and the analytic models (timing, energy, L1-I traffic) the
//! paper's evaluation relies on.
//!
//! # Example
//!
//! ```
//! use llbp_sim::{PredictorKind, SimConfig};
//! use llbp_trace::{Workload, WorkloadSpec};
//!
//! let trace = WorkloadSpec::named(Workload::Http).with_branches(20_000).generate();
//! let cfg = SimConfig::default();
//! let base = cfg.run(PredictorKind::Tsl64K, &trace);
//! let big = cfg.run(PredictorKind::TslScaled(8), &trace);
//! assert!(big.mpki() <= base.mpki() * 1.2);
//! ```

pub mod backend;
pub mod cache;
pub mod config;
pub mod coord;
pub mod driver;
pub mod energy;
pub mod engine;
pub mod envknob;
pub mod error;
pub mod faultinject;
pub mod journal;
pub mod l1i;
pub mod lease;
pub mod lock;
pub mod memo;
pub mod patterns;
pub mod report;
pub mod serve;
pub mod store;
pub mod timing;

pub use backend::{BackendKind, BACKEND_ENV, BATCH_BLOCK};
pub use cache::TraceCache;
pub use config::{PredictorKind, SimConfig};
pub use coord::{finish_campaign, run_shard, CellInterlock, ShardConfig, WORKER_ABORT_ENV};
pub use driver::{LlbpCellStats, SimResult, Simulator};
pub use energy::EnergyModel;
pub use engine::{JobError, ProvSummary, SweepEngine, SweepReport, SweepSpec};
pub use error::{CancelToken, SimError};
pub use faultinject::{FaultInjector, FAULT_SPEC_ENV};
pub use journal::{campaign_fingerprint, merge_outcomes, CampaignJournal, CellOutcome};
pub use l1i::L1iCache;
pub use lease::{lease_ttl_from_env, CellLease, LeaseSet, LEASE_TTL_ENV};
pub use lock::{LockFile, LOCK_WAIT_ENV};
pub use memo::{CachedCell, MemoStore, MEMO_FORMAT_VERSION};
pub use store::{ObjectKind, StorageBackend, STORE_ENV};
pub use timing::TimingModel;

/// The observability crate, re-exported so downstream harnesses can build
/// [`llbp_obs::Telemetry`] handles without naming a second dependency.
pub use llbp_obs as obs;

/// The provenance crate, re-exported so harnesses can configure
/// [`llbp_prov::ProvRecorder`] recording without naming a second
/// dependency.
pub use llbp_prov as prov;
pub use llbp_prov::{ProvConfig, ProvRecorder};
