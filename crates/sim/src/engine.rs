//! The parallel sweep engine: enumerate a predictor × workload grid,
//! schedule the jobs onto a bounded worker pool, and return results in
//! deterministic grid order with per-job throughput stats.
//!
//! Every experiment binary runs the same shape of computation — "simulate
//! these predictors over these workloads" — and previously each one
//! hand-rolled it with one thread per workload. Unbounded fan-out
//! oversubscribes small machines badly: fourteen concurrent simulations
//! keep fourteen predictors' tables (tens to hundreds of MiB each) live at
//! once, and the resulting page-fault and cache pressure makes the sweep
//! *slower* than running serially. The engine instead claims jobs from a
//! shared counter with `min(available cores, jobs)` workers, so memory in
//! flight is bounded by the worker count and a single-core host degrades
//! gracefully to a serial run.
//!
//! Results are bit-identical to calling [`SimConfig::run`] serially for
//! every grid cell, at any worker count: each simulation is a pure
//! function of `(predictor kind, trace)`, traces are generated once per
//! distinct spec (see [`TraceCache`]) and shared immutably, and results
//! are reassembled by job index rather than completion order.
//!
//! # Example
//!
//! ```
//! use llbp_sim::engine::{SweepEngine, SweepSpec};
//! use llbp_sim::{PredictorKind, SimConfig};
//! use llbp_trace::{Workload, WorkloadSpec};
//!
//! let spec = SweepSpec::new(
//!     vec![PredictorKind::Tsl64K, PredictorKind::TslScaled(8)],
//!     vec![WorkloadSpec::named(Workload::Http).with_branches(5_000)],
//!     SimConfig::default(),
//! );
//! let report = SweepEngine::new().run(&spec);
//! assert_eq!(report.jobs.len(), 2);
//! let base = report.get(0, 0); // (workload 0, predictor 0)
//! assert_eq!(base.label, "64K TSL");
//! ```

use crate::cache::TraceCache;
use crate::config::{PredictorKind, SimConfig};
use crate::driver::SimResult;
use crate::memo::MemoStore;
use llbp_trace::WorkloadSpec;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of workers the engine uses by default: the `LLBP_WORKERS`
/// environment variable when set (clamped to ≥ 1, so CI and shared hosts
/// can pin the pool size), else one per available core.
#[must_use]
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("LLBP_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f(0..n)` on a pool of `workers` threads and returns the results
/// in index order regardless of which worker ran which index.
///
/// This is the engine's scheduling primitive, exposed because harness code
/// with job shapes other than a predictor grid (e.g. per-workload trace
/// characterisation) wants the same bounded fan-out. Workers claim indices
/// from a shared atomic counter, so a slow job never blocks the queue
/// behind it; with `workers <= 1` the closure runs inline on the caller's
/// thread.
///
/// # Panics
///
/// Propagates a panic from `f`.
pub fn run_indexed<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                collected.lock().expect("worker result lock poisoned").extend(local);
            });
        }
    });
    let mut indexed = collected.into_inner().expect("worker result lock poisoned");
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, value)| value).collect()
}

/// A sweep: every predictor in `predictors` over every workload in
/// `workloads`, simulated under one [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Predictor designs, in report order.
    pub predictors: Vec<PredictorKind>,
    /// Workload specs, in report order.
    pub workloads: Vec<WorkloadSpec>,
    /// Simulation parameters shared by every job.
    pub sim: SimConfig,
}

impl SweepSpec {
    /// Creates a sweep spec.
    #[must_use]
    pub fn new(
        predictors: Vec<PredictorKind>,
        workloads: Vec<WorkloadSpec>,
        sim: SimConfig,
    ) -> Self {
        Self { predictors, workloads, sim }
    }

    /// Total number of grid cells.
    #[must_use]
    pub fn num_jobs(&self) -> usize {
        self.predictors.len() * self.workloads.len()
    }

    /// The grid in job order: workload-major, so that the jobs sharing a
    /// trace are adjacent in the queue and the cache holds few traces at
    /// a time.
    fn job(&self, index: usize) -> SweepJob {
        SweepJob {
            workload: index / self.predictors.len(),
            predictor: index % self.predictors.len(),
        }
    }
}

/// One grid cell: indices into [`SweepSpec::workloads`] and
/// [`SweepSpec::predictors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepJob {
    /// Index into [`SweepSpec::workloads`].
    pub workload: usize,
    /// Index into [`SweepSpec::predictors`].
    pub predictor: usize,
}

/// Throughput statistics for one job.
#[derive(Debug, Clone, Copy)]
pub struct JobStats {
    /// Wall time of the simulation (excluding trace generation, which is
    /// attributed to the job that missed the cache).
    pub wall: Duration,
    /// Branch records simulated.
    pub branches: u64,
}

impl JobStats {
    /// Simulated branch records per second of wall time.
    #[must_use]
    pub fn branches_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.branches as f64 / secs
        } else {
            0.0
        }
    }
}

/// One completed grid cell.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Which grid cell this is.
    pub job: SweepJob,
    /// The simulation result.
    pub result: SimResult,
    /// Throughput statistics.
    pub stats: JobStats,
}

/// Everything a sweep produced, in deterministic grid order
/// (workload-major: all predictors of workload 0, then workload 1, …).
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Completed jobs, indexed `workload * num_predictors + predictor`.
    pub jobs: Vec<JobRecord>,
    /// Number of predictors per workload (the grid's minor dimension).
    pub num_predictors: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall time of the whole sweep, including trace generation.
    pub wall: Duration,
    /// Trace-cache requests served from memory without generating.
    pub cache_hits: u64,
    /// Traces generated.
    pub cache_misses: u64,
    /// Trace-cache requests served from the persistent store.
    pub trace_disk_hits: u64,
    /// Grid cells whose result was served from the persistent store.
    pub memo_hits: u64,
    /// Grid cells simulated (and written back, when a store is attached).
    pub memo_misses: u64,
    /// Peak heap bytes held by cached traces.
    pub trace_bytes: usize,
}

impl SweepReport {
    /// The result for `(workload index, predictor index)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn get(&self, workload: usize, predictor: usize) -> &SimResult {
        assert!(predictor < self.num_predictors, "predictor index out of range");
        &self.jobs[workload * self.num_predictors + predictor].result
    }

    /// All results for one workload, in predictor order.
    #[must_use]
    pub fn row(&self, workload: usize) -> Vec<&SimResult> {
        (0..self.num_predictors).map(|p| self.get(workload, p)).collect()
    }

    /// Total branch records simulated across all jobs.
    #[must_use]
    pub fn total_branches(&self) -> u64 {
        self.jobs.iter().map(|j| j.stats.branches).sum()
    }

    /// Aggregate simulated branches per second of sweep wall time.
    #[must_use]
    pub fn branches_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_branches() as f64 / secs
        } else {
            0.0
        }
    }

    /// A single-line JSON record of the sweep's throughput, for harness
    /// scripts that archive perf numbers (`results/`).
    #[must_use]
    pub fn throughput_json(&self, label: &str) -> String {
        format!(
            concat!(
                "{{\"event\":\"sweep_throughput\",\"label\":\"{}\",",
                "\"jobs\":{},\"workers\":{},\"branches\":{},",
                "\"wall_s\":{:.3},\"branches_per_sec\":{:.0},",
                "\"cache_hits\":{},\"cache_misses\":{},",
                "\"trace_disk_hits\":{},\"memo_hits\":{},\"memo_misses\":{},",
                "\"trace_mib\":{:.1}}}"
            ),
            label.replace(['"', '\\'], "_"),
            self.jobs.len(),
            self.workers,
            self.total_branches(),
            self.wall.as_secs_f64(),
            self.branches_per_sec(),
            self.cache_hits,
            self.cache_misses,
            self.trace_disk_hits,
            self.memo_hits,
            self.memo_misses,
            self.trace_bytes as f64 / (1024.0 * 1024.0),
        )
    }
}

/// Schedules [`SweepSpec`] grids onto a worker pool, optionally memoizing
/// every cell in a persistent [`MemoStore`].
#[derive(Debug, Clone)]
pub struct SweepEngine {
    workers: usize,
    store: Option<Arc<MemoStore>>,
    cold: bool,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// An engine with one worker per available core (or `LLBP_WORKERS`)
    /// and no persistent store.
    #[must_use]
    pub fn new() -> Self {
        Self { workers: default_workers(), store: None, cold: false }
    }

    /// An engine with an explicit worker count (`0` is clamped to 1).
    /// Results are identical at any worker count; only throughput varies.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        Self { workers: workers.max(1), store: None, cold: false }
    }

    /// Attaches a persistent store: each grid cell probes it for a
    /// memoized result before simulating and writes its result (plus the
    /// wall time, the scheduling cost model) back on a miss. Results are
    /// bit-identical with or without a store — the parity tests pin it.
    #[must_use]
    pub fn with_store(mut self, store: Arc<MemoStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// With `cold` set, memoized results and traces are ignored (every
    /// cell re-simulates) but write-back still happens, so a cold run
    /// refreshes the store and records fresh per-cell wall times.
    #[must_use]
    pub fn cold(mut self, cold: bool) -> Self {
        self.cold = cold;
        self
    }

    /// The worker count this engine schedules with.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs the full grid and returns the report.
    ///
    /// # Panics
    ///
    /// Propagates a panic from a simulation job.
    #[must_use]
    pub fn run(&self, spec: &SweepSpec) -> SweepReport {
        let cache = match &self.store {
            Some(store) => TraceCache::with_store(Arc::clone(store), self.cold),
            None => TraceCache::new(),
        };
        self.run_with_cache(spec, &cache)
    }

    /// Runs the grid against a caller-provided trace cache, so harness
    /// code that needs the traces afterwards (e.g. for L1-I traffic
    /// analysis) shares one cache with the sweep instead of regenerating.
    ///
    /// # Panics
    ///
    /// Propagates a panic from a simulation job.
    #[must_use]
    pub fn run_with_cache(&self, spec: &SweepSpec, cache: &TraceCache) -> SweepReport {
        let started = Instant::now();
        let n = spec.num_jobs();
        let fingerprints: Vec<_> = self.store.as_ref().map_or_else(Vec::new, |store| {
            (0..n)
                .map(|i| {
                    let job = spec.job(i);
                    store.result_fingerprint(
                        &spec.predictors[job.predictor],
                        &spec.workloads[job.workload],
                        &spec.sim,
                    )
                })
                .collect()
        });
        let order = self.schedule(n, &fingerprints);
        let memo_hits = AtomicU64::new(0);
        let memo_misses = AtomicU64::new(0);
        let mut claimed = run_indexed(self.workers, n, |slot| {
            let index = order[slot];
            let job = spec.job(index);
            if let Some(store) = &self.store {
                let fp = fingerprints[index];
                if !self.cold {
                    let probe_started = Instant::now();
                    if let Some(cell) = store.load_result(fp) {
                        memo_hits.fetch_add(1, Ordering::Relaxed);
                        let stats =
                            JobStats { wall: probe_started.elapsed(), branches: cell.trace_len };
                        return (index, JobRecord { job, result: cell.result, stats });
                    }
                }
                memo_misses.fetch_add(1, Ordering::Relaxed);
            }
            let trace = cache.get_or_generate(&spec.workloads[job.workload]);
            let sim_started = Instant::now();
            let result = spec.sim.run(spec.predictors[job.predictor].clone(), &trace);
            let wall = sim_started.elapsed();
            if let Some(store) = &self.store {
                let _ = store.store_result(fingerprints[index], &result, wall, trace.len() as u64);
            }
            let stats = JobStats { wall, branches: trace.len() as u64 };
            (index, JobRecord { job, result, stats })
        });
        // Workers claim in schedule order; reports stay in grid order.
        claimed.sort_unstable_by_key(|&(index, _)| index);
        let jobs = claimed.into_iter().map(|(_, record)| record).collect();
        SweepReport {
            jobs,
            num_predictors: spec.predictors.len(),
            workers: self.workers.clamp(1, n.max(1)),
            wall: started.elapsed(),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            trace_disk_hits: cache.disk_hits(),
            memo_hits: memo_hits.into_inner(),
            memo_misses: memo_misses.into_inner(),
            trace_bytes: cache.memory_footprint(),
        }
    }

    /// The order in which workers claim grid cells: longest-job-first,
    /// using the store's recorded per-cell wall times as the cost model.
    ///
    /// Cells with no cost information (never simulated under this format
    /// version) are assumed expensive and scheduled first; memoized cells
    /// that will be served from disk are near-free and scheduled last.
    /// Ties keep grid order, so a store-less engine degrades to exactly
    /// the workload-major order (which maximizes trace-cache locality).
    fn schedule(&self, n: usize, fingerprints: &[llbp_trace::Fingerprint]) -> Vec<usize> {
        let Some(store) = &self.store else {
            return (0..n).collect();
        };
        let mut keyed: Vec<(std::cmp::Reverse<u64>, usize)> = (0..n)
            .map(|i| {
                let fp = fingerprints[i];
                let cost = if !self.cold && store.has_result(fp) {
                    0
                } else {
                    store
                        .recorded_cost(fp)
                        .map_or(u64::MAX, |wall| u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX))
                };
                (std::cmp::Reverse(cost), i)
            })
            .collect();
        keyed.sort_unstable();
        keyed.into_iter().map(|(_, i)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llbp_trace::Workload;

    fn small_spec() -> SweepSpec {
        SweepSpec::new(
            vec![PredictorKind::Tsl64K, PredictorKind::TslScaled(2)],
            vec![
                WorkloadSpec::named(Workload::Http).with_branches(2_000),
                WorkloadSpec::named(Workload::Kafka).with_branches(2_000),
                WorkloadSpec::named(Workload::Tpcc).with_branches(2_000),
            ],
            SimConfig::default(),
        )
    }

    #[test]
    fn run_indexed_preserves_index_order() {
        for workers in [1, 2, 5, 64] {
            let out = run_indexed(workers, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn run_indexed_handles_empty_input() {
        let out: Vec<usize> = run_indexed(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn grid_order_is_workload_major() {
        let spec = small_spec();
        let report = SweepEngine::with_workers(1).run(&spec);
        assert_eq!(report.jobs.len(), 6);
        for (i, rec) in report.jobs.iter().enumerate() {
            assert_eq!(rec.job.workload, i / 2);
            assert_eq!(rec.job.predictor, i % 2);
            assert_eq!(rec.result.workload, spec.workloads[rec.job.workload].name());
            assert_eq!(rec.result.label, spec.predictors[rec.job.predictor].label());
        }
    }

    #[test]
    fn traces_are_generated_once_per_workload() {
        let spec = small_spec();
        let report = SweepEngine::with_workers(2).run(&spec);
        assert_eq!(report.cache_misses, 3);
        assert_eq!(report.cache_hits, 3);
        assert!(report.trace_bytes > 0);
    }

    #[test]
    fn job_stats_are_populated() {
        let spec = small_spec();
        let report = SweepEngine::with_workers(1).run(&spec);
        for rec in &report.jobs {
            assert_eq!(rec.stats.branches, 2_000);
            assert!(rec.stats.branches_per_sec() > 0.0);
        }
        assert_eq!(report.total_branches(), 12_000);
        assert!(report.branches_per_sec() > 0.0);
    }

    #[test]
    fn throughput_json_is_wellformed() {
        let spec = small_spec();
        let report = SweepEngine::with_workers(1).run(&spec);
        let line = report.throughput_json("unit \"test\"");
        assert!(line.starts_with("{\"event\":\"sweep_throughput\""));
        assert!(line.ends_with('}'));
        assert!(line.contains("\"jobs\":6"));
        // Quotes in the label must not break the JSON.
        assert!(!line.contains("unit \"test\""));
    }
}
