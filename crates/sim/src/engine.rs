//! The parallel sweep engine: enumerate a predictor × workload grid,
//! schedule the jobs onto a bounded worker pool, and return results in
//! deterministic grid order with per-job throughput stats.
//!
//! Every experiment binary runs the same shape of computation — "simulate
//! these predictors over these workloads" — and previously each one
//! hand-rolled it with one thread per workload. Unbounded fan-out
//! oversubscribes small machines badly: fourteen concurrent simulations
//! keep fourteen predictors' tables (tens to hundreds of MiB each) live at
//! once, and the resulting page-fault and cache pressure makes the sweep
//! *slower* than running serially. The engine instead claims jobs from a
//! shared counter with `min(available cores, jobs)` workers, so memory in
//! flight is bounded by the worker count and a single-core host degrades
//! gracefully to a serial run.
//!
//! Results are bit-identical to calling [`SimConfig::run`] serially for
//! every grid cell, at any worker count: each simulation is a pure
//! function of `(predictor kind, trace)`, traces are generated once per
//! distinct spec (see [`TraceCache`]) and shared immutably, and results
//! are reassembled by job index rather than completion order.
//!
//! # Fault tolerance
//!
//! Long campaigns must survive single-cell failures. Each job runs
//! inside a `catch_unwind` isolation boundary, so a panicking cell
//! becomes a structured [`JobError`] in [`SweepReport::failed`] instead
//! of aborting the sweep. Transient failures (memo-store IO, injected
//! faults, watchdog timeouts) are retried with bounded deterministic
//! backoff (`LLBP_MAX_RETRIES`, default 2); deterministic failures
//! (predictor or trace-gen panics) fail fast. A per-job watchdog
//! (`LLBP_JOB_TIMEOUT_SECS`) hands each attempt a deadline-carrying
//! [`CancelToken`] that the simulation loop polls, so a hung cell
//! cancels itself cooperatively. When a persistent store is attached the
//! engine also appends per-cell outcomes to a campaign journal
//! (`<cache-root>/<campaign-fingerprint>.journal`); together with the
//! memoized cells this makes an interrupted campaign resumable — a
//! re-run only simulates missing or previously-failed cells.
//!
//! # Example
//!
//! ```
//! use llbp_sim::engine::{SweepEngine, SweepSpec};
//! use llbp_sim::{PredictorKind, SimConfig};
//! use llbp_trace::{Workload, WorkloadSpec};
//!
//! let spec = SweepSpec::new(
//!     vec![PredictorKind::Tsl64K, PredictorKind::TslScaled(8)],
//!     vec![WorkloadSpec::named(Workload::Http).with_branches(5_000)],
//!     SimConfig::default(),
//! );
//! let report = SweepEngine::new().run(&spec);
//! assert_eq!(report.jobs.len(), 2);
//! let base = report.get(0, 0); // (workload 0, predictor 0)
//! assert_eq!(base.label, "64K TSL");
//! ```

use crate::cache::TraceCache;
use crate::config::{PredictorKind, SimConfig};
use crate::driver::SimResult;
use crate::error::{backoff_delay, panic_message, CancelToken, SimError};
use crate::faultinject::FaultInjector;
use crate::journal::{campaign_fingerprint, CampaignJournal, CellOutcome};
use crate::memo::MemoStore;
use bputil::hash::FastHashMap;
use llbp_obs::{HistogramSnapshot, Telemetry};
use llbp_prov::{ProvConfig, ProvRecorder};
use llbp_trace::{Fingerprint, WorkloadSpec};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Environment variable bounding per-cell retries of transient failures
/// (memo-store IO errors, injected faults, watchdog timeouts).
pub const MAX_RETRIES_ENV: &str = "LLBP_MAX_RETRIES";

/// Retry budget used when [`MAX_RETRIES_ENV`] is unset or unparsable.
pub const DEFAULT_MAX_RETRIES: u32 = 2;

/// Environment variable setting the per-job watchdog timeout in seconds
/// (fractional values accepted; unset or non-positive disables it).
pub const JOB_TIMEOUT_ENV: &str = "LLBP_JOB_TIMEOUT_SECS";

/// Environment variable pinning the worker pool size (CI and shared
/// hosts), else one worker per available core.
pub const WORKERS_ENV: &str = "LLBP_WORKERS";

/// Environment variable setting the provenance sampling period (keep
/// every Nth event; default [`ProvConfig::DEFAULT_SAMPLE`]).
pub const PROV_SAMPLE_ENV: &str = "LLBP_PROV_SAMPLE";

/// Environment variable setting the provenance ring capacity in events
/// (default [`ProvConfig::DEFAULT_RING`]).
pub const PROV_RING_ENV: &str = "LLBP_PROV_RING";

/// The recorder tuning from [`PROV_SAMPLE_ENV`] / [`PROV_RING_ENV`],
/// with crate defaults for whichever is unset.
///
/// # Errors
///
/// [`SimError::Config`] when either variable is set but unparsable —
/// silently recording at a default rate would misrepresent a campaign
/// that asked for full-rate capture.
pub fn prov_config_from_env() -> Result<ProvConfig, SimError> {
    Ok(ProvConfig {
        sample: crate::envknob::parse_env_or(PROV_SAMPLE_ENV, ProvConfig::DEFAULT_SAMPLE)?,
        ring: crate::envknob::parse_env_or(PROV_RING_ENV, ProvConfig::DEFAULT_RING)?,
    })
}

/// The retry budget from [`MAX_RETRIES_ENV`], else
/// [`DEFAULT_MAX_RETRIES`].
///
/// # Errors
///
/// [`SimError::Config`] when the variable is set but unparsable.
pub fn retries_from_env() -> Result<u32, SimError> {
    crate::envknob::parse_env_or(MAX_RETRIES_ENV, DEFAULT_MAX_RETRIES)
}

/// The watchdog timeout from [`JOB_TIMEOUT_ENV`]: `Ok(None)` when unset
/// or non-positive (disabled), `Ok(Some)` otherwise.
///
/// # Errors
///
/// [`SimError::Config`] when the variable is set but not a finite
/// number.
pub fn timeout_from_env() -> Result<Option<Duration>, SimError> {
    let secs: Option<f64> = crate::envknob::parse_env(JOB_TIMEOUT_ENV)?;
    let Some(secs) = secs else { return Ok(None) };
    if !secs.is_finite() {
        return Err(SimError::Config {
            detail: format!("{JOB_TIMEOUT_ENV} `{secs}`: expected a finite number of seconds"),
        });
    }
    Ok((secs > 0.0).then(|| Duration::from_secs_f64(secs)))
}

/// The worker-count override from [`WORKERS_ENV`]: `Ok(None)` when
/// unset, else the value clamped to ≥ 1.
///
/// # Errors
///
/// [`SimError::Config`] when the variable is set but unparsable.
pub fn workers_from_env() -> Result<Option<usize>, SimError> {
    Ok(crate::envknob::parse_env::<usize>(WORKERS_ENV)?.map(|n| n.max(1)))
}

/// One worker per available core (the default when [`WORKERS_ENV`] is
/// unset).
fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Number of workers the engine uses by default: [`WORKERS_ENV`] when
/// set, else one per available core.
///
/// Infallible for legacy harness fan-out callers; an unparsable
/// override is *warned about* and ignored here, while engine-routed
/// runs surface it as a typed config error via
/// [`workers_from_env`] (captured in [`SweepEngine::new`]).
#[must_use]
pub fn default_workers() -> usize {
    match workers_from_env() {
        Ok(Some(n)) => n,
        Ok(None) => available_cores(),
        Err(e) => {
            eprintln!("warning: {e}; using one worker per core");
            available_cores()
        }
    }
}

/// Runs `f(0..n)` on a pool of `workers` threads and returns the results
/// in index order regardless of which worker ran which index.
///
/// This is the engine's scheduling primitive, exposed because harness code
/// with job shapes other than a predictor grid (e.g. per-workload trace
/// characterisation) wants the same bounded fan-out. Workers claim indices
/// from a shared atomic counter, so a slow job never blocks the queue
/// behind it; with `workers <= 1` the closure runs inline on the caller's
/// thread.
///
/// A panic in `f` poisons nothing: the collection mutex only guards a
/// `Vec` whose partial contents stay structurally valid, so surviving
/// workers recover the guard with [`PoisonError::into_inner`] and keep
/// collecting. (The sweep engine additionally catches panics per job, so
/// its closures never unwind out of here at all.)
///
/// # Panics
///
/// Propagates a panic from `f`.
pub fn run_indexed<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                collected.lock().unwrap_or_else(PoisonError::into_inner).extend(local);
            });
        }
    });
    let mut indexed = collected.into_inner().unwrap_or_else(PoisonError::into_inner);
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, value)| value).collect()
}

/// A sweep: every predictor in `predictors` over every workload in
/// `workloads`, simulated under one [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Predictor designs, in report order.
    pub predictors: Vec<PredictorKind>,
    /// Workload specs, in report order.
    pub workloads: Vec<WorkloadSpec>,
    /// Simulation parameters shared by every job.
    pub sim: SimConfig,
}

impl SweepSpec {
    /// Creates a sweep spec.
    #[must_use]
    pub fn new(
        predictors: Vec<PredictorKind>,
        workloads: Vec<WorkloadSpec>,
        sim: SimConfig,
    ) -> Self {
        Self { predictors, workloads, sim }
    }

    /// Total number of grid cells.
    #[must_use]
    pub fn num_jobs(&self) -> usize {
        self.predictors.len() * self.workloads.len()
    }

    /// The grid in job order: workload-major, so that the jobs sharing a
    /// trace are adjacent in the queue and the cache holds few traces at
    /// a time.
    fn job(&self, index: usize) -> SweepJob {
        SweepJob {
            workload: index / self.predictors.len(),
            predictor: index % self.predictors.len(),
        }
    }
}

/// One grid cell: indices into [`SweepSpec::workloads`] and
/// [`SweepSpec::predictors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepJob {
    /// Index into [`SweepSpec::workloads`].
    pub workload: usize,
    /// Index into [`SweepSpec::predictors`].
    pub predictor: usize,
}

/// Throughput statistics for one job.
#[derive(Debug, Clone, Copy)]
pub struct JobStats {
    /// Wall time of the simulation (excluding trace generation, which is
    /// attributed to the job that missed the cache).
    pub wall: Duration,
    /// Branch records simulated.
    pub branches: u64,
}

impl JobStats {
    /// Simulated branch records per second of wall time.
    #[must_use]
    pub fn branches_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.branches as f64 / secs
        } else {
            0.0
        }
    }
}

/// One completed grid cell.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Which grid cell this is.
    pub job: SweepJob,
    /// The simulation result.
    pub result: SimResult,
    /// Throughput statistics.
    pub stats: JobStats,
}

/// A grid cell that exhausted its retry budget (or failed
/// deterministically) — the sweep's structured record of the failure.
#[derive(Debug, Clone)]
pub struct JobError {
    /// Which grid cell failed.
    pub job: SweepJob,
    /// The cell's flat grid index (`workload * num_predictors + predictor`).
    pub index: usize,
    /// Label of the predictor that was being simulated.
    pub predictor: String,
    /// Name of the workload that was being simulated.
    pub workload: String,
    /// How many attempts were made (1 = failed without retrying).
    pub attempts: u32,
    /// The final attempt's error.
    pub error: SimError,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {} ({} on {}) failed after {} attempt{}: {}",
            self.index,
            self.predictor,
            self.workload,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.error
        )
    }
}

/// Campaign-level provenance summary, aggregated from the streams on
/// disk after the run loop (so memo-served *and* freshly simulated cells
/// contribute — a fully warm campaign regenerates this without
/// simulating anything).
#[derive(Debug, Clone, Default)]
pub struct ProvSummary {
    /// Cells whose provenance stream was loadable.
    pub streams: u64,
    /// Measured conditional branches recorded across all streams.
    pub branches: u64,
    /// Mispredictions recorded across all streams (full-rate exact).
    pub mispredicts: u64,
    /// Sampled events captured across all streams.
    pub sampled: u64,
    /// The campaign's hottest mispredicting branch (ties break toward
    /// the lower pc, so the summary is deterministic).
    pub hottest_pc: Option<u64>,
    /// Mispredictions of [`ProvSummary::hottest_pc`].
    pub hottest_mispredicts: u64,
    /// Directory holding the streams (`prov_tool`'s input).
    pub dir: String,
}

/// Everything a sweep produced, in deterministic grid order
/// (workload-major: all predictors of workload 0, then workload 1, …).
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Completed jobs, indexed `workload * num_predictors + predictor`.
    pub jobs: Vec<JobRecord>,
    /// Number of predictors per workload (the grid's minor dimension).
    pub num_predictors: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall time of the whole sweep, including trace generation.
    pub wall: Duration,
    /// Trace-cache requests served from memory without generating.
    pub cache_hits: u64,
    /// Traces generated.
    pub cache_misses: u64,
    /// Trace-cache requests served from the persistent store.
    pub trace_disk_hits: u64,
    /// Grid cells whose result was served from the persistent store.
    pub memo_hits: u64,
    /// Grid cells simulated (and written back, when a store is attached).
    pub memo_misses: u64,
    /// Peak heap bytes held by cached traces.
    pub trace_bytes: usize,
    /// Grid cells that ultimately failed after exhausting retries. Their
    /// slot in [`SweepReport::jobs`] holds an all-zero placeholder result
    /// so dense grid indexing stays valid; consult this list (or
    /// [`SweepReport::is_complete`]) before trusting a cell.
    pub failed: Vec<JobError>,
    /// Cells skipped because a `--resume` run found them already
    /// completed in the campaign journal and memo store.
    pub resumed: u64,
    /// Journaled-complete cells a `--verify-resume` pass demoted to
    /// misses (missing, corrupt, or digest-mismatched memo cells); each
    /// was journaled `stale` and re-run from scratch.
    pub stale: u64,
    /// How long acquiring the campaign's journal lock blocked on a live
    /// holder (zero for storeless sweeps and uncontended locks).
    pub lock_wait: Duration,
    /// Dead-holder lock takeovers performed while opening the journal.
    pub lock_takeovers: u64,
    /// Per-cell wall-time distribution in microseconds (simulation wall
    /// for simulated cells, probe wall for memo-served ones; failed
    /// placeholders excluded). Built for every run — telemetry need not
    /// be enabled.
    pub cell_wall: HistogramSnapshot,
    /// Label of the *resolved* execution backend that ran the simulated
    /// cells (`auto` never appears here — the concrete tier it picked
    /// does), so archived throughput records say what actually ran.
    pub backend: &'static str,
    /// Storage tier serving memoized cells (`"local"`, `"remote"`, or
    /// `"none"` for storeless sweeps), so archived throughput records
    /// say where the cells came from.
    pub store_tier: &'static str,
    /// Provenance summary, `Some` only when the engine ran with
    /// [`SweepEngine::with_prov`] — absent means no recorder touched the
    /// run and every output byte matches a build without the subsystem.
    pub prov: Option<ProvSummary>,
}

impl SweepReport {
    /// `true` when every grid cell produced a real result.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// The result for `(workload index, predictor index)`. For a cell
    /// listed in [`SweepReport::failed`] this is the all-zero placeholder.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn get(&self, workload: usize, predictor: usize) -> &SimResult {
        assert!(predictor < self.num_predictors, "predictor index out of range");
        &self.jobs[workload * self.num_predictors + predictor].result
    }

    /// All results for one workload, in predictor order.
    #[must_use]
    pub fn row(&self, workload: usize) -> Vec<&SimResult> {
        (0..self.num_predictors).map(|p| self.get(workload, p)).collect()
    }

    /// Total branch records simulated across all jobs.
    #[must_use]
    pub fn total_branches(&self) -> u64 {
        self.jobs.iter().map(|j| j.stats.branches).sum()
    }

    /// Aggregate simulated branches per second of sweep wall time.
    #[must_use]
    pub fn branches_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_branches() as f64 / secs
        } else {
            0.0
        }
    }

    /// A single-line JSON record of the sweep's throughput, for harness
    /// scripts that archive perf numbers (`results/`). When any cell
    /// ultimately failed, a `"failed"` array of per-cell error records is
    /// appended so archived campaigns are honest about missing data.
    #[must_use]
    pub fn throughput_json(&self, label: &str) -> String {
        let sanitize = |s: &str| s.replace(['"', '\\'], "_");
        let mut line = format!(
            concat!(
                "{{\"event\":\"sweep_throughput\",\"label\":\"{}\",",
                "\"backend\":\"{}\",\"store\":\"{}\",",
                "\"jobs\":{},\"workers\":{},\"branches\":{},",
                "\"wall_s\":{:.3},\"branches_per_sec\":{:.0},",
                "\"cache_hits\":{},\"cache_misses\":{},",
                "\"trace_disk_hits\":{},\"memo_hits\":{},\"memo_misses\":{},",
                "\"resumed\":{},\"stale\":{},\"trace_mib\":{:.1},",
                "\"lock_wait_ms\":{:.1},\"lock_takeovers\":{},",
                "\"cell_wall_p50_ms\":{:.3},\"cell_wall_p95_ms\":{:.3},",
                "\"cell_wall_max_ms\":{:.3}"
            ),
            sanitize(label),
            self.backend,
            self.store_tier,
            self.jobs.len(),
            self.workers,
            self.total_branches(),
            self.wall.as_secs_f64(),
            self.branches_per_sec(),
            self.cache_hits,
            self.cache_misses,
            self.trace_disk_hits,
            self.memo_hits,
            self.memo_misses,
            self.resumed,
            self.stale,
            self.trace_bytes as f64 / (1024.0 * 1024.0),
            self.lock_wait.as_secs_f64() * 1000.0,
            self.lock_takeovers,
            self.cell_wall.quantile(0.5) as f64 / 1000.0,
            self.cell_wall.quantile(0.95) as f64 / 1000.0,
            self.cell_wall.max as f64 / 1000.0,
        );
        if !self.failed.is_empty() {
            line.push_str(",\"failed\":[");
            for (i, err) in self.failed.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!(
                    concat!(
                        "{{\"cell\":{},\"workload\":\"{}\",\"predictor\":\"{}\",",
                        "\"attempts\":{},\"class\":\"{}\",\"error\":\"{}\"}}"
                    ),
                    err.index,
                    sanitize(&err.workload),
                    sanitize(&err.predictor),
                    err.attempts,
                    err.error.class(),
                    sanitize(&err.error.to_string()),
                ));
            }
            line.push(']');
        }
        if let Some(p) = &self.prov {
            let hottest =
                p.hottest_pc.map_or_else(|| "null".to_string(), |pc| format!("\"{pc:#x}\""));
            line.push_str(&format!(
                concat!(
                    ",\"prov\":{{\"streams\":{},\"branches\":{},",
                    "\"mispredicts\":{},\"sampled\":{},\"hottest_pc\":{},",
                    "\"hottest_mispredicts\":{},\"dir\":\"{}\"}}"
                ),
                p.streams,
                p.branches,
                p.mispredicts,
                p.sampled,
                hottest,
                p.hottest_mispredicts,
                sanitize(&p.dir),
            ));
        }
        line.push('}');
        line
    }
}

/// Schedules [`SweepSpec`] grids onto a worker pool, optionally memoizing
/// every cell in a persistent [`MemoStore`], with per-job panic
/// isolation, bounded retry, watchdog timeouts and campaign resume (see
/// the module docs).
#[derive(Debug, Clone)]
pub struct SweepEngine {
    workers: usize,
    store: Option<Arc<MemoStore>>,
    cold: bool,
    max_retries: u32,
    job_timeout: Option<Duration>,
    faults: Option<Arc<FaultInjector>>,
    resume: bool,
    verify_resume: bool,
    prov: Option<ProvConfig>,
    telemetry: Telemetry,
    /// First malformed `LLBP_*` knob seen at construction. Constructors
    /// stay infallible, so the typed error is deferred to the first
    /// fallible entry point ([`SweepEngine::try_run_with_cache`]) where
    /// it fails the campaign with exit code 2 instead of silently
    /// running on defaults.
    env_error: Option<SimError>,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// An engine with one worker per available core (or `LLBP_WORKERS`)
    /// and no persistent store. The retry budget and watchdog timeout are
    /// read from `LLBP_MAX_RETRIES` / `LLBP_JOB_TIMEOUT_SECS`.
    #[must_use]
    pub fn new() -> Self {
        match workers_from_env() {
            Ok(workers) => Self::with_workers(workers.unwrap_or_else(available_cores)),
            Err(e) => {
                let mut engine = Self::with_workers(available_cores());
                engine.env_error.get_or_insert(e);
                engine
            }
        }
    }

    /// An engine with an explicit worker count (`0` is clamped to 1).
    /// Results are identical at any worker count; only throughput varies.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        let mut env_error = None;
        let max_retries = retries_from_env().unwrap_or_else(|e| {
            env_error = Some(e);
            DEFAULT_MAX_RETRIES
        });
        let job_timeout = timeout_from_env().unwrap_or_else(|e| {
            env_error.get_or_insert(e);
            None
        });
        Self {
            workers: workers.max(1),
            store: None,
            cold: false,
            max_retries,
            job_timeout,
            faults: None,
            resume: false,
            verify_resume: false,
            prov: None,
            telemetry: Telemetry::disabled(),
            env_error,
        }
    }

    /// Attaches a telemetry handle. Each job then records five stage
    /// spans — `queue_wait`, `memo_probe`, `generation`, `simulation`,
    /// `write_back` — plus marks for `retry`, `watchdog_kill`,
    /// `lock_takeover` and `stale_demotion`, and the hot simulation loop
    /// feeds a sampled `sim_records_total` counter. The default disabled
    /// handle costs nothing (see `llbp_obs`).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a persistent store: each grid cell probes it for a
    /// memoized result before simulating and writes its result (plus the
    /// wall time, the scheduling cost model) back on a miss. Results are
    /// bit-identical with or without a store — the parity tests pin it.
    #[must_use]
    pub fn with_store(mut self, store: Arc<MemoStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// With `cold` set, memoized results and traces are ignored (every
    /// cell re-simulates) but write-back still happens, so a cold run
    /// refreshes the store and records fresh per-cell wall times.
    #[must_use]
    pub fn cold(mut self, cold: bool) -> Self {
        self.cold = cold;
        self
    }

    /// Overrides the transient-failure retry budget (`0` disables
    /// retrying; the default comes from `LLBP_MAX_RETRIES`, else 2).
    #[must_use]
    pub fn retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Overrides the per-job watchdog timeout (`None` disables it; the
    /// default comes from `LLBP_JOB_TIMEOUT_SECS`, else disabled). Each
    /// *attempt* gets a fresh deadline, so a retried timeout is not
    /// charged for its predecessor's wasted wall time.
    #[must_use]
    pub fn timeout(mut self, job_timeout: Option<Duration>) -> Self {
        self.job_timeout = job_timeout;
        self
    }

    /// Attaches a deterministic fault injector: jobs consult it at each
    /// attempt start (panic / slow-down rules keyed by grid cell). IO
    /// rules are injected separately at the store via
    /// [`MemoStore::attach_faults`].
    #[must_use]
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// With `resume` set (and a store attached), cells recorded as
    /// completed in the campaign journal *and* still present in the memo
    /// store are served from disk without re-entering the fault/retry
    /// path, and the journal is appended to instead of truncated. Cells
    /// the journal records as failed are retried from scratch.
    #[must_use]
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// With `verify_resume` set (implies nothing unless `resume` is also
    /// set), resumed cells are not trusted on the journal's word alone:
    /// each `ok`-journaled cell is re-read and checksummed, and its
    /// trailer digest compared against the digest the journal recorded at
    /// completion. Cells that fail — corrupted, replaced, or evicted
    /// since the journal was written — are journaled `stale` and re-run
    /// from scratch (bypassing even a still-decodable memo cell, which by
    /// definition is not the one the campaign completed with).
    #[must_use]
    pub fn verify_resume(mut self, verify: bool) -> Self {
        self.verify_resume = verify;
        self
    }

    /// Enables provenance recording: every simulated cell runs with a
    /// live [`ProvRecorder`], its stream is persisted next to the memo
    /// cell (keyed by the same result fingerprint), and the report gains
    /// a [`SweepReport::prov`] summary plus a `"prov"` section in
    /// [`SweepReport::throughput_json`]. Memo probes additionally require
    /// the stream to exist — a warm cell without one re-simulates once to
    /// backfill it. Requires a store; [`SweepEngine::try_run`] fails with
    /// a config error otherwise.
    #[must_use]
    pub fn with_prov(mut self, cfg: ProvConfig) -> Self {
        self.prov = Some(cfg);
        self
    }

    /// The worker count this engine schedules with.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs the full grid and returns the report. Job panics are caught
    /// and surface as [`SweepReport::failed`] entries, not unwinds.
    ///
    /// # Panics
    ///
    /// Panics when the campaign cannot *start* — another live campaign
    /// holds this grid's journal lock ([`SimError::CacheContention`]).
    /// Use [`SweepEngine::try_run`] to handle that case as a value.
    #[must_use]
    pub fn run(&self, spec: &SweepSpec) -> SweepReport {
        match self.try_run(spec) {
            Ok(report) => report,
            Err(e) => panic!("sweep campaign failed to start: {e}"),
        }
    }

    /// Runs the grid against a caller-provided trace cache, so harness
    /// code that needs the traces afterwards (e.g. for L1-I traffic
    /// analysis) shares one cache with the sweep instead of regenerating.
    /// Job panics are caught and surface as [`SweepReport::failed`]
    /// entries, not unwinds.
    ///
    /// # Panics
    ///
    /// As [`SweepEngine::run`]; use [`SweepEngine::try_run_with_cache`]
    /// to handle campaign-level contention as a value.
    #[must_use]
    pub fn run_with_cache(&self, spec: &SweepSpec, cache: &TraceCache) -> SweepReport {
        match self.try_run_with_cache(spec, cache) {
            Ok(report) => report,
            Err(e) => panic!("sweep campaign failed to start: {e}"),
        }
    }

    /// Fallible [`SweepEngine::run`]: campaign-level failures (journal
    /// lock contention) surface as an error instead of a panic. Per-cell
    /// failures still surface as [`SweepReport::failed`] entries.
    ///
    /// # Errors
    ///
    /// [`SimError::CacheContention`] when another live campaign holds the
    /// journal lock for this grid on this cache root.
    pub fn try_run(&self, spec: &SweepSpec) -> Result<SweepReport, SimError> {
        let cache = match &self.store {
            Some(store) => TraceCache::with_store(Arc::clone(store), self.cold),
            None => TraceCache::new(),
        }
        .with_telemetry(self.telemetry.clone());
        self.try_run_with_cache(spec, &cache)
    }

    /// Fallible [`SweepEngine::run_with_cache`] (see
    /// [`SweepEngine::try_run`]).
    ///
    /// # Errors
    ///
    /// [`SimError::CacheContention`] when another live campaign holds the
    /// journal lock for this grid on this cache root.
    pub fn try_run_with_cache(
        &self,
        spec: &SweepSpec,
        cache: &TraceCache,
    ) -> Result<SweepReport, SimError> {
        if let Some(e) = &self.env_error {
            return Err(e.clone());
        }
        if self.prov.is_some() && self.store.is_none() {
            return Err(SimError::Config {
                detail: "provenance recording requires a persistent store \
                         (streams are persisted next to memo cells)"
                    .into(),
            });
        }
        let started = Instant::now();
        let n = spec.num_jobs();
        let fingerprints: Vec<_> = self.store.as_ref().map_or_else(Vec::new, |store| {
            (0..n)
                .map(|i| {
                    let job = spec.job(i);
                    store.result_fingerprint(
                        &spec.predictors[job.predictor],
                        &spec.workloads[job.workload],
                        &spec.sim,
                    )
                })
                .collect()
        });
        let journal = self.open_journal(&fingerprints)?;
        // On resume, cells the journal marks completed (and whose result
        // is still memoized under the recorded fingerprint) are trusted;
        // anything else — failed, stale, unrecorded, or evicted — re-runs.
        // With verify-resume, "trusted" additionally requires the memo
        // cell to decode and match its journaled digest right now.
        let mut stale_count = 0u64;
        let mut force_fresh: HashSet<usize> = HashSet::new();
        let done_before: FastHashMap<usize, Fingerprint> = match (&journal, self.resume) {
            (Some(journal), true) => {
                let mut done = FastHashMap::default();
                for (cell, outcome) in journal.load() {
                    let CellOutcome::Ok { fingerprint, digest } = outcome else { continue };
                    if cell >= n || fingerprints[cell] != fingerprint {
                        continue;
                    }
                    if self.verify_resume {
                        let injected = self.faults.as_ref().is_some_and(|f| f.check_stale(cell));
                        let verified = !injected
                            && self.store.as_ref().is_some_and(|store| {
                                // A transient read error counts as
                                // unverified: re-running the cell is
                                // always safe, trusting it is not.
                                store.verify_result(fingerprint, digest).unwrap_or(false)
                            });
                        if !verified {
                            journal.record_stale(cell, fingerprint);
                            self.telemetry.mark("stale_demotion", cell as i64);
                            stale_count += 1;
                            force_fresh.insert(cell);
                            continue;
                        }
                    }
                    done.insert(cell, fingerprint);
                }
                done
            }
            _ => FastHashMap::default(),
        };
        let order = self.schedule(n, &fingerprints);
        let memo_hits = AtomicU64::new(0);
        let memo_misses = AtomicU64::new(0);
        let resumed = AtomicU64::new(0);
        let mut claimed = run_indexed(self.workers, n, |slot| {
            let index = order[slot];
            // Queue wait: campaign start until a worker claims the cell.
            if self.telemetry.is_enabled() {
                self.telemetry.record_span("queue_wait", started, Instant::now(), index as i64);
            }
            let outcome = self.run_cell(
                spec,
                index,
                cache,
                fingerprints.get(index).copied(),
                done_before.contains_key(&index),
                force_fresh.contains(&index),
                (&memo_hits, &memo_misses, &resumed),
            );
            if let Some(journal) = &journal {
                match &outcome {
                    Ok((_, digest)) => journal.record_ok(index, fingerprints[index], *digest),
                    Err(err) => journal.record_failed(index, err.error.class()),
                }
            }
            (index, outcome)
        });
        // Workers claim in schedule order; reports stay in grid order.
        claimed.sort_unstable_by_key(|&(index, _)| index);
        let mut jobs = Vec::with_capacity(n);
        let mut failed = Vec::new();
        let mut cell_wall = HistogramSnapshot::default();
        for (index, outcome) in claimed {
            match outcome {
                Ok((record, _digest)) => {
                    cell_wall.record(record.stats.wall.as_micros() as u64);
                    jobs.push(record);
                }
                Err(err) => {
                    // A placeholder keeps dense grid indexing valid;
                    // `failed` is the authoritative record of the gap.
                    jobs.push(Self::placeholder_record(spec, index));
                    failed.push(*err);
                }
            }
        }
        let (lock_wait, lock_takeovers) =
            journal.as_ref().map_or((Duration::ZERO, 0), CampaignJournal::lock_stats);
        let report = SweepReport {
            jobs,
            num_predictors: spec.predictors.len(),
            workers: self.workers.clamp(1, n.max(1)),
            wall: started.elapsed(),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            trace_disk_hits: cache.disk_hits(),
            memo_hits: memo_hits.into_inner(),
            memo_misses: memo_misses.into_inner(),
            trace_bytes: cache.memory_footprint(),
            failed,
            resumed: resumed.into_inner(),
            stale: stale_count,
            lock_wait,
            lock_takeovers,
            cell_wall,
            backend: spec.sim.backend.resolve().label(),
            store_tier: self.store.as_ref().map_or("none", |store| store.tier()),
            prov: self.prov_summary(&fingerprints),
        };
        // Mirror the campaign summary into the metrics registry so a
        // Prometheus snapshot is self-contained without the report.
        if self.telemetry.is_enabled() {
            self.telemetry.counter("sweep_jobs").add(report.jobs.len() as u64);
            self.telemetry.counter("sweep_failed").add(report.failed.len() as u64);
            self.telemetry.counter("cache_hits").add(report.cache_hits);
            self.telemetry.counter("cache_misses").add(report.cache_misses);
            self.telemetry.counter("trace_disk_hits").add(report.trace_disk_hits);
            self.telemetry.counter("memo_hits").add(report.memo_hits);
            self.telemetry.counter("memo_misses").add(report.memo_misses);
            self.telemetry.counter("resumed").add(report.resumed);
            self.telemetry.counter("stale").add(report.stale);
        }
        Ok(report)
    }

    /// Opens the campaign journal when a persistent store is attached,
    /// acquiring the campaign's exclusive cross-process lock. The
    /// campaign identity is a fold of the grid's cell fingerprints, so
    /// two different sweeps never share a journal (or contend on one
    /// another's lock).
    ///
    /// Contention is a hard error — running anyway would interleave two
    /// writers in one journal. Any *other* open failure degrades to
    /// running without a journal: the journal is an optimization, not a
    /// correctness requirement.
    fn open_journal(
        &self,
        fingerprints: &[Fingerprint],
    ) -> Result<Option<CampaignJournal>, SimError> {
        let Some(store) = self.store.as_ref() else {
            return Ok(None);
        };
        if fingerprints.is_empty() {
            return Ok(None);
        }
        if let Some(faults) = &self.faults {
            faults.check_lock()?;
        }
        match CampaignJournal::open_observed(
            store.root(),
            campaign_fingerprint(fingerprints),
            self.resume,
            crate::lock::lock_wait_from_env()?,
            &self.telemetry,
        ) {
            Ok(journal) => Ok(Some(journal)),
            Err(e @ SimError::CacheContention { .. }) => Err(e),
            Err(_) => Ok(None),
        }
    }

    /// Runs one grid cell to completion: retry loop around
    /// [`SweepEngine::attempt_cell`] with deterministic backoff between
    /// transient failures, mapping the final error into a [`JobError`]
    /// (boxed: the error path is cold and the `Ok` path shouldn't pay
    /// its footprint).
    #[allow(clippy::too_many_arguments)]
    fn run_cell(
        &self,
        spec: &SweepSpec,
        index: usize,
        cache: &TraceCache,
        fingerprint: Option<Fingerprint>,
        resumable: bool,
        force_fresh: bool,
        counters: (&AtomicU64, &AtomicU64, &AtomicU64),
    ) -> Result<(JobRecord, Option<Fingerprint>), Box<JobError>> {
        let job = spec.job(index);
        let mut attempt = 0u32;
        loop {
            let outcome = self.attempt_cell(
                spec,
                job,
                index,
                cache,
                fingerprint,
                resumable,
                force_fresh,
                counters,
                attempt,
            );
            match outcome {
                Ok(record) => return Ok(record),
                Err(error) if error.is_transient() && attempt < self.max_retries => {
                    if matches!(error, SimError::Timeout { .. }) {
                        self.telemetry.mark("watchdog_kill", index as i64);
                    }
                    self.telemetry.mark("retry", index as i64);
                    std::thread::sleep(backoff_delay(attempt));
                    attempt += 1;
                }
                Err(error) => {
                    if matches!(error, SimError::Timeout { .. }) {
                        self.telemetry.mark("watchdog_kill", index as i64);
                    }
                    return Err(Box::new(JobError {
                        job,
                        index,
                        predictor: spec.predictors[job.predictor].label(),
                        workload: spec.workloads[job.workload].name().to_string(),
                        attempts: attempt + 1,
                        error,
                    }));
                }
            }
        }
    }

    /// One attempt at one grid cell, fully isolated: injected faults,
    /// trace generation and the simulation itself each run under
    /// `catch_unwind`, and every failure maps to a typed [`SimError`].
    /// On success, also returns the memoized cell's content digest (when
    /// a store is attached and the write-back landed) for the journal.
    #[allow(clippy::too_many_arguments)]
    fn attempt_cell(
        &self,
        spec: &SweepSpec,
        job: SweepJob,
        index: usize,
        cache: &TraceCache,
        fingerprint: Option<Fingerprint>,
        resumable: bool,
        force_fresh: bool,
        (memo_hits, memo_misses, resumed): (&AtomicU64, &AtomicU64, &AtomicU64),
        attempt: u32,
    ) -> Result<(JobRecord, Option<Fingerprint>), SimError> {
        // The watchdog deadline starts before fault injection so that an
        // injected-slow attempt is charged for its sleep: the simulation
        // loop's first poll then observes the expired deadline.
        let token = match self.job_timeout {
            Some(limit) => CancelToken::with_timeout(limit),
            None => CancelToken::none(),
        };
        if let Some(faults) = &self.faults {
            catch_unwind(AssertUnwindSafe(|| faults.on_job_start(index, attempt))).map_err(
                |payload| SimError::Injected { detail: panic_message(payload.as_ref()) },
            )?;
        }
        if let (Some(store), Some(fp)) = (&self.store, fingerprint) {
            // A cell demoted by verify-resume must not be served from the
            // memo probe: the on-disk bytes are exactly what failed
            // verification (`force_fresh` bypasses straight to re-run).
            // With provenance on, a warm cell whose stream is missing (a
            // campaign memoized before `--prov`) also falls through, so
            // one re-simulation backfills the stream.
            let prov_ok = self.prov.is_none() || store.has_prov(fp);
            if ((!self.cold && !force_fresh) || resumable) && prov_ok {
                let probe_started = Instant::now();
                let probed = {
                    let _span = self.telemetry.span("memo_probe").with_cell(index as i64);
                    store.load_result(fp)?
                };
                if let Some(cell) = probed {
                    memo_hits.fetch_add(1, Ordering::Relaxed);
                    if resumable {
                        resumed.fetch_add(1, Ordering::Relaxed);
                    }
                    let stats =
                        JobStats { wall: probe_started.elapsed(), branches: cell.trace_len };
                    return Ok((JobRecord { job, result: cell.result, stats }, Some(cell.digest)));
                }
            }
        }
        let wspec = &spec.workloads[job.workload];
        let gen_delay = self.faults.as_ref().and_then(|f| f.generation_delay(index, attempt));
        let trace = {
            let _span = self.telemetry.span("generation").with_cell(index as i64);
            catch_unwind(AssertUnwindSafe(|| {
                cache.get_or_generate_cancellable(wspec, &token, gen_delay)
            }))
            .map_err(|payload| SimError::TraceGen {
                workload: wspec.name().to_string(),
                detail: panic_message(payload.as_ref()),
            })??
        };
        let kind = spec.predictors[job.predictor].clone();
        let label = kind.label();
        let sim_records = self.telemetry.counter("sim_records_total");
        let mut recorder = match self.prov {
            Some(cfg) => ProvRecorder::enabled(cfg),
            None => ProvRecorder::disabled(),
        };
        let sim_started = Instant::now();
        let result = {
            let _span = self.telemetry.span("simulation").with_cell(index as i64);
            catch_unwind(AssertUnwindSafe(|| {
                spec.sim.run_recorded(kind, &trace, &token, &sim_records, &mut recorder)
            }))
            .map_err(|payload| SimError::PredictorPanic {
                label,
                detail: panic_message(payload.as_ref()),
            })??
        };
        let wall = sim_started.elapsed();
        // Counted on successful simulation (not per probe attempt), so
        // the counter still reads "cells simulated" under retries.
        memo_misses.fetch_add(1, Ordering::Relaxed);
        let digest = if let (Some(store), Some(fp)) = (&self.store, fingerprint) {
            // Publish the stream first: the memo probe treats the cell as
            // warm only when both objects exist, so this order means a
            // crash between the two writes re-simulates rather than
            // serving a cell whose stream never landed.
            if let Some(stream) = recorder.finish(&result.label, &result.workload) {
                let _span = self.telemetry.span("write_back").with_cell(index as i64);
                // Best-effort, like the trace store: a failed stream
                // write degrades the next warm run to one re-simulation.
                let _ = store.store_prov(fp, &stream);
            }
            let _span = self.telemetry.span("write_back").with_cell(index as i64);
            self.write_back(store, fp, &result, wall, trace.len() as u64)
        } else {
            None
        };
        Ok((
            JobRecord { job, result, stats: JobStats { wall, branches: trace.len() as u64 } },
            digest,
        ))
    }

    /// Persists a freshly simulated cell with its own bounded retry,
    /// returning the published cell's content digest on success.
    /// Ultimately best-effort: the in-memory result stands even if the
    /// store never accepts the write (the journal then records the cell
    /// without a digest, and verify-resume will re-run it).
    fn write_back(
        &self,
        store: &MemoStore,
        fp: Fingerprint,
        result: &SimResult,
        wall: Duration,
        trace_len: u64,
    ) -> Option<Fingerprint> {
        let mut attempt = 0u32;
        loop {
            match store.store_result(fp, result, wall, trace_len) {
                Ok(digest) => return Some(digest),
                Err(_) if attempt < self.max_retries => {
                    std::thread::sleep(backoff_delay(attempt));
                    attempt += 1;
                }
                Err(_) => return None,
            }
        }
    }

    /// Aggregates the campaign's provenance streams from disk into a
    /// [`ProvSummary`] (`None` when provenance is off). Reading back
    /// from the store — rather than from this run's recorders — is what
    /// lets a fully warm campaign rebuild the summary without simulating.
    fn prov_summary(&self, fingerprints: &[Fingerprint]) -> Option<ProvSummary> {
        self.prov?;
        let store = self.store.as_ref()?;
        let mut summary = ProvSummary {
            dir: store.root().join(crate::store::ObjectKind::Prov.dir()).display().to_string(),
            ..ProvSummary::default()
        };
        let mut seen: HashSet<Fingerprint> = HashSet::new();
        for &fp in fingerprints {
            if !seen.insert(fp) {
                continue;
            }
            let Ok(Some(stream)) = store.load_prov(fp) else { continue };
            summary.streams += 1;
            summary.branches += stream.branches;
            summary.mispredicts += stream.mispredicts;
            summary.sampled += stream.sampled;
            for p in &stream.profiles {
                let hotter = p.mispredicts > summary.hottest_mispredicts
                    || (p.mispredicts == summary.hottest_mispredicts
                        && p.mispredicts > 0
                        && summary.hottest_pc.is_none_or(|h| p.pc < h));
                if hotter {
                    summary.hottest_pc = Some(p.pc);
                    summary.hottest_mispredicts = p.mispredicts;
                }
            }
        }
        Some(summary)
    }

    /// An all-zero stand-in result for a failed cell, carrying the
    /// correct labels so report tables still render the grid shape.
    /// `pub(crate)` because the serve client rebuilds reports from
    /// streamed cells and needs the identical placeholder shape.
    pub(crate) fn placeholder_record(spec: &SweepSpec, index: usize) -> JobRecord {
        let job = spec.job(index);
        JobRecord {
            job,
            result: SimResult {
                label: spec.predictors[job.predictor].label(),
                workload: spec.workloads[job.workload].name().to_string(),
                instructions: 0,
                conditional_branches: 0,
                mispredictions: 0,
                provider_counts: FastHashMap::default(),
                per_branch_mispredicts: None,
                per_branch_executions: None,
                llbp: None,
            },
            stats: JobStats { wall: Duration::ZERO, branches: 0 },
        }
    }

    /// The order in which workers claim grid cells: longest-job-first,
    /// using the store's recorded per-cell wall times as the cost model.
    ///
    /// Cells with no cost information (never simulated under this format
    /// version) are assumed expensive and scheduled first; memoized cells
    /// that will be served from disk are near-free and scheduled last.
    /// Ties keep grid order, so a store-less engine degrades to exactly
    /// the workload-major order (which maximizes trace-cache locality).
    fn schedule(&self, n: usize, fingerprints: &[llbp_trace::Fingerprint]) -> Vec<usize> {
        let Some(store) = &self.store else {
            return (0..n).collect();
        };
        let mut keyed: Vec<(std::cmp::Reverse<u64>, usize)> = (0..n)
            .map(|i| {
                let fp = fingerprints[i];
                let cost = if !self.cold && store.has_result(fp) {
                    0
                } else {
                    store
                        .recorded_cost(fp)
                        .map_or(u64::MAX, |wall| u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX))
                };
                (std::cmp::Reverse(cost), i)
            })
            .collect();
        keyed.sort_unstable();
        keyed.into_iter().map(|(_, i)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llbp_trace::Workload;

    fn small_spec() -> SweepSpec {
        SweepSpec::new(
            vec![PredictorKind::Tsl64K, PredictorKind::TslScaled(2)],
            vec![
                WorkloadSpec::named(Workload::Http).with_branches(2_000),
                WorkloadSpec::named(Workload::Kafka).with_branches(2_000),
                WorkloadSpec::named(Workload::Tpcc).with_branches(2_000),
            ],
            SimConfig::default(),
        )
    }

    #[test]
    fn run_indexed_preserves_index_order() {
        for workers in [1, 2, 5, 64] {
            let out = run_indexed(workers, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn run_indexed_handles_empty_input() {
        let out: Vec<usize> = run_indexed(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn grid_order_is_workload_major() {
        let spec = small_spec();
        let report = SweepEngine::with_workers(1).run(&spec);
        assert_eq!(report.jobs.len(), 6);
        for (i, rec) in report.jobs.iter().enumerate() {
            assert_eq!(rec.job.workload, i / 2);
            assert_eq!(rec.job.predictor, i % 2);
            assert_eq!(rec.result.workload, spec.workloads[rec.job.workload].name());
            assert_eq!(rec.result.label, spec.predictors[rec.job.predictor].label());
        }
    }

    #[test]
    fn traces_are_generated_once_per_workload() {
        let spec = small_spec();
        let report = SweepEngine::with_workers(2).run(&spec);
        assert_eq!(report.cache_misses, 3);
        assert_eq!(report.cache_hits, 3);
        assert!(report.trace_bytes > 0);
    }

    #[test]
    fn job_stats_are_populated() {
        let spec = small_spec();
        let report = SweepEngine::with_workers(1).run(&spec);
        for rec in &report.jobs {
            assert_eq!(rec.stats.branches, 2_000);
            assert!(rec.stats.branches_per_sec() > 0.0);
        }
        assert_eq!(report.total_branches(), 12_000);
        assert!(report.branches_per_sec() > 0.0);
    }

    #[test]
    fn throughput_json_is_wellformed() {
        let spec = small_spec();
        let report = SweepEngine::with_workers(1).run(&spec);
        let line = report.throughput_json("unit \"test\"");
        assert!(line.starts_with("{\"event\":\"sweep_throughput\""));
        assert!(line.ends_with('}'));
        assert!(line.contains("\"jobs\":6"));
        // Quotes in the label must not break the JSON.
        assert!(!line.contains("unit \"test\""));
        // Provenance off: no trace of the subsystem in the record.
        assert!(report.prov.is_none());
        assert!(!line.contains("\"prov\""));
    }

    #[test]
    fn prov_config_from_env_validates_knobs() {
        // Unset knobs: crate defaults.
        std::env::remove_var(PROV_SAMPLE_ENV);
        std::env::remove_var(PROV_RING_ENV);
        assert_eq!(prov_config_from_env().expect("defaults"), ProvConfig::default());
        // Set knobs parse; garbage is a typed config error (exit 2), not
        // a silent fallback.
        std::env::set_var(PROV_SAMPLE_ENV, "16");
        std::env::set_var(PROV_RING_ENV, "512");
        assert_eq!(prov_config_from_env().expect("parses"), ProvConfig { sample: 16, ring: 512 });
        std::env::set_var(PROV_SAMPLE_ENV, "every-other");
        let err = prov_config_from_env().expect_err("garbage must fail");
        assert_eq!(err.class(), "config");
        assert_eq!(err.exit_code(), 2);
        std::env::remove_var(PROV_SAMPLE_ENV);
        std::env::remove_var(PROV_RING_ENV);
    }

    #[test]
    fn prov_requires_a_store() {
        let err = SweepEngine::with_workers(1)
            .with_prov(ProvConfig::default())
            .try_run(&small_spec())
            .expect_err("storeless prov must be rejected");
        assert_eq!(err.class(), "config");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn prov_campaign_persists_streams_and_summarizes_warm_runs() {
        let dir = std::env::temp_dir().join(format!("llbp-engine-prov-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(crate::memo::MemoStore::open(&dir).expect("scratch store"));
        let spec = small_spec();
        let engine = SweepEngine::with_workers(2)
            .with_store(Arc::clone(&store))
            .with_prov(ProvConfig { sample: 8, ring: 1024 });

        let cold = engine.run(&spec);
        assert!(cold.is_complete());
        assert_eq!(cold.memo_misses, 6, "every cell simulates on a cold store");
        let summary = cold.prov.as_ref().expect("prov summary present");
        assert_eq!(summary.streams, 6, "one stream per distinct cell");
        assert!(summary.branches > 0);
        assert!(summary.mispredicts > 0, "synthetic workloads always mispredict somewhere");
        let hottest = summary.hottest_pc.expect("a hottest branch exists");
        assert!(summary.hottest_mispredicts > 0);
        let line = cold.throughput_json("prov unit");
        assert!(line.contains("\"prov\":{\"streams\":6"));

        // Warm: every cell (and its stream) is served from disk; the
        // summary regenerates from the persisted streams byte-for-byte.
        let warm = engine.run(&spec);
        assert_eq!(warm.memo_hits, 6, "warm prov campaign must not re-simulate");
        assert_eq!(warm.memo_misses, 0);
        let warm_summary = warm.prov.as_ref().expect("warm summary present");
        assert_eq!(warm_summary.streams, 6);
        assert_eq!(warm_summary.branches, summary.branches);
        assert_eq!(warm_summary.mispredicts, summary.mispredicts);
        assert_eq!(warm_summary.sampled, summary.sampled);
        assert_eq!(warm_summary.hottest_pc, Some(hottest));

        // A memoized cell whose stream vanished re-simulates to backfill
        // it instead of reporting a hole.
        let fp = store.result_fingerprint(&spec.predictors[0], &spec.workloads[0], &spec.sim);
        std::fs::remove_file(store.prov_path(fp)).expect("stream exists on disk");
        let backfill = engine.run(&spec);
        assert_eq!(backfill.memo_misses, 1, "only the streamless cell re-simulates");
        assert_eq!(backfill.prov.as_ref().expect("summary").streams, 6);
        assert!(store.has_prov(fp), "stream backfilled");

        // The same engine without prov serves every cell warm and emits
        // nothing prov-shaped.
        let off = SweepEngine::with_workers(2).with_store(Arc::clone(&store)).run(&spec);
        assert_eq!(off.memo_hits, 6);
        assert!(off.prov.is_none());
        let _ = std::fs::remove_dir_all(dir);
    }
}
